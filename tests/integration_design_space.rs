//! Cross-product smoke test of the §3 design space: every (algorithm ×
//! channel × pattern × protocol) combination either trains successfully or
//! fails with a *principled* error (convexity, item caps, memory).

use lambdaml::prelude::*;

fn workload() -> Workload {
    let bundle = DatasetId::Higgs.generate_rows(2_000, 7);
    Workload::from_generated(&bundle, 7)
}

#[test]
fn full_design_space_smoke() {
    let wl = workload();
    let algorithms = [
        Algorithm::GaSgd { batch: 50 },
        Algorithm::MaSgd {
            batch: 50,
            local_iters: 3,
        },
        Algorithm::Admm {
            rho: 0.1,
            local_scans: 2,
            batch: 50,
        },
    ];
    let channels = [
        ChannelKind::S3,
        ChannelKind::Memcached(CacheNode::T3Medium),
        ChannelKind::Redis(CacheNode::T3Medium),
        ChannelKind::DynamoDb,
    ];
    let patterns = [Pattern::AllReduce, Pattern::ScatterReduce];
    let protocols = [Protocol::Sync, Protocol::Async];

    let mut ran = 0;
    let mut principled_rejections = 0;
    for algo in algorithms {
        for channel in channels {
            for pattern in patterns {
                for protocol in protocols {
                    let cfg = JobConfig::new(4, algo, 0.3, StopSpec::new(0.0, 1)).with_backend(
                        Backend::Faas {
                            spec: LambdaSpec::gb3(),
                            channel,
                            pattern,
                            protocol,
                        },
                    );
                    match TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg).run() {
                        Ok(r) => {
                            assert!(r.rounds > 0, "{algo:?}/{channel:?}/{pattern:?}/{protocol:?}");
                            assert!(r.final_loss.is_finite());
                            assert!(r.dollars().as_usd() >= 0.0);
                            ran += 1;
                        }
                        Err(JobError::NotApplicable(_)) => principled_rejections += 1,
                        Err(e) => panic!("unprincipled failure for {algo:?}/{channel:?}/{pattern:?}/{protocol:?}: {e}"),
                    }
                }
            }
        }
    }
    // Async+ADMM is the only rejected combination: 3×4×2×2 = 48 total,
    // 1 (algo) × 4 × 2 × 1 (async) = 8 rejections.
    assert_eq!(principled_rejections, 8);
    assert_eq!(ran, 40);
}

#[test]
fn em_runs_on_every_channel() {
    let wl = workload();
    for channel in [
        ChannelKind::S3,
        ChannelKind::Memcached(CacheNode::T3Medium),
        ChannelKind::DynamoDb,
    ] {
        let cfg = JobConfig::new(4, Algorithm::Em, 0.0, StopSpec::new(0.0, 3)).with_backend(
            Backend::Faas {
                spec: LambdaSpec::gb3(),
                channel,
                pattern: Pattern::AllReduce,
                protocol: Protocol::Sync,
            },
        );
        let r = TrainingJob::new(&wl, ModelId::KMeans { k: 5 }, cfg)
            .run()
            .unwrap();
        assert!(r.final_loss.is_finite());
        assert!(r.rounds >= 3);
    }
}

#[test]
fn patterns_give_identical_statistics() {
    // Same job, different pattern: learning outcome must be bit-identical
    // (only time/cost differ) because both compute the exact sum.
    let wl = workload();
    let mk = |pattern| {
        let cfg = JobConfig::new(
            5,
            Algorithm::GaSgd { batch: 40 },
            0.4,
            StopSpec::new(0.0, 2),
        )
        .with_backend(Backend::Faas {
            spec: LambdaSpec::gb3(),
            channel: ChannelKind::S3,
            pattern,
            protocol: Protocol::Sync,
        });
        TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
            .run()
            .unwrap()
    };
    let a = mk(Pattern::AllReduce);
    let b = mk(Pattern::ScatterReduce);
    assert_eq!(a.final_loss, b.final_loss, "same statistics, same model");
    assert_eq!(a.rounds, b.rounds);
    assert_ne!(
        a.breakdown.comm.as_secs(),
        b.breakdown.comm.as_secs(),
        "but different communication time"
    );
}

#[test]
fn async_differs_from_sync_statistically() {
    let wl = workload();
    let mk = |protocol| {
        let cfg = JobConfig::new(
            6,
            Algorithm::GaSgd { batch: 40 },
            0.4,
            StopSpec::new(0.0, 3),
        )
        .with_backend(Backend::Faas {
            spec: LambdaSpec::gb3(),
            channel: ChannelKind::S3,
            pattern: Pattern::AllReduce,
            protocol,
        });
        TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
            .run()
            .unwrap()
    };
    let sync = mk(Protocol::Sync);
    let asyn = mk(Protocol::Async);
    assert_ne!(
        sync.final_loss, asyn.final_loss,
        "stale reads change the trajectory"
    );
    // both still make progress from ln(2)
    assert!(sync.final_loss < 0.69);
    assert!(asyn.final_loss < 0.69);
}

#[test]
fn memcached_startup_dominates_short_jobs() {
    // §4.3: Memcached is faster per round but its node boot loses short
    // jobs; S3 wins end-to-end on quick-converging LR.
    let wl = workload();
    let mk = |channel| {
        let cfg = JobConfig::new(
            4,
            Algorithm::Admm {
                rho: 0.1,
                local_scans: 2,
                batch: 50,
            },
            0.3,
            StopSpec::new(0.68, 10),
        )
        .with_backend(Backend::Faas {
            spec: LambdaSpec::gb3(),
            channel,
            pattern: Pattern::AllReduce,
            protocol: Protocol::Sync,
        });
        TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
            .run()
            .unwrap()
    };
    let s3 = mk(ChannelKind::S3);
    let mc = mk(ChannelKind::Memcached(CacheNode::T3Medium));
    assert!(
        mc.breakdown.comm < s3.breakdown.comm,
        "Memcached rounds are faster"
    );
    assert!(
        mc.runtime() > s3.runtime(),
        "but the node boot loses the job"
    );
}
