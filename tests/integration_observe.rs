//! Integration tests of the observability layer through the public
//! `lambdaml` surface: byte-stable trace JSON across same-seed runs,
//! record-for-record reconciliation between the observer streams and the
//! `FleetMetrics` rollup, and the behavioral-inertness contract — a
//! `NullObserver` (or any gauge-free observer) leaves the metrics bytes
//! identical to the unobserved simulator.

use lambdaml::fleet::{
    simulate, simulate_observed, ArrivalProcess, CheckpointPolicy, DeadlineAware, Decision,
    FleetConfig, FleetMetrics, JobLifecycle, JobMix, NullObserver, PlatformEvent,
    RecordingObserver, TenantSpec, ThroughputProbe, Trace,
};
use lambdaml::sim::SimTime;

/// The example's workload, shrunk: a bursty three-tenant fleet under
/// deadline-aware scheduling with checkpointed spot recovery, a hostile
/// spot market, and a budget-capped tenant priced per job — so lifecycle
/// transitions, spot reclaims, checkpoint writes/restores, deferrals, and
/// rejections all appear in one trace.
fn testbed(seed: u64) -> (Trace, FleetConfig) {
    let spec = TenantSpec {
        n_tenants: 3,
        deadline_frac: 0.5,
        deadline_slack: 4.0,
    };
    let trace = Trace::generate_multi(
        ArrivalProcess::Burst {
            base_rate: 0.05,
            burst_rate: 0.8,
            period: 1_200.0,
            duty: 0.3,
        },
        &JobMix::default_mix(),
        &spec,
        250,
        seed,
    )
    .with_budget(0, 0.02);
    let mut cfg = FleetConfig {
        budget_window: Some(SimTime::hours(1.0)),
        deadline_miss_cost: 4.0,
        ..FleetConfig::default()
    };
    cfg.spot.mean_time_to_preempt = SimTime::secs(1_800.0);
    cfg.checkpoint = CheckpointPolicy::every(1);
    (trace, cfg)
}

fn scheduler(cfg: &FleetConfig) -> DeadlineAware {
    DeadlineAware::for_config(cfg)
        .with_spot_fraction(0.6)
        .with_spot_recovery(cfg.checkpoint)
}

fn recorded_run(seed: u64) -> (FleetMetrics, RecordingObserver) {
    let (trace, cfg) = testbed(seed);
    let mut sched = scheduler(&cfg);
    let mut obs = RecordingObserver::new().with_gauge_period(SimTime::secs(600.0));
    let m = simulate_observed(&trace, &cfg, &mut sched, seed, &mut obs);
    (m, obs)
}

#[test]
fn trace_json_is_byte_stable_across_same_seed_runs() {
    let (m1, obs1) = recorded_run(42);
    let (m2, obs2) = recorded_run(42);
    assert_eq!(obs1.to_json(), obs2.to_json(), "trace JSON drifted");
    assert_eq!(
        obs1.to_chrome_trace(),
        obs2.to_chrome_trace(),
        "chrome trace drifted"
    );
    assert_eq!(m1.to_json(), m2.to_json(), "metrics drifted");
    assert!(obs1
        .to_json()
        .starts_with(r#"{"schema":"lml-fleet/trace/v1""#));
    assert!(!obs1.gauges.is_empty(), "the gauge clock sampled");
}

#[test]
fn observer_streams_reconcile_with_metrics_record_for_record() {
    let (m, obs) = recorded_run(42);
    // The premise: the workload exercises every stream.
    assert!(m.preemptions > 0 && m.resumes > 0, "spot recovery fired");
    assert!(m.deferred_jobs > 0 && m.rejected_jobs > 0, "pricing fired");

    // Preemptions: one validated `Preempted` transition and one
    // `SpotReclaim` platform event per market strike.
    let preempted = obs
        .events
        .iter()
        .filter(|e| matches!(e.to, JobLifecycle::Preempted { .. }))
        .count() as u64;
    let reclaims = obs
        .platform
        .iter()
        .filter(|(_, ev)| matches!(ev, PlatformEvent::SpotReclaim { .. }))
        .count() as u64;
    assert_eq!(preempted, m.preemptions);
    assert_eq!(reclaims, m.preemptions);

    // Resumes: one `CheckpointRestore` per checkpointed restart.
    let restores = obs
        .platform
        .iter()
        .filter(|(_, ev)| matches!(ev, PlatformEvent::CheckpointRestore { .. }))
        .count() as u64;
    assert_eq!(restores, m.resumes);

    // Checkpoint writes: the platform events carry per-attempt write
    // counts; their sum is the rollup's total.
    let writes: u64 = obs
        .platform
        .iter()
        .map(|(_, ev)| match ev {
            PlatformEvent::CheckpointWrite { writes, .. } => *writes as u64,
            _ => 0,
        })
        .sum();
    assert_eq!(writes, m.checkpoint_writes);

    // Admission audit: one Defer decision per deferred job (re-deferrals
    // at later boundaries hold the job without a new transition), one
    // Reject per rejected job, and a terminal `Done` or `Rejected`
    // transition per job.
    let defers = obs
        .decisions
        .iter()
        .filter(|d| matches!(d.decision, Decision::Defer { .. }))
        .count();
    let rejects = obs
        .decisions
        .iter()
        .filter(|d| matches!(d.decision, Decision::Reject { .. }))
        .count();
    assert_eq!(defers, m.deferred_jobs);
    assert_eq!(rejects, m.rejected_jobs);
    let done = obs
        .events
        .iter()
        .filter(|e| e.to == JobLifecycle::Done)
        .count();
    let rejected = obs
        .events
        .iter()
        .filter(|e| e.to == JobLifecycle::Rejected)
        .count();
    assert_eq!(done, m.n_jobs - m.rejected_jobs);
    assert_eq!(rejected, m.rejected_jobs);

    // Span timings re-sum to the JobRecord columns exactly (same f64
    // operations, same bits) — the invariant the Chrome export rides on.
    for (job, queue, startup, run) in obs.span_timings() {
        let rec = m.records.iter().find(|r| r.id == job).unwrap();
        assert_eq!(queue, rec.queue.as_secs());
        assert_eq!(startup, rec.startup.as_secs());
        assert_eq!(run, rec.run.as_secs());
    }
}

#[test]
fn null_observer_is_behaviorally_inert() {
    let (trace, cfg) = testbed(42);
    // The unobserved simulator…
    let mut sched = scheduler(&cfg);
    let plain = simulate(&trace, &cfg, &mut sched, 42).to_json();
    // …an explicit NullObserver…
    let mut sched = scheduler(&cfg);
    let nulled = simulate_observed(&trace, &cfg, &mut sched, 42, &mut NullObserver).to_json();
    assert_eq!(plain, nulled, "NullObserver changed the metrics bytes");
    // …and even active observers, as long as they leave the gauge clock
    // unarmed (no events enter the queue, nothing the sim reads mutates).
    let mut sched = scheduler(&cfg);
    let mut recording = RecordingObserver::new();
    let recorded = simulate_observed(&trace, &cfg, &mut sched, 42, &mut recording).to_json();
    assert_eq!(plain, recorded, "gauge-free recording changed the metrics");
    let mut sched = scheduler(&cfg);
    let mut probe = ThroughputProbe::new();
    let probed = simulate_observed(&trace, &cfg, &mut sched, 42, &mut probe).to_json();
    assert_eq!(plain, probed, "ThroughputProbe changed the metrics");
    assert!(probe.heap_pops > 0 && probe.heap_pushes >= probe.heap_pops);
}
