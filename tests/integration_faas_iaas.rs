//! End-to-end integration: FaaS and IaaS jobs over the full stack,
//! checking the paper's headline shapes (§5.2).

use lambdaml::prelude::*;

fn higgs_workload() -> Workload {
    let bundle = DatasetId::Higgs.generate_rows(10_000, 42);
    Workload::from_generated(&bundle, 42)
}

/// Scaled batch matching the paper's B=10K on the 10K-row sample
/// (spec-scale conversion: 10K × sample/paper).
fn scaled_batch(wl: &Workload, paper_batch: usize) -> usize {
    ((paper_batch as f64 * wl.spec.sample_instances as f64 / wl.spec.paper_instances as f64).round()
        as usize)
        .max(1)
}

#[test]
fn faas_lr_higgs_admm_converges_and_reports() {
    let wl = higgs_workload();
    let cfg = JobConfig::new(
        10,
        Algorithm::Admm {
            rho: 0.1,
            local_scans: 2,
            batch: scaled_batch(&wl, 100_000),
        },
        0.3,
        StopSpec::new(0.68, 30),
    );
    let r = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
        .run()
        .unwrap();
    assert!(r.converged, "final loss {}", r.final_loss);
    assert!(r.final_loss <= 0.68);
    assert!(r.runtime().as_secs() > 0.0);
    assert!(r.dollars().as_usd() > 0.0);
    assert!(
        r.breakdown.startup.as_secs() < 5.0,
        "FaaS startup is seconds: {}",
        r.breakdown.startup
    );
    assert!(!r.curve.is_empty());
}

#[test]
fn iaas_startup_dominates_fast_jobs_figure10() {
    let wl = higgs_workload();
    let algo = Algorithm::Admm {
        rho: 0.1,
        local_scans: 2,
        batch: scaled_batch(&wl, 100_000),
    };
    let faas = JobConfig::new(10, algo, 0.3, StopSpec::new(0.68, 30));
    let iaas = faas.with_backend(Backend::iaas_default());
    let rf = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, faas)
        .run()
        .unwrap();
    let ri = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, iaas)
        .run()
        .unwrap();
    assert!(ri.converged && rf.converged);
    // §5.2: FaaS end-to-end faster because IaaS pays >2 min of cluster boot.
    assert!(ri.breakdown.startup.as_secs() > 100.0);
    assert!(
        rf.runtime() < ri.runtime(),
        "FaaS {} vs IaaS {}",
        rf.runtime(),
        ri.runtime()
    );
    // ...but not proportionally cheaper (the paper's second insight).
    assert!(
        rf.dollars().as_usd() > ri.dollars().as_usd() * 0.3,
        "FaaS {} vs IaaS {}",
        rf.dollars(),
        ri.dollars()
    );
}

#[test]
fn deterministic_given_seed() {
    let wl = higgs_workload();
    let cfg = JobConfig::new(
        4,
        Algorithm::GaSgd { batch: 100 },
        0.5,
        StopSpec::new(0.68, 5),
    );
    let a = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
        .run()
        .unwrap();
    let b = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
        .run()
        .unwrap();
    assert_eq!(a.final_loss, b.final_loss);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.runtime().as_secs(), b.runtime().as_secs());
    assert_eq!(a.dollars().as_usd(), b.dollars().as_usd());
}

#[test]
fn hybrid_ps_runs_lr_higgs() {
    let wl = higgs_workload();
    let cfg = JobConfig::new(
        10,
        Algorithm::GaSgd {
            batch: scaled_batch(&wl, 100_000),
        },
        0.5,
        StopSpec::new(0.68, 10),
    )
    .with_backend(Backend::hybrid_default());
    let r = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
        .run()
        .unwrap();
    assert!(r.rounds > 0);
    assert!(r.cost.nodes.as_usd() > 0.0, "PS VM bills by the hour");
    // hybrid startup ≈ one VM boot (~120 s), not a full cluster
    assert!((100.0..150.0).contains(&r.breakdown.startup.as_secs()));
}

#[test]
fn single_machine_cost_baseline() {
    let wl = higgs_workload();
    let cfg = JobConfig::new(
        1,
        Algorithm::Admm {
            rho: 0.1,
            local_scans: 2,
            batch: scaled_batch(&wl, 100_000),
        },
        0.3,
        StopSpec::new(0.68, 30),
    )
    .with_backend(Backend::Single {
        instance: InstanceType::T2XLarge2,
    });
    let single = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, cfg)
        .run()
        .unwrap();
    assert!(single.converged);

    // §5.1.1 COST check: 10 workers beat 1 machine in wall time.
    let ten = cfg.with_backend(Backend::iaas_default());
    let ten = JobConfig { workers: 10, ..ten };
    let dist = TrainingJob::new(&wl, ModelId::Lr { l2: 0.0 }, ten)
        .run()
        .unwrap();
    assert!(
        dist.breakdown.total_without_startup() < single.breakdown.total_without_startup(),
        "distributed {} vs single {}",
        dist.breakdown.total_without_startup(),
        single.breakdown.total_without_startup()
    );
}

#[test]
fn dynamodb_rejects_mobilenet_table1() {
    let bundle = DatasetId::Cifar10.generate_rows(6_000, 42);
    let wl = Workload::from_generated(&bundle, 42);
    let cfg = JobConfig::new(
        4,
        Algorithm::GaSgd { batch: 13 },
        0.05,
        StopSpec::new(0.2, 1),
    )
    .with_backend(Backend::Faas {
        spec: LambdaSpec::gb3(),
        channel: ChannelKind::DynamoDb,
        pattern: Pattern::AllReduce,
        protocol: Protocol::Sync,
    });
    match TrainingJob::new(&wl, ModelId::MobileNet, cfg).run() {
        Err(JobError::Storage(e)) => {
            assert!(e.to_string().contains("exceeds"), "{e}");
        }
        other => panic!("expected ItemTooLarge, got {other:?}"),
    }
}

#[test]
fn resnet50_batch64_hits_lambda_memory_limit() {
    let bundle = DatasetId::Cifar10.generate_rows(6_000, 42);
    let wl = Workload::from_generated(&bundle, 42);
    // paper batch 64 → scaled by 6 000/60 000 = 0.1; the memory check
    // converts back to the paper-scale batch.
    let scaled = ((64.0 * wl.spec.sample_instances as f64 / 60_000.0).round() as usize).max(1);
    let mk = |batch| JobConfig::new(4, Algorithm::GaSgd { batch }, 0.05, StopSpec::new(0.4, 1));
    match TrainingJob::new(&wl, ModelId::ResNet50, mk(scaled)).run() {
        Err(JobError::Faas(e)) => assert!(e.to_string().contains("limited"), "{e}"),
        other => panic!(
            "expected OOM at batch 64, got {:?}",
            other.map(|r| r.summary())
        ),
    }
    // batch 32 fits (§5.2)
    let ok = TrainingJob::new(&wl, ModelId::ResNet50, mk((scaled / 2).max(1))).run();
    assert!(ok.is_ok(), "{ok:?}");
}
