//! Integration tests of checkpoint-aware spot recovery and tenant budget
//! caps, exercised through the public `lambdaml` surface: determinism,
//! the lost-work monotonicity guarantee, and resume-vs-restart cost
//! sanity on a spot-heavy sweep.

use lambdaml::fleet::lifecycle::CheckpointPolicy;
use lambdaml::fleet::{
    simulate, ArrivalProcess, CostAware, DeadlineAware, FairShare, FleetConfig, FleetMetrics,
    JobMix, TenantSpec, Trace,
};
use lambdaml::sim::SimTime;

/// A spot-heavy fleet on an aggressive market: the recovery sweep's
/// hardest cell.
fn spot_heavy(policy: CheckpointPolicy, mttp_secs: f64, seed: u64) -> FleetMetrics {
    let trace = Trace::generate(
        ArrivalProcess::Poisson { rate: 0.4 },
        &JobMix::default_mix(),
        200,
        seed,
    );
    let mut cfg = FleetConfig::default();
    cfg.spot.mean_time_to_preempt = SimTime::secs(mttp_secs);
    cfg.checkpoint = policy;
    let mut sched = FairShare::for_config(&cfg).with_spot_fraction(1.0);
    simulate(&trace, &cfg, &mut sched, seed)
}

/// Same seed → byte-identical JSON, with checkpoint recovery in the loop.
#[test]
fn recovery_runs_are_deterministic() {
    for policy in [CheckpointPolicy::every(2), CheckpointPolicy::Adaptive] {
        let a = spot_heavy(policy, 900.0, 7).to_json();
        let b = spot_heavy(policy, 900.0, 7).to_json();
        assert_eq!(
            a,
            b,
            "{}: same seed must give the same bytes",
            policy.name()
        );
        let c = spot_heavy(policy, 900.0, 8).to_json();
        assert_ne!(a, c, "{}: different seeds must differ", policy.name());
    }
}

/// The acceptance criterion: at the same seed and spot fraction, every
/// checkpointing policy yields strictly lower lost-work-seconds than
/// `Never` — and all jobs still finish.
#[test]
fn every_checkpoint_policy_strictly_beats_never_on_lost_work() {
    for mttp in [900.0, 3_600.0] {
        let never = spot_heavy(CheckpointPolicy::Never, mttp, 11);
        assert!(never.preemptions > 0, "premise: the market must bite");
        assert!(never.lost_work.as_secs() > 0.0);
        for policy in [
            CheckpointPolicy::every(1),
            CheckpointPolicy::every(4),
            CheckpointPolicy::Adaptive,
        ] {
            let m = spot_heavy(policy, mttp, 11);
            assert_eq!(m.n_jobs, 200, "{}: all jobs complete", policy.name());
            assert!(
                m.lost_work < never.lost_work,
                "{} at mttp {mttp}: lost {} must be strictly below never's {}",
                policy.name(),
                m.lost_work,
                never.lost_work
            );
            assert!(
                m.resumes > 0,
                "{}: recovery must actually resume",
                policy.name()
            );
            assert!(m.checkpoint_writes > 0);
            assert!(m.checkpoint_cost.as_usd() > 0.0);
        }
    }
}

/// Monotonicity: more frequent checkpoints never increase lost work.
/// Structural along a divisibility chain (1 | 2 | 4 | never): preemption
/// clocks are a pure function of (seed, job, attempt), checkpoint uploads
/// are asynchronous, and a finer interval's durable epochs are a superset
/// of a coarser one's at every strike time.
#[test]
fn finer_checkpoint_intervals_never_lose_more_work() {
    for seed in [3, 11, 29] {
        let chain = [
            CheckpointPolicy::every(1),
            CheckpointPolicy::every(2),
            CheckpointPolicy::every(4),
            CheckpointPolicy::Never,
        ];
        let lost: Vec<SimTime> = chain
            .iter()
            .map(|&p| spot_heavy(p, 900.0, seed).lost_work)
            .collect();
        for (i, w) in lost.windows(2).enumerate() {
            assert!(
                w[0] <= w[1],
                "seed {seed}: {} lost {} but coarser {} lost {}",
                chain[i].name(),
                w[0],
                chain[i + 1].name(),
                w[1]
            );
        }
    }
}

/// Resume-vs-restart cost sanity: on the spot-heavy sweep, resuming from
/// checkpoints re-buys fewer instance-seconds than restarting from
/// scratch, so the total bill (including the checkpoint traffic itself)
/// never exceeds `Never`'s, and the spot bill strictly shrinks.
#[test]
fn resuming_is_cheaper_than_restarting() {
    let never = spot_heavy(CheckpointPolicy::Never, 900.0, 19);
    for policy in [CheckpointPolicy::every(1), CheckpointPolicy::Adaptive] {
        let m = spot_heavy(policy, 900.0, 19);
        assert!(
            m.spot_cost.as_usd() < never.spot_cost.as_usd(),
            "{}: spot bill {} must undercut never's {}",
            policy.name(),
            m.spot_cost,
            never.spot_cost
        );
        assert!(
            m.total_cost().as_usd() <= never.total_cost().as_usd(),
            "{}: total {} vs never {}",
            policy.name(),
            m.total_cost(),
            never.total_cost()
        );
        // The saving is real compute, not an accounting artifact: the
        // per-job latency components still tile submit → finish.
        for r in &m.records {
            assert!(
                (r.finish() - r.submit - r.latency()).as_secs().abs() < 1e-6,
                "job {}: latency components must tile",
                r.id
            );
        }
    }
}

/// Deadline jobs trusted to spot under recovery still hit their deadlines
/// at a healthy rate — the scheduler only risks slack-rich jobs.
#[test]
fn spot_recovery_keeps_deadline_hit_rate_healthy() {
    let spec = TenantSpec {
        n_tenants: 2,
        deadline_frac: 0.5,
        deadline_slack: 6.0,
    };
    let trace = Trace::generate_multi(
        ArrivalProcess::Poisson { rate: 0.3 },
        &JobMix::convex_mix(),
        &spec,
        200,
        23,
    );
    let mut cfg = FleetConfig::default();
    cfg.spot.mean_time_to_preempt = SimTime::secs(2_000.0);
    cfg.checkpoint = CheckpointPolicy::every(1);
    let mut sched = DeadlineAware::for_config(&cfg)
        .with_spot_fraction(1.0)
        .with_spot_recovery(cfg.checkpoint);
    let m = simulate(&trace, &cfg, &mut sched, 23);
    assert!(
        m.jobs_on_spot > 0,
        "recovery must unlock spot for some jobs"
    );
    assert!(
        m.deadline_hit_rate() > 0.9,
        "hit rate {} with recovery-backed spot routing",
        m.deadline_hit_rate()
    );
}

/// Budget caps through the public surface: the capped tenant's tail is
/// rejected, the other tenant is untouched, and the v3 trace text
/// round-trips the budgets byte-for-byte.
#[test]
fn tenant_budget_caps_reject_the_overspending_tail() {
    let spec = TenantSpec {
        n_tenants: 2,
        deadline_frac: 0.0,
        deadline_slack: 3.0,
    };
    let base = Trace::generate_multi(
        ArrivalProcess::Poisson { rate: 0.5 },
        &JobMix::convex_mix(),
        &spec,
        300,
        31,
    );
    let cfg = FleetConfig::default();
    let uncapped = simulate(&base, &cfg, &mut CostAware::for_config(&cfg), 31);
    assert_eq!(uncapped.rejected_jobs, 0, "no budgets, no rejections");

    let capped_trace = base.clone().with_budget(0, 0.02);
    let capped = simulate(&capped_trace, &cfg, &mut CostAware::for_config(&cfg), 31);
    assert!(capped.rejected_jobs > 0, "the cap must bite");
    let rows = capped.per_tenant();
    let t0 = rows.iter().find(|t| t.tenant == 0).unwrap();
    let t1 = rows.iter().find(|t| t.tenant == 1).unwrap();
    assert!(t0.rejected > 0, "tenant 0 loses its tail");
    assert_eq!(t1.rejected, 0, "tenant 1 is untouched");
    assert_eq!(
        capped.rejected_jobs, t0.rejected,
        "rollup and per-tenant counts agree"
    );
    // Rejected jobs never ran: they carry no cost and no latency.
    for r in capped.records.iter().filter(|r| r.rejected) {
        assert_eq!(r.cost.as_usd(), 0.0);
        assert_eq!(r.latency(), SimTime::ZERO);
        assert_eq!(r.tenant, 0);
    }
    // v3 text round-trip preserves the cap and replays identically.
    let replayed = Trace::from_text(&capped_trace.to_text()).expect("v3 parses");
    assert_eq!(replayed, capped_trace);
    let again = simulate(&replayed, &cfg, &mut CostAware::for_config(&cfg), 31);
    assert_eq!(again.to_json(), capped.to_json());
}
