//! Property-based tests (proptest) on the core invariants: communication
//! patterns must aggregate exactly, the simulator's accounting must be
//! conservative, and serialization must round-trip.

use lambdaml::comm::patterns::{chunk_ranges, reduce, Pattern};
use lambdaml::data::libsvm;
use lambdaml::faas::LifetimeManager;
use lambdaml::linalg::SparseVec;
use lambdaml::sim::{ByteSize, FifoResource, PiecewiseLinear, SimTime};
use lambdaml::storage::{ServiceProfile, StorageChannel};
use proptest::prelude::*;

fn reference_sum(stats: &[Vec<f64>]) -> Vec<f64> {
    let mut out = vec![0.0; stats[0].len()];
    for s in stats {
        for (o, v) in out.iter_mut().zip(s) {
            *o += v;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both patterns compute the exact element-wise sum for any worker
    /// count, vector length and values.
    #[test]
    fn patterns_aggregate_exactly(
        w in 1usize..12,
        len in 1usize..200,
        seed in 0u64..1_000,
    ) {
        let mut rng = lambdaml::sim::Pcg64::new(seed);
        let stats: Vec<Vec<f64>> =
            (0..w).map(|_| (0..len).map(|_| rng.normal()).collect()).collect();
        let expect = reference_sum(&stats);
        for pattern in [Pattern::AllReduce, Pattern::ScatterReduce] {
            let mut ch = StorageChannel::new(ServiceProfile::s3());
            let out = reduce(&mut ch, pattern, "p", &stats, ByteSize::of_f64s(len)).unwrap();
            for (a, b) in out.aggregate.iter().zip(&expect) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "{pattern:?}: {a} vs {b}");
            }
            prop_assert!(out.duration.as_secs() > 0.0);
        }
    }

    /// Chunk ranges always partition [0, len) into w contiguous pieces
    /// whose sizes differ by at most one.
    #[test]
    fn chunk_ranges_partition(len in 0usize..10_000, w in 1usize..64) {
        let r = chunk_ranges(len, w);
        prop_assert_eq!(r.len(), w);
        prop_assert_eq!(r[0].0, 0);
        prop_assert_eq!(r[w - 1].1, len);
        let mut min_size = usize::MAX;
        let mut max_size = 0;
        for (i, &(lo, hi)) in r.iter().enumerate() {
            prop_assert!(lo <= hi);
            if i + 1 < w {
                prop_assert_eq!(hi, r[i + 1].0);
            }
            min_size = min_size.min(hi - lo);
            max_size = max_size.max(hi - lo);
        }
        prop_assert!(max_size - min_size <= 1);
    }

    /// LIBSVM serialization round-trips arbitrary sparse datasets.
    #[test]
    fn libsvm_roundtrip(
        rows in prop::collection::vec(
            (prop::collection::btree_map(0u32..500, -100i32..100, 1..20), -1i32..=1),
            1..20,
        )
    ) {
        let mut svs = Vec::new();
        let mut labels = Vec::new();
        for (m, y) in &rows {
            let pairs: Vec<(u32, f64)> =
                m.iter().map(|(&i, &v)| (i, f64::from(v) / 4.0)).collect();
            svs.push(SparseVec::from_pairs(pairs));
            labels.push(f64::from(*y));
        }
        let ds = lambdaml::data::Dataset::Sparse(
            lambdaml::data::SparseDataset::new(svs, labels, 500));
        let text = libsvm::write(&ds);
        let back = libsvm::parse_sparse(&text, 500).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert_eq!(back.label(i), ds.label(i));
            if let lambdaml::data::Row::Sparse(orig) = ds.row(i) {
                prop_assert_eq!(back.row(i).indices(), orig.indices());
                for (a, b) in back.row(i).values().iter().zip(orig.values()) {
                    prop_assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    /// Piecewise-linear interpolation is exact at knots and bounded by the
    /// knot values inside each segment.
    #[test]
    fn piecewise_linear_interpolates(
        mut ys in prop::collection::vec(0.0f64..1_000.0, 2..8),
        t in 0.0f64..1.0,
    ) {
        let knots: Vec<(f64, f64)> =
            ys.drain(..).enumerate().map(|(i, y)| (i as f64, y)).collect();
        let pl = PiecewiseLinear::new(knots.clone());
        for &(x, y) in &knots {
            prop_assert!((pl.eval(x) - y).abs() < 1e-9);
        }
        // inside segment [0, 1]
        let v = pl.eval(t);
        let (lo, hi) = (knots[0].1.min(knots[1].1), knots[0].1.max(knots[1].1));
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// A FIFO resource never finishes an op before `arrival + service` and
    /// total throughput never exceeds aggregate bandwidth.
    #[test]
    fn fifo_resource_is_conservative(
        ops in prop::collection::vec((0.0f64..100.0, 1u64..50_000_000), 1..30),
        parallelism in 1usize..8,
    ) {
        let bw = 100e6;
        let mut r = FifoResource::new(bw, 0.0, parallelism);
        let mut total_bytes = 0u64;
        let mut max_finish: f64 = 0.0;
        let mut min_arrival = f64::INFINITY;
        for &(arrival, bytes) in &ops {
            let done = r.submit(SimTime::secs(arrival), ByteSize::bytes(bytes));
            let service = bytes as f64 / (bw / parallelism as f64);
            prop_assert!(done.as_secs() >= arrival + service - 1e-9);
            total_bytes += bytes;
            max_finish = max_finish.max(done.as_secs());
            min_arrival = min_arrival.min(arrival);
        }
        // Conservation: you cannot move N bytes faster than N/bandwidth.
        prop_assert!(max_finish - min_arrival >= total_bytes as f64 / bw - 1e-6);
    }

    /// The lifetime manager's wall time always covers the work charged, and
    /// re-invocations match the number of 870 s boundaries crossed.
    #[test]
    fn lifetime_wall_covers_work(work_segments in prop::collection::vec(0.1f64..400.0, 1..60)) {
        let mut lm = LifetimeManager::with_overhead(SimTime::secs(3.0));
        let mut wall = 0.0;
        let mut work = 0.0;
        for &seg in &work_segments {
            wall += lm.charge(SimTime::secs(seg)).as_secs();
            work += seg;
        }
        prop_assert!(wall >= work - 1e-9);
        let expected_rollovers = (work / 870.0).floor() as u32;
        prop_assert!(lm.reinvocations() >= expected_rollovers);
        prop_assert!(lm.reinvocations() <= expected_rollovers + 1);
    }

    /// KMeans sufficient statistics are additive across any split of the
    /// rows — the invariant that makes EM distributable.
    #[test]
    fn kmeans_stats_additive(split in 1usize..199, seed in 0u64..100) {
        let data = lambdaml::data::generators::DatasetId::Higgs
            .generate_rows(200, seed).data;
        let km = lambdaml::models::KMeans::init_from_data(&data, 4, seed);
        let rows: Vec<usize> = (0..200).collect();
        let full = km.sufficient_stats(&data, &rows);
        let a = km.sufficient_stats(&data, &rows[..split]);
        let b = km.sufficient_stats(&data, &rows[split..]);
        for i in 0..full.len() {
            prop_assert!((full[i] - (a[i] + b[i])).abs() < 1e-9);
        }
    }
}
