//! Property-based tests on the core invariants: communication patterns must
//! aggregate exactly, the simulator's accounting must be conservative,
//! serialization must round-trip, and the event queue must be a stable
//! priority queue.
//!
//! The harness is hand-rolled: `proptest` is not vendored in this offline
//! build, so each property draws its random cases from the repository's own
//! deterministic [`Pcg64`] stream. Failures print the case seed, which
//! reproduces the exact inputs.

use lambdaml::comm::patterns::{chunk_ranges, reduce, Pattern};
use lambdaml::data::libsvm;
use lambdaml::faas::LifetimeManager;
use lambdaml::linalg::SparseVec;
use lambdaml::sim::{ByteSize, EventQueue, FifoResource, Pcg64, PiecewiseLinear, SimTime};
use lambdaml::storage::{ServiceProfile, StorageChannel};

/// Number of random cases per property.
const CASES: u64 = 64;

/// Deterministic per-case RNGs: case `i` of property `tag` always sees the
/// same stream.
fn cases(tag: u64) -> impl Iterator<Item = (u64, Pcg64)> {
    (0..CASES).map(move |i| {
        let seed = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i;
        (seed, Pcg64::new(seed))
    })
}

fn reference_sum(stats: &[Vec<f64>]) -> Vec<f64> {
    let mut out = vec![0.0; stats[0].len()];
    for s in stats {
        for (o, v) in out.iter_mut().zip(s) {
            *o += v;
        }
    }
    out
}

/// Both patterns compute the exact element-wise sum for any worker count,
/// vector length and values.
#[test]
fn patterns_aggregate_exactly() {
    for (seed, mut rng) in cases(1) {
        let w = 1 + rng.index(11);
        let len = 1 + rng.index(199);
        let stats: Vec<Vec<f64>> = (0..w)
            .map(|_| (0..len).map(|_| rng.normal()).collect())
            .collect();
        let expect = reference_sum(&stats);
        for pattern in [Pattern::AllReduce, Pattern::ScatterReduce] {
            let mut ch = StorageChannel::new(ServiceProfile::s3());
            let out = reduce(&mut ch, pattern, "p", &stats, ByteSize::of_f64s(len)).unwrap();
            for (a, b) in out.aggregate.iter().zip(&expect) {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "case {seed}: {pattern:?}: {a} vs {b}"
                );
            }
            assert!(out.duration.as_secs() > 0.0, "case {seed}");
        }
    }
}

/// Chunk ranges always partition [0, len) into w contiguous pieces whose
/// sizes differ by at most one.
#[test]
fn chunk_ranges_partition() {
    for (seed, mut rng) in cases(2) {
        let len = rng.index(10_000);
        let w = 1 + rng.index(63);
        let r = chunk_ranges(len, w);
        assert_eq!(r.len(), w, "case {seed}");
        assert_eq!(r[0].0, 0, "case {seed}");
        assert_eq!(r[w - 1].1, len, "case {seed}");
        let mut min_size = usize::MAX;
        let mut max_size = 0;
        for (i, &(lo, hi)) in r.iter().enumerate() {
            assert!(lo <= hi, "case {seed}");
            if i + 1 < w {
                assert_eq!(hi, r[i + 1].0, "case {seed}");
            }
            min_size = min_size.min(hi - lo);
            max_size = max_size.max(hi - lo);
        }
        assert!(max_size - min_size <= 1, "case {seed}");
    }
}

/// LIBSVM serialization round-trips arbitrary sparse datasets.
#[test]
fn libsvm_roundtrip() {
    const DIM: usize = 500;
    for (seed, mut rng) in cases(3) {
        let n_rows = 1 + rng.index(19);
        let mut svs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n_rows {
            let nnz = 1 + rng.index(19);
            let mut idx = rng.sample_indices(DIM, nnz);
            idx.sort_unstable();
            let pairs: Vec<(u32, f64)> = idx
                .into_iter()
                .map(|i| (i as u32, (rng.index(200) as f64 - 100.0) / 4.0))
                .collect();
            svs.push(SparseVec::from_pairs(pairs));
            labels.push(rng.index(3) as f64 - 1.0);
        }
        let ds =
            lambdaml::data::Dataset::Sparse(lambdaml::data::SparseDataset::new(svs, labels, DIM));
        let text = libsvm::write(&ds);
        let back = libsvm::parse_sparse(&text, DIM).unwrap();
        assert_eq!(back.len(), ds.len(), "case {seed}");
        for i in 0..ds.len() {
            assert_eq!(back.label(i), ds.label(i), "case {seed}");
            if let lambdaml::data::Row::Sparse(orig) = ds.row(i) {
                assert_eq!(back.row(i).indices(), orig.indices(), "case {seed}");
                for (a, b) in back.row(i).values().iter().zip(orig.values()) {
                    assert!((a - b).abs() < 1e-12, "case {seed}: {a} vs {b}");
                }
            }
        }
    }
}

/// Piecewise-linear interpolation is exact at knots and bounded by the knot
/// values inside each segment.
#[test]
fn piecewise_linear_interpolates() {
    for (seed, mut rng) in cases(4) {
        let n_knots = 2 + rng.index(6);
        let knots: Vec<(f64, f64)> = (0..n_knots)
            .map(|i| (i as f64, rng.range(0.0, 1_000.0)))
            .collect();
        let t = rng.uniform();
        let pl = PiecewiseLinear::new(knots.clone());
        for &(x, y) in &knots {
            assert!(
                (pl.eval(x) - y).abs() < 1e-9,
                "case {seed}: knot ({x}, {y})"
            );
        }
        // inside segment [0, 1]
        let v = pl.eval(t);
        let (lo, hi) = (knots[0].1.min(knots[1].1), knots[0].1.max(knots[1].1));
        assert!(
            v >= lo - 1e-9 && v <= hi + 1e-9,
            "case {seed}: {v} outside [{lo}, {hi}]"
        );
    }
}

/// A FIFO resource never finishes an op before `arrival + service` and total
/// throughput never exceeds aggregate bandwidth.
#[test]
fn fifo_resource_is_conservative() {
    for (seed, mut rng) in cases(5) {
        let n_ops = 1 + rng.index(29);
        let parallelism = 1 + rng.index(7);
        let ops: Vec<(f64, u64)> = (0..n_ops)
            .map(|_| (rng.range(0.0, 100.0), 1 + rng.below(50_000_000)))
            .collect();
        let bw = 100e6;
        let mut r = FifoResource::new(bw, 0.0, parallelism);
        let mut total_bytes = 0u64;
        let mut max_finish: f64 = 0.0;
        let mut min_arrival = f64::INFINITY;
        for &(arrival, bytes) in &ops {
            let done = r.submit(SimTime::secs(arrival), ByteSize::bytes(bytes));
            let service = bytes as f64 / (bw / parallelism as f64);
            assert!(done.as_secs() >= arrival + service - 1e-9, "case {seed}");
            total_bytes += bytes;
            max_finish = max_finish.max(done.as_secs());
            min_arrival = min_arrival.min(arrival);
        }
        // Conservation: you cannot move N bytes faster than N/bandwidth.
        assert!(
            max_finish - min_arrival >= total_bytes as f64 / bw - 1e-6,
            "case {seed}"
        );
    }
}

/// The lifetime manager's wall time always covers the work charged, and
/// re-invocations match the number of 870 s boundaries crossed.
#[test]
fn lifetime_wall_covers_work() {
    for (seed, mut rng) in cases(6) {
        let n_segs = 1 + rng.index(59);
        let mut lm = LifetimeManager::with_overhead(SimTime::secs(3.0));
        let mut wall = 0.0;
        let mut work = 0.0;
        for _ in 0..n_segs {
            let seg = rng.range(0.1, 400.0);
            wall += lm.charge(SimTime::secs(seg)).as_secs();
            work += seg;
        }
        assert!(wall >= work - 1e-9, "case {seed}");
        let expected_rollovers = (work / 870.0).floor() as u32;
        assert!(lm.reinvocations() >= expected_rollovers, "case {seed}");
        assert!(lm.reinvocations() <= expected_rollovers + 1, "case {seed}");
    }
}

/// KMeans sufficient statistics are additive across any split of the rows —
/// the invariant that makes EM distributable.
#[test]
fn kmeans_stats_additive() {
    for (seed, mut rng) in cases(7).take(16) {
        let split = 1 + rng.index(198);
        let data = lambdaml::data::generators::DatasetId::Higgs
            .generate_rows(200, seed)
            .data;
        let km = lambdaml::models::KMeans::init_from_data(&data, 4, seed);
        let rows: Vec<usize> = (0..200).collect();
        let full = km.sufficient_stats(&data, &rows);
        let a = km.sufficient_stats(&data, &rows[..split]);
        let b = km.sufficient_stats(&data, &rows[split..]);
        for i in 0..full.len() {
            assert!(
                (full[i] - (a[i] + b[i])).abs() < 1e-9,
                "case {seed}: stat {i}"
            );
        }
    }
}

/// The event queue pops in nondecreasing time order and breaks time ties in
/// insertion (FIFO) order, under arbitrary interleavings of push and pop —
/// i.e. it behaves exactly like a stable sort by time.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for (seed, mut rng) in cases(8) {
        let n_ops = 1 + rng.index(200);
        let mut q: EventQueue<u64> = EventQueue::new();
        // Model: the pending set as (time, insertion#) pairs.
        let mut pending: Vec<(f64, u64)> = Vec::new();
        let mut next_id = 0u64;
        let mut last_pop: Option<(f64, u64)> = None;
        for _ in 0..n_ops {
            // Draw times from a small grid so ties are frequent.
            if rng.coin(0.6) || q.is_empty() {
                let t = rng.index(8) as f64;
                q.push(SimTime::secs(t), next_id);
                pending.push((t, next_id));
                next_id += 1;
            } else {
                let (t, id) = q.pop().expect("non-empty");
                // The popped event must be the pending minimum by (time, id).
                let &(et, eid) = pending
                    .iter()
                    .min_by(|a, b| a.partial_cmp(b).unwrap())
                    .unwrap();
                assert_eq!((t.as_secs(), id), (et, eid), "case {seed}");
                pending.retain(|&(_, pid)| pid != eid);
                // Within one drain (no interleaved pushes) pops never go
                // back in time; FIFO ids guard the tie order.
                if let Some((lt, lid)) = last_pop {
                    if lt == et {
                        assert!(lid < eid, "case {seed}: FIFO violated at t={et}");
                    }
                }
                last_pop = Some((et, eid));
            }
        }
        // Drain the rest: must come out fully sorted by (time, insertion#).
        let mut drained = Vec::new();
        while let Some((t, id)) = q.pop() {
            drained.push((t.as_secs(), id));
        }
        let mut expect = pending.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(drained, expect, "case {seed}");
    }
}

/// Pushing a batch and draining is exactly a stable sort by time — the
/// earliest-first analogue of the seed's pair of unit tests, at random scale.
#[test]
fn event_queue_drain_matches_stable_sort() {
    for (seed, mut rng) in cases(9) {
        let n = 1 + rng.index(500);
        let mut q: EventQueue<usize> = EventQueue::new();
        let times: Vec<f64> = (0..n).map(|_| rng.index(16) as f64 * 0.25).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::secs(t), i);
        }
        let mut expect: Vec<(f64, usize)> = times
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        // Stable sort preserves insertion order among equal times.
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_secs(), i));
        }
        assert_eq!(got, expect, "case {seed}");
    }
}
