//! Integration tests of the fleet simulator, exercised through the public
//! `lambdaml` surface: determinism, fleet-level cold-start amortization,
//! and the cost sanity of the hybrid router.

use lambdaml::fleet::{
    simulate, AllFaas, AllIaas, ArrivalProcess, CostAware, DeadlineAware, FairShare, FleetConfig,
    FleetMetrics, JobClass, JobMix, JobRequest, Scheduler, TenantSpec, Trace,
};
use lambdaml::sim::SimTime;

fn poisson_trace(n: usize, rate: f64, seed: u64) -> Trace {
    Trace::generate(
        ArrivalProcess::Poisson { rate },
        &JobMix::default_mix(),
        n,
        seed,
    )
}

fn run(trace: &Trace, sched: &mut dyn Scheduler, seed: u64) -> FleetMetrics {
    simulate(trace, &FleetConfig::default(), sched, seed)
}

/// Same seed → identical trace AND identical metrics, byte for byte.
#[test]
fn determinism_same_seed_identical_json() {
    let one = |seed: u64| {
        let trace = poisson_trace(500, 0.5, seed);
        run(&trace, &mut CostAware::new(), seed).to_json()
    };
    assert_eq!(one(42), one(42));
    assert_ne!(one(42), one(43), "different seeds must differ");
}

/// The trace text format replays to the same simulation results.
#[test]
fn replayed_trace_reproduces_metrics() {
    let trace = poisson_trace(300, 0.4, 9);
    let replayed = Trace::from_text(&trace.to_text()).expect("parse own format");
    let a = run(&trace, &mut AllFaas, 9).to_json();
    let b = run(&replayed, &mut AllFaas, 9).to_json();
    assert_eq!(a, b);
}

/// Cold-start probability falls as traffic rises: the warm pool serves a
/// strictly larger share of workers at higher arrival rates.
#[test]
fn warm_hit_rate_increases_with_arrival_rate() {
    let rate_of = |rate: f64| {
        let trace = poisson_trace(400, rate, 17);
        run(&trace, &mut AllFaas, 17).warm_hit_rate
    };
    let trickle = rate_of(0.0003);
    let steady = rate_of(0.1);
    let heavy = rate_of(1.0);
    assert!(
        steady > trickle && heavy > trickle + 0.2,
        "warm-hit rate must rise with traffic: {trickle} / {steady} / {heavy}"
    );
}

/// The cost-aware hybrid never costs more than the worse pure policy, and
/// its tail latency never degrades past the worse pure policy either.
#[test]
fn hybrid_cost_and_latency_sanity() {
    for seed in [1, 7, 23] {
        let trace = poisson_trace(400, 0.5, seed);
        let faas = run(&trace, &mut AllFaas, seed);
        let iaas = run(&trace, &mut AllIaas, seed);
        let hybrid = run(&trace, &mut CostAware::new(), seed);
        let worse_cost = faas.total_cost().as_usd().max(iaas.total_cost().as_usd());
        assert!(
            hybrid.total_cost().as_usd() <= worse_cost * 1.001,
            "seed {seed}: hybrid {} vs worse pure {worse_cost}",
            hybrid.total_cost()
        );
        let worse_p99 = faas.latency.p99.max(iaas.latency.p99);
        assert!(
            hybrid.latency.p99 <= worse_p99 * 1.001,
            "seed {seed}: hybrid p99 {} vs worse pure {worse_p99}",
            hybrid.latency.p99
        );
    }
}

/// Queueing appears on the reserved pool under load and is visible in the
/// per-job breakdown; Lambda's elasticity keeps its own queue near zero
/// until the account concurrency limit bites.
#[test]
fn queueing_shows_up_where_the_paper_says() {
    let trace = poisson_trace(400, 0.8, 3);
    let iaas = run(&trace, &mut AllIaas, 3);
    assert!(
        iaas.queue.p99 > 60.0,
        "reserved pool must queue under load, p99 {}",
        iaas.queue.p99
    );
    // Deep jobs camp on workers for hours, so even Lambda's account limit
    // saturates on the default mix — but a convex-only fleet at the same
    // rate stays comfortably inside it and never queues at the median.
    let convex = Trace::generate(
        ArrivalProcess::Poisson { rate: 0.8 },
        &JobMix::convex_mix(),
        400,
        3,
    );
    let faas = run(&convex, &mut AllFaas, 3);
    assert!(
        faas.queue.p50 == 0.0,
        "Lambda should rarely queue below the concurrency limit, p50 {}",
        faas.queue.p50
    );
}

/// Deep communication-heavy jobs route serverful, tiny convex jobs are
/// allowed on Lambda — the §5.2 findings as routing behaviour.
#[test]
fn hybrid_routes_by_workload_shape() {
    let trace = poisson_trace(600, 0.5, 31);
    let m = run(&trace, &mut CostAware::new(), 31);
    let deep_on_faas = m
        .records
        .iter()
        .filter(|r| {
            matches!(r.class, JobClass::MnCifar | JobClass::RnCifar)
                && r.route == lambdaml::fleet::Route::Faas
        })
        .count();
    assert_eq!(deep_on_faas, 0, "deep jobs must never land on Lambda");
    assert!(
        m.jobs_on_faas > 0,
        "some convex jobs should use Lambda's elasticity"
    );
}

/// The §2 acceptance scenario: on a deadline-carrying fleet the EDF
/// scheduler beats all-FaaS on deadline-hit rate — deep jobs camp on the
/// account concurrency limit under all-FaaS and blow every queue, while
/// deadline-aware spills them to the reserved pool.
#[test]
fn deadline_aware_beats_all_faas_on_deadline_hit_rate() {
    let spec = TenantSpec {
        n_tenants: 2,
        deadline_frac: 1.0,
        deadline_slack: 2.5,
    };
    // Bursty arrivals saturate the account concurrency limit under
    // all-FaaS (deep jobs camp on it for hours); a memoryless trickle
    // would let every policy coast.
    let trace = Trace::generate_multi(
        ArrivalProcess::Burst {
            base_rate: 0.1,
            burst_rate: 1.5,
            period: 600.0,
            duty: 0.25,
        },
        &JobMix::default_mix(),
        &spec,
        500,
        21,
    );
    let cfg = FleetConfig::default();
    let faas = simulate(&trace, &cfg, &mut AllFaas, 21);
    let edf = simulate(&trace, &cfg, &mut DeadlineAware::for_config(&cfg), 21);
    assert!(
        edf.deadline_hit_rate() > faas.deadline_hit_rate() + 0.1,
        "deadline-aware {:.2} must clearly beat all-faas {:.2}",
        edf.deadline_hit_rate(),
        faas.deadline_hit_rate()
    );
    assert!(edf.deadline_hit_rate() > 0.8, "{}", edf.deadline_hit_rate());
}

/// The §2 acceptance scenario: two tenants, one bursting first. Deficit
/// round-robin bounds the spread between the tenants' mean admission
/// waits, where FIFO lets the first burst starve the second tenant.
#[test]
fn fair_share_bounds_tenant_shares_in_a_two_tenant_burst() {
    // Tenant 0 dumps 40 jobs in the first 4 s; tenant 1's 40 jobs follow
    // from t = 5 s. The capped pool (40 instances = 4 concurrent jobs)
    // becomes the contended resource.
    let mut jobs = Vec::new();
    for k in 0..40u64 {
        jobs.push(JobRequest {
            tenant: 0,
            ..JobRequest::new(k, JobClass::LrHiggs, SimTime::secs(0.1 * k as f64), 10)
        });
    }
    for k in 0..40u64 {
        jobs.push(JobRequest {
            tenant: 1,
            ..JobRequest::new(
                40 + k,
                JobClass::LrHiggs,
                SimTime::secs(5.0 + 0.1 * k as f64),
                10,
            )
        });
    }
    let trace = Trace::from_jobs(jobs);
    let mut cfg = FleetConfig::default();
    cfg.iaas.min_instances = 10;
    cfg.iaas.max_instances = 40;

    let wait_ratio = |m: &FleetMetrics| {
        let mean = |t: u32| {
            let qs: Vec<f64> = m
                .records
                .iter()
                .filter(|r| r.tenant == t)
                .map(|r| r.queue.as_secs())
                .collect();
            qs.iter().sum::<f64>() / qs.len() as f64
        };
        let (a, b) = (mean(0), mean(1));
        a.max(b) / a.min(b).max(1e-9)
    };

    let fifo = simulate(&trace, &cfg, &mut AllIaas, 1);
    let fair = simulate(&trace, &cfg, &mut FairShare::for_config(&cfg), 1);
    let (r_fifo, r_fair) = (wait_ratio(&fifo), wait_ratio(&fair));
    assert!(
        r_fair < r_fifo,
        "DRR must narrow the tenants' wait spread: fair {r_fair:.2} vs fifo {r_fifo:.2}"
    );
    assert!(
        r_fair < 2.0,
        "fair-share bounds the max/min tenant wait ratio, got {r_fair:.2}"
    );
    // And the late tenant is no longer starved outright.
    assert!(fair.fairness >= fifo.fairness - 1e-9);
}

/// The bundled Azure-style sample feeds `Trace::from_text` through the
/// adapter and replays deterministically on the public surface.
#[test]
fn azure_sample_replays_through_the_public_surface() {
    let csv = include_str!("../crates/fleet/data/azure_sample.csv");
    let trace = lambdaml::fleet::azure::parse(csv).expect("bundled sample parses");
    assert!(trace.len() >= 30);
    assert!(trace.tenants().len() >= 3);
    let cfg = FleetConfig::default();
    let a = simulate(&trace, &cfg, &mut CostAware::for_config(&cfg), 2).to_json();
    let b = simulate(&trace, &cfg, &mut CostAware::for_config(&cfg), 2).to_json();
    assert_eq!(a, b, "replays are byte-deterministic");
    // Adapter output is native v2 text: it survives another round-trip.
    let text = trace.to_text();
    assert_eq!(Trace::from_text(&text).unwrap(), trace);
}

/// Malformed inputs fail loudly on the public surface — native format and
/// Azure adapter alike.
#[test]
fn trace_parsers_reject_malformed_input() {
    // Native v2: bad tenant, deadline before submit, out-of-order rows.
    assert!(Trace::from_text("1.0\tlr-higgs\t10\tnot-a-tenant\t-").is_err());
    assert!(Trace::from_text("9.0\tlr-higgs\t10\t0\t4.0").is_err());
    assert!(Trace::from_text("5.0\tlr-higgs\t10\n1.0\tsvm-rcv1\t5\n").is_err());
    // Azure adapter: arity, negative duration, empty ids.
    assert!(lambdaml::fleet::azure::parse("1000,o,a,f\n").is_err());
    assert!(lambdaml::fleet::azure::parse("1000,o,a,f,-5\n").is_err());
    assert!(lambdaml::fleet::azure::parse("1000,,a,f,10\n").is_err());
    // Both accept comment-only input as an empty trace.
    assert!(Trace::from_text("# nothing\n").unwrap().is_empty());
    assert!(lambdaml::fleet::azure::parse("# nothing\n")
        .unwrap()
        .is_empty());
}

/// Riding the spot market on preemption-tolerant work cuts the bill:
/// short convex jobs rarely live long enough to be reclaimed, so the
/// discount dominates the occasional restart. (Deep multi-hour jobs are
/// the opposite — the restart tax eats the discount — which is why
/// `DeadlineAware` keeps deadline work off the market.)
#[test]
fn spot_fraction_cuts_cost_on_preemptible_work() {
    let trace = Trace::generate(
        ArrivalProcess::Poisson { rate: 0.5 },
        &JobMix::convex_mix(),
        300,
        37,
    );
    let cfg = FleetConfig::default();
    let firm = simulate(&trace, &cfg, &mut FairShare::for_config(&cfg), 37);
    let mut spotty = FairShare::for_config(&cfg).with_spot_fraction(0.8);
    let spot = simulate(&trace, &cfg, &mut spotty, 37);
    assert!(spot.jobs_on_spot > 0);
    assert!(
        spot.total_cost().as_usd() < firm.total_cost().as_usd(),
        "spot {} must undercut firm {}",
        spot.total_cost(),
        firm.total_cost()
    );
    assert_eq!(spot.n_jobs, 300, "preempted jobs still finish");
}

/// The estimator-calibrated router still satisfies the cost sanity bound.
#[test]
fn estimator_calibrated_hybrid_is_sane() {
    let mut sched = CostAware::new();
    // Calibrate one cheap class with the real §5.3 sampling estimator.
    sched.calibrate(JobClass::SvmRcv1, 0.2, 12, 5);
    let trace = poisson_trace(300, 0.5, 5);
    let hybrid = run(&trace, &mut sched, 5);
    let faas = run(&trace, &mut AllFaas, 5);
    let iaas = run(&trace, &mut AllIaas, 5);
    let worse = faas.total_cost().as_usd().max(iaas.total_cost().as_usd());
    assert!(hybrid.total_cost().as_usd() <= worse * 1.001);
    assert_eq!(hybrid.n_jobs, 300);
}
