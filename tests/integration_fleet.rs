//! Integration tests of the fleet simulator, exercised through the public
//! `lambdaml` surface: determinism, fleet-level cold-start amortization,
//! and the cost sanity of the hybrid router.

use lambdaml::fleet::{
    simulate, AllFaas, AllIaas, ArrivalProcess, CostAware, FleetConfig, FleetMetrics, JobClass,
    JobMix, Scheduler, Trace,
};

fn poisson_trace(n: usize, rate: f64, seed: u64) -> Trace {
    Trace::generate(
        ArrivalProcess::Poisson { rate },
        &JobMix::default_mix(),
        n,
        seed,
    )
}

fn run(trace: &Trace, sched: &mut dyn Scheduler, seed: u64) -> FleetMetrics {
    simulate(trace, &FleetConfig::default(), sched, seed)
}

/// Same seed → identical trace AND identical metrics, byte for byte.
#[test]
fn determinism_same_seed_identical_json() {
    let one = |seed: u64| {
        let trace = poisson_trace(500, 0.5, seed);
        run(&trace, &mut CostAware::new(), seed).to_json()
    };
    assert_eq!(one(42), one(42));
    assert_ne!(one(42), one(43), "different seeds must differ");
}

/// The trace text format replays to the same simulation results.
#[test]
fn replayed_trace_reproduces_metrics() {
    let trace = poisson_trace(300, 0.4, 9);
    let replayed = Trace::from_text(&trace.to_text()).expect("parse own format");
    let a = run(&trace, &mut AllFaas, 9).to_json();
    let b = run(&replayed, &mut AllFaas, 9).to_json();
    assert_eq!(a, b);
}

/// Cold-start probability falls as traffic rises: the warm pool serves a
/// strictly larger share of workers at higher arrival rates.
#[test]
fn warm_hit_rate_increases_with_arrival_rate() {
    let rate_of = |rate: f64| {
        let trace = poisson_trace(400, rate, 17);
        run(&trace, &mut AllFaas, 17).warm_hit_rate
    };
    let trickle = rate_of(0.0003);
    let steady = rate_of(0.1);
    let heavy = rate_of(1.0);
    assert!(
        steady > trickle && heavy > trickle + 0.2,
        "warm-hit rate must rise with traffic: {trickle} / {steady} / {heavy}"
    );
}

/// The cost-aware hybrid never costs more than the worse pure policy, and
/// its tail latency never degrades past the worse pure policy either.
#[test]
fn hybrid_cost_and_latency_sanity() {
    for seed in [1, 7, 23] {
        let trace = poisson_trace(400, 0.5, seed);
        let faas = run(&trace, &mut AllFaas, seed);
        let iaas = run(&trace, &mut AllIaas, seed);
        let hybrid = run(&trace, &mut CostAware::new(), seed);
        let worse_cost = faas.total_cost().as_usd().max(iaas.total_cost().as_usd());
        assert!(
            hybrid.total_cost().as_usd() <= worse_cost * 1.001,
            "seed {seed}: hybrid {} vs worse pure {worse_cost}",
            hybrid.total_cost()
        );
        let worse_p99 = faas.latency.p99.max(iaas.latency.p99);
        assert!(
            hybrid.latency.p99 <= worse_p99 * 1.001,
            "seed {seed}: hybrid p99 {} vs worse pure {worse_p99}",
            hybrid.latency.p99
        );
    }
}

/// Queueing appears on the reserved pool under load and is visible in the
/// per-job breakdown; Lambda's elasticity keeps its own queue near zero
/// until the account concurrency limit bites.
#[test]
fn queueing_shows_up_where_the_paper_says() {
    let trace = poisson_trace(400, 0.8, 3);
    let iaas = run(&trace, &mut AllIaas, 3);
    assert!(
        iaas.queue.p99 > 60.0,
        "reserved pool must queue under load, p99 {}",
        iaas.queue.p99
    );
    // Deep jobs camp on workers for hours, so even Lambda's account limit
    // saturates on the default mix — but a convex-only fleet at the same
    // rate stays comfortably inside it and never queues at the median.
    let convex = Trace::generate(
        ArrivalProcess::Poisson { rate: 0.8 },
        &JobMix::convex_mix(),
        400,
        3,
    );
    let faas = run(&convex, &mut AllFaas, 3);
    assert!(
        faas.queue.p50 == 0.0,
        "Lambda should rarely queue below the concurrency limit, p50 {}",
        faas.queue.p50
    );
}

/// Deep communication-heavy jobs route serverful, tiny convex jobs are
/// allowed on Lambda — the §5.2 findings as routing behaviour.
#[test]
fn hybrid_routes_by_workload_shape() {
    let trace = poisson_trace(600, 0.5, 31);
    let m = run(&trace, &mut CostAware::new(), 31);
    let deep_on_faas = m
        .records
        .iter()
        .filter(|r| {
            matches!(r.class, JobClass::MnCifar | JobClass::RnCifar)
                && r.route == lambdaml::fleet::Route::Faas
        })
        .count();
    assert_eq!(deep_on_faas, 0, "deep jobs must never land on Lambda");
    assert!(
        m.jobs_on_faas > 0,
        "some convex jobs should use Lambda's elasticity"
    );
}

/// The estimator-calibrated router still satisfies the cost sanity bound.
#[test]
fn estimator_calibrated_hybrid_is_sane() {
    let mut sched = CostAware::new();
    // Calibrate one cheap class with the real §5.3 sampling estimator.
    sched.calibrate(JobClass::SvmRcv1, 0.2, 12, 5);
    let trace = poisson_trace(300, 0.5, 5);
    let hybrid = run(&trace, &mut sched, 5);
    let faas = run(&trace, &mut AllFaas, 5);
    let iaas = run(&trace, &mut AllIaas, 5);
    let worse = faas.total_cost().as_usd().max(iaas.total_cost().as_usd());
    assert!(hybrid.total_cost().as_usd() <= worse * 1.001);
    assert_eq!(hybrid.n_jobs, 300);
}
