//! Integration tests of the prediction layer through the public
//! `lambdaml` surface: estimator convergence on a miscalibrated zoo,
//! no-regression when the prior is right, the closed sim→estimator
//! feedback loop, budget deferral, and byte-stable prediction metrics.

use lambdaml::fleet::{
    simulate, Analytic, ArrivalProcess, CostAware, DeadlineAware, Estimator, FleetConfig,
    FleetMetrics, Hybrid, JobClass, JobMix, Online, TenantSpec, Trace,
};
use lambdaml::sim::SimTime;

/// The estimator testbed: a fixed reserved pool at ~80% utilization where
/// marginal pool waits decide deadlines, convex classes, deadlines at
/// 2.7× nominal. `epoch_scale` 2.0 miscalibrates the zoo (every job
/// really needs twice the epochs the analytic prior assumes).
fn deadline_fleet(scale: f64, est: Box<dyn Estimator>, seed: u64) -> FleetMetrics {
    let spec = TenantSpec {
        n_tenants: 3,
        deadline_frac: 0.6,
        deadline_slack: 2.7,
    };
    let mix = JobMix::new(vec![(JobClass::LrHiggs, 0.75), (JobClass::KmHiggs, 0.25)]);
    let trace = Trace::generate_multi(
        ArrivalProcess::Poisson { rate: 0.03 },
        &mix,
        &spec,
        300,
        seed,
    );
    let mut cfg = FleetConfig {
        epoch_scale: scale,
        ..FleetConfig::default()
    };
    cfg.iaas.min_instances = 60;
    cfg.iaas.max_instances = 60;
    let mut sched = DeadlineAware::for_config(&cfg).with_estimator(est);
    simulate(&trace, &cfg, &mut sched, seed)
}

/// The acceptance criterion: `Online` runtime MAPE decreases monotonically
/// across replay windows on a miscalibrated zoo, over three seeds — the
/// feedback loop converges, it doesn't just wobble.
#[test]
fn online_mape_shrinks_monotonically_across_replay_windows() {
    for seed in [7, 13, 42] {
        let m = deadline_fleet(2.0, Box::new(Online::new(Analytic::new())), seed);
        let windows = m.runtime_mape_windows(3);
        assert!(
            windows[0] > windows[1] && windows[1] > windows[2],
            "seed {seed}: windows must strictly shrink, got {windows:?}"
        );
        assert!(
            windows[2] < windows[0] * 0.5,
            "seed {seed}: the last window must at least halve the first: {windows:?}"
        );
    }
}

/// The acceptance criterion: on the miscalibrated zoo, deadline-aware
/// with the `Hybrid` estimator achieves a strictly higher deadline-hit
/// rate than with the blind `Analytic` prior — and slashes the
/// prediction error doing it.
#[test]
fn hybrid_beats_analytic_on_hit_rate_when_the_model_is_wrong() {
    for seed in [7, 13, 42] {
        let blind = deadline_fleet(2.0, Box::new(Analytic::new()), seed);
        let hybrid = deadline_fleet(2.0, Box::new(Hybrid::new(Analytic::new())), seed);
        assert!(
            blind.deadline_hit_rate() < 1.0,
            "seed {seed}: premise — the blind prior must actually miss"
        );
        assert!(
            hybrid.deadline_hit_rate() > blind.deadline_hit_rate(),
            "seed {seed}: hybrid {} must strictly beat analytic {}",
            hybrid.deadline_hit_rate(),
            blind.deadline_hit_rate()
        );
        assert!(
            hybrid.runtime_mape < blind.runtime_mape * 0.5,
            "seed {seed}: hybrid MAPE {} vs analytic {}",
            hybrid.runtime_mape,
            blind.runtime_mape
        );
    }
}

/// No regression when the prior is right: on a well-calibrated zoo the
/// learning estimators are seeded from the analytic prior, so `Hybrid`
/// never does worse than `Analytic` — same hit rate, near-zero error.
#[test]
fn hybrid_never_does_worse_than_analytic_on_a_calibrated_zoo() {
    for seed in [7, 13, 42] {
        let blind = deadline_fleet(1.0, Box::new(Analytic::new()), seed);
        let hybrid = deadline_fleet(1.0, Box::new(Hybrid::new(Analytic::new())), seed);
        let online = deadline_fleet(1.0, Box::new(Online::new(Analytic::new())), seed);
        assert!(
            hybrid.deadline_hit_rate() >= blind.deadline_hit_rate(),
            "seed {seed}: {} vs {}",
            hybrid.deadline_hit_rate(),
            blind.deadline_hit_rate()
        );
        assert!(
            online.deadline_hit_rate() >= blind.deadline_hit_rate(),
            "seed {seed}"
        );
        assert!(blind.runtime_mape < 0.05, "calibrated prior is near-exact");
        assert!(hybrid.runtime_mape < 0.05);
    }
}

/// Prediction metrics are part of the deterministic JSON contract:
/// same seed → byte-identical output, with the additive schema keys
/// present; different estimators leave different bytes.
#[test]
fn prediction_metrics_are_byte_stable_and_additive() {
    let a = deadline_fleet(2.0, Box::new(Hybrid::new(Analytic::new())), 11).to_json();
    let b = deadline_fleet(2.0, Box::new(Hybrid::new(Analytic::new())), 11).to_json();
    assert_eq!(a, b, "same seed, same bytes");
    assert!(a.starts_with(r#"{"schema":"lml-fleet/metrics/v1""#));
    for key in [
        r#""predicted_jobs":"#,
        r#""runtime_mape":"#,
        r#""cost_mape":"#,
        r#""deferred_jobs":"#,
    ] {
        assert!(a.contains(key), "additive key {key} missing");
    }
    let blind = deadline_fleet(2.0, Box::new(Analytic::new()), 11).to_json();
    assert_ne!(a, blind, "the estimator visibly changes the rollup");
}

/// Budget deferral through the public surface: with an accounting window
/// the capped tenant's overflow waits instead of dying, every job still
/// completes, and the per-tenant rollup surfaces the deferrals.
#[test]
fn budget_window_defers_the_overspending_tail() {
    let spec = TenantSpec {
        n_tenants: 2,
        deadline_frac: 0.0,
        deadline_slack: 3.0,
    };
    let trace = Trace::generate_multi(
        ArrivalProcess::Poisson { rate: 0.5 },
        &JobMix::convex_mix(),
        &spec,
        300,
        31,
    )
    .with_budget(0, 0.02);
    let cfg = FleetConfig {
        budget_window: Some(SimTime::hours(1.0)),
        ..FleetConfig::default()
    };
    let m = simulate(&trace, &cfg, &mut CostAware::for_config(&cfg), 31);
    assert_eq!(m.rejected_jobs, 0, "deferral replaces rejection");
    assert!(m.deferred_jobs > 0, "the cap must bite");
    assert_eq!(m.n_jobs, 300, "every job completes eventually");
    let rows = m.per_tenant();
    let t0 = rows.iter().find(|t| t.tenant == 0).unwrap();
    let t1 = rows.iter().find(|t| t.tenant == 1).unwrap();
    assert_eq!(t0.deferred, m.deferred_jobs, "all deferrals are tenant 0's");
    assert_eq!(t1.deferred, 0, "the uncapped tenant never waits");
    // Without the window the same trace rejects instead.
    let hard = simulate(&trace, &FleetConfig::default(), &mut CostAware::new(), 31);
    assert!(hard.rejected_jobs > 0);
    assert_eq!(hard.deferred_jobs, 0);
}
