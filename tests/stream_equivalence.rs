//! Property test: streaming trace replay is **byte-identical** to the
//! in-memory simulator — on randomized v1/v2/v3 traces, through both the
//! in-memory and the text-reader sources, and at any sweep width.
//!
//! The harness is hand-rolled: `proptest` is not vendored in this offline
//! build, so each property draws its random cases from the repository's own
//! deterministic [`Pcg64`] stream. Failures print the case seed, which
//! reproduces the exact inputs.

use lambdaml::fleet::{
    replay, simulate, AllFaas, AllIaas, ArrivalProcess, CostAware, DeadlineAware, FairShare,
    FleetConfig, InMemorySource, JobMix, Scheduler, TenantSpec, TextSource, Trace,
};
use lambdaml::sim::{Pcg64, SimTime};
use lml_bench::sweep::parallel_map;

/// Number of random cases per property.
const CASES: u64 = 64;

/// Deterministic per-case RNGs: case `i` of property `tag` always sees the
/// same stream.
fn cases(tag: u64) -> impl Iterator<Item = (u64, Pcg64)> {
    (0..CASES).map(move |i| {
        let seed = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i;
        (seed, Pcg64::new(seed))
    })
}

/// One randomized replay case: a serialized trace (the text format pins
/// the v1/v2/v3 shape on the wire), the config, and the scheduler choice.
#[derive(Clone)]
struct Case {
    seed: u64,
    text: String,
    cfg: FleetConfig,
    sched: usize,
    /// The in-memory engine's metrics JSON — the bytes to reproduce.
    baseline: String,
}

fn make_sched(k: usize) -> Box<dyn Scheduler> {
    match k {
        0 => Box::new(AllFaas),
        1 => Box::new(AllIaas),
        2 => Box::new(CostAware::new()),
        3 => Box::new(DeadlineAware::new()),
        _ => Box::new(FairShare::new()),
    }
}

/// Draw a random trace spanning the three text-format generations:
/// v1 (single tenant, no deadlines), v2 (tenants + deadlines), v3
/// (budgets on top).
fn random_trace(rng: &mut Pcg64) -> Trace {
    let version = rng.below(3);
    let n_jobs = 20 + rng.index(60);
    let rate = [0.2, 0.5, 1.0, 2.0][rng.index(4)];
    let mix = if rng.coin(0.5) {
        JobMix::convex_mix()
    } else {
        JobMix::default_mix()
    };
    let process = ArrivalProcess::Poisson { rate };
    let trace_seed = rng.next_u64();
    if version == 0 {
        return Trace::generate(process, &mix, n_jobs, trace_seed);
    }
    let spec = TenantSpec {
        n_tenants: 1 + rng.below(4) as u32,
        deadline_frac: [0.0, 0.3, 0.7][rng.index(3)],
        deadline_slack: rng.range(2.0, 8.0),
    };
    let mut trace = Trace::generate_multi(process, &mix, &spec, n_jobs, trace_seed);
    if version == 2 {
        // v3: budget caps, sometimes including an unaffordable zero cap
        // (hard-reject path) and sometimes a tight one (deferral path).
        for t in 0..spec.n_tenants {
            if rng.coin(0.7) {
                let cap = if rng.coin(0.2) {
                    0.0
                } else {
                    rng.range(0.01, 2.0)
                };
                trace = trace.with_budget(t, cap);
            }
        }
    }
    trace
}

fn build_cases() -> Vec<Case> {
    cases(0xEA7)
        .map(|(seed, mut rng)| {
            let trace = random_trace(&mut rng);
            let mut cfg = FleetConfig::default();
            if !trace.budgets.is_empty() && rng.coin(0.7) {
                cfg.budget_window = Some(SimTime::secs(rng.range(600.0, 7_200.0)));
            }
            let sched = rng.index(5);
            let baseline = simulate(&trace, &cfg, &mut *make_sched(sched), seed).to_json();
            Case {
                seed,
                text: trace.to_text(),
                cfg,
                sched,
                baseline,
            }
        })
        .collect()
}

/// Replay the case's trace through both streaming sources and check each
/// against the in-memory bytes.
fn check_case(case: &Case) -> String {
    let trace = Trace::from_text(&case.text).expect("generated trace must re-parse");
    let in_mem = replay(
        InMemorySource::new(&trace),
        &case.cfg,
        &mut *make_sched(case.sched),
        case.seed,
    )
    .expect("in-memory source cannot fail")
    .to_json();
    assert_eq!(
        in_mem, case.baseline,
        "case {}: InMemorySource diverged from simulate()",
        case.seed
    );
    let text = replay(
        TextSource::new(case.text.as_bytes()),
        &case.cfg,
        &mut *make_sched(case.sched),
        case.seed,
    )
    .expect("text source must stream a valid trace")
    .to_json();
    assert_eq!(
        text, case.baseline,
        "case {}: TextSource diverged from simulate()",
        case.seed
    );
    text
}

/// Streaming replay reproduces the in-memory engine byte-for-byte on every
/// randomized trace, and the sweep fan-out preserves those bytes at every
/// worker count (1 = inline, 2 = threaded, 8 = more workers than cores on
/// most CI boxes).
#[test]
fn streaming_replay_matches_in_memory_at_any_sweep_width() {
    let cases = build_cases();
    let mut per_width: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 2, 8] {
        let out = parallel_map(cases.clone(), workers, |_, case| check_case(&case));
        per_width.push(out);
    }
    let serial = &per_width[0];
    assert_eq!(serial.len(), CASES as usize);
    for wider in &per_width[1..] {
        assert_eq!(serial, wider, "sweep width must not change any bytes");
    }
}
