//! Integration tests of the risk subsystem through the public `lambdaml`
//! surface: calibrated P95-ETA coverage on a miscalibrated zoo, learned
//! preemption rates beating (and never losing to) the static-mean config
//! in spot admission, deferral-vs-rejection pricing, and NaN-free metrics
//! JSON across degenerate fleets.

use lambdaml::fleet::{
    simulate, AllFaas, Analytic, ArrivalProcess, CheckpointPolicy, CostAware, DeadlineAware,
    Estimator, FleetConfig, FleetMetrics, JobClass, JobMix, JobRequest, Online, TenantSpec, Trace,
};
use lambdaml::sim::SimTime;

/// The PR 4 estimator testbed: a fixed reserved pool at ~80% utilization,
/// convex classes, deadlines at 2.7× nominal, `epoch_scale` 2.0 — every
/// job really needs twice the epochs the analytic prior assumes.
fn miscalibrated_fleet(est: Box<dyn Estimator>, seed: u64) -> FleetMetrics {
    let spec = TenantSpec {
        n_tenants: 3,
        deadline_frac: 0.6,
        deadline_slack: 2.7,
    };
    let mix = JobMix::new(vec![(JobClass::LrHiggs, 0.75), (JobClass::KmHiggs, 0.25)]);
    let trace = Trace::generate_multi(
        ArrivalProcess::Poisson { rate: 0.03 },
        &mix,
        &spec,
        300,
        seed,
    );
    let mut cfg = FleetConfig {
        epoch_scale: 2.0,
        ..FleetConfig::default()
    };
    cfg.iaas.min_instances = 60;
    cfg.iaas.max_instances = 60;
    let mut sched = DeadlineAware::for_config(&cfg).with_estimator(est);
    simulate(&trace, &cfg, &mut sched, seed)
}

/// The spot-admission testbed: a spot-eligible deadline fleet under
/// checkpoint recovery on a hostile market (true per-instance MTTP
/// `true_mttp`), with the scheduler's configured prior `prior_err`× the
/// truth — frozen at the config (`static_rate`) or learned online.
fn risk_fleet(true_mttp: f64, prior_err: f64, static_rate: bool, seed: u64) -> FleetMetrics {
    let spec = TenantSpec {
        n_tenants: 2,
        deadline_frac: 0.5,
        deadline_slack: 6.0,
    };
    let trace = Trace::generate_multi(
        ArrivalProcess::Poisson { rate: 0.05 },
        &JobMix::only(JobClass::LrHiggs),
        &spec,
        300,
        seed,
    );
    let mut cfg = FleetConfig::default();
    cfg.spot.mean_time_to_preempt = SimTime::secs(true_mttp);
    cfg.checkpoint = CheckpointPolicy::every(1);
    let mut sched = DeadlineAware::for_config(&cfg)
        .with_spot_fraction(1.0)
        .with_spot_recovery(cfg.checkpoint)
        .with_preemption_prior(SimTime::secs(true_mttp * prior_err));
    if static_rate {
        sched = sched.with_static_preemption();
    }
    simulate(&trace, &cfg, &mut sched, seed)
}

/// Tentpole acceptance (a): the learned P95 ETA's empirical coverage
/// lands in [0.90, 1.0] after the first replay window on the
/// `epoch_scale`-miscalibrated zoo — on three seeds — while the blind
/// prior's "P95" (its mean, half the truth) covers nothing.
#[test]
fn calibrated_p95_coverage_lands_in_band_after_first_window() {
    use lambdaml::fleet::Hybrid;
    for seed in [7, 13, 42] {
        let online = miscalibrated_fleet(Box::new(Online::new(Analytic::new())), seed);
        let windows = online.eta_coverage_windows(3);
        for (w, cov) in windows.iter().enumerate().skip(1) {
            assert!(
                (0.90..=1.0).contains(cov),
                "seed {seed}: window {w} coverage {cov} outside [0.90, 1.0] ({windows:?})"
            );
        }
        // The blend inherits the calibration: Hybrid's published quantile
        // reaches the posterior's cover point even while its mean is
        // dragged toward the wrong prior.
        let hybrid = miscalibrated_fleet(Box::new(Hybrid::new(Analytic::new())), seed);
        let hw = hybrid.eta_coverage_windows(3);
        for (w, cov) in hw.iter().enumerate().skip(1) {
            assert!(
                (0.90..=1.0).contains(cov),
                "seed {seed}: hybrid window {w} coverage {cov} outside [0.90, 1.0] ({hw:?})"
            );
        }
        let blind = miscalibrated_fleet(Box::new(Analytic::new()), seed);
        assert!(
            blind.eta_coverage() < 0.1,
            "seed {seed}: premise — the blind prior's tail must be fiction, got {}",
            blind.eta_coverage()
        );
        assert!(online.eta_q_jobs > 200, "seed {seed}: coverage is scored");
    }
}

/// Tentpole acceptance (b): with the configured mean time to preempt 4×
/// too optimistic, `DeadlineAware` with the learned preemption posterior
/// strictly beats the frozen static-mean variant on deadline-hit rate —
/// and with a correct config the two produce byte-identical metrics
/// (risk-awareness is free when the config is honest).
#[test]
fn learned_preemption_rates_beat_the_static_mean_on_a_wrong_config() {
    for seed in [7, 13, 42] {
        let frozen = risk_fleet(600.0, 4.0, true, seed);
        let learned = risk_fleet(600.0, 4.0, false, seed);
        assert!(
            frozen.deadline_hit_rate() < 1.0,
            "seed {seed}: premise — the wrong config must actually hurt"
        );
        assert!(
            learned.deadline_hit_rate() > frozen.deadline_hit_rate(),
            "seed {seed}: learned {} must strictly beat static {}",
            learned.deadline_hit_rate(),
            frozen.deadline_hit_rate()
        );
        assert!(
            learned.preemptions < frozen.preemptions,
            "seed {seed}: deadline jobs priced off the market stop dying on it"
        );
        // Parity when the config is right: identical decisions, same bytes.
        assert_eq!(
            risk_fleet(600.0, 1.0, true, seed).to_json(),
            risk_fleet(600.0, 1.0, false, seed).to_json(),
            "seed {seed}: honest config must make the variants agree"
        );
    }
}

/// The risk sweep's output is part of the deterministic JSON contract:
/// same inputs → byte-identical metrics, with the additive risk keys
/// present.
#[test]
fn risk_metrics_are_byte_stable_and_additive() {
    let a = risk_fleet(600.0, 4.0, false, 11).to_json();
    let b = risk_fleet(600.0, 4.0, false, 11).to_json();
    assert_eq!(a, b, "same seed, same bytes");
    assert!(a.starts_with(r#"{"schema":"lml-fleet/metrics/v1""#));
    for key in [
        r#""eta_q_jobs":"#,
        r#""eta_q_covered":"#,
        r#""eta_q_coverage":"#,
        r#""spot_attempts":"#,
    ] {
        assert!(a.contains(key), "additive key {key} missing");
    }
    assert_ne!(
        a,
        risk_fleet(600.0, 4.0, true, 11).to_json(),
        "the admission variant visibly changes the rollup"
    );
}

/// Deferral-vs-rejection pricing through the public surface: rejection
/// priced below a P95 deadline miss rejects the over-allowance jobs that
/// deferral can only doom, and defers the rest; the default (equal)
/// prices defer everything.
#[test]
fn admission_pricing_rejects_doomed_jobs_and_defers_viable_ones() {
    let mk_trace = || {
        let mut burner = JobRequest::new(0, JobClass::LrHiggs, SimTime::ZERO, 10);
        burner.tenant = 0;
        let mut doomed = JobRequest::new(1, JobClass::LrHiggs, SimTime::secs(5.0), 10);
        doomed.tenant = 0;
        doomed.deadline = Some(SimTime::secs(300.0)); // before the boundary
        let mut viable = JobRequest::new(2, JobClass::LrHiggs, SimTime::secs(6.0), 10);
        viable.tenant = 0;
        viable.deadline = Some(SimTime::secs(30_000.0));
        Trace::from_jobs(vec![burner, doomed, viable]).with_budget(0, 0.001)
    };
    let cfg = FleetConfig {
        budget_window: Some(SimTime::hours(1.0)),
        rejection_cost: 0.1,
        deadline_miss_cost: 1.0,
        ..FleetConfig::default()
    };
    let m = simulate(&mk_trace(), &cfg, &mut CostAware::for_config(&cfg), 3);
    assert_eq!(m.rejected_jobs, 1, "the doomed job is refused cleanly");
    assert_eq!(m.deferred_jobs, 1, "the viable job waits for its window");
    assert_eq!(m.n_jobs, 3);
    let defaults = FleetConfig {
        budget_window: Some(SimTime::hours(1.0)),
        ..FleetConfig::default()
    };
    let m = simulate(
        &mk_trace(),
        &defaults,
        &mut CostAware::for_config(&defaults),
        3,
    );
    assert_eq!(m.rejected_jobs, 0, "equal prices tie, and ties defer");
    assert_eq!(m.deferred_jobs, 2);
}

/// Satellite: `FleetMetrics` JSON must never contain NaN/inf tokens —
/// across empty, all-rejected, zero-slack-deadline, and single-job runs
/// (guards `jain_index`, the MAPEs, and the risk/calibration fields; the
/// JSON emitter itself panics on non-finite floats, so a clean pass means
/// every rollup stayed finite).
#[test]
fn metrics_json_is_nan_free_across_degenerate_fleets() {
    let check = |name: &str, m: &FleetMetrics| {
        let json = m.to_json();
        // Rust's float formatter spells non-finite values "NaN"/"inf";
        // neither token may appear (keys like "tenant" contain lowercase
        // "nan", so the check is case-sensitive on the formatter's
        // spelling).
        for token in ["NaN", "inf"] {
            assert!(
                !json.contains(token),
                "{name}: metrics JSON contains {token:?}"
            );
        }
        assert!(json.starts_with(r#"{"schema":"lml-fleet/metrics/v1""#));
    };
    // Empty fleet.
    let cfg = FleetConfig::default();
    check(
        "empty",
        &simulate(&Trace::from_jobs(vec![]), &cfg, &mut CostAware::new(), 1),
    );
    // All jobs rejected (zero-budget tenant): quantiles, MAPEs, coverage
    // and fairness all roll up over nothing that ran.
    let rejected_trace = Trace::from_jobs(
        (0..5)
            .map(|k| JobRequest::new(k, JobClass::LrHiggs, SimTime::secs(k as f64), 10))
            .collect(),
    )
    .with_budget(0, 0.0);
    let m = simulate(&rejected_trace, &cfg, &mut CostAware::new(), 1);
    assert_eq!(m.rejected_jobs, 5, "premise: everything is rejected");
    check("all-rejected", &m);
    // Zero-slack deadlines (deadline == submit): laxity 0 everywhere.
    let zero_dl = Trace::from_jobs(
        (0..4)
            .map(|k| {
                let mut j = JobRequest::new(k, JobClass::SvmRcv1, SimTime::secs(k as f64), 5);
                j.deadline = Some(j.submit);
                j
            })
            .collect(),
    );
    let m = simulate(&zero_dl, &cfg, &mut DeadlineAware::for_config(&cfg), 1);
    assert_eq!(m.deadline_hits, 0, "premise: zero slack misses everything");
    check("zero-deadline", &m);
    // Single job, on both a predicting and a constant router.
    let one = Trace::from_jobs(vec![JobRequest::new(
        0,
        JobClass::KmHiggs,
        SimTime::ZERO,
        10,
    )]);
    check(
        "single-cost-aware",
        &simulate(&one, &cfg, &mut CostAware::new(), 1),
    );
    check("single-all-faas", &simulate(&one, &cfg, &mut AllFaas, 1));
}
