//! Lambda function specifications, memory limits, and billing.

use lml_sim::{ByteSize, Cost, SimTime};

/// Lambda per-GB-second price (AWS, as at the paper's evaluation).
pub const PRICE_PER_GB_SECOND: f64 = 1.66667e-5;

/// Errors raised by the FaaS runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasError {
    /// The function's working set exceeds its memory. The paper hits this
    /// when training ResNet50 with batch size 64 (§5.2: "FaaS encounters an
    /// out-of-memory error").
    OutOfMemory { required: ByteSize, limit: ByteSize },
    /// Requested memory above the service maximum.
    InvalidMemory { requested_mb: u32 },
}

impl std::fmt::Display for FaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaasError::OutOfMemory { required, limit } => {
                write!(f, "function needs {required} but is limited to {limit}")
            }
            FaasError::InvalidMemory { requested_mb } => {
                write!(f, "invalid Lambda memory {requested_mb} MB")
            }
        }
    }
}

impl std::error::Error for FaasError {}

/// One Lambda function's resource configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LambdaSpec {
    pub memory_mb: u32,
}

impl LambdaSpec {
    /// The paper-era memory ceiling ("up to 3GB of memory", §2.2).
    pub const MAX_MEMORY_MB: u32 = 3_008;
    /// Hard execution-time limit ("must finish within 15 minutes").
    pub const LIFETIME: SimTime = SimTime(900.0);

    /// A function with the given memory; errors above the service maximum.
    pub fn with_memory_mb(memory_mb: u32) -> Result<Self, FaasError> {
        if !(128..=Self::MAX_MEMORY_MB).contains(&memory_mb) {
            return Err(FaasError::InvalidMemory {
                requested_mb: memory_mb,
            });
        }
        Ok(LambdaSpec { memory_mb })
    }

    /// The paper's standard worker: a 3 GB function.
    pub fn gb3() -> Self {
        LambdaSpec { memory_mb: 3_008 }
    }

    /// The 1 GB variant used in Table 2.
    pub fn gb1() -> Self {
        LambdaSpec { memory_mb: 1_024 }
    }

    pub fn memory(&self) -> ByteSize {
        ByteSize::mb(self.memory_mb as f64)
    }

    /// Fractional vCPU share: memory-proportional, 3 GB ≈ 1.8 vCPU and
    /// 1 GB ≈ 0.6 vCPU (Table 2's configurations).
    pub fn vcpus(&self) -> f64 {
        1.8 * self.memory_mb as f64 / 3_008.0
    }

    /// Billing rate per second of execution.
    pub fn price_per_second(&self) -> Cost {
        Cost::usd(PRICE_PER_GB_SECOND * self.memory_mb as f64 / 1_000.0)
    }

    /// Verify a working set fits this function's memory.
    pub fn check_memory(&self, required: ByteSize) -> Result<(), FaasError> {
        if required > self.memory() {
            Err(FaasError::OutOfMemory {
                required,
                limit: self.memory(),
            })
        } else {
            Ok(())
        }
    }
}

/// GB-second execution meter across a fleet of functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct GbSecondsMeter {
    gb_seconds: f64,
}

impl GbSecondsMeter {
    pub fn new() -> Self {
        GbSecondsMeter::default()
    }

    /// Record `duration` of execution on one function of `spec`.
    pub fn charge(&mut self, spec: LambdaSpec, duration: SimTime) {
        debug_assert!(duration.is_valid());
        self.gb_seconds += spec.memory_mb as f64 / 1_000.0 * duration.as_secs();
    }

    pub fn gb_seconds(&self) -> f64 {
        self.gb_seconds
    }

    pub fn cost(&self) -> Cost {
        Cost::usd(self.gb_seconds * PRICE_PER_GB_SECOND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcpu_scaling_matches_table2() {
        assert!((LambdaSpec::gb3().vcpus() - 1.8).abs() < 1e-12);
        assert!((LambdaSpec::gb1().vcpus() - 0.6127).abs() < 0.02);
    }

    #[test]
    fn memory_bounds_enforced() {
        assert!(LambdaSpec::with_memory_mb(64).is_err());
        assert!(LambdaSpec::with_memory_mb(4_096).is_err());
        assert!(LambdaSpec::with_memory_mb(1_536).is_ok());
    }

    #[test]
    fn oom_detection() {
        let f = LambdaSpec::gb3();
        assert!(f.check_memory(ByteSize::gb(2.9)).is_ok());
        match f.check_memory(ByteSize::gb(3.5)) {
            Err(FaasError::OutOfMemory { required, .. }) => {
                assert_eq!(required, ByteSize::gb(3.5));
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn billing_is_gb_seconds() {
        let mut meter = GbSecondsMeter::new();
        // 10 workers × 3 GB × 100 s = 3008/1000 × 1000 = 3008 GB-s
        for _ in 0..10 {
            meter.charge(LambdaSpec::gb3(), SimTime::secs(100.0));
        }
        assert!((meter.gb_seconds() - 3_008.0).abs() < 1e-9);
        let expected = 3_008.0 * PRICE_PER_GB_SECOND;
        assert!((meter.cost().as_usd() - expected).abs() < 1e-9);
    }

    #[test]
    fn bigger_functions_cost_more_per_second() {
        assert!(LambdaSpec::gb3().price_per_second() > LambdaSpec::gb1().price_per_second());
    }

    #[test]
    fn lifetime_is_15_minutes() {
        assert_eq!(LambdaSpec::LIFETIME, SimTime::minutes(15.0));
    }
}
