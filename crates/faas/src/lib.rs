//! # lml-faas — serverless runtime simulator for LambdaML-rs
//!
//! Models AWS Lambda as the paper experiences it (§2.2, §3.3):
//!
//! * functions get memory between 128 MB and ~3 GB; vCPU share scales with
//!   memory (3 GB ≈ 1.8 vCPU, 1 GB ≈ 0.6 vCPU — Table 2's rows);
//! * execution is capped at 15 minutes; LambdaML's hierarchical invocation
//!   checkpoints the local model and re-triggers a fresh function that
//!   inherits the worker ID (§3.3.1, Figure 5);
//! * startup is fast and scales mildly with the number of workers
//!   (Table 6's `t_F(w)`: 1.2 s at 10 workers → 35 s at 200);
//! * billing is per GB-second of execution — the "pay by usage" model that
//!   drives the paper's cost results.
//!
//! Modules: [`lambda`] (function specs, memory checks, billing),
//! [`startup`] (cold-start model), [`lifetime`] (15-minute rollover logic),
//! [`invoke`] (hierarchical starter→worker triggering).

#![forbid(unsafe_code)]

pub mod invoke;
pub mod lambda;
pub mod lifetime;
pub mod startup;

pub use invoke::InvocationPlan;
pub use lambda::{FaasError, GbSecondsMeter, LambdaSpec};
pub use lifetime::LifetimeManager;
pub use startup::faas_startup_time;
