//! FaaS cold-start model.
//!
//! Table 6 measures `t_F(w)` — the time from job submission until all `w`
//! Lambda workers are running: `(1.2±0.1)s` at 10 workers, `(11±1)s` at 50,
//! `(18±1)s` at 100, `(35±3)s` at 200. We interpolate piecewise-linearly
//! between the measured knots and extrapolate beyond (Figure 7 uses 300
//! workers).

use lml_sim::{PiecewiseLinear, SimTime};

/// Latency of a single Invoke API call (the starter triggering one worker,
/// or a worker re-triggering itself at the lifetime boundary).
pub const INVOKE_LATENCY: SimTime = SimTime(0.05);

/// Table 6 knots for `t_F(w)`. Built once and cached: the fleet simulator
/// evaluates this on every FaaS start and every estimator prediction, so a
/// per-call allocation here is a measurable hot-path cost.
pub fn startup_table() -> &'static PiecewiseLinear {
    static TABLE: std::sync::OnceLock<PiecewiseLinear> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        PiecewiseLinear::new(vec![
            (1.0, 0.3),
            (10.0, 1.2),
            (50.0, 11.0),
            (100.0, 18.0),
            (200.0, 35.0),
        ])
    })
}

/// Time until all `workers` functions are running.
pub fn faas_startup_time(workers: usize) -> SimTime {
    SimTime::secs(startup_table().eval(workers as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table6_knots() {
        assert!((faas_startup_time(10).as_secs() - 1.2).abs() < 1e-9);
        assert!((faas_startup_time(50).as_secs() - 11.0).abs() < 1e-9);
        assert!((faas_startup_time(100).as_secs() - 18.0).abs() < 1e-9);
        assert!((faas_startup_time(200).as_secs() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_worker_count() {
        let mut prev = SimTime::ZERO;
        for w in [1, 5, 10, 25, 50, 75, 100, 150, 200, 300] {
            let t = faas_startup_time(w);
            assert!(t >= prev, "startup must not shrink with more workers");
            prev = t;
        }
    }

    #[test]
    fn extrapolates_to_300_workers() {
        // Figure 7 runs 300 workers; linear extrapolation gives ~52 s.
        let t = faas_startup_time(300);
        assert!((t.as_secs() - 52.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn vastly_faster_than_iaas_at_10_workers() {
        // The paper's headline: 1.3 s vs >2 minutes for EC2 (§5.2).
        assert!(faas_startup_time(10).as_secs() < 2.0);
    }
}
