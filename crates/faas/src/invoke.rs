//! Hierarchical invocation (§3.3.1, Figure 5).
//!
//! LambdaML starts a job with a *starter* function (triggered when the
//! training data lands in S3) that fans out `n` *worker* functions, each
//! bound to one data partition by ID. [`InvocationPlan`] computes the time
//! from trigger to all-workers-running and carries the metadata each worker
//! receives.

use crate::startup::{faas_startup_time, INVOKE_LATENCY};
use lml_sim::SimTime;

/// Metadata handed to one worker function at invocation (Figure 5: the
/// partition path and worker ID).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInvocation {
    pub worker_id: usize,
    pub partition_key: String,
}

/// The starter→workers fan-out for a job.
#[derive(Debug, Clone)]
pub struct InvocationPlan {
    workers: Vec<WorkerInvocation>,
}

impl InvocationPlan {
    /// Plan a fan-out of `n` workers over partitions named
    /// `{prefix}_p{worker}`.
    pub fn fan_out(n: usize, prefix: &str) -> Self {
        assert!(n >= 1);
        let workers = (0..n)
            .map(|w| WorkerInvocation {
                worker_id: w,
                partition_key: format!("{prefix}_p{w}"),
            })
            .collect();
        InvocationPlan { workers }
    }

    pub fn workers(&self) -> &[WorkerInvocation] {
        &self.workers
    }

    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Time from the starter's trigger until every worker runs: one invoke
    /// call for the starter plus the measured fleet cold-start `t_F(n)`.
    pub fn startup_time(&self) -> SimTime {
        INVOKE_LATENCY + faas_startup_time(self.workers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_assigns_partitions_by_id() {
        let plan = InvocationPlan::fan_out(4, "higgs");
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.workers()[2].worker_id, 2);
        assert_eq!(plan.workers()[2].partition_key, "higgs_p2");
    }

    #[test]
    fn startup_time_scales_with_fleet() {
        let small = InvocationPlan::fan_out(10, "d");
        let large = InvocationPlan::fan_out(200, "d");
        assert!(small.startup_time() < large.startup_time());
        assert!((small.startup_time().as_secs() - 1.25).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        InvocationPlan::fan_out(0, "d");
    }
}
