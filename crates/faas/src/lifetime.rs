//! The 15-minute lifetime mechanism (§3.3.1, Figure 5).
//!
//! A LambdaML worker watches its own execution time; when the limit
//! approaches it checkpoints the local model to the storage channel,
//! re-triggers its own function, and the successor (same worker ID, same
//! partition) restores the checkpoint and continues.
//!
//! [`LifetimeManager`] tracks one worker's position inside its current
//! function lifetime and injects the rollover overhead — checkpoint write +
//! re-invocation + checkpoint read + partition reload — whenever a work
//! segment would cross the boundary.

use crate::lambda::LambdaSpec;
use crate::startup::INVOKE_LATENCY;
use lml_sim::SimTime;

/// Per-worker lifetime tracker.
#[derive(Debug, Clone)]
pub struct LifetimeManager {
    /// Usable time per function incarnation (limit minus safety margin).
    usable: f64,
    /// Seconds consumed inside the current incarnation.
    in_life: f64,
    /// Overhead of one rollover excluding the invoke call (checkpoint
    /// write, checkpoint read, and partition reload), supplied by the
    /// executor, which knows the channel and the partition size.
    rollover_overhead: SimTime,
    /// Number of re-invocations performed so far.
    reinvocations: u32,
}

impl LifetimeManager {
    /// `margin` is the safety window before the hard limit at which the
    /// worker pauses (the paper's workers "watch for the timeout").
    pub fn new(margin: SimTime, rollover_overhead: SimTime) -> Self {
        let usable = LambdaSpec::LIFETIME.as_secs() - margin.as_secs();
        assert!(usable > 0.0, "margin consumes the whole lifetime");
        LifetimeManager {
            usable,
            in_life: 0.0,
            rollover_overhead,
            reinvocations: 0,
        }
    }

    /// Default: 30 s safety margin.
    pub fn with_overhead(rollover_overhead: SimTime) -> Self {
        Self::new(SimTime::secs(30.0), rollover_overhead)
    }

    /// Charge `work` seconds of execution. Returns the *wall* time consumed,
    /// i.e. `work` plus any rollover overhead injected when the lifetime
    /// boundary is crossed. Work segments longer than a whole lifetime split
    /// across multiple incarnations (the paper notes a single *iteration*
    /// longer than 15 min is unsupported; segments here are rounds, which
    /// may legitimately exceed one lifetime only as a sum).
    pub fn charge(&mut self, work: SimTime) -> SimTime {
        debug_assert!(work.is_valid());
        let mut remaining = work.as_secs();
        let mut wall = 0.0;
        while self.in_life + remaining > self.usable {
            // run up to the boundary
            let slice = self.usable - self.in_life;
            remaining -= slice;
            wall += slice;
            // checkpoint, re-trigger, restore
            wall += self.rollover_overhead.as_secs() + INVOKE_LATENCY.as_secs();
            self.reinvocations += 1;
            self.in_life = 0.0;
        }
        self.in_life += remaining;
        wall += remaining;
        SimTime::secs(wall)
    }

    /// Whether a segment of `work` would trigger a rollover.
    pub fn would_rollover(&self, work: SimTime) -> bool {
        self.in_life + work.as_secs() > self.usable
    }

    pub fn reinvocations(&self) -> u32 {
        self.reinvocations
    }

    /// Seconds left in the current incarnation.
    pub fn remaining(&self) -> SimTime {
        SimTime::secs(self.usable - self.in_life)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_jobs_never_roll_over() {
        let mut lm = LifetimeManager::with_overhead(SimTime::secs(5.0));
        let mut total = SimTime::ZERO;
        for _ in 0..10 {
            total += lm.charge(SimTime::secs(60.0));
        }
        assert_eq!(lm.reinvocations(), 0);
        assert_eq!(total, SimTime::secs(600.0), "no overhead injected");
    }

    #[test]
    fn crossing_boundary_injects_overhead() {
        let overhead = SimTime::secs(5.0);
        let mut lm = LifetimeManager::new(SimTime::secs(0.0), overhead);
        // 900s usable; a 1000s total crosses once.
        let wall = lm.charge(SimTime::secs(1_000.0));
        assert_eq!(lm.reinvocations(), 1);
        let expected = 1_000.0 + 5.0 + INVOKE_LATENCY.as_secs();
        assert!((wall.as_secs() - expected).abs() < 1e-9, "{wall}");
    }

    #[test]
    fn many_rounds_roll_over_repeatedly() {
        let mut lm = LifetimeManager::new(SimTime::secs(0.0), SimTime::secs(2.0));
        // 100 rounds × 100 s = 10 000 s of work -> 11 boundaries at 900 s.
        let mut wall = SimTime::ZERO;
        for _ in 0..100 {
            wall += lm.charge(SimTime::secs(100.0));
        }
        assert_eq!(lm.reinvocations(), 11);
        let expected = 10_000.0 + 11.0 * (2.0 + INVOKE_LATENCY.as_secs());
        assert!((wall.as_secs() - expected).abs() < 1e-6);
    }

    #[test]
    fn margin_shrinks_usable_life() {
        let lm = LifetimeManager::new(SimTime::secs(100.0), SimTime::ZERO);
        assert_eq!(lm.remaining(), SimTime::secs(800.0));
        assert!(lm.would_rollover(SimTime::secs(801.0)));
        assert!(!lm.would_rollover(SimTime::secs(799.0)));
    }

    #[test]
    fn segment_longer_than_lifetime_splits() {
        let mut lm = LifetimeManager::new(SimTime::secs(0.0), SimTime::secs(1.0));
        let wall = lm.charge(SimTime::secs(2_000.0));
        assert_eq!(lm.reinvocations(), 2);
        assert!(wall.as_secs() > 2_000.0);
    }

    #[test]
    #[should_panic]
    fn absurd_margin_rejected() {
        LifetimeManager::new(SimTime::secs(900.0), SimTime::ZERO);
    }
}
