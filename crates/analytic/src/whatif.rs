//! §5.3.1's case studies: future-infrastructure what-ifs.
//!
//! The paper uses the analytical model to ask how the tradeoff shifts if
//! (Q1) the Lambda↔VM path reached 10 Gbps (and Lambda offered GPUs at
//! IaaS-comparable pricing), and (Q2) the training data were already "hot"
//! inside a VM rather than on S3. A [`Scenario`] is a small closed-form
//! time/cost description of one system configuration under one such regime.

use lml_iaas::param_server::LAMBDA_TO_VM_BW;
use lml_sim::{Cost, SimTime};

/// A closed-form system configuration for what-if exploration.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    pub workers: usize,
    /// Start-up seconds.
    pub startup: f64,
    /// Per-worker data-loading seconds.
    pub load: f64,
    /// Epochs to converge.
    pub epochs: f64,
    /// Communication rounds per epoch.
    pub rounds_per_epoch: f64,
    /// Seconds per communication round.
    pub comm_round: f64,
    /// Per-worker compute seconds per epoch.
    pub compute_per_epoch: f64,
    /// Billed rate, $/s, while workers execute (Lambda) or while the
    /// cluster exists (EC2) — see `bills_startup`.
    pub rate_per_s: f64,
    /// Whether the start-up window is billed (IaaS yes, FaaS no).
    pub bills_startup: bool,
}

impl Scenario {
    /// End-to-end runtime.
    pub fn time(&self) -> SimTime {
        SimTime::secs(
            self.startup
                + self.load
                + self.epochs * (self.rounds_per_epoch * self.comm_round + self.compute_per_epoch),
        )
    }

    /// End-to-end dollars.
    pub fn cost(&self) -> Cost {
        let billed = if self.bills_startup {
            self.time().as_secs()
        } else {
            self.time().as_secs() - self.startup
        };
        Cost::usd(self.rate_per_s * billed)
    }

    /// Q1: replace this scenario's Lambda↔VM communication with a 10 Gbps
    /// path — communication time shrinks by the bandwidth ratio on the
    /// wire-bound share of each round. `wire_share` is the fraction of
    /// `comm_round` that is network transfer (the rest is serialization,
    /// which the paper shows does not improve).
    pub fn with_10gbps(&self, wire_share: f64) -> Scenario {
        assert!((0.0..=1.0).contains(&wire_share));
        let speedup = 1_250e6 / LAMBDA_TO_VM_BW;
        let new_round =
            self.comm_round * (1.0 - wire_share) + self.comm_round * wire_share / speedup;
        Scenario {
            name: format!("{}-10Gbps", self.name),
            comm_round: new_round,
            ..self.clone()
        }
    }

    /// Q2: the data is hot inside one powerful VM; loading happens over
    /// that VM's NIC (shared by all readers) instead of S3.
    pub fn with_hot_data(
        &self,
        partition_bytes: f64,
        host_nic_bps: f64,
        reader_bps: f64,
    ) -> Scenario {
        let per_reader = reader_bps.min(host_nic_bps / self.workers as f64);
        Scenario {
            name: format!("{}-hot", self.name),
            load: partition_bytes / per_reader,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hybrid_mn() -> Scenario {
        // HybridPS training MobileNet: serialization-bound rounds.
        Scenario {
            name: "HybridPS".into(),
            workers: 10,
            startup: 121.0,
            load: 2.0,
            epochs: 15.0,
            rounds_per_epoch: 42.0,
            comm_round: 8.0,
            compute_per_epoch: 170.0,
            rate_per_s: 10.0 * 3.008 * lml_faas::lambda::PRICE_PER_GB_SECOND,
            bills_startup: false,
        }
    }

    #[test]
    fn time_and_cost_compose() {
        let s = hybrid_mn();
        let t = s.time().as_secs();
        assert!((t - (121.0 + 2.0 + 15.0 * (42.0 * 8.0 + 170.0))).abs() < 1e-9);
        assert!(s.cost().as_usd() > 0.0);
    }

    #[test]
    fn q1_10gbps_helps_but_serialization_still_binds() {
        // §5.3.1: with 10 Gbps the hybrid improves but stays bounded by
        // serialization — only the wire share shrinks.
        let base = hybrid_mn();
        let fast = base.with_10gbps(0.3);
        assert!(fast.time() < base.time());
        let improvement = base.time().as_secs() / fast.time().as_secs();
        assert!(improvement < 2.0, "bounded improvement, got {improvement}x");
    }

    #[test]
    fn q2_hot_data_punishes_faas_readers() {
        // FaaS reads hot data at the 70 MB/s Lambda↔VM path; an EC2 reader
        // gets the VM network. Same partition, very different load times.
        let partition = 655e6; // YFCC100M / 100 workers
        let faas = hybrid_mn().with_hot_data(partition, 1_250e6, LAMBDA_TO_VM_BW);
        let iaas = hybrid_mn().with_hot_data(partition, 1_250e6, 120e6);
        assert!(
            faas.load > iaas.load,
            "faas {} vs iaas {}",
            faas.load,
            iaas.load
        );
    }

    #[test]
    fn host_nic_caps_parallel_readers() {
        let partition = 100e6;
        let few = Scenario {
            workers: 2,
            ..hybrid_mn()
        }
        .with_hot_data(partition, 1_250e6, 120e6);
        let many = Scenario {
            workers: 100,
            ..hybrid_mn()
        }
        .with_hot_data(partition, 1_250e6, 120e6);
        assert!(many.load > few.load, "100 readers share the NIC");
    }

    #[test]
    fn faas_does_not_bill_startup() {
        let mut s = hybrid_mn();
        s.bills_startup = false;
        let unbilled = s.cost();
        s.bills_startup = true;
        let billed = s.cost();
        assert!(billed > unbilled);
    }
}
