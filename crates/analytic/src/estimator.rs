//! The sampling-based epoch estimator (§5.3, after Kaoudi et al. \[54\]).
//!
//! To use the analytical model predictively one needs `R` — the number of
//! epochs to the target loss. The paper runs the training algorithm on a
//! 10% sample and takes the observed epochs-to-threshold as the estimate.
//! Figure 13b validates exactly this procedure; we implement it by running
//! the real algorithm (single aggregation domain — statistics of a sampled
//! run converge like the full run's) without any simulated infrastructure.

use lml_data::generators::DatasetId;
use lml_data::transform::train_valid_split;
use lml_models::ModelId;
use lml_optim::algorithm::{sum_statistics, Algorithm, WorkerState};

/// Result of one estimation run.
#[derive(Debug, Clone, Copy)]
pub struct EpochEstimate {
    /// Estimated epochs to reach the threshold (the cap when not reached).
    pub epochs: f64,
    /// Whether the threshold was actually reached on the sample.
    pub reached: bool,
    /// Final loss observed on the sample's validation split.
    pub final_loss: f64,
}

/// Estimate epochs-to-threshold by training on a `sample_frac` subsample of
/// the (already scaled) dataset.
// The argument list mirrors the §5.3 estimator inputs one-to-one; bundling
// them into a struct would just rename the same eight knobs.
#[allow(clippy::too_many_arguments)]
pub fn estimate_epochs(
    dataset: DatasetId,
    model_id: ModelId,
    algo: Algorithm,
    lr: f64,
    threshold: f64,
    sample_frac: f64,
    max_epochs: usize,
    seed: u64,
) -> EpochEstimate {
    assert!(sample_frac > 0.0 && sample_frac <= 1.0);
    let full = dataset.generate(seed);
    let rows = ((full.data.len() as f64 * sample_frac) as usize).max(50);
    let sampled = dataset.generate_rows(rows, seed ^ 0x5A17);
    let (train, valid) = train_valid_split(&sampled.data, 0.9, seed);

    // Preserve iterations-per-epoch on the subsample: scale the mini-batch
    // with the sample fraction (what the paper's sampled runs do — epochs
    // only transfer between scales when the round structure matches).
    let scale_batch = |b: usize| ((b as f64 * sample_frac).round() as usize).max(1);
    let algo = match algo {
        Algorithm::GaSgd { batch } => Algorithm::GaSgd {
            batch: scale_batch(batch),
        },
        Algorithm::MaSgd { batch, local_iters } => Algorithm::MaSgd {
            batch: scale_batch(batch),
            local_iters,
        },
        Algorithm::Admm {
            rho,
            local_scans,
            batch,
        } => Algorithm::Admm {
            rho,
            local_scans,
            batch: scale_batch(batch),
        },
        Algorithm::Em => Algorithm::Em,
    };

    let model = model_id.build(&train, seed);
    let n_workers = 4; // estimation runs on a small local degree
    let parts = lml_data::partition::partition_rows(train.len(), n_workers);
    let batch = algo.batch_size(parts[0].len());
    let mut workers: Vec<WorkerState> = parts
        .iter()
        .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), batch))
        .collect();

    let part_len = parts[0].len() as f64;
    let mut epochs = 0.0;
    let mut loss = f64::INFINITY;
    while epochs < max_epochs as f64 {
        let mut stats = Vec::with_capacity(n_workers);
        let mut ex0 = 0u64;
        for w in workers.iter_mut() {
            let (s, ex) = w.produce(&algo, &train, lr);
            ex0 = ex0.max(ex);
            stats.push(s);
        }
        let agg = sum_statistics(&stats);
        for w in workers.iter_mut() {
            w.consume(&algo, &agg, n_workers, lr);
        }
        epochs += ex0 as f64 / part_len;
        loss = workers[0].eval_model(&algo).full_loss(&valid);
        if loss <= threshold {
            return EpochEstimate {
                epochs,
                reached: true,
                final_loss: loss,
            };
        }
    }
    EpochEstimate {
        epochs,
        reached: false,
        final_loss: loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_lr_higgs_epochs() {
        let est = estimate_epochs(
            DatasetId::Higgs,
            ModelId::Lr { l2: 0.0 },
            Algorithm::Admm {
                rho: 0.1,
                local_scans: 2,
                batch: 100,
            },
            0.3,
            0.68,
            0.1,
            40,
            42,
        );
        assert!(est.reached, "loss {}", est.final_loss);
        assert!(est.epochs > 0.0 && est.epochs < 40.0);
    }

    #[test]
    fn sample_estimate_tracks_full_run_figure13b() {
        // The 10% estimate must land within ~2.5× of the full-data epochs —
        // the predictive quality Figure 13b demonstrates.
        let run = |frac: f64| {
            estimate_epochs(
                DatasetId::Higgs,
                ModelId::Lr { l2: 0.0 },
                Algorithm::GaSgd { batch: 500 },
                0.5,
                0.67,
                frac,
                60,
                7,
            )
        };
        let sample = run(0.1);
        let full = run(1.0);
        assert!(sample.reached && full.reached);
        let ratio = sample.epochs / full.epochs;
        assert!(
            (0.4..2.5).contains(&ratio),
            "sample {} vs full {}",
            sample.epochs,
            full.epochs
        );
    }

    #[test]
    fn unreachable_threshold_reports_cap() {
        let est = estimate_epochs(
            DatasetId::Higgs,
            ModelId::Lr { l2: 0.0 },
            Algorithm::GaSgd { batch: 500 },
            0.5,
            0.0, // impossible target
            0.05,
            3,
            1,
        );
        assert!(!est.reached);
        assert!(est.epochs >= 3.0);
    }
}
