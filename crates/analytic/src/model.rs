//! The FaaS(w) / IaaS(w) formulas.

use crate::constants;
use lml_sim::{Cost, SimTime};

/// Workload-level inputs of the analytical model.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticParams {
    /// Dataset size `s` in bytes.
    pub dataset_bytes: f64,
    /// Model/statistic size `m` in bytes.
    pub model_bytes: f64,
    /// Epochs to converge with one worker (`R`).
    pub epochs: f64,
    /// Communication rounds per epoch (`ρ`): 1 for MA/EM, iterations per
    /// epoch for GA-SGD, 1/local_scans for ADMM.
    pub rounds_per_epoch: f64,
    /// Single-worker compute seconds per epoch (`C`).
    pub compute_per_epoch: f64,
}

/// Infrastructure-level inputs: which channel/network and worker pricing.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticCase {
    /// Channel bandwidth `B` (bytes/s): S3/ElastiCache for FaaS, VM network
    /// for IaaS.
    pub bandwidth: f64,
    /// Channel latency `L` (s).
    pub latency: f64,
    /// Worker price per second (Lambda GB-s rate or instance hourly/3600).
    pub worker_price_per_s: f64,
}

impl AnalyticCase {
    /// FaaS over S3 with 3 GB functions.
    pub fn faas_s3() -> Self {
        AnalyticCase {
            bandwidth: constants::B_S3,
            latency: constants::L_S3,
            worker_price_per_s: 3.008 * lml_faas::lambda::PRICE_PER_GB_SECOND,
        }
    }

    /// FaaS over ElastiCache (cache.t3.medium).
    pub fn faas_elasticache() -> Self {
        AnalyticCase {
            bandwidth: constants::B_EC_T3,
            latency: constants::L_EC,
            ..Self::faas_s3()
        }
    }

    /// IaaS on t2.medium.
    pub fn iaas_t2() -> Self {
        AnalyticCase {
            bandwidth: constants::B_N_T2,
            latency: constants::L_N_T2,
            worker_price_per_s: 0.0464 / 3600.0,
        }
    }

    /// IaaS on c5.large.
    pub fn iaas_c5() -> Self {
        AnalyticCase {
            bandwidth: constants::B_N_C5,
            latency: constants::L_N_C5,
            worker_price_per_s: 0.085 / 3600.0,
        }
    }
}

/// Convergence scaling factor `f(w)` — more workers can need more epochs.
/// The paper's validation uses perfect scaling (`f ≡ 1`) with measured `R`;
/// `sqrt_degradation` models workloads that scale poorly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scaling {
    Perfect,
    /// `f(w) = w^alpha` — statistical-efficiency loss with more workers.
    Power {
        alpha: f64,
    },
}

impl Scaling {
    pub fn f(&self, w: usize) -> f64 {
        match *self {
            Scaling::Perfect => 1.0,
            Scaling::Power { alpha } => (w as f64).powf(alpha),
        }
    }
}

/// `FaaS(w)`: start-up + loading + R·f(w)·(ρ·(3w−2)(m/w/B + L) + C/w).
pub fn faas_time(p: &AnalyticParams, c: &AnalyticCase, scaling: Scaling, w: usize) -> SimTime {
    assert!(w >= 1);
    let startup = constants::t_f().eval(w as f64);
    let load = p.dataset_bytes / w as f64 / constants::B_S3;
    let comm_per_round =
        (3.0 * w as f64 - 2.0) * (p.model_bytes / w as f64 / c.bandwidth + c.latency);
    let per_epoch = p.rounds_per_epoch * comm_per_round + p.compute_per_epoch / w as f64;
    SimTime::secs(startup + load + p.epochs * scaling.f(w) * per_epoch)
}

/// `IaaS(w)`: start-up + loading + R·f(w)·(ρ·(2w−2)(m/w/B_n + L_n) + C/w).
pub fn iaas_time(p: &AnalyticParams, c: &AnalyticCase, scaling: Scaling, w: usize) -> SimTime {
    assert!(w >= 1);
    let startup = constants::t_i().eval(w as f64);
    let load = p.dataset_bytes / w as f64 / constants::B_S3;
    let comm_per_round =
        (2.0 * w as f64 - 2.0) * (p.model_bytes / w as f64 / c.bandwidth + c.latency);
    let per_epoch = p.rounds_per_epoch * comm_per_round + p.compute_per_epoch / w as f64;
    SimTime::secs(startup + load + p.epochs * scaling.f(w) * per_epoch)
}

/// Dollar cost: `w × price × time` — FaaS bills only execution (time minus
/// start-up), IaaS bills wall time including start-up.
pub fn faas_cost(p: &AnalyticParams, c: &AnalyticCase, scaling: Scaling, w: usize) -> Cost {
    let t = faas_time(p, c, scaling, w).as_secs() - constants::t_f().eval(w as f64);
    Cost::usd(w as f64 * c.worker_price_per_s * t)
}

/// IaaS dollar cost (bills through start-up).
pub fn iaas_cost(p: &AnalyticParams, c: &AnalyticCase, scaling: Scaling, w: usize) -> Cost {
    let t = iaas_time(p, c, scaling, w).as_secs();
    Cost::usd(w as f64 * c.worker_price_per_s * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LR on Higgs with ADMM-ish communication: ρ = 0.1 rounds/epoch,
    /// R ≈ 6 epochs, C ≈ 70 s/epoch on one worker-equivalent.
    fn lr_higgs() -> AnalyticParams {
        AnalyticParams {
            dataset_bytes: 8e9,
            model_bytes: 224.0,
            epochs: 6.0,
            rounds_per_epoch: 0.1,
            compute_per_epoch: 70.0,
        }
    }

    /// MobileNet on Cifar10 with GA-SGD: ρ = 422 rounds/epoch (54 K / 128),
    /// heavy 12 MB messages.
    fn mn_cifar() -> AnalyticParams {
        AnalyticParams {
            dataset_bytes: 220e6,
            model_bytes: 12e6,
            epochs: 15.0,
            rounds_per_epoch: 422.0,
            compute_per_epoch: 1700.0,
        }
    }

    #[test]
    fn faas_wins_communication_light_workloads() {
        // LR/Higgs: tiny model, few rounds — the FaaS start-up edge decides.
        let p = lr_higgs();
        let f = faas_time(&p, &AnalyticCase::faas_s3(), Scaling::Perfect, 10);
        let i = iaas_time(&p, &AnalyticCase::iaas_t2(), Scaling::Perfect, 10);
        assert!(f < i, "FaaS {f} vs IaaS {i}");
    }

    #[test]
    fn iaas_wins_communication_heavy_workloads() {
        // MN/Cifar10: 422 rounds/epoch of 12 MB — the (3w−2) storage-hop
        // penalty at 65 MB/s buries FaaS.
        let p = mn_cifar();
        let f = faas_time(&p, &AnalyticCase::faas_s3(), Scaling::Perfect, 10);
        let i = iaas_time(&p, &AnalyticCase::iaas_t2(), Scaling::Perfect, 10);
        assert!(i < f, "IaaS {i} vs FaaS {f}");
    }

    #[test]
    fn faas_is_not_proportionally_cheaper() {
        // Even when FaaS is much faster it is never much cheaper (§1).
        let p = lr_higgs();
        let fc = faas_cost(&p, &AnalyticCase::faas_s3(), Scaling::Perfect, 10).as_usd();
        let ic = iaas_cost(&p, &AnalyticCase::iaas_t2(), Scaling::Perfect, 10).as_usd();
        assert!(fc > 0.2 * ic, "FaaS ${fc} vs IaaS ${ic}");
    }

    #[test]
    fn adding_workers_has_diminishing_returns_then_hurts() {
        let p = mn_cifar();
        let c = AnalyticCase::faas_s3();
        let t10 = faas_time(&p, &c, Scaling::Perfect, 10);
        let t50 = faas_time(&p, &c, Scaling::Perfect, 50);
        let t200 = faas_time(&p, &c, Scaling::Perfect, 200);
        // communication term grows with w: large fleets lose
        assert!(t50 > t10 || t200 > t50, "{t10} {t50} {t200}");
    }

    #[test]
    fn elasticache_beats_s3_per_round_in_the_model() {
        let p = mn_cifar();
        let s3 = faas_time(&p, &AnalyticCase::faas_s3(), Scaling::Perfect, 10);
        let ec = faas_time(&p, &AnalyticCase::faas_elasticache(), Scaling::Perfect, 10);
        assert!(ec < s3);
    }

    #[test]
    fn scaling_degradation_raises_time() {
        let p = lr_higgs();
        let c = AnalyticCase::faas_s3();
        let perfect = faas_time(&p, &c, Scaling::Perfect, 50);
        let degraded = faas_time(&p, &c, Scaling::Power { alpha: 0.3 }, 50);
        assert!(degraded > perfect);
    }
}
