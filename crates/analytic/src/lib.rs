//! # lml-analytic — the paper's analytical model (§5.3)
//!
//! Captures the FaaS/IaaS cost-performance tradeoff in closed form:
//!
//! ```text
//! FaaS(w) = t_F(w) + s/B_S3 + R_F·f_F(w)·[ ρ·(3w−2)(m/w/B + L) + C_F/w ]
//! IaaS(w) = t_I(w) + s/B_S3 + R_I·f_I(w)·[ ρ·(2w−2)(m/w/B_n + L_n) + C_I/w ]
//! ```
//!
//! (ρ = communication rounds per epoch; the paper's formula absorbs it into
//! R.) The green/red terms of the paper map to: FaaS wins start-up, IaaS
//! wins communication — `(3w−2)` vs `(2w−2)` because a storage service
//! cannot compute, so the merged state makes one extra hop.
//!
//! * [`constants`] — Table 6 as code.
//! * [`model`] — the two formulas plus dollar versions.
//! * [`estimator`] — the sampling-based epoch estimator (after Kaoudi et
//!   al. \[54\]): train on 10% of the data, observe epochs-to-threshold.
//! * [`whatif`] — §5.3.1's case studies: Q1 (10 Gbps FaaS↔IaaS, GPU
//!   Lambda pricing) and Q2 (hot data).

#![forbid(unsafe_code)]

pub mod constants;
pub mod estimator;
pub mod model;
pub mod whatif;

pub use estimator::estimate_epochs;
pub use model::{AnalyticCase, AnalyticParams};
pub use whatif::Scenario;
