//! Table 6 of the paper, as code.
//!
//! The measured constants of the analytical model. The simulator's service
//! profiles are built from the same numbers; the `table6_constants`
//! experiment binary re-measures them *from the simulator* and prints both
//! columns side by side, closing the calibration loop.

use lml_faas::startup::startup_table;
use lml_iaas::cluster::iaas_startup_table;
use lml_sim::PiecewiseLinear;

/// One Table 6 row: symbol, configuration, mean value, spread.
#[derive(Debug, Clone)]
pub struct Constant {
    pub symbol: &'static str,
    pub config: &'static str,
    pub mean: f64,
    pub spread: f64,
    pub unit: &'static str,
}

/// `t_F(w)` — FaaS start-up (seconds at 10/50/100/200 workers). Returns
/// the process-wide cached table: this sits on the simulator's hot path.
pub fn t_f() -> &'static PiecewiseLinear {
    startup_table()
}

/// `t_I(w)` — IaaS start-up. Returns the process-wide cached table.
pub fn t_i() -> &'static PiecewiseLinear {
    iaas_startup_table()
}

/// S3 bandwidth, bytes/s.
pub const B_S3: f64 = 65e6;
/// S3 latency, seconds.
pub const L_S3: f64 = 8e-2;
/// EBS (gp2) bandwidth.
pub const B_EBS: f64 = 1_950e6;
/// EBS latency.
pub const L_EBS: f64 = 3e-5;
/// VM network bandwidth, t2.medium↔t2.medium.
pub const B_N_T2: f64 = 120e6;
/// VM network latency, t2.
pub const L_N_T2: f64 = 5e-4;
/// VM network bandwidth, c5.large↔c5.large.
pub const B_N_C5: f64 = 225e6;
/// VM network latency, c5.
pub const L_N_C5: f64 = 1.5e-4;
/// ElastiCache bandwidth, cache.t3.medium.
pub const B_EC_T3: f64 = 630e6;
/// ElastiCache bandwidth, cache.m5.large.
pub const B_EC_M5: f64 = 1_260e6;
/// ElastiCache latency.
pub const L_EC: f64 = 1e-2;

/// The full Table 6, row by row (paper means and spreads).
pub fn table6() -> Vec<Constant> {
    vec![
        Constant {
            symbol: "t_F(w)",
            config: "w=10",
            mean: 1.2,
            spread: 0.1,
            unit: "s",
        },
        Constant {
            symbol: "t_F(w)",
            config: "w=50",
            mean: 11.0,
            spread: 1.0,
            unit: "s",
        },
        Constant {
            symbol: "t_F(w)",
            config: "w=100",
            mean: 18.0,
            spread: 1.0,
            unit: "s",
        },
        Constant {
            symbol: "t_F(w)",
            config: "w=200",
            mean: 35.0,
            spread: 3.0,
            unit: "s",
        },
        Constant {
            symbol: "t_I(w)",
            config: "w=10",
            mean: 132.0,
            spread: 6.0,
            unit: "s",
        },
        Constant {
            symbol: "t_I(w)",
            config: "w=50",
            mean: 160.0,
            spread: 5.0,
            unit: "s",
        },
        Constant {
            symbol: "t_I(w)",
            config: "w=100",
            mean: 292.0,
            spread: 8.0,
            unit: "s",
        },
        Constant {
            symbol: "t_I(w)",
            config: "w=200",
            mean: 606.0,
            spread: 12.0,
            unit: "s",
        },
        Constant {
            symbol: "B_S3",
            config: "Amazon S3",
            mean: 65.0,
            spread: 7.0,
            unit: "MB/s",
        },
        Constant {
            symbol: "B_EBS",
            config: "gp2",
            mean: 1950.0,
            spread: 50.0,
            unit: "MB/s",
        },
        Constant {
            symbol: "B_n",
            config: "t2.medium-t2.medium",
            mean: 120.0,
            spread: 6.0,
            unit: "MB/s",
        },
        Constant {
            symbol: "B_n",
            config: "c5.large-c5.large",
            mean: 225.0,
            spread: 8.0,
            unit: "MB/s",
        },
        Constant {
            symbol: "B_EC",
            config: "cache.t3.medium",
            mean: 630.0,
            spread: 25.0,
            unit: "MB/s",
        },
        Constant {
            symbol: "B_EC",
            config: "cache.m5.large",
            mean: 1260.0,
            spread: 35.0,
            unit: "MB/s",
        },
        Constant {
            symbol: "L_S3",
            config: "Amazon S3",
            mean: 8e-2,
            spread: 2e-2,
            unit: "s",
        },
        Constant {
            symbol: "L_EBS",
            config: "gp2",
            mean: 3e-5,
            spread: 0.5e-5,
            unit: "s",
        },
        Constant {
            symbol: "L_n",
            config: "t2.medium-t2.medium",
            mean: 5e-4,
            spread: 1e-4,
            unit: "s",
        },
        Constant {
            symbol: "L_n",
            config: "c5.large-c5.large",
            mean: 1.5e-4,
            spread: 0.2e-4,
            unit: "s",
        },
        Constant {
            symbol: "L_EC",
            config: "cache.t3.medium",
            mean: 1e-2,
            spread: 0.2e-2,
            unit: "s",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_tables_hit_table6_knots() {
        assert!((t_f().eval(10.0) - 1.2).abs() < 1e-9);
        assert!((t_i().eval(100.0) - 292.0).abs() < 1e-9);
    }

    #[test]
    fn table6_is_complete() {
        let t = table6();
        assert_eq!(t.len(), 19);
        assert!(t.iter().any(|c| c.symbol == "B_EC" && c.mean == 630.0));
    }

    #[test]
    fn profile_constants_agree_with_simulator() {
        // The simulator's S3 profile must match Table 6 (single source of
        // truth check).
        let s3 = lml_storage::ServiceProfile::s3();
        assert_eq!(s3.stream_bw, B_S3);
        assert_eq!(s3.latency.as_secs(), L_S3);
        let mc = lml_storage::ServiceProfile::memcached(lml_storage::CacheNode::T3Medium);
        assert_eq!(mc.stream_bw, B_EC_T3);
        assert_eq!(mc.latency.as_secs(), L_EC);
    }
}
