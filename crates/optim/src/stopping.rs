//! Stopping criteria and loss-curve recording.
//!
//! The paper's end-to-end metric is "wall-clock time (or dollars) to reach a
//! target loss" (§1, principle 2). [`StopSpec`] encodes a target plus
//! safety bounds; [`LossCurve`] records `(time, epoch, rounds, loss)` points
//! that the figure binaries print.

use lml_sim::{Cost, SimTime};

/// When to stop a training job.
#[derive(Debug, Clone, Copy)]
pub struct StopSpec {
    /// Stop once validation loss is at or below this value.
    pub target_loss: f64,
    /// Hard cap on data epochs.
    pub max_epochs: usize,
    /// Hard cap on virtual time.
    pub max_time: SimTime,
}

impl StopSpec {
    pub fn new(target_loss: f64, max_epochs: usize) -> Self {
        StopSpec {
            target_loss,
            max_epochs,
            max_time: SimTime::hours(48.0),
        }
    }

    pub fn with_max_time(mut self, t: SimTime) -> Self {
        self.max_time = t;
        self
    }

    /// Has the job met its target?
    pub fn converged(&self, loss: f64) -> bool {
        loss <= self.target_loss
    }

    /// Must the job halt regardless of loss?
    pub fn exhausted(&self, epoch: f64, time: SimTime) -> bool {
        epoch >= self.max_epochs as f64 || time.as_secs() >= self.max_time.as_secs()
    }
}

/// One observation on the convergence curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Virtual wall-clock time since job submission.
    pub time: SimTime,
    /// Data epochs completed (fractional under GA-SGD's per-batch rounds).
    pub epoch: f64,
    /// Communication rounds completed.
    pub rounds: u64,
    /// Validation loss.
    pub loss: f64,
    /// Dollars spent so far.
    pub cost: Cost,
}

/// The recorded convergence trajectory of one run.
#[derive(Debug, Clone, Default)]
pub struct LossCurve {
    points: Vec<CurvePoint>,
}

impl LossCurve {
    pub fn new() -> Self {
        LossCurve::default()
    }

    pub fn push(&mut self, p: CurvePoint) {
        debug_assert!(p.time.is_valid());
        self.points.push(p);
    }

    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last(&self) -> Option<&CurvePoint> {
        self.points.last()
    }

    /// Final loss (∞ when nothing was recorded).
    pub fn final_loss(&self) -> f64 {
        self.points.last().map_or(f64::INFINITY, |p| p.loss)
    }

    /// First time at which the loss reached `target`, if ever.
    pub fn time_to_loss(&self, target: f64) -> Option<SimTime> {
        self.points
            .iter()
            .find(|p| p.loss <= target)
            .map(|p| p.time)
    }

    /// First round count at which the loss reached `target` — the paper's
    /// "# communications" axis in Figure 7.
    pub fn rounds_to_loss(&self, target: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.loss <= target)
            .map(|p| p.rounds)
    }

    /// Best (minimum) loss seen.
    pub fn best_loss(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.loss)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest absolute loss change between consecutive points over the last
    /// `window` points — the instability measure used to compare
    /// synchronous vs asynchronous convergence (Figure 8).
    pub fn tail_oscillation(&self, window: usize) -> f64 {
        let pts = &self.points;
        if pts.len() < 2 {
            return 0.0;
        }
        let start = pts.len().saturating_sub(window.max(2));
        pts[start..]
            .windows(2)
            .map(|w| (w[1].loss - w[0].loss).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t: f64, loss: f64) -> CurvePoint {
        CurvePoint {
            time: SimTime::secs(t),
            epoch: t,
            rounds: t as u64,
            loss,
            cost: Cost::ZERO,
        }
    }

    #[test]
    fn stop_spec_converged_and_exhausted() {
        let s = StopSpec::new(0.66, 10).with_max_time(SimTime::secs(100.0));
        assert!(s.converged(0.65));
        assert!(!s.converged(0.7));
        assert!(s.exhausted(10.0, SimTime::ZERO));
        assert!(s.exhausted(0.0, SimTime::secs(100.0)));
        assert!(!s.exhausted(9.9, SimTime::secs(99.0)));
    }

    #[test]
    fn curve_time_and_rounds_to_loss() {
        let mut c = LossCurve::new();
        for (t, l) in [(1.0, 0.9), (2.0, 0.7), (3.0, 0.6), (4.0, 0.55)] {
            c.push(point(t, l));
        }
        assert_eq!(c.time_to_loss(0.65), Some(SimTime::secs(3.0)));
        assert_eq!(c.rounds_to_loss(0.65), Some(3));
        assert_eq!(c.time_to_loss(0.1), None);
        assert_eq!(c.final_loss(), 0.55);
        assert_eq!(c.best_loss(), 0.55);
    }

    #[test]
    fn empty_curve_is_safe() {
        let c = LossCurve::new();
        assert!(c.final_loss().is_infinite());
        assert_eq!(c.time_to_loss(1.0), None);
        assert_eq!(c.tail_oscillation(5), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn oscillation_detects_instability() {
        let mut stable = LossCurve::new();
        let mut unstable = LossCurve::new();
        for i in 0..20 {
            stable.push(point(i as f64, 1.0 / (1.0 + i as f64)));
            // diverging oscillation, like async training with staleness
            unstable.push(point(i as f64, 0.5 + if i % 2 == 0 { 0.4 } else { -0.1 }));
        }
        assert!(unstable.tail_oscillation(10) > 10.0 * stable.tail_oscillation(10));
    }
}
