//! # lml-optim — optimization algorithms for LambdaML-rs
//!
//! The paper's design-space axis (1): the distributed optimization algorithm
//! (§3.2.1). This crate implements the per-worker math and the aggregation
//! semantics of each algorithm; the executors in `lml-core` wire them to a
//! communication channel and a clock.
//!
//! * [`schedule`] — learning-rate schedules (constant, 1/√T decay — the
//!   paper uses the latter for asynchronous training, after \[104\]).
//! * [`sgd`] — mini-batch SGD steps and batch cursors.
//! * [`algorithm`] — the four distributed algorithms: GA-SGD (gradient
//!   averaging), MA-SGD (model averaging), consensus ADMM, and EM for
//!   k-means, expressed as *statistic producers/consumers*: each round a
//!   worker emits a `Vec<f64>` statistic; statistics sum across workers; the
//!   algorithm turns the aggregate back into a model update.
//! * [`stopping`] — loss-threshold stopping and loss-curve recording.

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod schedule;
pub mod sgd;
pub mod stopping;

pub use algorithm::{Algorithm, WorkerState};
pub use schedule::LrSchedule;
pub use stopping::{CurvePoint, LossCurve, StopSpec};
