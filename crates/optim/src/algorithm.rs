//! Distributed optimization algorithms (§3.2.1 of the paper).
//!
//! Every algorithm fits one mold, mirroring LambdaML's five-step job loop:
//! each round a worker **produces a statistic** (`Vec<f64>`), the
//! communication layer **sums** statistics across workers, and each worker
//! **consumes the aggregate** to update its local model replica:
//!
//! | Algorithm | statistic | consume |
//! |---|---|---|
//! | GA-SGD | mini-batch gradient | `w ← w − lr·(Σg)/n` |
//! | MA-SGD | local model after `local_iters` steps | `w ← (Σw)/n` |
//! | ADMM | `w_i + u_i` after local sub-solve | `z ← Σ(w+u)/n; u += w−z` |
//! | EM (k-means) | per-cluster sums & counts | M-step on Σstats |
//!
//! Summation is the only operation the channel performs, so AllReduce and
//! ScatterReduce apply uniformly.

use crate::sgd::{apply_gradient, BatchCursor};
use lml_data::Dataset;
use lml_models::AnyModel;

/// The paper's distributed optimization algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// SGD with gradient averaging: one communication round per mini-batch
    /// iteration.
    GaSgd { batch: usize },
    /// SGD with model averaging: `local_iters` local mini-batch steps
    /// between communication rounds (the paper syncs once per epoch).
    MaSgd { batch: usize, local_iters: usize },
    /// Consensus ADMM: each round solves a proximal local subproblem with
    /// `local_scans` passes over the partition (the paper uses 10), then
    /// exchanges `w + u`.
    Admm {
        rho: f64,
        local_scans: usize,
        batch: usize,
    },
    /// Expectation-maximization for k-means: one statistics exchange per
    /// epoch.
    Em,
}

impl Algorithm {
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::GaSgd { .. } => "GA-SGD",
            Algorithm::MaSgd { .. } => "MA-SGD",
            Algorithm::Admm { .. } => "ADMM",
            Algorithm::Em => "EM",
        }
    }

    /// Communication rounds per full pass over the data. Fractional for
    /// ADMM (one round covers `local_scans` epochs).
    pub fn rounds_per_epoch(&self, partition_len: usize) -> f64 {
        match *self {
            Algorithm::GaSgd { batch } => {
                (partition_len as f64 / batch.min(partition_len) as f64).ceil()
            }
            Algorithm::MaSgd { batch, local_iters } => {
                let iters = (partition_len as f64 / batch.min(partition_len) as f64).ceil();
                (iters / local_iters as f64).max(1.0 / local_iters as f64)
            }
            Algorithm::Admm { local_scans, .. } => 1.0 / local_scans as f64,
            Algorithm::Em => 1.0,
        }
    }

    /// Mini-batch size a worker's cursor should use, clamped to the
    /// partition (EM scans the whole partition each round).
    pub fn batch_size(&self, partition_len: usize) -> usize {
        let b = match *self {
            Algorithm::GaSgd { batch }
            | Algorithm::MaSgd { batch, .. }
            | Algorithm::Admm { batch, .. } => batch,
            Algorithm::Em => partition_len,
        };
        b.min(partition_len).max(1)
    }

    /// Whether this algorithm is applicable to the model (§4.2: ADMM needs
    /// convexity; EM is k-means-only; SGD needs a gradient).
    pub fn applicable(&self, model: &AnyModel) -> bool {
        match self {
            Algorithm::Admm { .. } => model.is_convex(),
            Algorithm::Em => matches!(model, AnyModel::KMeans(_)),
            _ => !matches!(model, AnyModel::KMeans(_)),
        }
    }
}

/// Per-worker training state: a local model replica plus algorithm scratch.
#[derive(Debug, Clone)]
pub struct WorkerState {
    pub id: usize,
    pub model: AnyModel,
    cursor: BatchCursor,
    grad_buf: Vec<f64>,
    /// ADMM dual variable `u_i`.
    dual: Vec<f64>,
    /// ADMM consensus model `z` after the last round.
    consensus: Vec<f64>,
}

impl WorkerState {
    /// Build worker `id` owning `rows` of `data`, with a replica of `model`.
    pub fn new(id: usize, model: AnyModel, rows: Vec<usize>, batch: usize) -> Self {
        let p = model.param_len();
        WorkerState {
            id,
            cursor: BatchCursor::new(rows, batch),
            grad_buf: vec![0.0; p],
            dual: vec![0.0; p],
            consensus: vec![0.0; p],
            model,
        }
    }

    /// Rows of this worker's partition.
    pub fn partition(&self) -> &[usize] {
        self.cursor.rows()
    }

    pub fn partition_len(&self) -> usize {
        self.cursor.partition_len()
    }

    /// The model whose loss the experiment reports: the consensus `z` for
    /// ADMM, the local replica otherwise.
    pub fn eval_model(&self, algo: &Algorithm) -> AnyModel {
        let mut m = self.model.clone();
        if matches!(algo, Algorithm::Admm { .. }) {
            m.params_mut().copy_from_slice(&self.consensus);
        }
        m
    }

    /// Produce this round's statistic. Returns `(statistic, examples)` where
    /// `examples` is the number of training examples touched (the compute
    /// cost driver for the simulator).
    pub fn produce(&mut self, algo: &Algorithm, data: &Dataset, lr: f64) -> (Vec<f64>, u64) {
        match *algo {
            Algorithm::GaSgd { .. } => {
                let batch = self.cursor.next_batch();
                self.grad_buf.iter_mut().for_each(|g| *g = 0.0);
                self.model.grad(data, &batch, &mut self.grad_buf);
                (self.grad_buf.clone(), batch.len() as u64)
            }
            Algorithm::MaSgd { local_iters, .. } => {
                let mut examples = 0u64;
                for _ in 0..local_iters {
                    let batch = self.cursor.next_batch();
                    examples += batch.len() as u64;
                    crate::sgd::sgd_step(&mut self.model, data, &batch, lr, &mut self.grad_buf);
                }
                (self.model.params().to_vec(), examples)
            }
            Algorithm::Admm {
                rho, local_scans, ..
            } => {
                // Local subproblem: minimize f_i(w) + (ρ/2)‖w − z + u‖² by
                // `local_scans` mini-batch passes over the partition.
                let batches = self.cursor.batches_per_epoch();
                let mut examples = 0u64;
                for _ in 0..local_scans {
                    for _ in 0..batches {
                        let batch = self.cursor.next_batch();
                        examples += batch.len() as u64;
                        self.grad_buf.iter_mut().for_each(|g| *g = 0.0);
                        self.model.grad(data, &batch, &mut self.grad_buf);
                        // + ρ(w − z + u)
                        {
                            let w = self.model.params();
                            for (g, ((&wj, &zj), &uj)) in self
                                .grad_buf
                                .iter_mut()
                                .zip(w.iter().zip(&self.consensus).zip(&self.dual))
                            {
                                *g += rho * (wj - zj + uj);
                            }
                        }
                        let w = self.model.params_mut();
                        for (p, g) in w.iter_mut().zip(&self.grad_buf) {
                            *p -= lr * g;
                        }
                    }
                }
                let msg: Vec<f64> = self
                    .model
                    .params()
                    .iter()
                    .zip(&self.dual)
                    .map(|(w, u)| w + u)
                    .collect();
                (msg, examples)
            }
            Algorithm::Em => {
                let rows = self.cursor.rows().to_vec();
                let n = rows.len() as u64;
                let stats = self.model.em_stats(data, &rows);
                (stats, n)
            }
        }
    }

    /// Consume the cross-worker **sum** of statistics.
    pub fn consume(&mut self, algo: &Algorithm, agg_sum: &[f64], workers: usize, lr: f64) {
        let inv_n = 1.0 / workers as f64;
        match *algo {
            Algorithm::GaSgd { .. } => {
                let mean: Vec<f64> = agg_sum.iter().map(|g| g * inv_n).collect();
                apply_gradient(&mut self.model, &mean, lr);
            }
            Algorithm::MaSgd { .. } => {
                let params = self.model.params_mut();
                for (p, s) in params.iter_mut().zip(agg_sum) {
                    *p = s * inv_n;
                }
            }
            Algorithm::Admm { .. } => {
                for (z, s) in self.consensus.iter_mut().zip(agg_sum) {
                    *z = s * inv_n;
                }
                let w = self.model.params();
                for (d, (&wj, &zj)) in self.dual.iter_mut().zip(w.iter().zip(&self.consensus)) {
                    *d += wj - zj;
                }
            }
            Algorithm::Em => {
                self.model.apply_em_stats(agg_sum);
            }
        }
    }
}

/// Element-wise sum of worker statistics — the reference aggregation the
/// communication patterns must reproduce bit-for-bit.
pub fn sum_statistics(stats: &[Vec<f64>]) -> Vec<f64> {
    assert!(!stats.is_empty());
    let len = stats[0].len();
    let mut out = vec![0.0; len];
    for s in stats {
        assert_eq!(s.len(), len, "statistic length mismatch across workers");
        for (o, v) in out.iter_mut().zip(s) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;
    use lml_data::partition::partition_rows;
    use lml_models::ModelId;

    /// Drive `rounds` synchronous rounds of an algorithm over `n` workers,
    /// returning the final global-model loss on the data.
    fn run_rounds(
        algo: Algorithm,
        model_id: ModelId,
        data: &Dataset,
        n: usize,
        batch: usize,
        lr: f64,
        rounds: usize,
    ) -> f64 {
        let model = model_id.build(data, 7);
        let parts = partition_rows(data.len(), n);
        let mut workers: Vec<WorkerState> = parts
            .iter()
            .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), batch))
            .collect();
        for _ in 0..rounds {
            let stats: Vec<Vec<f64>> = workers
                .iter_mut()
                .map(|w| w.produce(&algo, data, lr).0)
                .collect();
            let agg = sum_statistics(&stats);
            for w in workers.iter_mut() {
                w.consume(&algo, &agg, n, lr);
            }
        }
        workers[0].eval_model(&algo).full_loss(data)
    }

    use lml_data::Dataset;

    #[test]
    fn ga_sgd_converges_on_higgs() {
        let data = DatasetId::Higgs.generate_rows(2_000, 42).data;
        let loss = run_rounds(
            Algorithm::GaSgd { batch: 100 },
            ModelId::Lr { l2: 0.0 },
            &data,
            4,
            100,
            0.5,
            100,
        );
        assert!(loss < 0.67, "GA-SGD loss {loss}");
    }

    #[test]
    fn ma_sgd_converges_on_higgs() {
        let data = DatasetId::Higgs.generate_rows(2_000, 42).data;
        let loss = run_rounds(
            Algorithm::MaSgd {
                batch: 100,
                local_iters: 5,
            },
            ModelId::Lr { l2: 0.0 },
            &data,
            4,
            100,
            0.5,
            20,
        );
        assert!(loss < 0.67, "MA-SGD loss {loss}");
    }

    #[test]
    fn admm_converges_in_few_rounds() {
        let data = DatasetId::Higgs.generate_rows(2_000, 42).data;
        let loss = run_rounds(
            Algorithm::Admm {
                rho: 0.1,
                local_scans: 2,
                batch: 100,
            },
            ModelId::Lr { l2: 0.0 },
            &data,
            4,
            100,
            0.3,
            5,
        );
        assert!(loss < 0.67, "ADMM loss after 5 rounds {loss}");
    }

    #[test]
    fn admm_beats_ga_sgd_per_round_figure7_shape() {
        // Figure 7a: at equal communication-round budgets, ADMM reaches a
        // lower loss than GA-SGD — the paper's headline algorithm insight.
        let data = DatasetId::Higgs.generate_rows(2_000, 1).data;
        let rounds = 5;
        let ga = run_rounds(
            Algorithm::GaSgd { batch: 100 },
            ModelId::Lr { l2: 0.0 },
            &data,
            4,
            100,
            0.5,
            rounds,
        );
        let admm = run_rounds(
            Algorithm::Admm {
                rho: 0.1,
                local_scans: 2,
                batch: 100,
            },
            ModelId::Lr { l2: 0.0 },
            &data,
            4,
            100,
            0.3,
            rounds,
        );
        assert!(
            admm < ga,
            "ADMM {admm} should beat GA-SGD {ga} at {rounds} rounds"
        );
    }

    #[test]
    fn em_distributed_equals_single_machine() {
        // Summed sufficient statistics make distributed EM bit-identical to
        // single-machine EM.
        let data = DatasetId::Higgs.generate_rows(600, 3).data;
        let km_id = ModelId::KMeans { k: 5 };

        // distributed: 3 workers, 4 rounds
        let model = km_id.build(&data, 7);
        let parts = partition_rows(data.len(), 3);
        let mut workers: Vec<WorkerState> = parts
            .iter()
            .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), 64))
            .collect();
        let algo = Algorithm::Em;
        for _ in 0..4 {
            let stats: Vec<Vec<f64>> = workers
                .iter_mut()
                .map(|w| w.produce(&algo, &data, 0.0).0)
                .collect();
            let agg = sum_statistics(&stats);
            for w in workers.iter_mut() {
                w.consume(&algo, &agg, 3, 0.0);
            }
        }
        let dist_loss = workers[0].eval_model(&algo).full_loss(&data);

        // single machine: same init, 4 EM epochs
        let mut single = km_id.build(&data, 7);
        let rows: Vec<usize> = (0..data.len()).collect();
        for _ in 0..4 {
            let stats = single.em_stats(&data, &rows);
            single.apply_em_stats(&stats);
        }
        let single_loss = single.full_loss(&data);
        assert!(
            (dist_loss - single_loss).abs() < 1e-9,
            "{dist_loss} vs {single_loss}"
        );
    }

    #[test]
    fn ga_sgd_equals_full_batch_gd_when_batch_is_partition() {
        // With batch = partition size and equal partitions, GA-SGD's mean of
        // per-partition gradients equals the full-dataset gradient.
        let data = DatasetId::Higgs.generate_rows(400, 5).data;
        let algo = Algorithm::GaSgd { batch: 100 };
        let model = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let parts = partition_rows(400, 4);
        let mut workers: Vec<WorkerState> = parts
            .iter()
            .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), 100))
            .collect();
        let lr = 0.5;
        for _ in 0..3 {
            let stats: Vec<Vec<f64>> = workers
                .iter_mut()
                .map(|w| w.produce(&algo, &data, lr).0)
                .collect();
            let agg = sum_statistics(&stats);
            for w in workers.iter_mut() {
                w.consume(&algo, &agg, 4, lr);
            }
        }

        let mut single = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let rows: Vec<usize> = (0..400).collect();
        let mut grad = vec![0.0; single.param_len()];
        for _ in 0..3 {
            grad.iter_mut().for_each(|g| *g = 0.0);
            single.grad(&data, &rows, &mut grad);
            let w = single.params_mut();
            for (p, g) in w.iter_mut().zip(&grad) {
                *p -= lr * g;
            }
        }
        for (a, b) in workers[0].model.params().iter().zip(single.params()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn workers_stay_in_sync_under_bsp() {
        // After any number of synchronous rounds all replicas are identical.
        let data = DatasetId::Higgs.generate_rows(300, 9).data;
        let algo = Algorithm::MaSgd {
            batch: 30,
            local_iters: 3,
        };
        let model = ModelId::Lr { l2: 0.0 }.build(&data, 2);
        let parts = partition_rows(300, 3);
        let mut workers: Vec<WorkerState> = parts
            .iter()
            .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), 30))
            .collect();
        for _ in 0..4 {
            let stats: Vec<Vec<f64>> = workers
                .iter_mut()
                .map(|w| w.produce(&algo, &data, 0.3).0)
                .collect();
            let agg = sum_statistics(&stats);
            for w in workers.iter_mut() {
                w.consume(&algo, &agg, 3, 0.3);
            }
        }
        for w in &workers[1..] {
            assert_eq!(w.model.params(), workers[0].model.params());
        }
    }

    #[test]
    fn rounds_per_epoch_accounting() {
        assert_eq!(Algorithm::GaSgd { batch: 100 }.rounds_per_epoch(1000), 10.0);
        assert_eq!(
            Algorithm::MaSgd {
                batch: 100,
                local_iters: 10
            }
            .rounds_per_epoch(1000),
            1.0
        );
        assert_eq!(
            Algorithm::Admm {
                rho: 1.0,
                local_scans: 10,
                batch: 100
            }
            .rounds_per_epoch(1000),
            0.1
        );
        assert_eq!(Algorithm::Em.rounds_per_epoch(12345), 1.0);
    }

    #[test]
    fn applicability_rules() {
        let higgs = DatasetId::Higgs.generate_rows(100, 1).data;
        let cifar = DatasetId::Cifar10.generate_rows(100, 1).data;
        let lr = ModelId::Lr { l2: 0.0 }.build(&higgs, 1);
        let mn = ModelId::MobileNet.build(&cifar, 1);
        let km = ModelId::KMeans { k: 3 }.build(&higgs, 1);
        let admm = Algorithm::Admm {
            rho: 1.0,
            local_scans: 10,
            batch: 100,
        };
        assert!(admm.applicable(&lr));
        assert!(!admm.applicable(&mn), "§4.2: ADMM is convex-only");
        assert!(Algorithm::Em.applicable(&km));
        assert!(!Algorithm::Em.applicable(&lr));
        assert!(!Algorithm::GaSgd { batch: 1 }.applicable(&km));
    }

    #[test]
    fn statistic_lengths_are_consistent() {
        let data = DatasetId::Higgs.generate_rows(200, 1).data;
        let km = ModelId::KMeans { k: 4 }.build(&data, 1);
        let mut w = WorkerState::new(0, km, (0..200).collect(), 200);
        let (stats, examples) = w.produce(&Algorithm::Em, &data, 0.0);
        assert_eq!(stats.len(), 4 * 29);
        assert_eq!(examples, 200);
    }
}
