//! Learning-rate schedules.
//!
//! The paper tunes a constant rate per workload (§4.1: "the optimal learning
//! rate in the range 0.001 to 1") and uses a `1/√T` decay for asynchronous
//! training (§4.5, following Zheng et al. \[104\]).

/// A learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed rate.
    Const(f64),
    /// `base / sqrt(1 + epoch)` — the paper's S-ASP decay.
    InvSqrt { base: f64 },
    /// `base * factor^(epoch / every)` step decay.
    StepDecay {
        base: f64,
        factor: f64,
        every: usize,
    },
}

impl LrSchedule {
    /// Learning rate at the given (0-based) epoch.
    pub fn lr(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Const(lr) => lr,
            LrSchedule::InvSqrt { base } => base / (1.0 + epoch as f64).sqrt(),
            LrSchedule::StepDecay {
                base,
                factor,
                every,
            } => base * factor.powi((epoch / every.max(1)) as i32),
        }
    }

    /// The epoch-0 rate.
    pub fn base(&self) -> f64 {
        self.lr(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_is_flat() {
        let s = LrSchedule::Const(0.1);
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(100), 0.1);
    }

    #[test]
    fn inv_sqrt_decays() {
        let s = LrSchedule::InvSqrt { base: 1.0 };
        assert_eq!(s.lr(0), 1.0);
        assert!((s.lr(3) - 0.5).abs() < 1e-12);
        assert!(s.lr(99) < s.lr(9));
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(9), 1.0);
        assert_eq!(s.lr(10), 0.5);
        assert_eq!(s.lr(25), 0.25);
    }

    #[test]
    fn base_matches_epoch_zero() {
        for s in [
            LrSchedule::Const(0.3),
            LrSchedule::InvSqrt { base: 0.3 },
            LrSchedule::StepDecay {
                base: 0.3,
                factor: 0.1,
                every: 5,
            },
        ] {
            assert_eq!(s.base(), 0.3);
        }
    }
}
