//! Mini-batch SGD primitives.
//!
//! A worker owns a contiguous partition of (already shuffled) rows and
//! cycles through it in mini-batches — the same access pattern as the
//! paper's PyTorch data loader with `shuffle=False` over a pre-shuffled S3
//! partition.

use lml_data::Dataset;
use lml_models::AnyModel;

/// Cycling mini-batch cursor over a worker's partition rows.
#[derive(Debug, Clone)]
pub struct BatchCursor {
    rows: Vec<usize>,
    pos: usize,
    batch: usize,
}

impl BatchCursor {
    pub fn new(rows: Vec<usize>, batch: usize) -> Self {
        assert!(!rows.is_empty(), "empty partition");
        assert!(batch >= 1);
        let batch = batch.min(rows.len());
        BatchCursor {
            rows,
            pos: 0,
            batch,
        }
    }

    /// The next mini-batch of row indices (wraps around the partition).
    pub fn next_batch(&mut self) -> Vec<usize> {
        let n = self.rows.len();
        let mut out = Vec::with_capacity(self.batch);
        for _ in 0..self.batch {
            out.push(self.rows[self.pos]);
            self.pos = (self.pos + 1) % n;
        }
        out
    }

    /// Mini-batches per full pass over the partition.
    pub fn batches_per_epoch(&self) -> usize {
        self.rows.len().div_ceil(self.batch)
    }

    pub fn partition_len(&self) -> usize {
        self.rows.len()
    }

    pub fn batch_size(&self) -> usize {
        self.batch
    }

    pub fn rows(&self) -> &[usize] {
        &self.rows
    }
}

/// One SGD step on `model` over `batch` rows: `w ← w − lr·∇f(w)`.
/// `grad_buf` is a caller-provided scratch buffer of `param_len`. Returns
/// the mini-batch loss *before* the step.
pub fn sgd_step(
    model: &mut AnyModel,
    data: &Dataset,
    batch: &[usize],
    lr: f64,
    grad_buf: &mut [f64],
) -> f64 {
    grad_buf.iter_mut().for_each(|g| *g = 0.0);
    let loss = model.grad(data, batch, grad_buf);
    let params = model.params_mut();
    for (p, g) in params.iter_mut().zip(grad_buf.iter()) {
        *p -= lr * g;
    }
    loss
}

/// Apply an (already averaged) gradient to the model: `w ← w − lr·ḡ`.
/// This is the update step of gradient averaging after aggregation.
pub fn apply_gradient(model: &mut AnyModel, mean_grad: &[f64], lr: f64) {
    let params = model.params_mut();
    assert_eq!(params.len(), mean_grad.len());
    for (p, g) in params.iter_mut().zip(mean_grad) {
        *p -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;
    use lml_models::ModelId;

    #[test]
    fn cursor_wraps_and_covers() {
        let mut c = BatchCursor::new(vec![10, 11, 12, 13, 14], 2);
        assert_eq!(c.next_batch(), vec![10, 11]);
        assert_eq!(c.next_batch(), vec![12, 13]);
        assert_eq!(c.next_batch(), vec![14, 10]);
        assert_eq!(c.batches_per_epoch(), 3);
    }

    #[test]
    fn cursor_clamps_batch_to_partition() {
        let c = BatchCursor::new(vec![1, 2], 100);
        assert_eq!(c.batch_size(), 2);
    }

    #[test]
    fn sgd_step_reduces_loss_on_average() {
        let data = DatasetId::Higgs.generate_rows(500, 1).data;
        let mut m = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let mut grad = vec![0.0; m.param_len()];
        let before = m.full_loss(&data);
        let mut cursor = BatchCursor::new((0..500).collect(), 50);
        for _ in 0..30 {
            let b = cursor.next_batch();
            sgd_step(&mut m, &data, &b, 0.3, &mut grad);
        }
        let after = m.full_loss(&data);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn apply_gradient_is_linear_update() {
        let data = DatasetId::Higgs.generate_rows(50, 1).data;
        let mut m = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let g = vec![1.0; m.param_len()];
        apply_gradient(&mut m, &g, 0.25);
        assert!(m.params().iter().all(|&p| (p + 0.25).abs() < 1e-12));
    }

    #[test]
    #[should_panic]
    fn empty_partition_rejected() {
        BatchCursor::new(vec![], 1);
    }
}
