//! Feed-forward network with manual backprop.
//!
//! The statistical engine behind the paper's deep-model workloads
//! (MobileNet/ResNet50 on Cifar10). The simulator charges communication and
//! compute using the *surrogate profile* in [`crate::zoo`] (12 MB / 89 MB
//! payloads, per-image FLOPs); this module supplies genuine non-convex
//! optimization so that phenomena like unstable model averaging (Figure 7c)
//! and asynchronous divergence (Figure 8) arise from real numerics.
//!
//! Architecture: fully-connected ReLU layers ending in softmax
//! cross-entropy. All parameters live in one flat `Vec<f64>` (layer-major:
//! `W₀, b₀, W₁, b₁, …`) so the communication layer can ship them like any
//! other statistic vector.

use crate::objective::Objective;
use lml_data::Dataset;
use lml_linalg::dense::softmax_inplace;
use lml_sim::Pcg64;

/// Fully-connected ReLU network with softmax cross-entropy output.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer sizes, e.g. `[1024, 256, 10]`.
    sizes: Vec<usize>,
    /// Flat parameter buffer, layer-major `W₀ (out×in), b₀ (out), …`.
    params: Vec<f64>,
}

impl Mlp {
    /// He-initialized network. `sizes` = `[input, hidden…, classes]`.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0));
        let mut rng = Pcg64::new(seed ^ 0x4d4c_5000);
        let mut params = Vec::with_capacity(Self::param_count(sizes));
        for l in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let std = (2.0 / fan_in as f64).sqrt();
            for _ in 0..fan_in * fan_out {
                params.push(rng.normal() * std);
            }
            params.extend(std::iter::repeat_n(0.0, fan_out)); // biases
        }
        Mlp {
            sizes: sizes.to_vec(),
            params,
        }
    }

    /// Total parameter count for an architecture.
    pub fn param_count(sizes: &[usize]) -> usize {
        sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    pub fn classes(&self) -> usize {
        *self.sizes.last().expect("at least two layers")
    }

    /// Offset of layer `l`'s weight block in the flat buffer.
    fn layer_offset(&self, l: usize) -> usize {
        self.sizes[..l]
            .windows(2)
            .map(|w| w[0] * w[1] + w[1])
            .sum::<usize>()
            + if l > 0 {
                // windows over prefix misses the (l-1, l) pair
                self.sizes[l - 1] * self.sizes[l] + self.sizes[l]
            } else {
                0
            }
    }

    /// Forward pass for one example; fills `acts` with every layer's
    /// post-activation output (acts[0] = input copy) and returns logits in
    /// the final slot.
    fn forward(&self, x: &[f64], acts: &mut Vec<Vec<f64>>) {
        acts.clear();
        acts.push(x.to_vec());
        let mut offset = 0;
        for l in 0..self.sizes.len() - 1 {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let w = &self.params[offset..offset + n_in * n_out];
            let b = &self.params[offset + n_in * n_out..offset + n_in * n_out + n_out];
            offset += n_in * n_out + n_out;
            let prev = &acts[acts.len() - 1];
            let mut out = vec![0.0; n_out];
            for o in 0..n_out {
                let row = &w[o * n_in..(o + 1) * n_in];
                let mut z = b[o];
                for i in 0..n_in {
                    z += row[i] * prev[i];
                }
                // ReLU on hidden layers, identity on the output (softmax is
                // applied in the loss).
                out[o] = if l + 2 < self.sizes.len() {
                    z.max(0.0)
                } else {
                    z
                };
            }
            acts.push(out);
        }
    }

    /// Class probabilities for one example.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acts = Vec::new();
        self.forward(x, &mut acts);
        let mut logits = acts.pop().expect("forward fills acts");
        softmax_inplace(&mut logits);
        logits
    }

    /// Predicted class for one example.
    pub fn predict(&self, x: &[f64]) -> usize {
        lml_linalg::dense::argmax(&self.predict_proba(x))
    }
}

impl Objective for Mlp {
    fn dim(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn grad(&self, data: &Dataset, rows: &[usize], grad_out: &mut [f64]) -> f64 {
        assert!(!rows.is_empty());
        assert_eq!(grad_out.len(), self.params.len());
        let inv_n = 1.0 / rows.len() as f64;
        let layers = self.sizes.len() - 1;
        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut total_loss = 0.0;

        for &r in rows {
            let x: Vec<f64> = match data.row(r) {
                lml_data::Row::Dense(v) => v.to_vec(),
                lml_data::Row::Sparse(sv) => sv.to_dense(self.sizes[0]),
            };
            let label = data.label(r) as usize;
            debug_assert!(label < self.classes(), "label out of range");
            self.forward(&x, &mut acts);

            // Softmax cross-entropy at the output.
            let mut probs = acts[layers].clone();
            softmax_inplace(&mut probs);
            total_loss += -(probs[label].max(1e-300)).ln();
            // delta at output = probs - onehot(label)
            let mut delta: Vec<f64> = probs;
            delta[label] -= 1.0;

            // Backward through the layers.
            for l in (0..layers).rev() {
                let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
                let offset = self.layer_offset(l);
                let (w_block, b_block) = {
                    let g = &mut grad_out[offset..offset + n_in * n_out + n_out];
                    g.split_at_mut(n_in * n_out)
                };
                let prev = &acts[l];
                // dW += delta ⊗ prev ; db += delta (scaled by 1/n)
                for o in 0..n_out {
                    let d = delta[o] * inv_n;
                    // Skip-zero sparsity fast path (exact). lml-analyze: allow(float-eq)
                    if d != 0.0 {
                        let row = &mut w_block[o * n_in..(o + 1) * n_in];
                        for i in 0..n_in {
                            row[i] += d * prev[i];
                        }
                        b_block[o] += d;
                    }
                }
                if l > 0 {
                    // delta_prev = Wᵀ delta, gated by ReLU'(prev)
                    let w = &self.params[offset..offset + n_in * n_out];
                    let mut new_delta = vec![0.0; n_in];
                    for o in 0..n_out {
                        let d = delta[o];
                        // Skip-zero sparsity fast path (exact). lml-analyze: allow(float-eq)
                        if d != 0.0 {
                            let row = &w[o * n_in..(o + 1) * n_in];
                            for i in 0..n_in {
                                new_delta[i] += d * row[i];
                            }
                        }
                    }
                    for i in 0..n_in {
                        if prev[i] <= 0.0 {
                            new_delta[i] = 0.0; // ReLU gate
                        }
                    }
                    delta = new_delta;
                }
            }
        }
        total_loss * inv_n
    }

    fn loss(&self, data: &Dataset, rows: &[usize]) -> f64 {
        assert!(!rows.is_empty());
        let mut acts = Vec::new();
        let mut total = 0.0;
        for &r in rows {
            let x: Vec<f64> = match data.row(r) {
                lml_data::Row::Dense(v) => v.to_vec(),
                lml_data::Row::Sparse(sv) => sv.to_dense(self.sizes[0]),
            };
            self.forward(&x, &mut acts);
            let mut probs = acts.last().expect("non-empty acts").clone();
            softmax_inplace(&mut probs);
            let label = data.label(r) as usize;
            total += -(probs[label].max(1e-300)).ln();
        }
        total / rows.len() as f64
    }

    fn is_convex(&self) -> bool {
        false
    }

    fn accuracy(&self, data: &Dataset, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let correct = rows
            .iter()
            .filter(|&&r| {
                let x: Vec<f64> = match data.row(r) {
                    lml_data::Row::Dense(v) => v.to_vec(),
                    lml_data::Row::Sparse(sv) => sv.to_dense(self.sizes[0]),
                };
                self.predict(&x) == data.label(r) as usize
            })
            .count();
        correct as f64 / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::grad_check;
    use lml_data::dataset::DenseDataset;
    use lml_linalg::Matrix;

    fn xor_data() -> Dataset {
        // XOR: the canonical non-linearly-separable problem.
        let m = Matrix::from_flat(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        Dataset::Dense(DenseDataset::new(m, vec![0.0, 1.0, 1.0, 0.0]))
    }

    #[test]
    fn param_count_formula() {
        assert_eq!(Mlp::param_count(&[2, 3, 2]), 2 * 3 + 3 + 3 * 2 + 2);
        let mlp = Mlp::new(&[1024, 256, 10], 1);
        assert_eq!(mlp.dim(), 1024 * 256 + 256 + 256 * 10 + 10);
    }

    #[test]
    fn gradient_matches_numeric() {
        // Random (kink-free) inputs: at XOR's (0,0) corner with zero biases
        // the ReLU sits exactly on its kink and central differences disagree
        // with any subgradient choice, so we grad-check on smooth data.
        let mut rng = Pcg64::new(17);
        let flat: Vec<f64> = (0..8 * 3).map(|_| rng.normal() + 0.1).collect();
        let m = Matrix::from_flat(8, 3, flat);
        let labels: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        let data = Dataset::Dense(DenseDataset::new(m, labels));
        let mut mlp = Mlp::new(&[3, 5, 2], 3);
        let rows: Vec<usize> = (0..8).collect();
        let err = grad_check(&mut mlp, &data, &rows, 1e-5);
        assert!(err < 1e-6, "backprop gradient error {err}");
    }

    #[test]
    fn learns_xor() {
        let data = xor_data();
        let mut mlp = Mlp::new(&[2, 8, 2], 5);
        let rows = [0usize, 1, 2, 3];
        let mut grad = vec![0.0; mlp.dim()];
        for _ in 0..2000 {
            grad.iter_mut().for_each(|g| *g = 0.0);
            mlp.grad(&data, &rows, &mut grad);
            for (p, g) in mlp.params_mut().iter_mut().zip(&grad) {
                *p -= 0.5 * g;
            }
        }
        assert!(
            mlp.loss(&data, &rows) < 0.05,
            "loss {}",
            mlp.loss(&data, &rows)
        );
        assert_eq!(mlp.accuracy(&data, &rows), 1.0, "XOR solved exactly");
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let mlp = Mlp::new(&[3, 5, 4], 7);
        let p = mlp.predict_proba(&[0.5, -1.0, 2.0]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn initial_loss_near_uniform() {
        // He init with zero biases: expected CE ≈ ln(classes).
        let data = lml_data::generators::DatasetId::Cifar10
            .generate_rows(100, 1)
            .data;
        let mlp = Mlp::new(&[1024, 64, 10], 11);
        let rows: Vec<usize> = (0..100).collect();
        let l = mlp.loss(&data, &rows);
        assert!((l - (10.0f64).ln()).abs() < 0.8, "initial loss {l}");
    }

    #[test]
    fn learns_cifar_surrogate_beyond_linear() {
        // A small MLP must fit the class structure of the Cifar10 generator.
        let data = lml_data::generators::DatasetId::Cifar10
            .generate_rows(400, 2)
            .data;
        let rows: Vec<usize> = (0..400).collect();
        let mut mlp = Mlp::new(&[1024, 32, 10], 13);
        let mut grad = vec![0.0; mlp.dim()];
        let mut rng = Pcg64::new(99);
        for _ in 0..150 {
            let batch = rng.sample_indices(400, 64);
            grad.iter_mut().for_each(|g| *g = 0.0);
            mlp.grad(&data, &batch, &mut grad);
            for (p, g) in mlp.params_mut().iter_mut().zip(&grad) {
                *p -= 0.1 * g;
            }
        }
        let acc = mlp.accuracy(&data, &rows);
        assert!(acc > 0.5, "training accuracy {acc}");
    }

    #[test]
    fn not_convex() {
        assert!(!Mlp::new(&[2, 2, 2], 1).is_convex());
    }

    #[test]
    #[should_panic]
    fn single_layer_rejected() {
        Mlp::new(&[10], 1);
    }
}
