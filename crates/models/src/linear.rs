//! Linear classifiers: logistic regression and linear SVM.
//!
//! Both take ±1 labels, support dense and sparse rows, and carry optional L2
//! regularization — matching the models the paper trains with SGD and ADMM
//! on Higgs, RCV1, YFCC100M and Criteo.

use crate::objective::Objective;
use lml_data::Dataset;
use lml_linalg::dense::{dot, log1p_exp_neg, scale, sigmoid};

/// L2-regularized logistic regression with ±1 labels.
///
/// `loss = mean_i log(1 + exp(-y_i w·x_i)) + (l2/2)·‖w‖²`
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    w: Vec<f64>,
    l2: f64,
}

impl LogisticRegression {
    /// Zero-initialized model (the paper's convex workloads start at 0).
    pub fn new(dim: usize, l2: f64) -> Self {
        assert!(l2 >= 0.0);
        LogisticRegression {
            w: vec![0.0; dim],
            l2,
        }
    }

    /// Decision value `w·x`.
    pub fn decision(&self, data: &Dataset, row: usize) -> f64 {
        data.row(row).dot(&self.w)
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, data: &Dataset, row: usize) -> f64 {
        sigmoid(self.decision(data, row))
    }

    pub fn l2(&self) -> f64 {
        self.l2
    }
}

impl Objective for LogisticRegression {
    fn dim(&self) -> usize {
        self.w.len()
    }

    fn params(&self) -> &[f64] {
        &self.w
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.w
    }

    fn grad(&self, data: &Dataset, rows: &[usize], grad_out: &mut [f64]) -> f64 {
        assert!(!rows.is_empty(), "gradient over an empty batch");
        let inv_n = 1.0 / rows.len() as f64;
        let mut loss = 0.0;
        for &r in rows {
            let y = data.label(r);
            // Labels are exact ±1.0 sentinels. lml-analyze: allow(float-eq)
            debug_assert!(y == 1.0 || y == -1.0, "LR expects ±1 labels");
            let z = y * data.row(r).dot(&self.w);
            loss += log1p_exp_neg(z);
            // d/dw log(1+exp(-z)) = -y·sigmoid(-z)·x
            let coeff = -y * sigmoid(-z) * inv_n;
            data.row(r).axpy_into(coeff, grad_out);
        }
        if self.l2 > 0.0 {
            lml_linalg::dense::axpy(self.l2, &self.w, grad_out);
            loss += 0.5 * self.l2 * dot(&self.w, &self.w) * rows.len() as f64;
        }
        loss * inv_n
    }

    fn loss(&self, data: &Dataset, rows: &[usize]) -> f64 {
        assert!(!rows.is_empty());
        let mut loss = 0.0;
        for &r in rows {
            let z = data.label(r) * data.row(r).dot(&self.w);
            loss += log1p_exp_neg(z);
        }
        loss / rows.len() as f64 + 0.5 * self.l2 * dot(&self.w, &self.w)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn accuracy(&self, data: &Dataset, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let correct = rows
            .iter()
            .filter(|&&r| data.label(r) * data.row(r).dot(&self.w) > 0.0)
            .count();
        correct as f64 / rows.len() as f64
    }
}

/// L2-regularized linear SVM (hinge loss) with ±1 labels.
///
/// `loss = mean_i max(0, 1 - y_i w·x_i) + (l2/2)·‖w‖²`
#[derive(Debug, Clone)]
pub struct LinearSvm {
    w: Vec<f64>,
    l2: f64,
}

impl LinearSvm {
    pub fn new(dim: usize, l2: f64) -> Self {
        assert!(l2 >= 0.0);
        LinearSvm {
            w: vec![0.0; dim],
            l2,
        }
    }

    pub fn decision(&self, data: &Dataset, row: usize) -> f64 {
        data.row(row).dot(&self.w)
    }

    pub fn l2(&self) -> f64 {
        self.l2
    }
}

impl Objective for LinearSvm {
    fn dim(&self) -> usize {
        self.w.len()
    }

    fn params(&self) -> &[f64] {
        &self.w
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.w
    }

    fn grad(&self, data: &Dataset, rows: &[usize], grad_out: &mut [f64]) -> f64 {
        assert!(!rows.is_empty());
        let inv_n = 1.0 / rows.len() as f64;
        let mut loss = 0.0;
        for &r in rows {
            let y = data.label(r);
            // Labels are exact ±1.0 sentinels. lml-analyze: allow(float-eq)
            debug_assert!(y == 1.0 || y == -1.0, "SVM expects ±1 labels");
            let margin = 1.0 - y * data.row(r).dot(&self.w);
            if margin > 0.0 {
                loss += margin;
                data.row(r).axpy_into(-y * inv_n, grad_out);
            }
        }
        if self.l2 > 0.0 {
            lml_linalg::dense::axpy(self.l2, &self.w, grad_out);
            loss += 0.5 * self.l2 * dot(&self.w, &self.w) * rows.len() as f64;
        }
        loss * inv_n
    }

    fn loss(&self, data: &Dataset, rows: &[usize]) -> f64 {
        assert!(!rows.is_empty());
        let mut loss = 0.0;
        for &r in rows {
            let margin = 1.0 - data.label(r) * data.row(r).dot(&self.w);
            if margin > 0.0 {
                loss += margin;
            }
        }
        loss / rows.len() as f64 + 0.5 * self.l2 * dot(&self.w, &self.w)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn accuracy(&self, data: &Dataset, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let correct = rows
            .iter()
            .filter(|&&r| data.label(r) * data.row(r).dot(&self.w) > 0.0)
            .count();
        correct as f64 / rows.len() as f64
    }
}

/// Helper shared by tests and the single-machine baseline: take `steps`
/// full-batch gradient steps with learning rate `lr`.
pub fn gd_steps<O: Objective>(model: &mut O, data: &Dataset, lr: f64, steps: usize) -> f64 {
    let rows: Vec<usize> = (0..data.len()).collect();
    let mut grad = vec![0.0; model.dim()];
    let mut last = f64::INFINITY;
    for _ in 0..steps {
        grad.iter_mut().for_each(|g| *g = 0.0);
        last = model.grad(data, &rows, &mut grad);
        scale(&mut grad, -lr);
        lml_linalg::dense::add_assign(model.params_mut(), &grad);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::grad_check;
    use lml_data::generators::DatasetId;

    fn tiny_higgs() -> Dataset {
        DatasetId::Higgs.generate_rows(400, 42).data
    }

    fn tiny_rcv1() -> Dataset {
        DatasetId::Rcv1.generate_rows(120, 42).data
    }

    #[test]
    fn lr_gradient_matches_numeric_dense() {
        let data = tiny_higgs();
        let mut m = LogisticRegression::new(data.dim(), 0.01);
        // move off the zero point first
        gd_steps(&mut m, &data, 0.5, 3);
        let err = grad_check(&mut m, &data, &[0, 1, 2, 3, 4], 1e-5);
        assert!(err < 1e-6, "err={err}");
    }

    #[test]
    fn svm_gradient_matches_numeric_dense() {
        let data = tiny_higgs();
        let mut m = LinearSvm::new(data.dim(), 0.01);
        gd_steps(&mut m, &data, 0.1, 3);
        // Hinge is non-smooth at margin = 1; with random data points are a.s.
        // away from the kink, so central differences still match.
        let err = grad_check(&mut m, &data, &[0, 1, 2, 3, 4], 1e-7);
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn lr_gradient_matches_numeric_sparse() {
        let data = tiny_rcv1();
        let mut m = LogisticRegression::new(data.dim(), 0.0);
        let rows: Vec<usize> = (0..10).collect();
        let mut g = vec![0.0; m.dim()];
        m.grad(&data, &rows, &mut g);
        // check only the touched coordinates (47K dims — full check is slow)
        let touched: Vec<usize> = (0..m.dim()).filter(|&j| g[j] != 0.0).take(20).collect();
        for j in touched {
            let eps = 1e-6;
            let orig = m.params()[j];
            m.params_mut()[j] = orig + eps;
            let hi = m.loss(&data, &rows);
            m.params_mut()[j] = orig - eps;
            let lo = m.loss(&data, &rows);
            m.params_mut()[j] = orig;
            let num = (hi - lo) / (2.0 * eps);
            assert!((num - g[j]).abs() < 1e-6, "coord {j}: {num} vs {}", g[j]);
        }
    }

    #[test]
    fn lr_trains_below_chance_loss_on_higgs() {
        let data = tiny_higgs();
        let mut m = LogisticRegression::new(data.dim(), 0.0);
        let l0 = m.full_loss(&data);
        assert!((l0 - (2.0f64).ln()).abs() < 1e-9, "zero model loss = ln 2");
        let l = gd_steps(&mut m, &data, 0.5, 100);
        assert!(l < 0.66, "trained loss {l}");
        assert!(m.full_accuracy(&data) > 0.55);
    }

    #[test]
    fn svm_trains_on_rcv1_to_low_hinge() {
        let data = tiny_rcv1();
        let mut m = LinearSvm::new(data.dim(), 0.0);
        let l = gd_steps(&mut m, &data, 0.5, 200);
        assert!(l < 0.3, "RCV1 is near-separable, hinge should fall: {l}");
    }

    #[test]
    fn l2_pulls_weights_down() {
        let data = tiny_higgs();
        let mut free = LogisticRegression::new(data.dim(), 0.0);
        let mut reg = LogisticRegression::new(data.dim(), 1.0);
        gd_steps(&mut free, &data, 0.5, 50);
        gd_steps(&mut reg, &data, 0.5, 50);
        let n_free = lml_linalg::dense::norm2(free.params());
        let n_reg = lml_linalg::dense::norm2(reg.params());
        assert!(n_reg < n_free, "{n_reg} vs {n_free}");
    }

    #[test]
    fn both_are_convex() {
        assert!(LogisticRegression::new(2, 0.0).is_convex());
        assert!(LinearSvm::new(2, 0.0).is_convex());
    }
}
