//! The model zoo: paper-profile constructors and the unified [`AnyModel`].
//!
//! Each entry pairs a *statistical engine* (the actual Rust model that
//! trains) with a *system profile* (wire bytes and per-example FLOPs used by
//! the simulator). For linear models and k-means the two coincide. For
//! MobileNet and ResNet50 the engine is an MLP surrogate while the profile
//! carries the paper's real numbers — 12 MB / 89 MB parameter payloads and
//! per-image training FLOPs — because every systems question in the paper
//! depends only on bytes-on-the-wire and seconds-of-compute.

use crate::kmeans::KMeans;
use crate::linear::{LinearSvm, LogisticRegression};
use crate::mlp::Mlp;
use crate::objective::Objective;
use lml_data::Dataset;
use lml_sim::ByteSize;

/// Which paper model to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelId {
    /// Logistic regression with the given L2.
    Lr { l2: f64 },
    /// Linear SVM with the given L2.
    Svm { l2: f64 },
    /// K-means with `k` clusters.
    KMeans { k: usize },
    /// MobileNet surrogate (12 MB wire, ~1.7 GFLOP/image training).
    MobileNet,
    /// ResNet50 surrogate (89 MB wire, ~12 GFLOP/image training).
    ResNet50,
}

impl ModelId {
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Lr { .. } => "LR",
            ModelId::Svm { .. } => "SVM",
            ModelId::KMeans { .. } => "KMeans",
            ModelId::MobileNet => "MobileNet",
            ModelId::ResNet50 => "ResNet50",
        }
    }

    /// Build the model for a dataset.
    pub fn build(self, data: &Dataset, seed: u64) -> AnyModel {
        match self {
            ModelId::Lr { l2 } => AnyModel::Lr(LogisticRegression::new(data.dim(), l2)),
            ModelId::Svm { l2 } => AnyModel::Svm(LinearSvm::new(data.dim(), l2)),
            ModelId::KMeans { k } => AnyModel::KMeans(KMeans::init_from_data(data, k, seed)),
            ModelId::MobileNet => AnyModel::Mlp {
                net: Mlp::new(&[data.dim(), 256, 10], seed),
                profile: DeepProfile::MOBILENET,
            },
            ModelId::ResNet50 => AnyModel::Mlp {
                net: Mlp::new(&[data.dim(), 512, 128, 10], seed),
                profile: DeepProfile::RESNET50,
            },
        }
    }
}

/// System profile of a deep model: what the simulator charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepProfile {
    pub name: &'static str,
    /// Bytes of one full model/gradient message (paper: MN 12 MB, RN 89 MB).
    pub wire_bytes: ByteSize,
    /// Training FLOPs per example (forward + backward).
    pub flops_per_example: f64,
}

impl DeepProfile {
    /// MobileNet V1: ~569 MFLOPs forward ⇒ ≈1.7 GFLOP/image for training.
    pub const MOBILENET: DeepProfile = DeepProfile {
        name: "MobileNet",
        wire_bytes: ByteSize(12_000_000),
        flops_per_example: 1.7e9,
    };
    /// ResNet50: ~4.1 GFLOPs forward ⇒ ≈12 GFLOP/image for training.
    pub const RESNET50: DeepProfile = DeepProfile {
        name: "ResNet50",
        wire_bytes: ByteSize(89_000_000),
        flops_per_example: 12.3e9,
    };
}

/// A built model: the statistical engine plus its system profile.
#[derive(Debug, Clone)]
pub enum AnyModel {
    Lr(LogisticRegression),
    Svm(LinearSvm),
    KMeans(KMeans),
    Mlp { net: Mlp, profile: DeepProfile },
}

impl AnyModel {
    pub fn name(&self) -> &'static str {
        match self {
            AnyModel::Lr(_) => "LR",
            AnyModel::Svm(_) => "SVM",
            AnyModel::KMeans(_) => "KMeans",
            AnyModel::Mlp { profile, .. } => profile.name,
        }
    }

    /// Length of the flat parameter vector (centroids for k-means).
    pub fn param_len(&self) -> usize {
        match self {
            AnyModel::Lr(m) => m.dim(),
            AnyModel::Svm(m) => m.dim(),
            AnyModel::KMeans(m) => m.params().len(),
            AnyModel::Mlp { net, .. } => net.dim(),
        }
    }

    pub fn params(&self) -> &[f64] {
        match self {
            AnyModel::Lr(m) => m.params(),
            AnyModel::Svm(m) => m.params(),
            AnyModel::KMeans(m) => m.params(),
            AnyModel::Mlp { net, .. } => net.params(),
        }
    }

    pub fn params_mut(&mut self) -> &mut [f64] {
        match self {
            AnyModel::Lr(m) => m.params_mut(),
            AnyModel::Svm(m) => m.params_mut(),
            AnyModel::KMeans(m) => m.params_mut(),
            AnyModel::Mlp { net, .. } => net.params_mut(),
        }
    }

    /// Wire size of one model/gradient message. Linear models and k-means
    /// ship their actual f64 buffers; deep models ship the paper's payload.
    pub fn wire_bytes(&self) -> ByteSize {
        match self {
            AnyModel::Mlp { profile, .. } => profile.wire_bytes,
            _ => ByteSize::of_f64s(self.param_len()),
        }
    }

    /// Wire size of one EM statistics message (k-means aggregates
    /// `k·(d+1)` sums; other models ship model/gradient-sized payloads).
    pub fn statistic_wire_bytes(&self) -> ByteSize {
        match self {
            AnyModel::KMeans(m) => ByteSize::of_f64s(m.stats_len()),
            _ => self.wire_bytes(),
        }
    }

    /// Training FLOPs per example with `nnz` stored features — the
    /// simulator's compute model input.
    pub fn flops_per_example(&self, nnz: f64) -> f64 {
        match self {
            // dot + axpy forward/backward: ~4 flops per stored feature.
            AnyModel::Lr(_) | AnyModel::Svm(_) => 4.0 * nnz,
            // distance to k centroids: ~3 flops per feature per centroid.
            AnyModel::KMeans(m) => 3.0 * nnz * m.k() as f64,
            AnyModel::Mlp { profile, .. } => profile.flops_per_example,
        }
    }

    /// Whether ADMM may be applied (§4.2: convex objectives only).
    pub fn is_convex(&self) -> bool {
        match self {
            AnyModel::Lr(_) | AnyModel::Svm(_) => true,
            AnyModel::KMeans(_) => false,
            AnyModel::Mlp { .. } => false,
        }
    }

    /// Mean loss over `rows` (clustering objective for k-means).
    pub fn loss(&self, data: &Dataset, rows: &[usize]) -> f64 {
        match self {
            AnyModel::Lr(m) => m.loss(data, rows),
            AnyModel::Svm(m) => m.loss(data, rows),
            AnyModel::KMeans(m) => m.loss(data, rows),
            AnyModel::Mlp { net, .. } => net.loss(data, rows),
        }
    }

    /// Mean loss over the whole dataset.
    pub fn full_loss(&self, data: &Dataset) -> f64 {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.loss(data, &rows)
    }

    /// Accuracy over the whole dataset (1.0 for k-means).
    pub fn full_accuracy(&self, data: &Dataset) -> f64 {
        let rows: Vec<usize> = (0..data.len()).collect();
        match self {
            AnyModel::Lr(m) => m.accuracy(data, &rows),
            AnyModel::Svm(m) => m.accuracy(data, &rows),
            AnyModel::KMeans(_) => 1.0,
            AnyModel::Mlp { net, .. } => net.accuracy(data, &rows),
        }
    }

    /// Mini-batch gradient (panics for k-means — use
    /// [`AnyModel::em_stats`]).
    pub fn grad(&self, data: &Dataset, rows: &[usize], grad_out: &mut [f64]) -> f64 {
        match self {
            AnyModel::Lr(m) => m.grad(data, rows, grad_out),
            AnyModel::Svm(m) => m.grad(data, rows, grad_out),
            AnyModel::KMeans(_) => panic!("k-means has no gradient; use em_stats"),
            AnyModel::Mlp { net, .. } => net.grad(data, rows, grad_out),
        }
    }

    /// EM sufficient statistics (k-means only).
    pub fn em_stats(&self, data: &Dataset, rows: &[usize]) -> Vec<f64> {
        match self {
            AnyModel::KMeans(m) => m.sufficient_stats(data, rows),
            _ => panic!("em_stats only applies to k-means"),
        }
    }

    /// EM M-step from aggregated statistics (k-means only).
    pub fn apply_em_stats(&mut self, stats: &[f64]) {
        match self {
            AnyModel::KMeans(m) => m.apply_stats(stats),
            _ => panic!("apply_em_stats only applies to k-means"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;

    #[test]
    fn lr_wire_bytes_match_paper_table3() {
        // Table 3: "LR, Higgs" model size = 224 B (28 × f64).
        let data = DatasetId::Higgs.generate_rows(50, 1).data;
        let m = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        assert_eq!(m.wire_bytes(), ByteSize::bytes(224));
    }

    #[test]
    fn deep_models_carry_paper_payloads() {
        let data = DatasetId::Cifar10.generate_rows(50, 1).data;
        let mn = ModelId::MobileNet.build(&data, 1);
        let rn = ModelId::ResNet50.build(&data, 1);
        assert_eq!(mn.wire_bytes(), ByteSize::mb(12.0));
        assert_eq!(rn.wire_bytes(), ByteSize::mb(89.0));
        assert!(rn.flops_per_example(0.0) > mn.flops_per_example(0.0));
    }

    #[test]
    fn kmeans_statistic_payload_scales_with_k() {
        let data = DatasetId::Higgs.generate_rows(200, 1).data;
        let small = ModelId::KMeans { k: 10 }.build(&data, 1);
        let large = ModelId::KMeans { k: 100 }.build(&data, 1);
        assert_eq!(small.statistic_wire_bytes(), ByteSize::of_f64s(10 * 29));
        assert!(large.statistic_wire_bytes() > small.statistic_wire_bytes());
    }

    #[test]
    fn convexity_flags() {
        let data = DatasetId::Higgs.generate_rows(50, 1).data;
        assert!(ModelId::Lr { l2: 0.0 }.build(&data, 1).is_convex());
        assert!(ModelId::Svm { l2: 0.0 }.build(&data, 1).is_convex());
        assert!(!ModelId::KMeans { k: 3 }.build(&data, 1).is_convex());
        let cifar = DatasetId::Cifar10.generate_rows(50, 1).data;
        assert!(!ModelId::MobileNet.build(&cifar, 1).is_convex());
    }

    #[test]
    #[should_panic]
    fn kmeans_grad_panics() {
        let data = DatasetId::Higgs.generate_rows(50, 1).data;
        let m = ModelId::KMeans { k: 2 }.build(&data, 1);
        let mut g = vec![0.0; m.param_len()];
        m.grad(&data, &[0], &mut g);
    }

    #[test]
    fn params_roundtrip_through_flat_buffer() {
        // Model averaging writes averaged parameters back through
        // params_mut; verify the view is the real storage.
        let data = DatasetId::Higgs.generate_rows(50, 1).data;
        let mut m = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        m.params_mut()[0] = 42.0;
        assert_eq!(m.params()[0], 42.0);
    }

    #[test]
    fn names() {
        let data = DatasetId::Higgs.generate_rows(50, 1).data;
        assert_eq!(ModelId::Lr { l2: 0.0 }.build(&data, 1).name(), "LR");
        assert_eq!(ModelId::MobileNet.name(), "MobileNet");
    }
}
