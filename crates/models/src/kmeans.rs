//! K-means clustering trained by expectation maximization.
//!
//! The paper's distributed k-means (§2.1.2, §4.3) aggregates **sufficient
//! statistics** — per-cluster feature sums and counts — once per epoch. That
//! statistic vector plays the role the gradient plays for SGD: it is what
//! goes over the communication channel, with length `k·(d+1)` (the paper's
//! Table 1 varies `k` from 10 to 1000 precisely to scale this payload).

use lml_data::Dataset;
use lml_linalg::dense::dist2;
use lml_linalg::Matrix;
use lml_sim::Pcg64;

/// K-means model: `k × d` centroid matrix.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Matrix,
}

impl KMeans {
    /// Initialize centroids from `k` random distinct examples (the paper's
    /// implementations seed from data).
    pub fn init_from_data(data: &Dataset, k: usize, seed: u64) -> Self {
        assert!(k >= 1 && k <= data.len(), "k={k} must be in [1, n]");
        let mut rng = Pcg64::new(seed ^ 0x4b4d_4541);
        let picks = rng.sample_indices(data.len(), k);
        let mut centroids = Matrix::zeros(k, data.dim());
        for (c, &row) in picks.iter().enumerate() {
            match data.row(row) {
                lml_data::Row::Dense(x) => centroids.row_mut(c).copy_from_slice(x),
                lml_data::Row::Sparse(sv) => {
                    for (i, v) in sv.iter() {
                        centroids.set(c, i as usize, v);
                    }
                }
            }
        }
        KMeans { centroids }
    }

    /// Initialize from an explicit centroid matrix.
    pub fn from_centroids(centroids: Matrix) -> Self {
        KMeans { centroids }
    }

    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    pub fn feature_dim(&self) -> usize {
        self.centroids.cols()
    }

    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Length of the flat parameter/statistic vector: `k·(d+1)`.
    pub fn stats_len(&self) -> usize {
        self.k() * (self.feature_dim() + 1)
    }

    /// Flat view of the centroids (the "model" that asynchronous protocols
    /// write to the storage channel).
    pub fn params(&self) -> &[f64] {
        self.centroids.as_flat()
    }

    pub fn params_mut(&mut self) -> &mut [f64] {
        self.centroids.as_flat_mut()
    }

    /// Nearest centroid of row `r`.
    pub fn assign(&self, data: &Dataset, r: usize) -> usize {
        let d = self.feature_dim();
        let dense_buf;
        let x: &[f64] = match data.row(r) {
            lml_data::Row::Dense(x) => x,
            lml_data::Row::Sparse(sv) => {
                dense_buf = sv.to_dense(d);
                &dense_buf
            }
        };
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..self.k() {
            let dd = dist2(x, self.centroids.row(c));
            if dd < best_d {
                best_d = dd;
                best = c;
            }
        }
        best
    }

    /// E-step over `rows`: per-cluster feature sums and counts, flattened as
    /// `[sum_0 (d), count_0 (1), sum_1 (d), count_1 (1), ...]`. These vectors
    /// **sum across workers** — the aggregation the communication layer
    /// performs.
    pub fn sufficient_stats(&self, data: &Dataset, rows: &[usize]) -> Vec<f64> {
        let d = self.feature_dim();
        let mut stats = vec![0.0; self.stats_len()];
        let mut dense_buf = vec![0.0; d];
        for &r in rows {
            let x: &[f64] = match data.row(r) {
                lml_data::Row::Dense(x) => x,
                lml_data::Row::Sparse(sv) => {
                    dense_buf.iter_mut().for_each(|v| *v = 0.0);
                    for (i, v) in sv.iter() {
                        dense_buf[i as usize] = v;
                    }
                    &dense_buf
                }
            };
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..self.k() {
                let dd = dist2(x, self.centroids.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            let base = best * (d + 1);
            for (j, &v) in x.iter().enumerate() {
                stats[base + j] += v;
            }
            stats[base + d] += 1.0;
        }
        stats
    }

    /// M-step: replace centroids with the means in the aggregated statistics.
    /// Empty clusters keep their previous centroid (standard practice).
    pub fn apply_stats(&mut self, stats: &[f64]) {
        let d = self.feature_dim();
        assert_eq!(stats.len(), self.stats_len(), "stats length mismatch");
        for c in 0..self.k() {
            let base = c * (d + 1);
            let count = stats[base + d];
            if count > 0.0 {
                let row = self.centroids.row_mut(c);
                for j in 0..d {
                    row[j] = stats[base + j] / count;
                }
            }
        }
    }

    /// Clustering objective: mean squared distance to the nearest centroid.
    pub fn loss(&self, data: &Dataset, rows: &[usize]) -> f64 {
        assert!(!rows.is_empty());
        let d = self.feature_dim();
        let mut dense_buf = vec![0.0; d];
        let mut total = 0.0;
        for &r in rows {
            let x: &[f64] = match data.row(r) {
                lml_data::Row::Dense(x) => x,
                lml_data::Row::Sparse(sv) => {
                    dense_buf.iter_mut().for_each(|v| *v = 0.0);
                    for (i, v) in sv.iter() {
                        dense_buf[i as usize] = v;
                    }
                    &dense_buf
                }
            };
            let mut best_d = f64::INFINITY;
            for c in 0..self.k() {
                best_d = best_d.min(dist2(x, self.centroids.row(c)));
            }
            total += best_d;
        }
        total / rows.len() as f64
    }

    /// Mean loss over the whole dataset.
    pub fn full_loss(&self, data: &Dataset) -> f64 {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.loss(data, &rows)
    }

    /// One full EM epoch on `rows` (E + M locally; single-machine baseline).
    pub fn em_epoch(&mut self, data: &Dataset, rows: &[usize]) -> f64 {
        let stats = self.sufficient_stats(data, rows);
        self.apply_stats(&stats);
        self.loss(data, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::dataset::DenseDataset;
    use lml_data::generators::DatasetId;

    fn two_blob_data() -> Dataset {
        // 2 tight blobs at (0,0) and (10,10)
        let mut flat = Vec::new();
        let mut rng = Pcg64::new(1);
        for _ in 0..50 {
            flat.push(rng.normal() * 0.1);
            flat.push(rng.normal() * 0.1);
        }
        for _ in 0..50 {
            flat.push(10.0 + rng.normal() * 0.1);
            flat.push(10.0 + rng.normal() * 0.1);
        }
        let m = Matrix::from_flat(100, 2, flat);
        Dataset::Dense(DenseDataset::new(m, vec![0.0; 100]))
    }

    #[test]
    fn em_finds_two_blobs() {
        let data = two_blob_data();
        let mut km = KMeans::init_from_data(&data, 2, 7);
        let rows: Vec<usize> = (0..data.len()).collect();
        for _ in 0..10 {
            km.em_epoch(&data, &rows);
        }
        let loss = km.full_loss(&data);
        assert!(loss < 0.1, "loss {loss} should be tiny for separated blobs");
        // centroids near (0,0) and (10,10) in some order
        let c0 = km.centroids().row(0);
        let c1 = km.centroids().row(1);
        let near_origin = c0[0].abs() < 1.0 || c1[0].abs() < 1.0;
        let near_ten = c0[0] > 9.0 || c1[0] > 9.0;
        assert!(near_origin && near_ten);
    }

    #[test]
    fn em_loss_is_monotone_nonincreasing() {
        let data = DatasetId::Higgs.generate_rows(2_000, 42).data;
        let mut km = KMeans::init_from_data(&data, 10, 42);
        let rows: Vec<usize> = (0..data.len()).collect();
        let mut prev = km.loss(&data, &rows);
        for _ in 0..8 {
            km.em_epoch(&data, &rows);
            let l = km.loss(&data, &rows);
            assert!(l <= prev + 1e-9, "EM must not increase loss: {l} > {prev}");
            prev = l;
        }
    }

    #[test]
    fn distributed_stats_equal_local_em() {
        // Summing per-partition sufficient statistics must give exactly the
        // same M-step as a single pass — the invariant that makes k-means
        // distributable.
        let data = DatasetId::Higgs.generate_rows(500, 3).data;
        let rows: Vec<usize> = (0..data.len()).collect();
        let km = KMeans::init_from_data(&data, 5, 1);

        let full = km.sufficient_stats(&data, &rows);
        let part1 = km.sufficient_stats(&data, &rows[..250]);
        let part2 = km.sufficient_stats(&data, &rows[250..]);
        let summed: Vec<f64> = part1.iter().zip(&part2).map(|(a, b)| a + b).collect();
        for (a, b) in full.iter().zip(&summed) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        let data = two_blob_data();
        let mut km = KMeans::from_centroids(Matrix::from_flat(
            2,
            2,
            vec![0.0, 0.0, 100.0, 100.0], // second centroid far from all data
        ));
        let rows: Vec<usize> = (0..data.len()).collect();
        // All points still closer to centroid 1 than (100,100)? No: blob at
        // (10,10) is nearer to (100,100)? dist to (0,0) = 200, to (100,100)
        // = 16200 — everything assigns to centroid 0.
        km.em_epoch(&data, &rows);
        assert_eq!(
            km.centroids().row(1),
            &[100.0, 100.0],
            "empty cluster unchanged"
        );
    }

    #[test]
    fn stats_len_matches_table1_payload_scaling() {
        // Table 1 varies k=10 vs k=1000 to scale the aggregation payload.
        let data = DatasetId::Higgs.generate_rows(100, 1).data;
        let small = KMeans::init_from_data(&data, 10, 1);
        let large = KMeans::init_from_data(&data, 100, 1);
        assert_eq!(small.stats_len(), 10 * 29);
        assert_eq!(large.stats_len(), 100 * 29);
    }

    #[test]
    fn works_on_sparse_data() {
        let data = DatasetId::Rcv1.generate_rows(100, 5).data;
        let mut km = KMeans::init_from_data(&data, 3, 2);
        let rows: Vec<usize> = (0..data.len()).collect();
        let before = km.loss(&data, &rows);
        km.em_epoch(&data, &rows);
        let after = km.loss(&data, &rows);
        assert!(after <= before + 1e-9);
    }

    #[test]
    #[should_panic]
    fn k_larger_than_n_panics() {
        let data = two_blob_data();
        KMeans::init_from_data(&data, 101, 1);
    }
}
