//! # lml-models — ML models for LambdaML-rs
//!
//! The paper trains five models (§4.1/§5.1): logistic regression (LR),
//! linear SVM, k-means (KM), MobileNet (MN) and ResNet50 (RN). This crate
//! implements them with analytic gradients / manual backprop — the stand-in
//! for the paper's PyTorch engine:
//!
//! * [`objective`] — the [`objective::Objective`] trait for gradient-based
//!   models, plus batch-loss/accuracy helpers.
//! * [`linear`] — [`linear::LogisticRegression`] and [`linear::LinearSvm`],
//!   both working on dense and sparse rows.
//! * [`kmeans`] — [`kmeans::KMeans`] trained by EM with aggregatable
//!   sufficient statistics (the distributed form used by LambdaML).
//! * [`mlp`] — [`mlp::Mlp`]: ReLU feed-forward network with softmax
//!   cross-entropy and manual backprop over a flat parameter buffer.
//! * [`zoo`] — paper-profile constructors: the MobileNet and ResNet50
//!   surrogates carry the *paper's* wire sizes (12 MB / 89 MB) and per-image
//!   FLOP counts for the system model while training a real MLP for the
//!   statistics.

#![forbid(unsafe_code)]

pub mod kmeans;
pub mod linear;
pub mod mlp;
pub mod objective;
pub mod zoo;

pub use kmeans::KMeans;
pub use linear::{LinearSvm, LogisticRegression};
pub use mlp::Mlp;
pub use objective::Objective;
pub use zoo::{AnyModel, ModelId};
