//! The gradient-based training interface.
//!
//! Every SGD/ADMM-trainable model exposes a flat parameter buffer and a
//! mini-batch gradient. Distributed algorithms (GA-SGD, MA-SGD, ADMM) only
//! ever see this interface plus raw `&[f64]` statistics — mirroring how
//! LambdaML's communication layer ships opaque tensors.

use lml_data::Dataset;

/// A differentiable training objective with a flat parameter vector.
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// Parameter vector.
    fn params(&self) -> &[f64];

    /// Mutable parameter vector.
    fn params_mut(&mut self) -> &mut [f64];

    /// Accumulate the mean gradient over `rows` into `grad_out` (pre-zeroed
    /// by the caller) and return the mean loss over those rows.
    fn grad(&self, data: &Dataset, rows: &[usize], grad_out: &mut [f64]) -> f64;

    /// Mean loss over `rows` (no gradient).
    fn loss(&self, data: &Dataset, rows: &[usize]) -> f64;

    /// Whether the objective is convex in its parameters. ADMM is only
    /// applicable to convex objectives (§4.2 of the paper).
    fn is_convex(&self) -> bool;

    /// Fraction of `rows` classified correctly (1.0 for non-classifiers).
    fn accuracy(&self, data: &Dataset, rows: &[usize]) -> f64;

    /// Mean loss over the whole dataset.
    fn full_loss(&self, data: &Dataset) -> f64 {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.loss(data, &rows)
    }

    /// Accuracy over the whole dataset.
    fn full_accuracy(&self, data: &Dataset) -> f64 {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.accuracy(data, &rows)
    }
}

/// Numerical gradient check helper used by model unit tests: compares the
/// analytic gradient against central differences at the current parameters.
/// Returns the max absolute element-wise error.
pub fn grad_check<O: Objective>(model: &mut O, data: &Dataset, rows: &[usize], eps: f64) -> f64 {
    let dim = model.dim();
    let mut analytic = vec![0.0; dim];
    model.grad(data, rows, &mut analytic);
    let mut max_err: f64 = 0.0;
    #[allow(clippy::needless_range_loop)] // `j` also indexes `model.params`
    for j in 0..dim {
        let orig = model.params()[j];
        model.params_mut()[j] = orig + eps;
        let hi = model.loss(data, rows);
        model.params_mut()[j] = orig - eps;
        let lo = model.loss(data, rows);
        model.params_mut()[j] = orig;
        let numeric = (hi - lo) / (2.0 * eps);
        max_err = max_err.max((numeric - analytic[j]).abs());
    }
    max_err
}

#[cfg(test)]
mod tests {
    // `grad_check` itself is exercised by the model crates' tests; here we
    // only verify the default implementations compose.
    use super::*;
    use lml_data::dataset::DenseDataset;
    use lml_linalg::Matrix;

    struct Quadratic {
        w: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn dim(&self) -> usize {
            self.w.len()
        }
        fn params(&self) -> &[f64] {
            &self.w
        }
        fn params_mut(&mut self) -> &mut [f64] {
            &mut self.w
        }
        fn grad(&self, _d: &Dataset, rows: &[usize], g: &mut [f64]) -> f64 {
            for (j, gj) in g.iter_mut().enumerate() {
                *gj = self.w[j];
            }
            let _ = rows;
            0.5 * self.w.iter().map(|v| v * v).sum::<f64>()
        }
        fn loss(&self, _d: &Dataset, _rows: &[usize]) -> f64 {
            0.5 * self.w.iter().map(|v| v * v).sum::<f64>()
        }
        fn is_convex(&self) -> bool {
            true
        }
        fn accuracy(&self, _d: &Dataset, _rows: &[usize]) -> f64 {
            1.0
        }
    }

    fn dummy() -> Dataset {
        Dataset::Dense(DenseDataset::new(Matrix::zeros(2, 1), vec![1.0, -1.0]))
    }

    #[test]
    fn grad_check_passes_for_analytic_quadratic() {
        let mut q = Quadratic {
            w: vec![1.0, -2.0, 3.0],
        };
        let err = grad_check(&mut q, &dummy(), &[0, 1], 1e-5);
        assert!(err < 1e-8, "err={err}");
    }

    #[test]
    fn full_loss_uses_all_rows() {
        let q = Quadratic { w: vec![2.0] };
        assert_eq!(q.full_loss(&dummy()), 2.0);
        assert_eq!(q.full_accuracy(&dummy()), 1.0);
    }
}
