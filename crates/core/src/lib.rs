//! # lml-core — LambdaML training jobs over simulated clouds
//!
//! The paper's primary contribution assembled: a [`job::TrainingJob`] takes
//! a dataset, a model, a distributed optimization algorithm, a
//! communication channel, a communication pattern, a synchronization
//! protocol and a backend (FaaS fleet, IaaS cluster, hybrid
//! Lambda+parameter-server, or a single machine), runs **real training**
//! over the simulated infrastructure, and reports the paper's metrics:
//! loss-vs-time curves, runtime breakdowns (Figure 10) and dollar costs.
//!
//! * [`config`] — job configuration surface (the "AWS web UI" of Figure 2).
//! * [`engine`] — the compute-time model (calibrated to the paper's
//!   measured epoch times).
//! * [`result`] — run results: breakdown, cost decomposition, curves.
//! * [`executor`] — the four backends.
//! * [`job`] — the public entry point.
//! * [`pipeline`] — preprocessing + hyperparameter-search pipelines
//!   (Table 5).
//! * [`fleet`] — the multi-tenant fleet simulator layered on top of the
//!   single-job backends (re-export of `lml-fleet`).

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod executor;
pub mod job;
pub mod pipeline;
pub mod result;

pub use lml_fleet as fleet;

pub use config::{Backend, ChannelKind, JobConfig, Protocol};
pub use job::{JobError, TrainingJob};
pub use result::{Breakdown, CostBreakdown, RunResult};
