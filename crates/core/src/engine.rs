//! The compute-time model.
//!
//! Converts "this worker processed `n` paper-scale examples" into virtual
//! seconds. Throughput constants are calibrated against the paper's own
//! measurements rather than hardware peaks, because the paper's engine is
//! Python/PyTorch:
//!
//! * **Linear models and k-means** are interpreter-overhead-bound.
//!   Figure 10 measures 80 s of compute for 10 epochs of LR on Higgs with
//!   10 workers (≈ 990 K examples × 112 FLOPs per epoch per worker) —
//!   an effective ~1.5×10⁷ FLOP/s per 2-vCPU worker.
//! * **Deep models** run BLAS kernels. Table 5 implies a MobileNet epoch of
//!   ~170 s on 10 Lambda workers (5.4 K images × 1.7 GFLOP each), i.e.
//!   ~5.4×10¹⁰ FLOP/s per 3 GB Lambda, scaling mildly with vCPUs across
//!   instance types, and GPUs reach the multi-hundred-GFLOP/s effective
//!   range that makes Figure 12's "T4 8× faster than the best FaaS" hold.

use lml_data::Dataset;
use lml_iaas::GpuKind;
use lml_models::AnyModel;
use lml_sim::SimTime;

/// Effective FLOP/s of the linear-model/k-means engine per vCPU
/// (Python-overhead-bound; Figure 10 calibration).
pub const LINEAR_FLOPS_PER_VCPU: f64 = 8.0e6;

/// Reference effective FLOP/s of the deep-model engine on one 3 GB Lambda
/// (1.8 vCPU) — Table 5 / Figure 9 calibration.
pub const NN_FLOPS_LAMBDA: f64 = 5.4e10;

/// Sub-linear vCPU scaling exponent of the deep-model engine across
/// instance sizes (BLAS scales, input pipelines don't).
pub const NN_VCPU_EXPONENT: f64 = 0.3;

/// Average stored features per example (drives linear-model FLOPs).
pub fn avg_nnz(data: &Dataset) -> f64 {
    match data {
        Dataset::Dense(d) => d.dim() as f64,
        Dataset::Sparse(s) => s.avg_nnz(),
    }
}

/// Effective engine throughput in FLOP/s for `model` on a worker with
/// `vcpus` (fractional for Lambda) and optionally a GPU.
pub fn engine_throughput(model: &AnyModel, vcpus: f64, gpu: Option<GpuKind>) -> f64 {
    assert!(vcpus > 0.0);
    match model {
        AnyModel::Mlp { .. } => match gpu {
            Some(g) => g.effective_flops(),
            None => NN_FLOPS_LAMBDA * (vcpus / 1.8).powf(NN_VCPU_EXPONENT),
        },
        _ => LINEAR_FLOPS_PER_VCPU * vcpus,
    }
}

/// Virtual compute time for `examples` paper-scale examples.
///
/// `system_factor` is the serverful system's compute slowdown
/// (`SystemProfile::compute_factor`, 1.56 for Angel).
pub fn compute_time(
    model: &AnyModel,
    examples_paper: f64,
    nnz: f64,
    vcpus: f64,
    gpu: Option<GpuKind>,
    system_factor: f64,
) -> SimTime {
    let flops = examples_paper * model.flops_per_example(nnz);
    SimTime::secs(flops / engine_throughput(model, vcpus, gpu) * system_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;
    use lml_models::ModelId;

    #[test]
    fn figure10_lr_higgs_compute_calibration() {
        // 10 epochs of LR on Higgs, 10 workers of t2.medium (2 vCPU):
        // paper measures ~80 s of compute.
        let data = DatasetId::Higgs.generate_rows(100, 1).data;
        let model = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let examples_per_worker_10_epochs = 11_000_000.0 * 0.9 / 10.0 * 10.0;
        let t = compute_time(&model, examples_per_worker_10_epochs, 28.0, 2.0, None, 1.0);
        assert!((50.0..110.0).contains(&t.as_secs()), "compute {t}");
    }

    #[test]
    fn mobilenet_epoch_matches_table5_scale() {
        // One MobileNet epoch on 10 Lambda workers ≈ 170 s.
        let data = DatasetId::Cifar10.generate_rows(100, 1).data;
        let model = ModelId::MobileNet.build(&data, 1);
        let imgs_per_worker = 60_000.0 * 0.9 / 10.0;
        let t = compute_time(&model, imgs_per_worker, 1_024.0, 1.8, None, 1.0);
        assert!((120.0..260.0).contains(&t.as_secs()), "epoch {t}");
    }

    #[test]
    fn gpu_is_roughly_an_order_faster_for_deep_models() {
        let data = DatasetId::Cifar10.generate_rows(100, 1).data;
        let model = ModelId::MobileNet.build(&data, 1);
        let cpu = compute_time(&model, 1e4, 1_024.0, 1.8, None, 1.0);
        let gpu = compute_time(&model, 1e4, 1_024.0, 4.0, Some(GpuKind::T4), 1.0);
        let speedup = cpu.as_secs() / gpu.as_secs();
        assert!((5.0..25.0).contains(&speedup), "GPU speedup {speedup}");
    }

    #[test]
    fn t4_is_about_25pc_faster_than_m60() {
        let data = DatasetId::Cifar10.generate_rows(100, 1).data;
        let model = ModelId::MobileNet.build(&data, 1);
        let m60 = compute_time(&model, 1e4, 1_024.0, 4.0, Some(GpuKind::M60), 1.0);
        let t4 = compute_time(&model, 1e4, 1_024.0, 4.0, Some(GpuKind::T4), 1.0);
        let ratio = m60.as_secs() / t4.as_secs();
        assert!((1.15..1.4).contains(&ratio), "M60/T4 {ratio}");
    }

    #[test]
    fn gpu_does_not_speed_up_linear_models() {
        // The paper only offloads NN training to GPUs.
        let data = DatasetId::Higgs.generate_rows(100, 1).data;
        let model = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let cpu = compute_time(&model, 1e6, 28.0, 4.0, None, 1.0);
        let gpu = compute_time(&model, 1e6, 28.0, 4.0, Some(GpuKind::T4), 1.0);
        assert_eq!(cpu, gpu);
    }

    #[test]
    fn sparse_data_costs_by_nnz() {
        let rcv1 = DatasetId::Rcv1.generate_rows(100, 1).data;
        assert!(avg_nnz(&rcv1) < 200.0, "RCV1 examples are sparse");
        let higgs = DatasetId::Higgs.generate_rows(100, 1).data;
        assert_eq!(avg_nnz(&higgs), 28.0);
    }

    #[test]
    fn angel_factor_slows_compute() {
        let data = DatasetId::Higgs.generate_rows(100, 1).data;
        let model = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let pytorch = compute_time(&model, 1e6, 28.0, 2.0, None, 1.0);
        let angel = compute_time(&model, 1e6, 28.0, 2.0, None, 1.56);
        assert!((angel.as_secs() / pytorch.as_secs() - 1.56).abs() < 1e-9);
    }
}
