//! ML pipelines: preprocessing + hyper-parameter search (Table 5).
//!
//! The paper's end-to-end pipeline experiment (§5.2) normalizes features to
//! [-1, 1] with one 10-worker job, then grid-searches the learning rate in
//! [0.01, 0.1] step 0.01 with one 10-worker, 10-epoch training job per
//! candidate. On FaaS the candidate jobs run **concurrently** (elastic
//! fan-out); on IaaS the one reserved cluster runs them **sequentially**.

use crate::config::{Backend, JobConfig};
use crate::executor::{partition_load_time, s3_data_link};
use crate::job::{JobError, TrainingJob, Workload};
use crate::result::RunResult;
use lml_data::transform::normalize_minmax;
use lml_data::Dataset;
use lml_faas::{faas_startup_time, GbSecondsMeter};
use lml_iaas::ClusterSpec;
use lml_models::ModelId;
use lml_optim::{LrSchedule, StopSpec};
use lml_sim::{Cost, SimTime};

/// The outcome of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    pub system: String,
    /// Wall time: preprocessing + (parallel or sequential) grid search.
    pub runtime: SimTime,
    /// Total dollars across all stages and jobs.
    pub cost: Cost,
    /// Best candidate's validation accuracy.
    pub best_accuracy: f64,
    /// The winning learning rate.
    pub best_lr: f64,
    /// Per-candidate results.
    pub candidates: Vec<RunResult>,
}

/// Grid of learning rates: [0.01, 0.1] step 0.01 (§5.2).
pub fn lr_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 100.0).collect()
}

/// Normalize the workload's features to [-1, 1] (dense datasets only —
/// the paper's pipeline runs on Higgs and Cifar10).
pub fn preprocess(workload: &Workload) -> Workload {
    let mut wl = workload.clone();
    if let Dataset::Dense(d) = &mut wl.train {
        normalize_minmax(d);
    }
    if let Dataset::Dense(d) = &mut wl.valid {
        normalize_minmax(d);
    }
    wl
}

/// Virtual time/cost of the preprocessing job: `workers` executors read
/// their partition, transform it, and write it back to S3.
fn preprocess_time(workload: &Workload, workers: usize) -> SimTime {
    // read + transform (IO-bound; transform charged at memory bandwidth is
    // negligible next to S3) + write back
    partition_load_time(&workload.spec, workers)
        + s3_data_link().transfer_time(workload.spec.partition_bytes(workers))
}

/// Run the Table 5 pipeline.
///
/// `base` fixes everything except the learning rate; each grid candidate
/// trains for `base.stop.max_epochs` epochs (the paper uses 10, no early
/// stopping).
pub fn run_pipeline(
    workload: &Workload,
    model_id: ModelId,
    base: JobConfig,
) -> Result<PipelineResult, JobError> {
    let prepped = preprocess(workload);
    let prep_time = preprocess_time(workload, base.workers);

    let mut candidates = Vec::new();
    for lr in lr_grid() {
        let cfg = base.with_schedule(LrSchedule::Const(lr));
        // fixed-epoch budget: disable the loss target
        let cfg = JobConfig {
            stop: StopSpec::new(0.0, cfg.stop.max_epochs),
            ..cfg
        };
        let job = TrainingJob::new(&prepped, model_id, cfg);
        candidates.push(job.run()?);
    }

    let (mut best_i, mut best_acc) = (0, f64::NEG_INFINITY);
    for (i, c) in candidates.iter().enumerate() {
        if c.final_accuracy > best_acc {
            best_acc = c.final_accuracy;
            best_i = i;
        }
    }
    let best_lr = lr_grid()[best_i];

    // Stage timing/cost composition depends on the backend's elasticity.
    let (system, runtime, cost) = match base.backend {
        Backend::Faas { spec, .. } => {
            // Jobs fan out concurrently; preprocessing runs as its own
            // serverless job first.
            let prep_startup = faas_startup_time(base.workers);
            let search: SimTime = candidates
                .iter()
                .map(|c| c.runtime())
                .fold(SimTime::ZERO, SimTime::max);
            let mut prep_meter = GbSecondsMeter::new();
            for _ in 0..base.workers {
                prep_meter.charge(spec, prep_time);
            }
            let cost: Cost =
                prep_meter.cost() + candidates.iter().map(|c| c.dollars()).sum::<Cost>();
            ("FaaS".to_string(), prep_startup + prep_time + search, cost)
        }
        Backend::Iaas { instance, .. } | Backend::Single { instance } => {
            // One cluster, started once; stages run back-to-back on it.
            let cluster = ClusterSpec::new(instance, base.workers);
            let startup = cluster.startup_time();
            let work: SimTime = candidates
                .iter()
                .map(|c| c.breakdown.total_without_startup())
                .sum::<SimTime>()
                + prep_time;
            let total = startup + work;
            (
                format!("IaaS({})", instance.name()),
                total,
                cluster.cost(total),
            )
        }
        Backend::Hybrid { .. } => {
            return Err(JobError::NotApplicable(
                "the Table 5 pipeline compares FaaS vs IaaS".to_string(),
            ))
        }
    };

    Ok(PipelineResult {
        system,
        runtime,
        cost,
        best_accuracy: best_acc,
        best_lr,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;
    use lml_optim::Algorithm;

    #[test]
    fn grid_has_ten_candidates() {
        let g = lr_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.01).abs() < 1e-12);
        assert!((g[9] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn preprocess_normalizes_features() {
        let g = DatasetId::Higgs.generate_rows(500, 1);
        let wl = Workload::from_generated(&g, 1);
        let prepped = preprocess(&wl);
        if let Dataset::Dense(d) = &prepped.train {
            for r in 0..d.len() {
                for &v in d.row(r) {
                    assert!((-1.0..=1.0).contains(&v));
                }
            }
        } else {
            panic!("expected dense");
        }
        // labels untouched
        assert_eq!(prepped.train.label(0), wl.train.label(0));
    }

    #[test]
    fn faas_pipeline_runs_grid_in_parallel() {
        let g = DatasetId::Higgs.generate_rows(1_000, 1);
        let wl = Workload::from_generated(&g, 1);
        let cfg = JobConfig::new(
            4,
            Algorithm::GaSgd { batch: 100 },
            0.05,
            StopSpec::new(0.0, 2),
        );
        let out = run_pipeline(&wl, ModelId::Lr { l2: 0.0 }, cfg).unwrap();
        assert_eq!(out.candidates.len(), 10);
        // parallel fan-out: total ≈ slowest candidate, not the sum
        let slowest = out
            .candidates
            .iter()
            .map(|c| c.runtime().as_secs())
            .fold(0.0, f64::max);
        let sum: f64 = out.candidates.iter().map(|c| c.runtime().as_secs()).sum();
        assert!(out.runtime.as_secs() < sum);
        assert!(out.runtime.as_secs() >= slowest);
        assert!(out.best_accuracy > 0.5);
        assert!(lr_grid().contains(&out.best_lr));
    }
}
