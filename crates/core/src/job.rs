//! The public entry point: configure a training job, run it, get the
//! paper's metrics back.

use crate::config::{Backend, JobConfig};
use crate::executor;
use crate::result::RunResult;
use lml_data::generators::Generated;
use lml_data::transform::train_valid_split;
use lml_data::{Dataset, DatasetSpec};
use lml_faas::FaasError;
use lml_models::{AnyModel, ModelId};
use lml_storage::StorageError;

/// A dataset prepared for training: 90/10 train/validation split (the
/// paper's protocol, §4.1) plus the paper-scale spec.
#[derive(Debug, Clone)]
pub struct Workload {
    pub train: Dataset,
    pub valid: Dataset,
    pub spec: DatasetSpec,
}

impl Workload {
    /// Split a generated dataset 90/10.
    pub fn from_generated(g: &Generated, seed: u64) -> Self {
        let (train, valid) = train_valid_split(&g.data, 0.9, seed);
        Workload {
            train,
            valid,
            spec: g.spec.clone(),
        }
    }

    /// `paper_instances / sample_instances` — converts sample example
    /// counts into paper-scale counts for the system model.
    pub fn scale_inv(&self) -> f64 {
        self.spec.paper_instances as f64 / self.spec.sample_instances as f64
    }
}

/// Why a job could not run (or had to abort).
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The storage channel refused an operation (e.g. DynamoDB's 400 KB
    /// item cap rejecting a MobileNet payload — Table 1's "N/A").
    Storage(StorageError),
    /// The FaaS runtime refused (out of memory, invalid function spec —
    /// e.g. ResNet50 with batch 64, §5.2).
    Faas(FaasError),
    /// The (algorithm, model, backend) combination is invalid
    /// (e.g. ADMM on a neural network, §4.2).
    NotApplicable(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Storage(e) => write!(f, "storage: {e}"),
            JobError::Faas(e) => write!(f, "faas: {e}"),
            JobError::NotApplicable(m) => write!(f, "not applicable: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<StorageError> for JobError {
    fn from(e: StorageError) -> Self {
        JobError::Storage(e)
    }
}

impl From<FaasError> for JobError {
    fn from(e: FaasError) -> Self {
        JobError::Faas(e)
    }
}

/// A fully-specified training job.
#[derive(Debug, Clone)]
pub struct TrainingJob<'a> {
    pub workload: &'a Workload,
    pub model_id: ModelId,
    pub config: JobConfig,
}

impl<'a> TrainingJob<'a> {
    pub fn new(workload: &'a Workload, model_id: ModelId, config: JobConfig) -> Self {
        TrainingJob {
            workload,
            model_id,
            config,
        }
    }

    /// Build the model replica each worker starts from.
    pub fn build_model(&self) -> AnyModel {
        self.model_id.build(&self.workload.train, self.config.seed)
    }

    /// Execute the job on its configured backend.
    pub fn run(&self) -> Result<RunResult, JobError> {
        let model = self.build_model();
        if !self.config.algorithm.applicable(&model) {
            return Err(JobError::NotApplicable(format!(
                "{} cannot train {} (§4.2)",
                self.config.algorithm.name(),
                model.name(),
            )));
        }
        match self.config.backend {
            Backend::Faas {
                spec,
                channel,
                pattern,
                protocol,
            } => executor::faas::run(self, model, spec, channel, pattern, protocol),
            Backend::Iaas { instance, system } => {
                executor::iaas::run(self, model, instance, system)
            }
            Backend::Hybrid { spec, ps, rpc } => executor::hybrid::run(self, model, spec, ps, rpc),
            Backend::Single { instance } => executor::single::run(self, model, instance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;
    use lml_optim::{Algorithm, StopSpec};

    #[test]
    fn workload_splits_90_10() {
        let g = DatasetId::Higgs.generate_rows(1_000, 1);
        let wl = Workload::from_generated(&g, 1);
        assert_eq!(wl.train.len(), 900);
        assert_eq!(wl.valid.len(), 100);
        assert!((wl.scale_inv() - 11_000.0).abs() < 1.0);
    }

    #[test]
    fn inapplicable_algorithm_is_rejected() {
        let g = DatasetId::Cifar10.generate_rows(200, 1);
        let wl = Workload::from_generated(&g, 1);
        let cfg = JobConfig::new(
            2,
            Algorithm::Admm {
                rho: 1.0,
                local_scans: 10,
                batch: 32,
            },
            0.01,
            StopSpec::new(0.2, 1),
        );
        let job = TrainingJob::new(&wl, ModelId::MobileNet, cfg);
        match job.run() {
            Err(JobError::NotApplicable(msg)) => assert!(msg.contains("ADMM")),
            other => panic!("expected NotApplicable, got {other:?}"),
        }
    }

    #[test]
    fn job_error_display() {
        let e = JobError::NotApplicable("x".into());
        assert!(e.to_string().contains("not applicable"));
    }
}
