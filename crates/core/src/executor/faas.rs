//! The pure-FaaS executor — LambdaML proper (Figure 2).
//!
//! Synchronous path: starter→worker fan-out, partition loading from S3,
//! BSP rounds over the storage channel, 15-minute lifetime rollovers,
//! GB-second billing plus storage request/node charges.
//!
//! Asynchronous path (S-ASP, §4.5): one global model on the channel; each
//! worker independently reads it, takes its local step(s), writes it back.
//! Workers get heterogeneous speeds (jitter), so fast workers genuinely
//! read stale models — Figure 8's instability arises from the numerics.

use crate::config::{ChannelKind, Protocol};
use crate::engine;
use crate::executor::sync_driver::{run_sync, DriverCtx};
use crate::executor::{memory_required, partition_load_time, request_cost_per_round};
use crate::job::{JobError, TrainingJob};
use crate::result::{Breakdown, CostBreakdown, RunResult};
use lml_comm::{Asp, Bsp, Pattern};
use lml_faas::{GbSecondsMeter, InvocationPlan, LambdaSpec, LifetimeManager};
use lml_models::AnyModel;
use lml_optim::algorithm::{Algorithm, WorkerState};
use lml_optim::{CurvePoint, LossCurve};
use lml_sim::{Cost, EventQueue, Pcg64, SimTime};
use lml_storage::StorageChannel;

/// Run a FaaS job (dispatched from [`TrainingJob::run`]).
pub fn run(
    job: &TrainingJob<'_>,
    model: AnyModel,
    spec: LambdaSpec,
    channel_kind: ChannelKind,
    pattern: Pattern,
    protocol: Protocol,
) -> Result<RunResult, JobError> {
    match protocol {
        Protocol::Sync => run_bsp(job, model, spec, channel_kind, pattern),
        Protocol::Async => run_asp(job, model, spec, channel_kind),
    }
}

/// Common setup: memory admission, partitions, channel, timings.
struct Setup {
    channel: StorageChannel,
    workers: Vec<WorkerState>,
    startup: SimTime,
    load: SimTime,
    rollover: SimTime,
    scale_inv: f64,
    nnz: f64,
    part_len: usize,
}

fn setup(
    job: &TrainingJob<'_>,
    model: &AnyModel,
    spec: LambdaSpec,
    channel_kind: ChannelKind,
) -> Result<Setup, JobError> {
    let cfg = &job.config;
    let wl = job.workload;
    let w = cfg.workers;
    let parts = lml_data::partition::partition_rows(wl.train.len(), w);
    let part_len = parts[0].len();
    let batch = cfg.algorithm.batch_size(part_len);
    let scale_inv = wl.scale_inv();

    // Admission: does a worker's working set fit the function memory?
    let paper_batch = batch as f64 * scale_inv;
    spec.check_memory(memory_required(model, &wl.spec, w, paper_batch))?;

    let channel = StorageChannel::new(channel_kind.profile());
    let plan = InvocationPlan::fan_out(w, wl.spec.name);
    // The channel must be provisioned before the functions start
    // ("we trigger Lambda functions after ... Memcached is launched").
    let startup = channel.startup() + plan.startup_time();
    let load = partition_load_time(&wl.spec, w);
    // Lifetime rollover: checkpoint write + read on the channel, then
    // reload the data partition from S3.
    let rollover = channel.op_time(model.wire_bytes()) * 2.0 + load;

    let workers: Vec<WorkerState> = parts
        .iter()
        .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), batch))
        .collect();

    Ok(Setup {
        channel,
        workers,
        startup,
        load,
        rollover,
        scale_inv,
        nnz: engine::avg_nnz(&wl.train),
        part_len,
    })
}

fn run_bsp(
    job: &TrainingJob<'_>,
    model: AnyModel,
    spec: LambdaSpec,
    channel_kind: ChannelKind,
    pattern: Pattern,
) -> Result<RunResult, JobError> {
    let cfg = &job.config;
    let wl = job.workload;
    let w = cfg.workers;
    let s = setup(job, &model, spec, channel_kind)?;
    let Setup {
        mut channel,
        workers,
        startup,
        load,
        rollover,
        scale_inv,
        nnz,
        part_len,
    } = s;

    let stat_wire = model.statistic_wire_bytes();
    let bsp = Bsp::new(pattern);
    let mut lifetime = LifetimeManager::with_overhead(rollover);
    let req_per_round = request_cost_per_round(channel.profile(), pattern, w, stat_wire);
    let node_hourly = channel.profile().hourly;
    let price_ps = spec.price_per_second();

    let ctx = DriverCtx {
        train: &wl.train,
        valid: &wl.valid,
        algo: cfg.algorithm,
        schedule: cfg.lr,
        stop: cfg.stop,
        eval_every: cfg.resolved_eval_every(part_len),
        start_offset: startup + load,
    };
    let compute_time_of =
        |ex: u64| engine::compute_time(&model, ex as f64 * scale_inv, nnz, spec.vcpus(), None, 1.0);
    let cost_at = |elapsed: SimTime, rounds: u64| {
        let busy = (elapsed - startup).max(SimTime::ZERO);
        price_ps * (busy.as_secs() * w as f64)
            + req_per_round * rounds as f64
            + node_hourly * elapsed.as_hours()
    };

    let out = {
        let channel = &mut channel;
        let lifetime = &mut lifetime;
        run_sync(
            &ctx,
            workers,
            &compute_time_of,
            &mut |round, epoch, stats| {
                let o = bsp.run_round(channel, epoch, round as usize, stats, stat_wire)?;
                Ok((o.aggregate, o.duration))
            },
            &mut |t| lifetime.charge(t),
            &cost_at,
        )?
    };

    let elapsed = startup + load + out.compute + out.comm + out.overhead;
    let mut meter = GbSecondsMeter::new();
    for _ in 0..w {
        meter.charge(spec, load + out.compute + out.comm + out.overhead);
    }
    let final_accuracy = out.final_model.full_accuracy(&wl.valid);
    let final_loss = out.curve.final_loss();
    Ok(RunResult {
        system: format!("LambdaML({})", channel_kind.name()),
        curve: out.curve,
        breakdown: Breakdown {
            startup: startup + out.overhead,
            load,
            compute: out.compute,
            comm: out.comm,
        },
        cost: CostBreakdown {
            compute: meter.cost(),
            requests: channel.request_cost(),
            nodes: channel.node_cost(elapsed),
        },
        epochs: out.epochs,
        rounds: out.rounds,
        converged: out.converged,
        final_loss,
        final_accuracy,
        reinvocations: lifetime.reinvocations(),
    })
}

fn run_asp(
    job: &TrainingJob<'_>,
    model: AnyModel,
    spec: LambdaSpec,
    channel_kind: ChannelKind,
) -> Result<RunResult, JobError> {
    let cfg = &job.config;
    let wl = job.workload;
    let w = cfg.workers;
    if !matches!(
        cfg.algorithm,
        Algorithm::GaSgd { .. } | Algorithm::MaSgd { .. }
    ) {
        return Err(JobError::NotApplicable(format!(
            "the asynchronous protocol supports SGD variants, not {}",
            cfg.algorithm.name()
        )));
    }
    let s = setup(job, &model, spec, channel_kind)?;
    let Setup {
        mut channel,
        mut workers,
        startup,
        load,
        rollover,
        scale_inv,
        nnz,
        part_len,
    } = s;

    let wire = model.wire_bytes();
    let mut asp = Asp::new();
    asp.init_model(&mut channel, model.params(), wire)?;

    // Heterogeneous worker speeds — the stragglers that make fast workers
    // read stale models (§4.5).
    let mut rng = Pcg64::new(cfg.seed ^ 0xA5F0);
    let jitter: Vec<f64> = (0..w).map(|_| 0.75 + 0.5 * rng.uniform()).collect();
    let mut lifetimes: Vec<LifetimeManager> = (0..w)
        .map(|_| LifetimeManager::with_overhead(rollover))
        .collect();

    let eval_every = (cfg.resolved_eval_every(part_len) * w).max(1) as u64;
    let node_hourly = channel.profile().hourly;
    let price_ps = spec.price_per_second();
    let req_per_iter =
        channel.profile().put_price.price(wire) + channel.profile().get_price.price(wire);

    let mut queue: EventQueue<usize> = EventQueue::new();
    for wid in 0..w {
        queue.push(startup + load, wid);
    }
    let mut curve = LossCurve::new();
    let mut events = 0u64;
    let mut total_examples = 0u64;
    let mut epochs = 0.0f64;
    let mut compute_total = SimTime::ZERO;
    let mut comm_total = SimTime::ZERO;
    let mut overhead_total = SimTime::ZERO;
    let mut converged = false;
    let mut elapsed = startup + load;

    while let Some((t, wid)) = queue.pop() {
        elapsed = elapsed.max(t);
        if cfg.stop.exhausted(epochs, t) {
            break;
        }
        let lr = cfg.lr.lr(epochs.floor() as usize);

        // read the (possibly stale) global model
        let (read_t, params) = asp.read_model(&mut channel)?;
        workers[wid].model.params_mut().copy_from_slice(&params);

        // local step(s)
        let (stat, ex) = workers[wid].produce(&cfg.algorithm, &wl.train, lr);
        if matches!(cfg.algorithm, Algorithm::GaSgd { .. }) {
            // apply own gradient to the copy just read
            workers[wid].consume(&cfg.algorithm, &stat, 1, lr);
        }
        // write the updated model back (blind overwrite, SIREN-style)
        let write_t = asp.write_model(&mut channel, workers[wid].model.params(), wire)?;

        let compute_t =
            engine::compute_time(&model, ex as f64 * scale_inv, nnz, spec.vcpus(), None, 1.0)
                * jitter[wid];
        let busy = read_t + compute_t + write_t;
        let wall = lifetimes[wid].charge(busy);
        overhead_total += wall - busy;
        compute_total += compute_t;
        comm_total += read_t + write_t;
        total_examples += ex;
        epochs = total_examples as f64 / wl.train.len() as f64;
        events += 1;

        let done = t + wall;
        elapsed = elapsed.max(done);
        queue.push(done, wid);

        if events.is_multiple_of(eval_every) {
            let (_, gp) = asp.read_model(&mut channel)?;
            let mut eval = model.clone();
            eval.params_mut().copy_from_slice(&gp);
            let loss = eval.full_loss(&wl.valid);
            let busy_all = (elapsed - startup).max(SimTime::ZERO);
            curve.push(CurvePoint {
                time: elapsed,
                epoch: epochs,
                rounds: events,
                loss,
                cost: price_ps * (busy_all.as_secs() * w as f64)
                    + req_per_iter * events as f64
                    + node_hourly * elapsed.as_hours(),
            });
            if cfg.stop.converged(loss) {
                converged = true;
                break;
            }
        }
    }

    // final observation
    let (_, gp) = asp.read_model(&mut channel)?;
    let mut final_model = model.clone();
    final_model.params_mut().copy_from_slice(&gp);
    if curve.is_empty() || curve.last().map(|p| p.rounds) != Some(events) {
        let loss = final_model.full_loss(&wl.valid);
        if cfg.stop.converged(loss) {
            converged = true;
        }
        curve.push(CurvePoint {
            time: elapsed,
            epoch: epochs,
            rounds: events,
            loss,
            cost: Cost::ZERO,
        });
    }

    // Billing: every worker is busy from fan-out to the end (async workers
    // never idle).
    let busy_per_worker = (elapsed - startup).max(SimTime::ZERO);
    let mut meter = GbSecondsMeter::new();
    for _ in 0..w {
        meter.charge(spec, busy_per_worker);
    }
    let reinvocations = lifetimes.iter().map(|l| l.reinvocations()).sum();
    let final_accuracy = final_model.full_accuracy(&wl.valid);
    let per_worker = 1.0 / w as f64;
    Ok(RunResult {
        system: format!("LambdaML-ASP({})", channel_kind.name()),
        curve: curve.clone(),
        breakdown: Breakdown {
            startup: startup + overhead_total * per_worker,
            load,
            compute: compute_total * per_worker,
            comm: comm_total * per_worker,
        },
        cost: CostBreakdown {
            compute: meter.cost(),
            requests: channel.request_cost(),
            nodes: channel.node_cost(elapsed),
        },
        epochs,
        rounds: events,
        converged,
        final_loss: curve.final_loss(),
        final_accuracy,
        reinvocations,
    })
}
