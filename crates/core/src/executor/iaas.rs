//! The IaaS executor: distributed PyTorch (or Angel) on an EC2 cluster.
//!
//! Communication is Gloo-style ring AllReduce over the VM network
//! (statistics still aggregate bit-exactly — the ring and the storage
//! patterns compute the same sum). Angel jobs inherit the Hadoop-stack
//! start-up, HDFS loading penalty and slower kernels of
//! [`SystemProfile::Angel`]. Billing is instance-hours from cluster launch
//! to convergence — reserved resources bill through start-up and stragglers
//! alike (§2.2).

use crate::engine;
use crate::executor::partition_load_time;
use crate::executor::sync_driver::{run_sync, DriverCtx};
use crate::job::{JobError, TrainingJob};
use crate::result::{Breakdown, CostBreakdown, RunResult};
use lml_faas::FaasError;
use lml_iaas::{ring_allreduce_time, ClusterSpec, InstanceType, SystemProfile};
use lml_models::AnyModel;
use lml_optim::algorithm::{sum_statistics, WorkerState};
use lml_sim::{Cost, SimTime};

/// Run an IaaS job (dispatched from [`TrainingJob::run`]).
pub fn run(
    job: &TrainingJob<'_>,
    model: AnyModel,
    instance: InstanceType,
    system: SystemProfile,
) -> Result<RunResult, JobError> {
    let cfg = &job.config;
    let wl = job.workload;
    let w = cfg.workers;
    let cluster = ClusterSpec::new(instance, w);
    let parts = lml_data::partition::partition_rows(wl.train.len(), w);
    let part_len = parts[0].len();
    let batch = cfg.algorithm.batch_size(part_len);
    let scale_inv = wl.scale_inv();

    // Admission: the partition must fit the VM's memory (with headroom for
    // the engine).
    let partition = wl.spec.partition_bytes(w);
    if partition.as_f64() > instance.memory().as_f64() * 0.8 {
        return Err(JobError::Faas(FaasError::OutOfMemory {
            required: partition,
            limit: instance.memory(),
        }));
    }

    let startup = system.startup_time(&cluster);
    let load = partition_load_time(&wl.spec, w) * system.load_factor();
    let stat_wire = model.statistic_wire_bytes();
    let link = instance.vm_link();
    // Deep models train on the GPU when the instance has one.
    let gpu = match model {
        AnyModel::Mlp { .. } => instance.gpu(),
        _ => None,
    };
    let nnz = engine::avg_nnz(&wl.train);
    let vcpus = instance.vcpus() as f64;
    let compute_factor = system.compute_factor();
    // Angel's PS-based exchange is marginally slower than the ring
    // (Figure 10: 1.1 s vs 0.9 s).
    let comm_factor = match system {
        SystemProfile::PyTorch => 1.0,
        SystemProfile::Angel => 1.2,
    };

    let workers: Vec<WorkerState> = parts
        .iter()
        .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), batch))
        .collect();

    let ctx = DriverCtx {
        train: &wl.train,
        valid: &wl.valid,
        algo: cfg.algorithm,
        schedule: cfg.lr,
        stop: cfg.stop,
        eval_every: cfg.resolved_eval_every(part_len),
        start_offset: startup + load,
    };
    let compute_time_of = |ex: u64| {
        engine::compute_time(
            &model,
            ex as f64 * scale_inv,
            nnz,
            vcpus,
            gpu,
            compute_factor,
        )
    };
    let cost_at = |elapsed: SimTime, _rounds: u64| cluster.cost(elapsed);

    let out = run_sync(
        &ctx,
        workers,
        &compute_time_of,
        &mut |_round, _epoch, stats| {
            let agg = sum_statistics(stats);
            let t = ring_allreduce_time(w, stat_wire, link) * comm_factor;
            Ok((agg, t))
        },
        &mut |t| t, // VMs have no lifetime limit
        &cost_at,
    )?;

    let elapsed = startup + load + out.compute + out.comm;
    let final_accuracy = out.final_model.full_accuracy(&wl.valid);
    let final_loss = out.curve.final_loss();
    Ok(RunResult {
        system: format!("{}({})", system.name(), instance.name()),
        curve: out.curve,
        breakdown: Breakdown {
            startup,
            load,
            compute: out.compute,
            comm: out.comm,
        },
        cost: CostBreakdown {
            compute: cluster.cost(elapsed),
            requests: Cost::ZERO,
            nodes: Cost::ZERO,
        },
        epochs: out.epochs,
        rounds: out.rounds,
        converged: out.converged,
        final_loss,
        final_accuracy,
        reinvocations: 0,
    })
}
