//! Single-machine executor — the COST sanity check (§5.1.1).
//!
//! One EC2 instance holds the entire dataset and trains with no
//! communication at all. McSherry et al.'s COST methodology demands that
//! every scaled-up configuration beat this baseline before its scalability
//! numbers mean anything.

use crate::engine;
use crate::executor::s3_data_link;
use crate::executor::sync_driver::{run_sync, DriverCtx};
use crate::job::{JobError, TrainingJob};
use crate::result::{Breakdown, CostBreakdown, RunResult};
use lml_faas::FaasError;
use lml_iaas::{cluster::iaas_startup_table, InstanceType};
use lml_models::AnyModel;
use lml_optim::algorithm::WorkerState;
use lml_sim::{Cost, SimTime};

/// Run a single-machine job (dispatched from [`TrainingJob::run`]).
pub fn run(
    job: &TrainingJob<'_>,
    model: AnyModel,
    instance: InstanceType,
) -> Result<RunResult, JobError> {
    let cfg = &job.config;
    let wl = job.workload;
    let n = wl.train.len();
    let batch = cfg.algorithm.batch_size(n);
    let scale_inv = wl.scale_inv();

    // The whole dataset must fit in memory.
    if wl.spec.paper_bytes.as_f64() > instance.memory().as_f64() * 0.8 {
        return Err(JobError::Faas(FaasError::OutOfMemory {
            required: wl.spec.paper_bytes,
            limit: instance.memory(),
        }));
    }

    let startup = SimTime::secs(iaas_startup_table().eval(1.0));
    let load = s3_data_link().transfer_time(wl.spec.paper_bytes);
    let gpu = match model {
        AnyModel::Mlp { .. } => instance.gpu(),
        _ => None,
    };
    let nnz = engine::avg_nnz(&wl.train);
    let vcpus = instance.vcpus() as f64;
    let hourly = instance.hourly();

    let workers = vec![WorkerState::new(0, model.clone(), (0..n).collect(), batch)];

    let ctx = DriverCtx {
        train: &wl.train,
        valid: &wl.valid,
        algo: cfg.algorithm,
        schedule: cfg.lr,
        stop: cfg.stop,
        eval_every: cfg.resolved_eval_every(n),
        start_offset: startup + load,
    };
    let compute_time_of =
        |ex: u64| engine::compute_time(&model, ex as f64 * scale_inv, nnz, vcpus, gpu, 1.0);
    let cost_at = |elapsed: SimTime, _r: u64| hourly * elapsed.as_hours();

    let out = run_sync(
        &ctx,
        workers,
        &compute_time_of,
        &mut |_r, _e, stats| Ok((stats[0].clone(), SimTime::ZERO)),
        &mut |t| t,
        &cost_at,
    )?;

    let elapsed = startup + load + out.compute;
    let final_accuracy = out.final_model.full_accuracy(&wl.valid);
    let final_loss = out.curve.final_loss();
    Ok(RunResult {
        system: format!("Single({})", instance.name()),
        curve: out.curve,
        breakdown: Breakdown {
            startup,
            load,
            compute: out.compute,
            comm: SimTime::ZERO,
        },
        cost: CostBreakdown {
            compute: hourly * elapsed.as_hours(),
            requests: Cost::ZERO,
            nodes: Cost::ZERO,
        },
        epochs: out.epochs,
        rounds: out.rounds,
        converged: out.converged,
        final_loss,
        final_accuracy,
        reinvocations: 0,
    })
}
