//! The hybrid executor: Lambda workers + a VM parameter server
//! (Cirrus-style, §3.2.2).
//!
//! Workers push statistics to the PS over gRPC/Thrift; the PS — which,
//! unlike a storage service, *can compute* — applies the aggregation and
//! workers pull the fresh model. That saves a storage hop per round but, as
//! Table 2 shows, the pipeline is bounded by serialization on the Lambda's
//! fractional vCPU and by update locking on the PS.

use crate::engine;
use crate::executor::sync_driver::{run_sync, DriverCtx};
use crate::executor::{memory_required, partition_load_time};
use crate::job::{JobError, TrainingJob};
use crate::result::{Breakdown, CostBreakdown, RunResult};
use lml_faas::{faas_startup_time, GbSecondsMeter, LambdaSpec, LifetimeManager};
use lml_iaas::{cluster::iaas_startup_table, InstanceType, PsModel, RpcKind};
use lml_models::AnyModel;
use lml_optim::algorithm::{sum_statistics, WorkerState};
use lml_sim::{Cost, SimTime};

/// Run a hybrid job (dispatched from [`TrainingJob::run`]).
pub fn run(
    job: &TrainingJob<'_>,
    model: AnyModel,
    spec: LambdaSpec,
    ps_instance: InstanceType,
    rpc: RpcKind,
) -> Result<RunResult, JobError> {
    run_with_ps(job, model, spec, PsModel::new(rpc, ps_instance, 1.8))
}

/// Run with an explicit [`PsModel`] — the analytical what-ifs (Figure 14)
/// pass bandwidth-upgraded models here.
pub fn run_with_ps(
    job: &TrainingJob<'_>,
    model: AnyModel,
    spec: LambdaSpec,
    ps: PsModel,
) -> Result<RunResult, JobError> {
    let cfg = &job.config;
    let wl = job.workload;
    let w = cfg.workers;
    let parts = lml_data::partition::partition_rows(wl.train.len(), w);
    let part_len = parts[0].len();
    let batch = cfg.algorithm.batch_size(part_len);
    let scale_inv = wl.scale_inv();

    let ps_model = PsModel {
        lambda_vcpus: spec.vcpus(),
        ..ps
    };
    spec.check_memory(memory_required(
        &model,
        &wl.spec,
        w,
        batch as f64 * scale_inv,
    ))?;

    // One VM boots (t_I(1)) while the Lambda fleet cold-starts after it —
    // Figure 10 measures ~123 s for the hybrid's start-up.
    let startup = SimTime::secs(iaas_startup_table().eval(1.0)) + faas_startup_time(w);
    let load = partition_load_time(&wl.spec, w);
    let stat_wire = model.statistic_wire_bytes();
    // Rollover: model pull + push through the PS plus the partition reload.
    let rollover = ps_model.transfer_time_single(model.wire_bytes()) * 2.0 + load;
    let mut lifetime = LifetimeManager::with_overhead(rollover);

    let nnz = engine::avg_nnz(&wl.train);
    let price_ps = spec.price_per_second();
    let ps_hourly = ps_model.instance.hourly();

    let workers: Vec<WorkerState> = parts
        .iter()
        .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), batch))
        .collect();

    let ctx = DriverCtx {
        train: &wl.train,
        valid: &wl.valid,
        algo: cfg.algorithm,
        schedule: cfg.lr,
        stop: cfg.stop,
        eval_every: cfg.resolved_eval_every(part_len),
        start_offset: startup + load,
    };
    let compute_time_of =
        |ex: u64| engine::compute_time(&model, ex as f64 * scale_inv, nnz, spec.vcpus(), None, 1.0);
    let cost_at = |elapsed: SimTime, _rounds: u64| {
        let busy = (elapsed - startup).max(SimTime::ZERO);
        price_ps * (busy.as_secs() * w as f64) + ps_hourly * elapsed.as_hours()
    };

    let out = {
        let lifetime = &mut lifetime;
        run_sync(
            &ctx,
            workers,
            &compute_time_of,
            &mut |_round, _epoch, stats| {
                // The PS receives every statistic and computes the sum.
                let agg = sum_statistics(stats);
                Ok((agg, ps_model.round_time(w, stat_wire)))
            },
            &mut |t| lifetime.charge(t),
            &cost_at,
        )?
    };

    let elapsed = startup + load + out.compute + out.comm + out.overhead;
    let mut meter = GbSecondsMeter::new();
    for _ in 0..w {
        meter.charge(spec, load + out.compute + out.comm + out.overhead);
    }
    let final_accuracy = out.final_model.full_accuracy(&wl.valid);
    let final_loss = out.curve.final_loss();
    Ok(RunResult {
        system: format!("HybridPS({})", ps_model.rpc.name()),
        curve: out.curve,
        breakdown: Breakdown {
            startup: startup + out.overhead,
            load,
            compute: out.compute,
            comm: out.comm,
        },
        cost: CostBreakdown {
            compute: meter.cost(),
            requests: Cost::ZERO,
            nodes: ps_hourly * elapsed.as_hours(),
        },
        epochs: out.epochs,
        rounds: out.rounds,
        converged: out.converged,
        final_loss,
        final_accuracy,
        reinvocations: lifetime.reinvocations(),
    })
}
