//! Backend executors.
//!
//! Each executor runs the same real training loop (produce statistics →
//! aggregate → consume) while charging virtual time and dollars according
//! to its infrastructure:
//!
//! * [`faas`] — LambdaML proper: Lambda fleet + storage channel, BSP or
//!   ASP, with the 15-minute lifetime mechanism.
//! * [`iaas`] — distributed PyTorch / Angel on an EC2 cluster with ring
//!   AllReduce.
//! * [`hybrid`] — Cirrus-style Lambda workers + VM parameter server.
//! * [`single`] — one machine (the COST sanity check).
//! * [`sync_driver`] — the shared synchronous round loop.

pub mod faas;
pub mod hybrid;
pub mod iaas;
pub mod single;
pub mod sync_driver;

use lml_comm::Pattern;
use lml_data::DatasetSpec;
use lml_models::AnyModel;
use lml_sim::{ByteSize, Cost, Link, SimTime};
use lml_storage::ServiceProfile;

/// The link every backend loads training data over (S3, Table 6).
pub(crate) fn s3_data_link() -> Link {
    Link::mbps(65.0, 0.08)
}

/// Time for one worker to load its partition from S3 (paper-scale bytes;
/// workers load in parallel, each over its own S3 stream).
pub(crate) fn partition_load_time(spec: &DatasetSpec, workers: usize) -> SimTime {
    s3_data_link().transfer_time(spec.partition_bytes(workers))
}

/// Working-set estimate for one worker: the partition, model + gradient +
/// communication buffers, and the mini-batch materialization (activations
/// for deep models — the term that blows ResNet50 past 3 GB at batch 64,
/// §5.2).
pub(crate) fn memory_required(
    model: &AnyModel,
    spec: &DatasetSpec,
    workers: usize,
    paper_batch: f64,
) -> ByteSize {
    let partition = spec.partition_bytes(workers).as_f64();
    let model_mem = model.wire_bytes().as_f64() * 4.0;
    let batch_mem = match model {
        // Backprop activations scale with batch size; the 0.55·wire-bytes
        // per example coefficient puts ResNet50 at ~3.3 GB for batch 64
        // (OOM, §5.2) and ~1.9 GB for batch 32 (fits).
        AnyModel::Mlp { .. } => model.wire_bytes().as_f64() * 0.55 * paper_batch,
        // EM scans the partition in place — no batch materialization.
        AnyModel::KMeans(_) => 0.0,
        _ => spec.bytes_per_instance() * paper_batch,
    };
    ByteSize::bytes((partition + model_mem + batch_mem) as u64)
}

/// Estimated request charges of one synchronous round (used for live
/// curve-point costs; the final result uses the channel's exact meter).
pub(crate) fn request_cost_per_round(
    profile: &ServiceProfile,
    pattern: Pattern,
    w: usize,
    wire: ByteSize,
) -> Cost {
    let (puts, gets, lists, op_bytes) = match pattern {
        Pattern::AllReduce => ((w + 1) as u64, (2 * w - 1) as u64, 1u64, wire),
        Pattern::ScatterReduce => {
            let chunk = ByteSize::bytes((wire.as_f64() / w as f64).ceil() as u64);
            ((w * w + w) as u64, (w * w + w) as u64, 0u64, chunk)
        }
    };
    profile.put_price.price(op_bytes) * puts as f64
        + profile.get_price.price(op_bytes) * gets as f64
        + profile.put_price.per_request * lists as f64
}
