//! The shared bulk-synchronous training loop.
//!
//! All synchronous backends differ only in three hooks:
//! how long a worker's computation takes, how a round's statistics get
//! aggregated (and how long that takes), and what a second of everything
//! costs. The driver owns the rest: producing/consuming statistics,
//! epoch accounting, periodic validation, curve recording and stopping.

use crate::job::JobError;
use lml_data::Dataset;
use lml_models::AnyModel;
use lml_optim::algorithm::{Algorithm, WorkerState};
use lml_optim::{CurvePoint, LossCurve, LrSchedule, StopSpec};
use lml_sim::{Cost, SimTime};

/// Inputs common to every synchronous run.
pub struct DriverCtx<'a> {
    pub train: &'a Dataset,
    pub valid: &'a Dataset,
    pub algo: Algorithm,
    pub schedule: LrSchedule,
    pub stop: StopSpec,
    /// Evaluate every this many rounds (≥ 1).
    pub eval_every: usize,
    /// Virtual time already elapsed before the first round (start-up +
    /// data loading).
    pub start_offset: SimTime,
}

/// What the loop reports back.
pub struct DriverOutput {
    pub curve: LossCurve,
    pub rounds: u64,
    pub epochs: f64,
    /// Per-worker computation on the critical path (sum over rounds).
    pub compute: SimTime,
    /// Communication on the critical path (sum over rounds).
    pub comm: SimTime,
    /// Extra wall time injected by the backend per round (lifetime
    /// rollovers) — reported separately so breakdowns can attribute it.
    pub overhead: SimTime,
    pub converged: bool,
    pub final_model: AnyModel,
}

/// The per-round aggregation hook: `(round, epoch, stats)` → element-wise
/// sum and communication time.
pub type CommRoundFn<'a> =
    dyn FnMut(u64, usize, &[Vec<f64>]) -> Result<(Vec<f64>, SimTime), JobError> + 'a;

/// Run the synchronous loop.
///
/// * `compute_time_of(max_examples)` — critical-path compute time of one
///   round in which the busiest worker touched `max_examples` *sample*
///   rows (the hook applies the paper-scale conversion).
/// * `comm_round(round, epoch, stats)` — aggregate the statistics, return
///   the element-wise sum and the communication time.
/// * `wall_of_round(t)` — wall time consumed by a round of busy time `t`
///   (identity for IaaS; lifetime rollovers for FaaS).
/// * `cost_at(elapsed, rounds)` — dollars spent by `elapsed` after
///   `rounds` rounds (for curve points).
#[allow(clippy::too_many_arguments)]
pub fn run_sync(
    ctx: &DriverCtx<'_>,
    mut workers: Vec<WorkerState>,
    compute_time_of: &dyn Fn(u64) -> SimTime,
    comm_round: &mut CommRoundFn<'_>,
    wall_of_round: &mut dyn FnMut(SimTime) -> SimTime,
    cost_at: &dyn Fn(SimTime, u64) -> Cost,
) -> Result<DriverOutput, JobError> {
    assert!(!workers.is_empty());
    assert!(ctx.eval_every >= 1);
    let n = workers.len();
    let part_len = workers[0].partition_len();

    let mut curve = LossCurve::new();
    let mut elapsed = ctx.start_offset;
    let mut epochs = 0.0f64;
    let mut rounds = 0u64;
    let mut compute_total = SimTime::ZERO;
    let mut comm_total = SimTime::ZERO;
    let mut overhead_total = SimTime::ZERO;
    let mut converged = false;

    loop {
        if ctx.stop.exhausted(epochs, elapsed) {
            break;
        }
        let epoch_idx = epochs.floor() as usize;
        let lr = ctx.schedule.lr(epoch_idx);

        // Every worker produces its statistic (real math).
        let mut stats = Vec::with_capacity(n);
        let mut max_examples = 0u64;
        for w in workers.iter_mut() {
            let (s, ex) = w.produce(&ctx.algo, ctx.train, lr);
            max_examples = max_examples.max(ex);
            stats.push(s);
        }
        let compute_t = compute_time_of(max_examples);

        // Aggregate (real data through the backend's channel).
        let (agg, comm_t) = comm_round(rounds, epoch_idx, &stats)?;

        // Everyone consumes the sum.
        for w in workers.iter_mut() {
            w.consume(&ctx.algo, &agg, n, lr);
        }

        rounds += 1;
        epochs += max_examples as f64 / part_len as f64;
        compute_total += compute_t;
        comm_total += comm_t;
        let busy = compute_t + comm_t;
        let wall = wall_of_round(busy);
        debug_assert!(wall.as_secs() >= busy.as_secs() - 1e-9);
        overhead_total += wall - busy;
        elapsed += wall;

        // Periodic validation.
        if rounds.is_multiple_of(ctx.eval_every as u64) {
            let m = workers[0].eval_model(&ctx.algo);
            let loss = m.full_loss(ctx.valid);
            curve.push(CurvePoint {
                time: elapsed,
                epoch: epochs,
                rounds,
                loss,
                cost: cost_at(elapsed, rounds),
            });
            if ctx.stop.converged(loss) {
                converged = true;
                break;
            }
        }
    }

    // Guarantee a final observation.
    let final_model = workers[0].eval_model(&ctx.algo);
    if curve.is_empty() || curve.last().map(|p| p.rounds) != Some(rounds) {
        let loss = final_model.full_loss(ctx.valid);
        curve.push(CurvePoint {
            time: elapsed,
            epoch: epochs,
            rounds,
            loss,
            cost: cost_at(elapsed, rounds),
        });
        if ctx.stop.converged(loss) {
            converged = true;
        }
    }

    Ok(DriverOutput {
        curve,
        rounds,
        epochs,
        compute: compute_total,
        comm: comm_total,
        overhead: overhead_total,
        converged,
        final_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_data::generators::DatasetId;
    use lml_data::partition::partition_rows;
    use lml_models::ModelId;
    use lml_optim::algorithm::sum_statistics;

    fn drive(stop: StopSpec, eval_every: usize) -> DriverOutput {
        let data = DatasetId::Higgs.generate_rows(1_000, 42).data;
        let valid = DatasetId::Higgs.generate_rows(200, 43).data;
        let model = ModelId::Lr { l2: 0.0 }.build(&data, 1);
        let algo = Algorithm::GaSgd { batch: 100 };
        let workers: Vec<WorkerState> = partition_rows(data.len(), 4)
            .iter()
            .map(|p| WorkerState::new(p.worker, model.clone(), p.indices().collect(), 100))
            .collect();
        let ctx = DriverCtx {
            train: &data,
            valid: &valid,
            algo,
            schedule: LrSchedule::Const(0.5),
            stop,
            eval_every,
            start_offset: SimTime::secs(10.0),
        };
        run_sync(
            &ctx,
            workers,
            &|ex| SimTime::secs(ex as f64 * 0.001),
            &mut |_r, _e, stats| Ok((sum_statistics(stats), SimTime::secs(0.5))),
            &mut |t| t,
            &|elapsed, _| Cost::usd(elapsed.as_secs() * 0.01),
        )
        .unwrap()
    }

    #[test]
    fn converges_to_threshold_and_stops() {
        let out = drive(StopSpec::new(0.665, 100), 1);
        assert!(out.converged, "final loss {}", out.curve.final_loss());
        assert!(out.curve.final_loss() <= 0.665);
        assert!(out.epochs < 100.0);
    }

    #[test]
    fn epoch_cap_halts_unconverged_runs() {
        let out = drive(StopSpec::new(0.0, 3), 1);
        assert!(!out.converged);
        // 1000 rows / 4 workers / batch 100 (clamped to 250-row partition)
        // → epochs advance by batch/partition per round; cap at 3 epochs.
        assert!(
            out.epochs >= 3.0 && out.epochs < 3.5,
            "epochs {}",
            out.epochs
        );
    }

    #[test]
    fn time_accounting_adds_up() {
        let out = drive(StopSpec::new(0.0, 2), 1);
        // per round: compute = 100 examples × 1 ms = 0.1 s; comm 0.5 s
        let per_round = 0.6;
        let expected = 10.0 + out.rounds as f64 * per_round;
        let last = out.curve.last().unwrap();
        assert!((last.time.as_secs() - expected).abs() < 1e-6);
        assert!((out.compute.as_secs() - out.rounds as f64 * 0.1).abs() < 1e-9);
        assert!((out.comm.as_secs() - out.rounds as f64 * 0.5).abs() < 1e-9);
        assert_eq!(out.overhead, SimTime::ZERO);
    }

    #[test]
    fn eval_cadence_thins_the_curve() {
        let dense = drive(StopSpec::new(0.0, 2), 1);
        let sparse = drive(StopSpec::new(0.0, 2), 5);
        assert!(sparse.curve.points().len() < dense.curve.points().len());
        // but both end with a final point at the same round count
        assert_eq!(
            dense.curve.last().unwrap().rounds,
            sparse.curve.last().unwrap().rounds
        );
    }

    #[test]
    fn curve_costs_are_monotone() {
        let out = drive(StopSpec::new(0.0, 2), 1);
        let pts = out.curve.points();
        for w in pts.windows(2) {
            assert!(w[1].cost >= w[0].cost);
            assert!(w[1].time >= w[0].time);
        }
    }
}
