//! Run results: the paper's reporting surface.
//!
//! [`Breakdown`] mirrors Figure 10's bars (start-up / data loading /
//! computation / communication); [`CostBreakdown`] decomposes dollars the
//! way §5.2 discusses them (compute billing vs storage requests vs cache
//! nodes); [`RunResult`] bundles everything with the loss curve.

use lml_optim::LossCurve;
use lml_sim::{Cost, SimTime};

/// Figure 10's time decomposition.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// Infrastructure start-up (VM boot / Lambda cold start / Hadoop stack),
    /// including storage-channel provisioning (Memcached boot).
    pub startup: SimTime,
    /// Loading the training-data partition from S3 (or HDFS for Angel).
    pub load: SimTime,
    /// Per-worker computation (sum over rounds).
    pub compute: SimTime,
    /// Communication on the critical path (sum over rounds).
    pub comm: SimTime,
}

impl Breakdown {
    /// End-to-end wall time.
    pub fn total(&self) -> SimTime {
        self.startup + self.load + self.compute + self.comm
    }

    /// Figure 10's second bar: total excluding start-up.
    pub fn total_without_startup(&self) -> SimTime {
        self.load + self.compute + self.comm
    }
}

/// Where the dollars went.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBreakdown {
    /// Lambda GB-seconds or EC2 instance-hours.
    pub compute: Cost,
    /// Per-request storage charges (S3 PUT/GET/LIST, DynamoDB units).
    pub requests: Cost,
    /// Provisioned-node hours (ElastiCache, the hybrid PS VM).
    pub nodes: Cost,
}

impl CostBreakdown {
    pub fn total(&self) -> Cost {
        self.compute + self.requests + self.nodes
    }
}

/// Everything one training run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Human-readable backend description.
    pub system: String,
    /// Convergence trajectory (time/epoch/rounds/loss/cost points).
    pub curve: LossCurve,
    pub breakdown: Breakdown,
    pub cost: CostBreakdown,
    /// Data epochs completed.
    pub epochs: f64,
    /// Communication rounds completed.
    pub rounds: u64,
    /// Reached the loss target (vs stopped on a cap)?
    pub converged: bool,
    /// Final validation loss.
    pub final_loss: f64,
    /// Final validation accuracy (1.0 for clustering).
    pub final_accuracy: f64,
    /// Lambda re-invocations forced by the 15-minute lifetime.
    pub reinvocations: u32,
}

impl RunResult {
    /// Wall time of the run.
    pub fn runtime(&self) -> SimTime {
        self.breakdown.total()
    }

    /// Dollars of the run.
    pub fn dollars(&self) -> Cost {
        self.cost.total()
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} time={:>9} cost={:>8} epochs={:>6.1} rounds={:>6} loss={:.4}{}",
            self.system,
            self.runtime().to_string(),
            self.dollars().to_string(),
            self.epochs,
            self.rounds,
            self.final_loss,
            if self.converged {
                ""
            } else {
                " (not converged)"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = Breakdown {
            startup: SimTime::secs(132.0),
            load: SimTime::secs(9.0),
            compute: SimTime::secs(80.0),
            comm: SimTime::secs(0.9),
        };
        assert!((b.total().as_secs() - 221.9).abs() < 1e-9);
        assert!((b.total_without_startup().as_secs() - 89.9).abs() < 1e-9);
    }

    #[test]
    fn cost_totals() {
        let c = CostBreakdown {
            compute: Cost::usd(0.4),
            requests: Cost::usd(0.05),
            nodes: Cost::usd(0.02),
        };
        assert!((c.total().as_usd() - 0.47).abs() < 1e-12);
    }

    #[test]
    fn summary_flags_non_convergence() {
        let r = RunResult {
            system: "FaaS/S3".into(),
            curve: LossCurve::new(),
            breakdown: Breakdown::default(),
            cost: CostBreakdown::default(),
            epochs: 3.0,
            rounds: 30,
            converged: false,
            final_loss: 0.9,
            final_accuracy: 0.5,
            reinvocations: 0,
        };
        assert!(r.summary().contains("not converged"));
    }
}
