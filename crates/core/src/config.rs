//! Job configuration — the design space of §3.
//!
//! A [`JobConfig`] fixes one point in the paper's four-dimensional design
//! space (algorithm × channel × pattern × protocol) plus the infrastructure
//! choice (backend, worker count) and training hyper-parameters.

use lml_comm::Pattern;
use lml_faas::LambdaSpec;
use lml_iaas::{InstanceType, RpcKind, SystemProfile};
use lml_optim::{Algorithm, LrSchedule, StopSpec};
use lml_storage::{CacheNode, ServiceProfile};

/// Which storage service carries intermediate state (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelKind {
    S3,
    Memcached(CacheNode),
    Redis(CacheNode),
    DynamoDb,
}

impl ChannelKind {
    pub fn profile(self) -> ServiceProfile {
        match self {
            ChannelKind::S3 => ServiceProfile::s3(),
            ChannelKind::Memcached(node) => ServiceProfile::memcached(node),
            ChannelKind::Redis(node) => ServiceProfile::redis(node),
            ChannelKind::DynamoDb => ServiceProfile::dynamodb(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::S3 => "S3",
            ChannelKind::Memcached(_) => "Memcached",
            ChannelKind::Redis(_) => "Redis",
            ChannelKind::DynamoDb => "DynamoDB",
        }
    }
}

/// Synchronization protocol (§3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Bulk-synchronous: the two-phase merge/update protocol.
    Sync,
    /// S-ASP: global model on storage, workers never wait.
    Async,
}

/// The infrastructure running the job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Pure FaaS (LambdaML): Lambda workers + storage channel.
    Faas {
        spec: LambdaSpec,
        channel: ChannelKind,
        pattern: Pattern,
        protocol: Protocol,
    },
    /// IaaS: an EC2 cluster running a serverful system (PyTorch or Angel).
    Iaas {
        instance: InstanceType,
        system: SystemProfile,
    },
    /// Hybrid (Cirrus-style): Lambda workers + a VM parameter server.
    Hybrid {
        spec: LambdaSpec,
        ps: InstanceType,
        rpc: RpcKind,
    },
    /// Single machine (the COST sanity check of §5.1.1).
    Single { instance: InstanceType },
}

impl Backend {
    /// The paper's default pure-FaaS setup: 3 GB functions, S3 channel,
    /// AllReduce, synchronous.
    pub fn faas_default() -> Backend {
        Backend::Faas {
            spec: LambdaSpec::gb3(),
            channel: ChannelKind::S3,
            pattern: Pattern::AllReduce,
            protocol: Protocol::Sync,
        }
    }

    /// The paper's default IaaS setup: distributed PyTorch on t2.medium.
    pub fn iaas_default() -> Backend {
        Backend::Iaas {
            instance: InstanceType::T2Medium,
            system: SystemProfile::PyTorch,
        }
    }

    /// The hybrid baseline as evaluated: gRPC against a c5.4xlarge PS.
    pub fn hybrid_default() -> Backend {
        Backend::Hybrid {
            spec: LambdaSpec::gb3(),
            ps: InstanceType::C5XLarge4,
            rpc: RpcKind::Grpc,
        }
    }

    pub fn name(&self) -> String {
        match self {
            Backend::Faas { channel, .. } => format!("FaaS/{}", channel.name()),
            Backend::Iaas { instance, system } => {
                format!("{}/{}", system.name(), instance.name())
            }
            Backend::Hybrid { rpc, ps, .. } => format!("HybridPS/{}/{}", rpc.name(), ps.name()),
            Backend::Single { instance } => format!("Single/{}", instance.name()),
        }
    }
}

/// Everything a training job needs besides the data and the model.
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    pub workers: usize,
    pub algorithm: Algorithm,
    pub lr: LrSchedule,
    pub stop: StopSpec,
    pub backend: Backend,
    /// Evaluate validation loss every this many communication rounds
    /// (`0` = auto: ~4 evaluations per epoch, at least every round for
    /// round-per-epoch algorithms).
    pub eval_every: usize,
    pub seed: u64,
}

impl JobConfig {
    pub fn new(workers: usize, algorithm: Algorithm, lr: f64, stop: StopSpec) -> Self {
        JobConfig {
            workers,
            algorithm,
            lr: LrSchedule::Const(lr),
            stop,
            backend: Backend::faas_default(),
            eval_every: 0,
            seed: 42,
        }
    }

    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    pub fn with_schedule(mut self, lr: LrSchedule) -> Self {
        self.lr = lr;
        self
    }

    pub fn with_eval_every(mut self, rounds: usize) -> Self {
        self.eval_every = rounds;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolve the evaluation cadence for a partition of `partition_len`
    /// rows.
    pub fn resolved_eval_every(&self, partition_len: usize) -> usize {
        if self.eval_every > 0 {
            return self.eval_every;
        }
        let per_epoch = self.algorithm.rounds_per_epoch(partition_len);
        ((per_epoch / 4.0).floor() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_optim::Algorithm;

    #[test]
    fn channel_profiles_resolve() {
        assert_eq!(ChannelKind::S3.profile().kind, lml_storage::ServiceKind::S3);
        assert_eq!(
            ChannelKind::Redis(CacheNode::T3Medium).profile().kind,
            lml_storage::ServiceKind::Redis
        );
        assert!(ChannelKind::DynamoDb.profile().max_item.is_some());
    }

    #[test]
    fn backend_names_are_descriptive() {
        assert_eq!(Backend::faas_default().name(), "FaaS/S3");
        assert_eq!(Backend::iaas_default().name(), "PyTorch/t2.medium");
        assert!(Backend::hybrid_default().name().contains("gRPC"));
    }

    #[test]
    fn eval_cadence_auto_resolves() {
        let cfg = JobConfig::new(
            4,
            Algorithm::GaSgd { batch: 100 },
            0.1,
            StopSpec::new(0.5, 10),
        );
        // 1000-row partition, batch 100 → 10 rounds/epoch → eval every 2
        assert_eq!(cfg.resolved_eval_every(1_000), 2);
        // EM: 1 round/epoch → every round
        let em = JobConfig::new(4, Algorithm::Em, 0.0, StopSpec::new(0.5, 10));
        assert_eq!(em.resolved_eval_every(1_000), 1);
        // explicit override wins
        assert_eq!(cfg.with_eval_every(7).resolved_eval_every(1_000), 7);
    }
}
