//! # lml-linalg — linear-algebra kernels for LambdaML-rs
//!
//! Dependency-free dense and sparse kernels sized for the paper's workloads:
//! dense feature vectors up to 4096 dimensions (YFCC100M), sparse vectors up
//! to 1M dimensions (Criteo), and flat parameter buffers up to tens of MB
//! (ResNet50 surrogate).
//!
//! * [`dense`] — slice-based BLAS-1 kernels (dot, axpy, scale, norms) and
//!   small utilities (argmax, squared distance).
//! * [`sparse`] — [`sparse::SparseVec`]: sorted `(index, value)` pairs with
//!   dense interaction kernels.
//! * [`matrix`] — row-major [`matrix::Matrix`] used for dense feature blocks
//!   and MLP weight layers.

#![forbid(unsafe_code)]

pub mod dense;
pub mod matrix;
pub mod sparse;

pub use matrix::Matrix;
pub use sparse::SparseVec;
