//! Dense BLAS-1 style kernels on f64 slices.
//!
//! These are the hot loops of every linear-model workload in the paper
//! (LR/SVM gradients are dot + axpy; k-means is squared distances). They are
//! written as straightforward indexed loops, which LLVM auto-vectorizes in
//! release builds.

/// Dot product `x · y`. Panics if lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y += a * x`. Panics if lengths differ.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `x *= a`.
#[inline]
pub fn scale(x: &mut [f64], a: f64) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// `y += x` element-wise.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    axpy(1.0, x, y);
}

/// Set all elements to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.iter_mut().for_each(|v| *v = 0.0);
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        let d = x[i] - y[i];
        acc += d * d;
    }
    acc
}

/// Index of the maximum element (first on ties). Panics on empty input.
#[inline]
pub fn argmax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for i in 1..x.len() {
        if x[i] > x[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element (first on ties). Panics on empty input.
#[inline]
pub fn argmin(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for i in 1..x.len() {
        if x[i] < x[best] {
            best = i;
        }
    }
    best
}

/// Average `n` equal-length vectors into `out` (pre-sized). This is the
/// reducer of gradient averaging and model averaging.
pub fn mean_into(vectors: &[&[f64]], out: &mut [f64]) {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    zero(out);
    for v in vectors {
        add_assign(out, v);
    }
    scale(out, 1.0 / vectors.len() as f64);
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// `log(1 + exp(-z))` without overflow — the logistic loss kernel.
#[inline]
pub fn log1p_exp_neg(z: f64) -> f64 {
    if z > 0.0 {
        (-z).exp().ln_1p()
    } else {
        -z + z.exp().ln_1p()
    }
}

/// In-place softmax over a slice (subtracts the max for stability).
pub fn softmax_inplace(x: &mut [f64]) {
    assert!(!x.is_empty());
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = vec![2.0, -4.0];
        scale(&mut x, 0.5);
        assert_eq!(x, vec![1.0, -2.0]);
        zero(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn norms_and_distances() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), 1);
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), 0);
        assert_eq!(argmax(&[2.0, 2.0]), 0, "first wins ties");
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = vec![0.0; 2];
        mean_into(&[&a, &b], &mut out);
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logistic_loss_kernel_stable() {
        // log(1+exp(-z)) at large |z|
        assert!((log1p_exp_neg(800.0) - 0.0).abs() < 1e-12);
        assert!((log1p_exp_neg(-800.0) - 800.0).abs() < 1e-9);
        assert!((log1p_exp_neg(0.0) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(x[2] > x[1] && x[1] > x[0]);
        // stability with huge logits
        let mut y = vec![1000.0, 1000.0];
        softmax_inplace(&mut y);
        assert!((y[0] - 0.5).abs() < 1e-12);
    }
}
