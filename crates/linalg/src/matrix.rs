//! Row-major dense matrix.
//!
//! Used for dense feature blocks (a dataset partition is a `rows × dim`
//! matrix) and MLP weight layers. Only the operations the workloads need are
//! implemented: row access, matvec, and transposed-matvec (the backprop
//! kernel).

use crate::dense;

/// Row-major `rows × cols` matrix of f64.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view of the whole matrix.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self * x` where `x` has `cols` entries and `out` has `rows`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(out.len(), self.rows, "matvec: out length");
        for (r, o) in out.iter_mut().enumerate() {
            *o = dense::dot(self.row(r), x);
        }
    }

    /// `out = selfᵀ * x` where `x` has `rows` entries and `out` has `cols`.
    /// This is the backprop kernel `Wᵀ δ`.
    pub fn matvec_t(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(out.len(), self.cols, "matvec_t: out length");
        dense::zero(out);
        for (r, &xr) in x.iter().enumerate() {
            dense::axpy(xr, self.row(r), out);
        }
    }

    /// Rank-1 update `self += a * u vᵀ` — the weight-gradient accumulation
    /// kernel (`δ xᵀ`).
    pub fn rank1_update(&mut self, a: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "rank1: u length");
        assert_eq!(v.len(), self.cols, "rank1: v length");
        for (r, &ur) in u.iter().enumerate() {
            let s = a * ur;
            dense::axpy(s, v, &mut self.data[r * self.cols..(r + 1) * self.cols]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn construction_and_access() {
        let m = m22();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn zeros_and_set() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.as_flat().iter().sum::<f64>(), 7.0);
    }

    #[test]
    fn matvec_forward() {
        let m = m22();
        let mut out = vec![0.0; 2];
        m.matvec(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_transposed() {
        let m = m22();
        let mut out = vec![0.0; 2];
        m.matvec_t(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
    }

    #[test]
    fn rank1_update_is_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(2.0, &[1.0, 3.0], &[5.0, 7.0]);
        assert_eq!(m.as_flat(), &[10.0, 14.0, 30.0, 42.0]);
    }

    #[test]
    #[should_panic]
    fn from_flat_rejects_wrong_size() {
        Matrix::from_flat(2, 2, vec![1.0]);
    }

    #[test]
    fn row_mut_edits_in_place() {
        let mut m = m22();
        m.row_mut(1)[1] = 9.0;
        assert_eq!(m.get(1, 1), 9.0);
    }
}
