//! Sparse vectors for high-dimensional workloads (RCV1: 47 K dims, Criteo:
//! 1 M dims).
//!
//! A [`SparseVec`] is a pair of parallel arrays `(indices, values)` with
//! strictly increasing `u32` indices. Models keep their parameters dense and
//! interact with sparse examples through the kernels here — the same layout
//! trick the paper's PyTorch implementation relies on.

use crate::dense;

/// Sparse vector: strictly-increasing indices with parallel values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    idx: Vec<u32>,
    val: Vec<f64>,
}

impl SparseVec {
    /// Build from `(index, value)` pairs. Pairs are sorted; duplicate indices
    /// are summed; explicit zeros are kept (they still cost wire bytes, as in
    /// a real TF-IDF row).
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_by_key(|p| p.0);
        let mut idx = Vec::with_capacity(pairs.len());
        let mut val = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if idx.last() == Some(&i) {
                *val.last_mut().expect("parallel arrays") += v;
            } else {
                idx.push(i);
                val.push(v);
            }
        }
        SparseVec { idx, val }
    }

    /// Build from pre-sorted parallel arrays (checked in debug builds).
    pub fn from_sorted(idx: Vec<u32>, val: Vec<f64>) -> Self {
        assert_eq!(idx.len(), val.len(), "parallel arrays must match");
        debug_assert!(
            idx.windows(2).all(|w| w[0] < w[1]),
            "indices must strictly increase"
        );
        SparseVec { idx, val }
    }

    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    pub fn values(&self) -> &[f64] {
        &self.val
    }

    /// Iterate `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.idx.iter().copied().zip(self.val.iter().copied())
    }

    /// Dot product against a dense vector of at least `max index + 1` length.
    #[inline]
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, v) in self.iter() {
            acc += dense[i as usize] * v;
        }
        acc
    }

    /// `dense[i] += a * self[i]` for all stored entries — the sparse gradient
    /// scatter used by LR/SVM on sparse data.
    #[inline]
    pub fn axpy_into_dense(&self, a: f64, dense: &mut [f64]) {
        for (i, v) in self.iter() {
            dense[i as usize] += a * v;
        }
    }

    /// Squared L2 norm.
    pub fn norm2_sq(&self) -> f64 {
        dense::dot(&self.val, &self.val)
    }

    /// Scale all values in place (used by TF-IDF row normalization).
    pub fn scale(&mut self, a: f64) {
        dense::scale(&mut self.val, a);
    }

    /// L2-normalize in place; no-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm2_sq().sqrt();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// Materialize as a dense vector of length `dim`.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for (i, v) in self.iter() {
            out[i as usize] = v;
        }
        out
    }

    /// Wire size: 4-byte index + 8-byte value per entry (the paper's sparse
    /// tensors ship index/value pairs).
    pub fn wire_bytes(&self) -> u64 {
        self.nnz() as u64 * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVec::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[2.0, 4.0]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_against_dense() {
        let v = SparseVec::from_pairs(vec![(0, 2.0), (3, 4.0)]);
        let d = [1.0, 9.0, 9.0, 0.5];
        assert_eq!(v.dot_dense(&d), 4.0);
    }

    #[test]
    fn axpy_scatter() {
        let v = SparseVec::from_pairs(vec![(1, 1.0), (2, -1.0)]);
        let mut d = vec![0.0; 4];
        v.axpy_into_dense(2.0, &mut d);
        assert_eq!(d, vec![0.0, 2.0, -2.0, 0.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = SparseVec::from_pairs(vec![(0, 3.0), (7, 4.0)]);
        v.normalize();
        assert!((v.norm2_sq() - 1.0).abs() < 1e-12);
        // zero vector unchanged
        let mut z = SparseVec::default();
        z.normalize();
        assert!(z.is_empty());
    }

    #[test]
    fn to_dense_roundtrip() {
        let v = SparseVec::from_pairs(vec![(1, 5.0)]);
        assert_eq!(v.to_dense(3), vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn wire_bytes_counts_pairs() {
        let v = SparseVec::from_pairs(vec![(1, 5.0), (2, 1.0)]);
        assert_eq!(v.wire_bytes(), 24);
    }

    #[test]
    #[should_panic]
    fn from_sorted_rejects_mismatched_arrays() {
        SparseVec::from_sorted(vec![1, 2], vec![1.0]);
    }
}
