//! Fleet scheduling policies.
//!
//! A [`Scheduler`] routes each arriving job to the FaaS region, the IaaS
//! pool, or the spot tier, and declares the [`QueueDiscipline`] the
//! simulator's admission queues obey for it. The two degenerate policies
//! reproduce the paper's single-backend world at fleet scale; every
//! model-driven policy prices both options per job through a pluggable
//! [`Estimator`] (the §5.3 analytical model by default, or an online /
//! hybrid model learned from the simulator's completion feedback):
//! [`CostAware`] takes the cheaper side with a load-aware escape hatch;
//! [`DeadlineAware`] runs EDF over the predicted runtimes and spills to
//! IaaS when FaaS can't make the deadline; [`FairShare`] routes by cost
//! but drains queues deficit-round-robin across weighted tenants.

use crate::estimate::{
    calibrate_epochs, Analytic, CompletedJob, Estimate, Estimator, PreemptionObs, RiskModel,
    ETA_QUANTILE,
};
use crate::intern::TenantMap;
use crate::job::{JobClass, JobRequest, TenantId};
use crate::lifecycle::CheckpointPolicy;
use lml_sim::SimTime;

/// Where a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Faas,
    Iaas,
    /// Preemptible spot instances: cheapest, but the job may be reclaimed
    /// mid-run and requeued.
    Spot,
}

impl Route {
    pub fn name(self) -> &'static str {
        match self {
            Route::Faas => "faas",
            Route::Iaas => "iaas",
            Route::Spot => "spot",
        }
    }
}

/// Order in which the simulator's admission queues are drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Strict arrival order.
    #[default]
    Fifo,
    /// Earliest deadline first; deadline-less jobs go last, ties break by
    /// submission order.
    Edf,
    /// Deficit round-robin across tenants: the queued job of the tenant
    /// with the least weighted service started so far goes first.
    Drr,
}

/// Snapshot of platform load handed to the scheduler at decision time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetView {
    /// FaaS executions currently running.
    pub faas_in_use: usize,
    /// Account concurrency limit.
    pub faas_limit: usize,
    /// Workers queued for the FaaS region.
    pub faas_queued_workers: usize,
    /// Idle booted IaaS instances.
    pub iaas_free: usize,
    /// Booted IaaS instances (busy + idle).
    pub iaas_capacity: usize,
    /// Instances being provisioned.
    pub iaas_provisioning: usize,
    /// Workers queued for the IaaS pool.
    pub iaas_queued_workers: usize,
}

/// A fleet scheduling policy.
///
/// `Send` is a supertrait so whole simulation runs — scheduler included —
/// can be fanned out across the bench sweep engine's worker threads.
///
/// # Example: a custom constant router
///
/// ```
/// use lml_fleet::{FleetView, JobRequest, Route, Scheduler};
///
/// /// Sends every job wider than 32 workers to the reserved pool.
/// struct WidthSplit;
///
/// impl Scheduler for WidthSplit {
///     fn name(&self) -> &'static str {
///         "width-split"
///     }
///     fn route(&mut self, job: &JobRequest, _view: &FleetView) -> Route {
///         if job.workers > 32 {
///             Route::Iaas
///         } else {
///             Route::Faas
///         }
///     }
/// }
/// ```
pub trait Scheduler: Send {
    fn name(&self) -> &'static str;
    /// Route one arriving job given the current platform load.
    fn route(&mut self, job: &JobRequest, view: &FleetView) -> Route;
    /// How the simulator's admission queues are ordered for this policy.
    fn discipline(&self) -> QueueDiscipline {
        QueueDiscipline::Fifo
    }
    /// Fair-share weight of a tenant (only consulted under
    /// [`QueueDiscipline::Drr`]; unknown tenants default to 1).
    fn tenant_weight(&self, _tenant: TenantId) -> f64 {
        1.0
    }
    /// The policy's runtime/cost prediction for this job, if it makes one
    /// — the simulator snapshots it at admission to score prediction
    /// error. Constant routers predict nothing.
    fn estimate(&self, _job: &JobRequest) -> Option<Estimate> {
        None
    }
    /// Completion feedback from the simulator: called on every `Done`
    /// lifecycle transition with the job's actuals. Policies holding an
    /// [`Estimator`] forward this to it; the default drops it.
    fn observe(&mut self, _done: &CompletedJob) {}
    /// Spot-market feedback from the simulator: every spot attempt's
    /// outcome — `SpotPreempted` *and* clean `SpotDone`, so rates are
    /// exposure-weighted — the moment it settles. Risk-aware policies
    /// forward this to their [`RiskModel`]; the default drops it.
    fn observe_preemption(&mut self, _obs: &PreemptionObs) {}
    /// The quantile this policy prices runtime tails at. The simulator
    /// snapshots admission-time quantile ETAs (scored as coverage in the
    /// metrics) and prices deferral-vs-rejection at the same tail the
    /// policy routes with, so the two subsystems can't judge one job at
    /// different quantiles. Defaults to [`ETA_QUANTILE`].
    fn eta_quantile(&self) -> f64 {
        ETA_QUANTILE
    }
    /// The risk-adjusted spot ETA this policy would price the job's spot
    /// admission at, if it computes one — purely explanatory: the
    /// simulator stamps it into the admission [`DecisionRecord`] so trace
    /// consumers can see the number that competed against the firm-price
    /// ETAs. Policies without a risk model report nothing.
    ///
    /// [`DecisionRecord`]: crate::observe::DecisionRecord
    fn spot_eta_hint(&self, _job: &JobRequest, _e: &Estimate) -> Option<f64> {
        None
    }
}

/// Deterministic spot assignment: a stable per-job hash decides whether an
/// IaaS-bound job rides the spot market instead, so a `spot_fraction` of
/// jobs (in expectation, independent of arrival order) go preemptible
/// without consuming any RNG state.
pub(crate) fn spot_pick(id: u64, spot_fraction: f64) -> bool {
    if spot_fraction <= 0.0 {
        return false;
    }
    let h = (id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < spot_fraction
}

/// Route everything to Lambda.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllFaas;

impl Scheduler for AllFaas {
    fn name(&self) -> &'static str {
        "all-faas"
    }
    fn route(&mut self, _job: &JobRequest, _view: &FleetView) -> Route {
        Route::Faas
    }
}

/// Route everything to the reserved cluster.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllIaas;

impl Scheduler for AllIaas {
    fn name(&self) -> &'static str {
        "all-iaas"
    }
    fn route(&mut self, _job: &JobRequest, _view: &FleetView) -> Route {
        Route::Iaas
    }
}

/// Cost-aware hybrid: per job, price both substrates with the estimator
/// and take the cheaper one — unless the cheaper side is saturated and the
/// other side would finish the job sooner, in which case latency wins (the
/// premium buys down the queue).
#[derive(Debug, Clone)]
pub struct CostAware {
    est: Box<dyn Estimator>,
    /// How much slower the cheaper option may be (vs the other side) before
    /// the router abandons it while it is saturated.
    pub patience: f64,
}

impl Default for CostAware {
    fn default() -> Self {
        Self::new()
    }
}

impl CostAware {
    /// Router predicting with the analytic model over the default cases
    /// (S3-channel FaaS, t2.medium IaaS) — matches
    /// [`crate::sim::FleetConfig::default`]. For any other fleet
    /// configuration use [`CostAware::for_config`] so the routing
    /// estimates price the same substrates the simulator charges.
    pub fn new() -> Self {
        CostAware {
            est: Box::new(Analytic::new()),
            patience: 2.0,
        }
    }

    /// Router predicting with the analytic model over the fleet's own
    /// channel/pricing cases.
    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        CostAware {
            est: Box::new(Analytic::for_config(cfg)),
            ..Self::new()
        }
    }

    /// Swap in a different prediction model (online, hybrid, …).
    pub fn with_estimator(mut self, est: Box<dyn Estimator>) -> Self {
        self.est = est;
        self
    }

    /// Re-estimate `R` (epochs to threshold) for `class` by training on a
    /// `sample_frac` subsample — the paper's §5.3 estimator — and pin the
    /// result into the estimator's analytic prior.
    pub fn calibrate(&mut self, class: JobClass, sample_frac: f64, max_epochs: usize, seed: u64) {
        let epochs = calibrate_epochs(class, sample_frac, max_epochs, seed);
        self.est.pin_epochs(class, epochs);
    }

    /// Directly pin the epoch estimate for a class (e.g. from an offline
    /// estimator run).
    pub fn with_epochs(mut self, class: JobClass, epochs: f64) -> Self {
        self.est.pin_epochs(class, epochs);
        self
    }

    /// Public view of the per-job runtime estimate (FaaS, IaaS), for
    /// reporting.
    pub fn estimated_run(&self, job: &JobRequest) -> (SimTime, SimTime) {
        let e = self.est.predict(job);
        (SimTime::secs(e.t_faas), SimTime::secs(e.t_iaas))
    }
}

impl Scheduler for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn route(&mut self, job: &JobRequest, view: &FleetView) -> Route {
        let e = self.est.predict(job);
        let (cheap, t_cheap, t_other) = if e.c_iaas <= e.c_faas {
            (Route::Iaas, e.t_iaas, e.t_faas)
        } else {
            (Route::Faas, e.t_faas, e.t_iaas)
        };
        // Saturation check for the cheaper side (this policy never routes
        // to spot, so only the two firm substrates appear here).
        let saturated = match cheap {
            Route::Iaas => {
                view.iaas_queued_workers + job.workers > view.iaas_free + view.iaas_provisioning
            }
            Route::Faas => {
                view.faas_queued_workers + job.workers + view.faas_in_use > view.faas_limit
            }
            Route::Spot => unreachable!("cost-aware routes to firm capacity only"),
        };
        if saturated && t_other * self.patience < t_cheap + queue_penalty(cheap, view) {
            // The queue on the cheap side costs more time than the premium
            // side's whole run: buy latency.
            return match cheap {
                Route::Iaas => Route::Faas,
                _ => Route::Iaas,
            };
        }
        cheap
    }

    fn estimate(&self, job: &JobRequest) -> Option<Estimate> {
        Some(self.est.predict(job))
    }

    fn observe(&mut self, done: &CompletedJob) {
        self.est.observe(done);
    }
}

/// Deadline-aware EDF scheduler.
///
/// Jobs with deadlines are admitted earliest-deadline-first
/// ([`QueueDiscipline::Edf`]) and routed to the cheapest substrate whose
/// predicted *completion* (run plus a queue-backlog estimate) still meets
/// the deadline. FaaS can't make it when the predicted run is too slow
/// (deep, communication-bound jobs) or the region is saturated — the job
/// spills to the reserved pool; conversely a backlogged pool pushes urgent
/// jobs onto Lambda's elasticity. When nothing makes it the
/// earlier-finishing side wins (minimize tardiness). Deadline-less jobs
/// route by cost, with a `spot_fraction` share of the IaaS-bound ones
/// sent to the preemptible tier. Jobs with deadlines stay off the market
/// by default (a restart from zero can't afford it) — unless the fleet
/// runs checkpoint recovery ([`DeadlineAware::with_spot_recovery`]), in
/// which case a preemption only re-runs the epochs since the last durable
/// checkpoint, and deadline jobs whose laxity covers the *risk-adjusted*
/// spot ETA ride the market too.
///
/// Deadline tests price runtimes at a quantile, not the mean: every ETA
/// uses [`Estimate::eta_q`] at `eta_quantile` (P95 by default), so an
/// estimator that has learned its spread makes the laxity test honest
/// about the tail. Spot admission is risk-aware: the expected
/// resume-and-rerun cycles come from the [`RiskModel`]'s learned
/// preemption-rate posterior (per tenant and class, fed by
/// [`Scheduler::observe_preemption`]), falling back to the configured
/// `mean_time_to_preempt` at zero observations. The pre-PR-5 static
/// behaviour is [`DeadlineAware::with_static_preemption`], which freezes
/// the posterior at the config — the baseline the learned variant is
/// measured against.
///
/// With a learning estimator plugged in, the startup cushion also adapts
/// upward: once the model's observed cold-start/dispatch draws for a
/// (tenant, class) exceed the static `startup_margin` (wide cold
/// fan-outs), the honest number is used instead. The cushion never
/// shrinks below the margin — its slack also absorbs queue-model error.
#[derive(Debug, Clone)]
pub struct DeadlineAware {
    est: Box<dyn Estimator>,
    /// Learned spot preemption-rate posterior behind the risk-aware spot
    /// admission (fed by the simulator's `observe_preemption` loop).
    risk: RiskModel,
    /// Share of jobs eligible for the spot market that actually ride it:
    /// deadline-less IaaS-bound jobs always, slack-rich deadline jobs too
    /// when `spot_recovery` is on. At 0.0 (the default) nothing routes to
    /// spot regardless of the recovery setting.
    pub spot_fraction: f64,
    /// Startup cushion subtracted from the laxity before a substrate is
    /// deemed to meet the deadline (covers cold starts / dispatch). A
    /// floor, not a constant: the estimator's learned cold-start draws
    /// grow it per (tenant, class) when they exceed it, never shrink it.
    pub startup_margin: SimTime,
    /// The fleet resumes preempted jobs from durable checkpoints, so a
    /// deadline job with enough slack may ride the spot market.
    pub spot_recovery: bool,
    /// Safety multiple on the risk-adjusted spot ETA before a deadline job
    /// is trusted to the market (absorbs queue-model and posterior error).
    pub recovery_slack: f64,
    /// Quantile the deadline tests price runtimes at ([`ETA_QUANTILE`] by
    /// default; 0.5 degrades every ETA to the mean).
    pub eta_quantile: f64,
    /// Fraction of the quantile run redone per expected preemption, on top
    /// of a re-boot — the per-cycle resume-and-rerun allowance (with
    /// epoch-granular checkpoints the redo slice is bounded by the
    /// checkpoint interval; half the run is deliberately conservative).
    pub rerun_overhead: f64,
}

impl Default for DeadlineAware {
    fn default() -> Self {
        Self::new()
    }
}

impl DeadlineAware {
    pub fn new() -> Self {
        DeadlineAware {
            est: Box::new(Analytic::new()),
            risk: RiskModel::for_config(&crate::platform::SpotConfig::default()),
            spot_fraction: 0.0,
            startup_margin: SimTime::secs(30.0),
            spot_recovery: false,
            recovery_slack: 3.0,
            eta_quantile: ETA_QUANTILE,
            rerun_overhead: 0.5,
        }
    }

    /// Scheduler predicting with the analytic model over the fleet's own
    /// channel/pricing cases, and the preemption-rate prior seeded from
    /// the fleet's spot configuration.
    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        DeadlineAware {
            est: Box::new(Analytic::for_config(cfg)),
            risk: RiskModel::for_config(&cfg.spot),
            ..Self::new()
        }
    }

    /// Swap in a different prediction model (online, hybrid, …).
    pub fn with_estimator(mut self, est: Box<dyn Estimator>) -> Self {
        self.est = est;
        self
    }

    /// Send this share of deadline-less IaaS-bound jobs to spot.
    pub fn with_spot_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.spot_fraction = f;
        self
    }

    /// Trust checkpoint-aware recovery: pass the fleet config's
    /// [`CheckpointPolicy`] and, if it actually checkpoints, deadline jobs
    /// whose laxity exceeds `recovery_slack ×` the risk-adjusted spot ETA
    /// ride the spot market too. Passing [`CheckpointPolicy::Never`]
    /// keeps deadline jobs off the market — without durable checkpoints a
    /// preemption restarts from zero, which a deadline can't afford. Spot
    /// participation is still gated by
    /// [`DeadlineAware::with_spot_fraction`]: at the default 0.0 no job
    /// rides the market, recovery or not.
    pub fn with_spot_recovery(mut self, policy: CheckpointPolicy) -> Self {
        self.spot_recovery = policy != CheckpointPolicy::Never;
        self
    }

    /// Re-seed the preemption-rate prior (what the scheduler *believes*
    /// the per-instance mean time to preempt is — deliberately separate
    /// from the simulated market's true value, so miscalibrated-config
    /// studies can lie to the scheduler).
    pub fn with_preemption_prior(mut self, mttp: SimTime) -> Self {
        let frozen = self.risk.is_frozen();
        self.risk = RiskModel::new(mttp);
        if frozen {
            self.risk = self.risk.frozen();
        }
        self
    }

    /// Freeze the preemption posterior at the configured mean — the
    /// static-config baseline (pre-PR-5 behaviour) the learned admission
    /// is measured against.
    pub fn with_static_preemption(mut self) -> Self {
        self.risk = self.risk.frozen();
        self
    }

    /// Set the quantile deadline tests price runtimes at (must be in
    /// [0, 1); 0.5 or below degrades every ETA to the mean). Validated
    /// here so a bad knob fails at configuration time, not deep inside
    /// `route()`.
    pub fn with_eta_quantile(mut self, q: f64) -> Self {
        assert!((0.0..1.0).contains(&q), "eta quantile must be in [0, 1)");
        self.eta_quantile = q;
        self
    }

    /// The learned preemption-rate posterior, for reporting.
    pub fn risk(&self) -> &RiskModel {
        &self.risk
    }

    /// The risk-adjusted spot ETA for a job: one clean attempt (startup
    /// cushion + quantile run) plus the expected resume-and-rerun cycles
    /// from the preemption posterior, each costing a re-boot and a redo
    /// slice. This is what the laxity must cover (times
    /// `recovery_slack`) before a deadline job rides the market.
    pub fn spot_eta(&self, job: &JobRequest, e: &Estimate, cushion_secs: f64) -> f64 {
        let run_q = e.eta_q(Route::Spot, self.eta_quantile);
        let attempt = cushion_secs + run_q;
        let cycles = self
            .risk
            .expected_preemptions(job.tenant, job.class, job.workers, attempt);
        attempt + cycles * (cushion_secs + self.rerun_overhead * run_q)
    }
}

impl Scheduler for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline-aware"
    }

    fn discipline(&self) -> QueueDiscipline {
        QueueDiscipline::Edf
    }

    fn route(&mut self, job: &JobRequest, view: &FleetView) -> Route {
        let e = self.est.predict(job);
        let Some(laxity) = job.laxity() else {
            // No deadline: pure cost routing, spot-eligible.
            return if e.c_iaas <= e.c_faas {
                if spot_pick(job.id, self.spot_fraction) {
                    Route::Spot
                } else {
                    Route::Iaas
                }
            } else {
                Route::Faas
            };
        };
        // Startup cushion per substrate: never below the static margin
        // (its slack also absorbs queue-model error), but learned
        // cold-start draws can grow it — a class whose observed boots
        // exceed the cushion (wide cold fan-outs) gets the honest number.
        let cushion = |route| {
            self.est
                .startup_hint(job, route)
                .unwrap_or(SimTime::ZERO)
                .max(self.startup_margin)
                .as_secs()
        };
        let margin_f = cushion(Route::Faas);
        let margin_i = cushion(Route::Iaas);
        // Every deadline test prices the run at the estimator's calibrated
        // quantile (P95 by default): tails miss deadlines, means don't.
        let t_faas_q = e.eta_q(Route::Faas, self.eta_quantile);
        let t_iaas_q = e.eta_q(Route::Iaas, self.eta_quantile);
        // Predicted completion on FaaS: the run itself (Lambda is elastic)
        // unless the account concurrency limit is already saturated.
        let faas_saturated =
            view.faas_in_use + view.faas_queued_workers + job.workers > view.faas_limit;
        let faas_eta = if faas_saturated {
            f64::INFINITY
        } else {
            t_faas_q + margin_f
        };
        // Predicted completion on IaaS: the run plus a backlog estimate —
        // the queue drains roughly one capacity-wide wave per run.
        let backlog = (view.iaas_queued_workers + job.workers)
            .saturating_sub(view.iaas_free + view.iaas_provisioning);
        let iaas_wait = if backlog > 0 {
            backlog as f64 / view.iaas_capacity.max(1) as f64 * e.t_iaas
        } else {
            0.0
        };
        let iaas_eta = t_iaas_q + iaas_wait + margin_i;
        let budget = laxity.as_secs();
        // With checkpoint recovery on, a deadline job whose slack swallows
        // the *risk-adjusted* spot ETA takes the discount: one clean
        // attempt plus the expected resume-and-rerun cycles from the
        // learned preemption posterior (the configured mean at zero
        // observations). A market the posterior has seen eat clusters
        // alive prices itself out; a benign one prices itself in.
        if self.spot_recovery
            && spot_pick(job.id, self.spot_fraction)
            && budget >= self.recovery_slack * self.spot_eta(job, &e, cushion(Route::Spot))
        {
            return Route::Spot;
        }
        match (faas_eta <= budget, iaas_eta <= budget) {
            // Both make it: take the cheaper option.
            (true, true) => {
                if e.c_faas <= e.c_iaas {
                    Route::Faas
                } else {
                    Route::Iaas
                }
            }
            // Only Lambda's elasticity beats the pool's backlog.
            (true, false) => Route::Faas,
            // FaaS can't make the deadline (too slow or saturated): spill
            // to the reserved pool.
            (false, true) => Route::Iaas,
            // Nothing makes it: minimize tardiness.
            (false, false) => {
                if faas_eta <= iaas_eta {
                    Route::Faas
                } else {
                    Route::Iaas
                }
            }
        }
    }

    fn estimate(&self, job: &JobRequest) -> Option<Estimate> {
        Some(self.est.predict(job))
    }

    fn observe(&mut self, done: &CompletedJob) {
        self.est.observe(done);
    }

    fn observe_preemption(&mut self, obs: &PreemptionObs) {
        self.risk.observe(obs);
    }

    fn eta_quantile(&self) -> f64 {
        self.eta_quantile
    }

    fn spot_eta_hint(&self, job: &JobRequest, e: &Estimate) -> Option<f64> {
        let cushion = self
            .est
            .startup_hint(job, Route::Spot)
            .unwrap_or(SimTime::ZERO)
            .max(self.startup_margin)
            .as_secs();
        Some(self.spot_eta(job, e, cushion))
    }
}

/// Weighted fair-share scheduler: cost-based routing (like [`CostAware`]
/// without the escape hatch) plus deficit-round-robin admission across
/// tenants ([`QueueDiscipline::Drr`]) — the simulator starts the queued
/// job of the tenant with the least weighted service first, so one
/// tenant's burst cannot starve the others.
#[derive(Debug, Clone)]
pub struct FairShare {
    est: Box<dyn Estimator>,
    weights: TenantMap<f64>,
    /// Share of IaaS-bound jobs routed to spot.
    pub spot_fraction: f64,
}

impl Default for FairShare {
    fn default() -> Self {
        Self::new()
    }
}

impl FairShare {
    pub fn new() -> Self {
        FairShare {
            est: Box::new(Analytic::new()),
            weights: TenantMap::new(),
            spot_fraction: 0.0,
        }
    }

    /// Scheduler predicting with the analytic model over the fleet's own
    /// channel/pricing cases.
    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        FairShare {
            est: Box::new(Analytic::for_config(cfg)),
            ..Self::new()
        }
    }

    /// Swap in a different prediction model (online, hybrid, …).
    pub fn with_estimator(mut self, est: Box<dyn Estimator>) -> Self {
        self.est = est;
        self
    }

    /// Set a tenant's fair-share weight (tenants not set weigh 1).
    pub fn with_weight(mut self, tenant: TenantId, weight: f64) -> Self {
        assert!(weight > 0.0, "weights must be positive");
        self.weights.insert(tenant, weight);
        self
    }

    /// Send this share of IaaS-bound jobs to spot.
    pub fn with_spot_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.spot_fraction = f;
        self
    }
}

impl Scheduler for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn discipline(&self) -> QueueDiscipline {
        QueueDiscipline::Drr
    }

    fn tenant_weight(&self, tenant: TenantId) -> f64 {
        self.weights.get(tenant).copied().unwrap_or(1.0)
    }

    fn route(&mut self, job: &JobRequest, _view: &FleetView) -> Route {
        let e = self.est.predict(job);
        if e.c_iaas <= e.c_faas {
            if spot_pick(job.id, self.spot_fraction) {
                Route::Spot
            } else {
                Route::Iaas
            }
        } else {
            Route::Faas
        }
    }

    fn estimate(&self, job: &JobRequest) -> Option<Estimate> {
        Some(self.est.predict(job))
    }

    fn observe(&mut self, done: &CompletedJob) {
        self.est.observe(done);
    }
}

/// Crude queue-delay proxy: one average job run per queued-worker batch of
/// the pool's capacity. Only used to compare against the other side's run
/// time, so a rough scale is enough.
fn queue_penalty(side: Route, view: &FleetView) -> f64 {
    let (queued, capacity) = match side {
        Route::Iaas => (view.iaas_queued_workers, view.iaas_capacity.max(1)),
        Route::Faas => (view.faas_queued_workers, view.faas_limit.max(1)),
        // Spot is market-deep and never queues.
        Route::Spot => (0, 1),
    };
    // Each "round" of the queue takes on the order of a minute of service.
    60.0 * (queued as f64 / capacity as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{Hybrid, Online};
    use lml_sim::{Cost, SimTime};

    fn job(class: JobClass) -> JobRequest {
        JobRequest::new(0, class, SimTime::ZERO, class.default_workers())
    }

    #[test]
    fn pure_policies_are_constant() {
        let v = FleetView::default();
        assert_eq!(AllFaas.route(&job(JobClass::LrHiggs), &v), Route::Faas);
        assert_eq!(AllIaas.route(&job(JobClass::MnCifar), &v), Route::Iaas);
        assert!(AllFaas.estimate(&job(JobClass::LrHiggs)).is_none());
    }

    #[test]
    fn cost_aware_sends_deep_jobs_to_iaas() {
        // Communication-heavy deep jobs are both slower AND dearer on FaaS
        // (the paper's §5.2 headline) — the router must keep them serverful.
        let mut s = CostAware::new();
        let v = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            ..Default::default()
        };
        assert_eq!(s.route(&job(JobClass::MnCifar), &v), Route::Iaas);
        assert_eq!(s.route(&job(JobClass::RnCifar), &v), Route::Iaas);
    }

    #[test]
    fn cost_aware_escapes_a_saturated_pool() {
        let mut s = CostAware::new();
        // IaaS is cheaper for LR/Higgs but the pool is slammed: the FaaS
        // run (≈1 min) beats the queue, so the router pays the premium.
        let slammed = FleetView {
            iaas_free: 0,
            iaas_capacity: 20,
            iaas_provisioning: 0,
            iaas_queued_workers: 500,
            faas_limit: 1_000,
            ..Default::default()
        };
        assert_eq!(s.route(&job(JobClass::LrHiggs), &slammed), Route::Faas);
        // Same job, idle pool: stay on the cheap side.
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        assert_eq!(s.route(&job(JobClass::LrHiggs), &idle), Route::Iaas);
    }

    #[test]
    fn deadline_aware_spills_to_iaas_when_faas_cannot_make_it() {
        let mut s = DeadlineAware::new();
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        // Deep communication-bound jobs run ~5× slower on FaaS (§5.2): a
        // deadline between the two predicted runtimes is only meetable on
        // the reserved pool, however idle Lambda is.
        let mut deep = job(JobClass::MnCifar);
        let (t_f, t_i) = CostAware::new().estimated_run(&deep);
        assert!(
            t_f > t_i * 3.0,
            "premise: FaaS is much slower for deep jobs"
        );
        deep.deadline = Some(deep.submit + (t_i + t_f) * 0.5);
        assert_eq!(s.route(&deep, &idle), Route::Iaas, "FaaS can't make it");
        // Ample deadline: the cheaper substrate wins (IaaS for every class
        // in the default pricing cases).
        deep.deadline = Some(deep.submit + t_f * 100.0);
        assert_eq!(s.route(&deep, &idle), Route::Iaas);
    }

    #[test]
    fn deadline_aware_escapes_a_backlogged_pool() {
        let mut s = DeadlineAware::new();
        let mut j = job(JobClass::LrHiggs);
        let (t_f, _) = CostAware::new().estimated_run(&j);
        j.deadline = Some(j.submit + t_f * 2.0 + SimTime::secs(60.0));
        // Slammed reserved pool: the backlog estimate blows the deadline,
        // Lambda's elasticity saves it.
        let slammed = FleetView {
            iaas_free: 0,
            iaas_capacity: 20,
            iaas_queued_workers: 500,
            faas_limit: 1_000,
            ..Default::default()
        };
        assert_eq!(s.route(&j, &slammed), Route::Faas, "escape to Lambda");
        // Same job with FaaS saturated too: nothing meets the deadline;
        // minimize tardiness (the backlogged pool is still slower, so the
        // job stays on Lambda's queue only if it finishes sooner).
        let both_full = FleetView {
            faas_in_use: 1_000,
            ..slammed
        };
        assert_eq!(
            s.route(&j, &both_full),
            Route::Iaas,
            "saturated FaaS has infinite ETA: spill"
        );
        // Idle pool, same deadline: cheapest side (IaaS) meets it.
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        assert_eq!(s.route(&j, &idle), Route::Iaas);
    }

    #[test]
    fn deadline_aware_keeps_deadline_jobs_off_spot() {
        let mut s = DeadlineAware::new().with_spot_fraction(1.0);
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        let mut j = job(JobClass::LrHiggs);
        assert_eq!(
            s.route(&j, &idle),
            Route::Spot,
            "deadline-less job rides spot"
        );
        j.deadline = Some(SimTime::hours(1_000.0));
        assert_ne!(
            s.route(&j, &idle),
            Route::Spot,
            "deadline jobs never risk it"
        );
    }

    #[test]
    fn spot_recovery_lets_slack_deadline_jobs_ride_the_market() {
        let mut s = DeadlineAware::new()
            .with_spot_fraction(1.0)
            .with_spot_recovery(CheckpointPolicy::every(1));
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        let mut j = job(JobClass::LrHiggs);
        let (_, t_i) = CostAware::new().estimated_run(&j);
        // Huge slack: recovery makes the discount safe.
        j.deadline = Some(j.submit + t_i * 100.0);
        assert_eq!(s.route(&j, &idle), Route::Spot, "slack deadline rides spot");
        // Tight slack: even with recovery the job stays on firm capacity.
        j.deadline = Some(j.submit + t_i * 1.5 + SimTime::secs(60.0));
        assert_ne!(s.route(&j, &idle), Route::Spot, "tight deadline stays firm");
        // A Never policy can't back recovery: the original never-on-spot
        // rule holds even when the knob is used.
        let mut off = DeadlineAware::new()
            .with_spot_fraction(1.0)
            .with_spot_recovery(CheckpointPolicy::Never);
        j.deadline = Some(j.submit + t_i * 100.0);
        assert_ne!(off.route(&j, &idle), Route::Spot);
    }

    #[test]
    fn learned_hostile_market_prices_deadline_jobs_off_spot() {
        use crate::estimate::PreemptionObs;
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        let mut j = job(JobClass::LrHiggs);
        let build = || {
            DeadlineAware::new()
                .with_spot_fraction(1.0)
                .with_spot_recovery(CheckpointPolicy::every(1))
        };
        let mut learned = build();
        let mut frozen = build().with_static_preemption();
        // The market eats 10-wide clusters every ~20 s — both schedulers
        // watch the same carnage, only one is allowed to believe it.
        for _ in 0..200 {
            let obs = PreemptionObs {
                class: JobClass::LrHiggs,
                tenant: 0,
                workers: 10,
                held: SimTime::secs(20.0),
                preempted: true,
            };
            learned.observe_preemption(&obs);
            frozen.observe_preemption(&obs);
        }
        // The evidence must widen the risk-adjusted ETA…
        let e = Analytic::new().predict(&j);
        let eta_learned = learned.spot_eta(&j, &e, 30.0);
        let eta_frozen = frozen.spot_eta(&j, &e, 30.0);
        assert!(
            eta_learned > eta_frozen * 1.5,
            "posterior must widen the spot ETA: {eta_learned} vs {eta_frozen}"
        );
        // …and flip the admission for a deadline sitting between the two
        // risk-adjusted requirements.
        let budget = 3.0 * (eta_frozen + eta_learned) / 2.0;
        j.deadline = Some(j.submit + SimTime::secs(budget));
        assert_eq!(
            frozen.route(&j, &idle),
            Route::Spot,
            "the static-mean baseline keeps trusting the config"
        );
        assert_ne!(
            learned.route(&j, &idle),
            Route::Spot,
            "the learned posterior must price the job off the market"
        );
        // Deadline-less jobs still ride spot — risk only gates deadlines.
        let free = job(JobClass::LrHiggs);
        assert_eq!(learned.route(&free, &idle), Route::Spot);
    }

    #[test]
    fn preemption_prior_seeds_the_admission_test() {
        // Same job, same market knowledge (none) — only the configured
        // prior differs. An alarmist prior declines what a benign one
        // admits, exactly the static-config sensitivity the learned
        // posterior exists to fix.
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        let mut j = job(JobClass::LrHiggs);
        let build = |mttp: f64| {
            DeadlineAware::new()
                .with_spot_fraction(1.0)
                .with_spot_recovery(CheckpointPolicy::every(1))
                .with_preemption_prior(SimTime::secs(mttp))
        };
        let e = Analytic::new().predict(&j);
        let req_benign = 3.0 * build(14_400.0).spot_eta(&j, &e, 30.0);
        let req_alarmist = 3.0 * build(50.0).spot_eta(&j, &e, 30.0);
        assert!(
            req_alarmist > req_benign,
            "premise: the prior moves the bar"
        );
        j.deadline = Some(j.submit + SimTime::secs((req_benign + req_alarmist) / 2.0));
        assert_eq!(build(14_400.0).route(&j, &idle), Route::Spot);
        assert_ne!(build(50.0).route(&j, &idle), Route::Spot);
        // The prior survives freezing order in the builder chain.
        let frozen = build(50.0).with_static_preemption();
        assert!(frozen.risk().is_frozen());
        assert_eq!(
            frozen.risk().mean_time_to_preempt(0, JobClass::LrHiggs),
            SimTime::secs(50.0)
        );
    }

    #[test]
    fn eta_quantile_knob_is_validated_and_published() {
        let s = DeadlineAware::new().with_eta_quantile(0.9);
        assert_eq!(
            Scheduler::eta_quantile(&s),
            0.9,
            "policy publishes its tail"
        );
        assert_eq!(
            Scheduler::eta_quantile(&AllFaas),
            crate::estimate::ETA_QUANTILE,
            "constant routers default to the fleet standard"
        );
    }

    #[test]
    #[should_panic(expected = "eta quantile")]
    fn eta_quantile_knob_rejects_out_of_range() {
        DeadlineAware::new().with_eta_quantile(1.0);
    }

    #[test]
    fn fair_share_weights_default_to_one_for_unknown_tenants() {
        let s = FairShare::new().with_weight(0, 3.0);
        assert_eq!(s.tenant_weight(0), 3.0);
        assert_eq!(s.tenant_weight(999), 1.0, "unknown tenant id → weight 1");
        assert_eq!(s.discipline(), QueueDiscipline::Drr);
        assert_eq!(DeadlineAware::new().discipline(), QueueDiscipline::Edf);
        assert_eq!(AllFaas.discipline(), QueueDiscipline::Fifo);
    }

    #[test]
    fn spot_pick_matches_fraction_and_is_stable() {
        assert!(!spot_pick(5, 0.0));
        assert!(spot_pick(5, 1.0));
        let n = (0..10_000).filter(|&i| spot_pick(i, 0.3)).count();
        assert!(
            (2_700..3_300).contains(&n),
            "~30% of ids picked, got {n} of 10000"
        );
        assert_eq!(spot_pick(123, 0.3), spot_pick(123, 0.3));
    }

    #[test]
    fn epoch_override_changes_the_estimate() {
        let base = CostAware::new();
        let long = CostAware::new().with_epochs(JobClass::LrHiggs, 600.0);
        let j = job(JobClass::LrHiggs);
        let (t_base, _) = base.estimated_run(&j);
        let (t_long, _) = long.estimated_run(&j);
        assert!(t_long > t_base * 10.0, "{t_long} vs {t_base}");
    }

    #[test]
    fn schedulers_with_fresh_learning_estimators_route_like_analytic() {
        // Cold-start parity: with zero observations the online and hybrid
        // estimators ARE the analytic prior, so routing is identical.
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        for class in JobClass::ALL {
            let j = job(class);
            let mut analytic = CostAware::new();
            let mut online =
                CostAware::new().with_estimator(Box::new(Online::new(Analytic::new())));
            let mut hybrid = CostAware::new().with_estimator(Box::new(Hybrid::default()));
            let want = analytic.route(&j, &idle);
            assert_eq!(online.route(&j, &idle), want, "{class:?}");
            assert_eq!(hybrid.route(&j, &idle), want, "{class:?}");
        }
    }

    #[test]
    fn observed_slowdowns_reroute_deadline_jobs() {
        // Teach the online model that IaaS runs of LR/Higgs take 40× the
        // analytic prior; a deadline that the prior thinks IaaS can meet
        // must now spill to Lambda.
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        let mut j = job(JobClass::LrHiggs);
        let (t_f, t_i) = CostAware::new().estimated_run(&j);
        j.deadline = Some(j.submit + t_f * 2.0 + SimTime::secs(120.0));
        let mut online = Online::new(Analytic::new()).with_alpha(0.9);
        for _ in 0..8 {
            online.observe(&CompletedJob {
                id: 7,
                class: JobClass::LrHiggs,
                tenant: 0,
                route: Route::Iaas,
                workers: j.workers,
                run: t_i * 40.0,
                startup: SimTime::secs(2.0),
                cost: Cost::usd(0.5),
                epochs_total: JobClass::LrHiggs.epoch_count(),
                preemptions: 0,
            });
        }
        let mut learned = DeadlineAware::new().with_estimator(Box::new(online));
        assert_eq!(
            learned.route(&j, &idle),
            Route::Faas,
            "learned slowdown must push the job off the slow pool"
        );
        let mut blind = DeadlineAware::new();
        assert_eq!(
            blind.route(&j, &idle),
            Route::Iaas,
            "the blind prior keeps trusting the pool"
        );
    }
}
