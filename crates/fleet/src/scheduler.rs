//! Fleet scheduling policies.
//!
//! A [`Scheduler`] routes each arriving job to the FaaS region or the IaaS
//! pool. The two degenerate policies reproduce the paper's single-backend
//! world at fleet scale; [`CostAware`] prices both options per job with the
//! §5.3 analytical model (optionally re-calibrating epoch counts with the
//! sampling estimator) and adds a load-aware escape hatch: when the cheap
//! option is saturated and the other side finishes comfortably sooner, pay
//! the premium.

use crate::job::{JobClass, JobRequest};
use lml_analytic::estimator::estimate_epochs;
use lml_analytic::model::{faas_cost, faas_time, iaas_time, AnalyticCase, Scaling};
use lml_sim::SimTime;
use std::collections::BTreeMap;

/// Where a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Faas,
    Iaas,
}

impl Route {
    pub fn name(self) -> &'static str {
        match self {
            Route::Faas => "faas",
            Route::Iaas => "iaas",
        }
    }
}

/// Snapshot of platform load handed to the scheduler at decision time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetView {
    /// FaaS executions currently running.
    pub faas_in_use: usize,
    /// Account concurrency limit.
    pub faas_limit: usize,
    /// Workers queued for the FaaS region.
    pub faas_queued_workers: usize,
    /// Idle booted IaaS instances.
    pub iaas_free: usize,
    /// Booted IaaS instances (busy + idle).
    pub iaas_capacity: usize,
    /// Instances being provisioned.
    pub iaas_provisioning: usize,
    /// Workers queued for the IaaS pool.
    pub iaas_queued_workers: usize,
}

/// A fleet scheduling policy.
pub trait Scheduler {
    fn name(&self) -> &'static str;
    /// Route one arriving job given the current platform load.
    fn route(&mut self, job: &JobRequest, view: &FleetView) -> Route;
}

/// Route everything to Lambda.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllFaas;

impl Scheduler for AllFaas {
    fn name(&self) -> &'static str {
        "all-faas"
    }
    fn route(&mut self, _job: &JobRequest, _view: &FleetView) -> Route {
        Route::Faas
    }
}

/// Route everything to the reserved cluster.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllIaas;

impl Scheduler for AllIaas {
    fn name(&self) -> &'static str {
        "all-iaas"
    }
    fn route(&mut self, _job: &JobRequest, _view: &FleetView) -> Route {
        Route::Iaas
    }
}

/// Cost-aware hybrid: per job, price both substrates with the analytical
/// model and take the cheaper one — unless the cheaper side is saturated
/// and the other side would finish the job sooner, in which case latency
/// wins (the premium buys down the queue).
#[derive(Debug, Clone)]
pub struct CostAware {
    faas_case: AnalyticCase,
    iaas_case: AnalyticCase,
    /// Per-class epoch overrides from estimator calibration.
    epochs: BTreeMap<JobClass, f64>,
    /// How much slower the cheaper option may be (vs the other side) before
    /// the router abandons it while it is saturated.
    pub patience: f64,
}

impl Default for CostAware {
    fn default() -> Self {
        Self::new()
    }
}

impl CostAware {
    /// Router priced with the default cases (S3-channel FaaS, t2.medium
    /// IaaS) — matches [`crate::sim::FleetConfig::default`]. For any other
    /// fleet configuration use [`CostAware::for_config`] so the routing
    /// estimates price the same substrates the simulator charges.
    pub fn new() -> Self {
        CostAware {
            faas_case: AnalyticCase::faas_s3(),
            iaas_case: AnalyticCase::iaas_t2(),
            epochs: BTreeMap::new(),
            patience: 2.0,
        }
    }

    /// Router priced with the fleet's own channel/pricing cases.
    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        CostAware {
            faas_case: cfg.faas_case,
            iaas_case: cfg.iaas_case,
            ..Self::new()
        }
    }

    /// Re-estimate `R` (epochs to threshold) for `class` by training on a
    /// `sample_frac` subsample — the paper's §5.3 estimator — and use the
    /// result for all future routing decisions on that class.
    pub fn calibrate(&mut self, class: JobClass, sample_frac: f64, max_epochs: usize, seed: u64) {
        let est = estimate_epochs(
            class.dataset(),
            class.model(),
            class.algorithm(),
            class.lr(),
            class.threshold(),
            sample_frac,
            max_epochs,
            seed,
        );
        self.epochs.insert(class, est.epochs);
    }

    /// Directly pin the epoch estimate for a class (e.g. from an offline
    /// estimator run).
    pub fn with_epochs(mut self, class: JobClass, epochs: f64) -> Self {
        self.epochs.insert(class, epochs);
        self
    }

    /// Estimated (time, cost) of the job on FaaS, startup excluded (the
    /// warm pool makes fleet startup load-dependent; the simulator charges
    /// the real value).
    fn estimate(&self, job: &JobRequest) -> (f64, f64, f64, f64) {
        let mut p = job.class.profile();
        if let Some(&e) = self.epochs.get(&job.class) {
            p.epochs = e;
        }
        let w = job.workers;
        let t_f = faas_time(&p, &self.faas_case, Scaling::Perfect, w).as_secs()
            - lml_analytic::constants::t_f().eval(w as f64);
        let c_f = faas_cost(&p, &self.faas_case, Scaling::Perfect, w).as_usd();
        let t_i = iaas_time(&p, &self.iaas_case, Scaling::Perfect, w).as_secs()
            - lml_analytic::constants::t_i().eval(w as f64);
        // Warm-pool IaaS: bill the instances for the run, not the boot.
        let c_i = w as f64 * self.iaas_case.worker_price_per_s * t_i;
        (t_f, c_f, t_i, c_i)
    }

    /// Public view of the per-job estimate, for reporting.
    pub fn estimated_run(&self, job: &JobRequest) -> (SimTime, SimTime) {
        let (t_f, _, t_i, _) = self.estimate(job);
        (SimTime::secs(t_f), SimTime::secs(t_i))
    }
}

impl Scheduler for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn route(&mut self, job: &JobRequest, view: &FleetView) -> Route {
        let (t_f, c_f, t_i, c_i) = self.estimate(job);
        let (cheap, t_cheap, t_other) = if c_i <= c_f {
            (Route::Iaas, t_i, t_f)
        } else {
            (Route::Faas, t_f, t_i)
        };
        // Saturation check for the cheaper side.
        let saturated = match cheap {
            Route::Iaas => {
                view.iaas_queued_workers + job.workers > view.iaas_free + view.iaas_provisioning
            }
            Route::Faas => {
                view.faas_queued_workers + job.workers + view.faas_in_use > view.faas_limit
            }
        };
        if saturated && t_other * self.patience < t_cheap + queue_penalty(cheap, view) {
            // The queue on the cheap side costs more time than the premium
            // side's whole run: buy latency.
            return match cheap {
                Route::Iaas => Route::Faas,
                Route::Faas => Route::Iaas,
            };
        }
        cheap
    }
}

/// Crude queue-delay proxy: one average job run per queued-worker batch of
/// the pool's capacity. Only used to compare against the other side's run
/// time, so a rough scale is enough.
fn queue_penalty(side: Route, view: &FleetView) -> f64 {
    let (queued, capacity) = match side {
        Route::Iaas => (view.iaas_queued_workers, view.iaas_capacity.max(1)),
        Route::Faas => (view.faas_queued_workers, view.faas_limit.max(1)),
    };
    // Each "round" of the queue takes on the order of a minute of service.
    60.0 * (queued as f64 / capacity as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lml_sim::SimTime;

    fn job(class: JobClass) -> JobRequest {
        JobRequest {
            id: 0,
            class,
            submit: SimTime::ZERO,
            workers: class.default_workers(),
        }
    }

    #[test]
    fn pure_policies_are_constant() {
        let v = FleetView::default();
        assert_eq!(AllFaas.route(&job(JobClass::LrHiggs), &v), Route::Faas);
        assert_eq!(AllIaas.route(&job(JobClass::MnCifar), &v), Route::Iaas);
    }

    #[test]
    fn cost_aware_sends_deep_jobs_to_iaas() {
        // Communication-heavy deep jobs are both slower AND dearer on FaaS
        // (the paper's §5.2 headline) — the router must keep them serverful.
        let mut s = CostAware::new();
        let v = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            ..Default::default()
        };
        assert_eq!(s.route(&job(JobClass::MnCifar), &v), Route::Iaas);
        assert_eq!(s.route(&job(JobClass::RnCifar), &v), Route::Iaas);
    }

    #[test]
    fn cost_aware_escapes_a_saturated_pool() {
        let mut s = CostAware::new();
        // IaaS is cheaper for LR/Higgs but the pool is slammed: the FaaS
        // run (≈1 min) beats the queue, so the router pays the premium.
        let slammed = FleetView {
            iaas_free: 0,
            iaas_capacity: 20,
            iaas_provisioning: 0,
            iaas_queued_workers: 500,
            faas_limit: 1_000,
            ..Default::default()
        };
        assert_eq!(s.route(&job(JobClass::LrHiggs), &slammed), Route::Faas);
        // Same job, idle pool: stay on the cheap side.
        let idle = FleetView {
            iaas_free: 100,
            iaas_capacity: 100,
            faas_limit: 1_000,
            ..Default::default()
        };
        assert_eq!(s.route(&job(JobClass::LrHiggs), &idle), Route::Iaas);
    }

    #[test]
    fn epoch_override_changes_the_estimate() {
        let base = CostAware::new();
        let long = CostAware::new().with_epochs(JobClass::LrHiggs, 600.0);
        let j = job(JobClass::LrHiggs);
        let (t_base, _) = base.estimated_run(&j);
        let (t_long, _) = long.estimated_run(&j);
        assert!(t_long > t_base * 10.0, "{t_long} vs {t_base}");
    }
}
