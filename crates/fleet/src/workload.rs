//! Workload generation: arrival processes, job mixes, and replayable traces.
//!
//! A [`Trace`] is the unit of input to the fleet simulator: a list of
//! [`JobRequest`]s sorted by submission time. Traces are either generated
//! from an [`ArrivalProcess`] + [`JobMix`] with a seeded RNG (bit-identical
//! across runs) or replayed from the plain-text format produced by
//! [`Trace::to_text`], so a measured production trace can be swapped in
//! without touching the simulator.

use crate::job::{JobClass, JobRequest, TenantId};
use lml_sim::{Pcg64, SimTime};
use std::collections::BTreeMap;

/// How job submissions arrive over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` jobs/second — the classic open-system
    /// model of a large independent tenant population.
    Poisson { rate: f64 },
    /// A modulated Poisson process: within every `period`, the first
    /// `duty` fraction arrives at `burst_rate`, the rest at `base_rate`.
    /// Models diurnal load and synchronized retraining waves.
    Burst {
        base_rate: f64,
        burst_rate: f64,
        period: f64,
        duty: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate at absolute time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Burst {
                base_rate,
                burst_rate,
                period,
                duty,
            } => {
                let phase = (t / period).fract();
                if phase < duty {
                    burst_rate
                } else {
                    base_rate
                }
            }
        }
    }

    /// Sample the gap to the next arrival after time `t` (exponential at
    /// the local rate — exact for Poisson, a standard step approximation
    /// for the modulated process). Crate-visible so the streaming
    /// generator source replays the exact draw order of
    /// [`Trace::generate_multi`].
    pub(crate) fn next_gap(&self, t: f64, rng: &mut Pcg64) -> f64 {
        let rate = self.rate_at(t);
        assert!(rate > 0.0, "arrival rate must be positive");
        -(1.0 - rng.uniform()).ln() / rate
    }
}

/// A weighted mixture over job classes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMix {
    entries: Vec<(JobClass, f64)>,
}

impl JobMix {
    /// Build a mix from (class, weight) pairs; weights are normalized.
    pub fn new(entries: Vec<(JobClass, f64)>) -> Self {
        assert!(!entries.is_empty(), "empty job mix");
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "job mix weights must sum to > 0");
        JobMix {
            entries: entries.into_iter().map(|(c, w)| (c, w / total)).collect(),
        }
    }

    /// A single-class mix.
    pub fn only(class: JobClass) -> Self {
        JobMix::new(vec![(class, 1.0)])
    }

    /// The default multi-tenant mix: mostly fast convex jobs, a tail of
    /// heavy deep-learning jobs — the shape under which the FaaS/IaaS
    /// trade-off of the paper matters most.
    pub fn default_mix() -> Self {
        JobMix::new(vec![
            (JobClass::LrHiggs, 0.32),
            (JobClass::SvmRcv1, 0.30),
            (JobClass::KmHiggs, 0.20),
            (JobClass::LrYfcc, 0.08),
            (JobClass::MnCifar, 0.08),
            (JobClass::RnCifar, 0.02),
        ])
    }

    /// Convex-only mix (every job is FaaS-friendly).
    pub fn convex_mix() -> Self {
        JobMix::new(vec![
            (JobClass::LrHiggs, 0.4),
            (JobClass::SvmRcv1, 0.4),
            (JobClass::KmHiggs, 0.2),
        ])
    }

    pub fn classes(&self) -> impl Iterator<Item = JobClass> + '_ {
        self.entries.iter().map(|&(c, _)| c)
    }

    pub(crate) fn sample(&self, rng: &mut Pcg64) -> JobClass {
        let u = rng.uniform();
        let mut acc = 0.0;
        for &(c, w) in &self.entries {
            acc += w;
            if u < acc {
                return c;
            }
        }
        self.entries.last().expect("non-empty mix").0
    }
}

/// One parsed line of the trace text format — either a v3 budget preamble
/// line or a v1/v2 job row. Shared by [`Trace::from_text`] and the
/// constant-memory streaming reader (`stream::TextSource`), so both paths
/// accept the same syntax and emit byte-identical error strings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TraceLine {
    Budget {
        tenant: TenantId,
        usd: f64,
    },
    Job {
        submit: SimTime,
        class: JobClass,
        workers: usize,
        tenant: TenantId,
        deadline: Option<SimTime>,
    },
}

/// Parse one trimmed, non-empty, non-comment trace-text line. `lineno` is
/// zero-based (error messages report `lineno + 1`). Duplicate-budget and
/// sortedness checks stay with the caller, which owns the cross-line state.
pub(crate) fn parse_trace_line(line: &str, lineno: usize) -> Result<TraceLine, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    if parts[0] == "budget" {
        if parts.len() != 3 {
            return Err(format!(
                "line {}: budget line needs `budget <tenant> <usd>`, got {} fields",
                lineno + 1,
                parts.len()
            ));
        }
        let tenant: TenantId = parts[1]
            .parse()
            .map_err(|e| format!("line {}: bad budget tenant id: {e}", lineno + 1))?;
        let usd: f64 = parts[2]
            .parse()
            .map_err(|e| format!("line {}: bad budget amount: {e}", lineno + 1))?;
        if !usd.is_finite() || usd < 0.0 {
            return Err(format!(
                "line {}: budget must be finite and >= 0",
                lineno + 1
            ));
        }
        return Ok(TraceLine::Budget { tenant, usd });
    }
    if parts.len() != 3 && parts.len() != 5 {
        return Err(format!(
            "line {}: expected 3 (v1) or 5 (v2) fields, got {}",
            lineno + 1,
            parts.len()
        ));
    }
    let t: f64 = parts[0]
        .parse()
        .map_err(|e| format!("line {}: bad time: {e}", lineno + 1))?;
    if !t.is_finite() || t < 0.0 {
        return Err(format!("line {}: time must be finite and >= 0", lineno + 1));
    }
    let class = JobClass::parse(parts[1])
        .ok_or_else(|| format!("line {}: unknown job class {:?}", lineno + 1, parts[1]))?;
    let workers: usize = parts[2]
        .parse()
        .map_err(|e| format!("line {}: bad workers: {e}", lineno + 1))?;
    if workers == 0 {
        return Err(format!("line {}: zero workers", lineno + 1));
    }
    let (tenant, deadline) = if parts.len() == 5 {
        let tenant: TenantId = parts[3]
            .parse()
            .map_err(|e| format!("line {}: bad tenant id: {e}", lineno + 1))?;
        let deadline = if parts[4] == "-" {
            None
        } else {
            let d: f64 = parts[4]
                .parse()
                .map_err(|e| format!("line {}: bad deadline: {e}", lineno + 1))?;
            if !d.is_finite() || d < t {
                return Err(format!(
                    "line {}: deadline must be finite and >= submit time",
                    lineno + 1
                ));
            }
            Some(SimTime::secs(d))
        };
        (tenant, deadline)
    } else {
        (0, None)
    };
    Ok(TraceLine::Job {
        submit: SimTime::secs(t),
        class,
        workers,
        tenant,
        deadline,
    })
}

/// Tenant population and deadline shape of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Tenants drawing jobs (uniformly). Tenant ids are `0..n_tenants`.
    pub n_tenants: u32,
    /// Fraction of jobs submitted with a deadline.
    pub deadline_frac: f64,
    /// Deadline slack: `deadline = submit + slack × nominal runtime` of the
    /// job's class (see [`JobClass::nominal_runtime`]).
    pub deadline_slack: f64,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            n_tenants: 1,
            deadline_frac: 0.0,
            deadline_slack: 3.0,
        }
    }
}

/// A replayable list of job submissions, sorted by submission time,
/// optionally carrying per-tenant dollar budgets (trace text v3). The
/// simulator rejects a tenant's further admissions once its attributed
/// spend reaches its budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub jobs: Vec<JobRequest>,
    /// Dollar caps per tenant; tenants absent from the map are uncapped.
    pub budgets: BTreeMap<TenantId, f64>,
}

impl Trace {
    /// A budget-less trace from a job list (the common constructor shape).
    pub fn from_jobs(jobs: Vec<JobRequest>) -> Trace {
        Trace {
            jobs,
            budgets: BTreeMap::new(),
        }
    }

    /// Cap a tenant's total attributed spend (builder style).
    pub fn with_budget(mut self, tenant: TenantId, usd: f64) -> Trace {
        assert!(
            usd.is_finite() && usd >= 0.0,
            "budget must be finite and >= 0"
        );
        self.budgets.insert(tenant, usd);
        self
    }

    /// Generate `n_jobs` single-tenant, deadline-less arrivals from the
    /// process and mix. Same seed → identical trace, byte for byte.
    pub fn generate(process: ArrivalProcess, mix: &JobMix, n_jobs: usize, seed: u64) -> Trace {
        Trace::generate_multi(process, mix, &TenantSpec::default(), n_jobs, seed)
    }

    /// Generate a multi-tenant trace: arrivals as in [`Trace::generate`],
    /// tenants drawn uniformly from the spec's population, and a
    /// `deadline_frac` share of jobs carrying a deadline at
    /// `deadline_slack ×` the class's nominal runtime.
    pub fn generate_multi(
        process: ArrivalProcess,
        mix: &JobMix,
        tenants: &TenantSpec,
        n_jobs: usize,
        seed: u64,
    ) -> Trace {
        assert!(tenants.n_tenants >= 1, "need at least one tenant");
        assert!(
            (0.0..=1.0).contains(&tenants.deadline_frac),
            "deadline_frac must be in [0, 1]"
        );
        assert!(tenants.deadline_slack > 0.0, "deadline slack must be > 0");
        let mut rng = Pcg64::new(seed ^ 0xF1EE7);
        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(n_jobs);
        for id in 0..n_jobs {
            t += process.next_gap(t, &mut rng);
            let class = mix.sample(&mut rng);
            let submit = SimTime::secs(t);
            let tenant = if tenants.n_tenants > 1 {
                rng.below(tenants.n_tenants as u64) as TenantId
            } else {
                0
            };
            let deadline = if tenants.deadline_frac > 0.0 && rng.coin(tenants.deadline_frac) {
                Some(submit + class.nominal_runtime() * tenants.deadline_slack)
            } else {
                None
            };
            jobs.push(JobRequest {
                id: id as u64,
                class,
                submit,
                workers: class.default_workers(),
                tenant,
                deadline,
            });
        }
        Trace::from_jobs(jobs)
    }

    /// Serialize to the replayable text format: one
    /// `time class workers tenant deadline` line per job, times in shortest
    /// roundtrip notation, `-` for "no deadline". Traces carrying tenant
    /// budgets emit the v3 header and one `budget <tenant> <usd>` line per
    /// cap; budget-less traces emit v2 bytes unchanged.
    pub fn to_text(&self) -> String {
        let mut out = if self.budgets.is_empty() {
            String::from("# lml-fleet trace v2: submit_secs\tclass\tworkers\ttenant\tdeadline\n")
        } else {
            let mut s = String::from(
                "# lml-fleet trace v3: [budget\ttenant\tusd]* then \
                 submit_secs\tclass\tworkers\ttenant\tdeadline\n",
            );
            for (&t, &usd) in &self.budgets {
                s.push_str(&format!("budget\t{t}\t{usd:?}\n"));
            }
            s
        };
        for j in &self.jobs {
            let deadline = match j.deadline {
                Some(d) => format!("{:?}", d.as_secs()),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:?}\t{}\t{}\t{}\t{}\n",
                j.submit.as_secs(),
                j.class.name(),
                j.workers,
                j.tenant,
                deadline
            ));
        }
        out
    }

    /// Parse the text format back into a trace (ids re-assigned in file
    /// order). Round-trips [`Trace::to_text`] exactly; also accepts the
    /// three-column v1 format (tenant 0, no deadline) and the v3 format's
    /// optional `budget <tenant> <usd>` lines.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut jobs: Vec<JobRequest> = Vec::new();
        let mut budgets = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_trace_line(line, lineno)? {
                TraceLine::Budget { tenant, usd } => {
                    if budgets.insert(tenant, usd).is_some() {
                        return Err(format!(
                            "line {}: duplicate budget for tenant {tenant}",
                            lineno + 1
                        ));
                    }
                }
                TraceLine::Job {
                    submit,
                    class,
                    workers,
                    tenant,
                    deadline,
                } => {
                    jobs.push(JobRequest {
                        id: jobs.len() as u64,
                        class,
                        submit,
                        workers,
                        tenant,
                        deadline,
                    });
                }
            }
        }
        if !jobs.windows(2).all(|w| w[0].submit <= w[1].submit) {
            return Err("trace not sorted by submission time".into());
        }
        Ok(Trace { jobs, budgets })
    }

    /// Tenant ids appearing in the trace, ascending and deduplicated.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ts: Vec<TenantId> = self.jobs.iter().map(|j| j.tenant).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Submission time of the last job.
    pub fn horizon(&self) -> SimTime {
        self.jobs.last().map_or(SimTime::ZERO, |j| j.submit)
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_deterministic() {
        let mix = JobMix::default_mix();
        let a = Trace::generate(ArrivalProcess::Poisson { rate: 0.5 }, &mix, 200, 7);
        let b = Trace::generate(ArrivalProcess::Poisson { rate: 0.5 }, &mix, 200, 7);
        assert_eq!(a, b);
        let c = Trace::generate(ArrivalProcess::Poisson { rate: 0.5 }, &mix, 200, 8);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn poisson_mean_rate_close_to_nominal() {
        let mix = JobMix::only(JobClass::LrHiggs);
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 2.0 }, &mix, 4_000, 42);
        let horizon = t.horizon().as_secs();
        let rate = t.len() as f64 / horizon;
        assert!((rate - 2.0).abs() < 0.15, "empirical rate {rate}");
    }

    #[test]
    fn burst_process_alternates_rates() {
        let p = ArrivalProcess::Burst {
            base_rate: 0.1,
            burst_rate: 10.0,
            period: 100.0,
            duty: 0.2,
        };
        assert_eq!(p.rate_at(5.0), 10.0);
        assert_eq!(p.rate_at(50.0), 0.1);
        assert_eq!(p.rate_at(105.0), 10.0);
        let mix = JobMix::only(JobClass::SvmRcv1);
        let t = Trace::generate(p, &mix, 500, 1);
        // Bursts compress arrivals: many more jobs land in burst windows.
        let in_burst = t
            .jobs
            .iter()
            .filter(|j| (j.submit.as_secs() / 100.0).fract() < 0.2)
            .count();
        assert!(in_burst > t.len() / 2, "{in_burst} of {}", t.len());
    }

    #[test]
    fn trace_text_roundtrips() {
        let mix = JobMix::default_mix();
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 1.0 }, &mix, 300, 99);
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.to_text(), text, "round-trip is byte-identical");
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Trace::from_text("1.0\tnot-a-class\t10").is_err());
        assert!(Trace::from_text("abc\tlr-higgs\t10").is_err());
        assert!(Trace::from_text("1.0\tlr-higgs\t0").is_err());
        assert!(Trace::from_text("5.0\tlr-higgs\t10\n1.0\tlr-higgs\t10").is_err());
    }

    #[test]
    fn from_text_rejects_malformed_v2_fields() {
        // Wrong arity (4 fields is neither v1 nor v2).
        assert!(Trace::from_text("1.0\tlr-higgs\t10\t0").is_err());
        // Non-numeric / negative-looking tenant id.
        assert!(Trace::from_text("1.0\tlr-higgs\t10\tbob\t-").is_err());
        assert!(Trace::from_text("1.0\tlr-higgs\t10\t-1\t-").is_err());
        // Bad deadlines: unparsable, non-finite, before submission.
        assert!(Trace::from_text("1.0\tlr-higgs\t10\t0\tsoon").is_err());
        assert!(Trace::from_text("1.0\tlr-higgs\t10\t0\tinf").is_err());
        assert!(Trace::from_text("10.0\tlr-higgs\t10\t0\t5.0").is_err());
        // Bad submit times.
        assert!(Trace::from_text("-1.0\tlr-higgs\t10").is_err());
        assert!(Trace::from_text("nan\tlr-higgs\t10").is_err());
    }

    #[test]
    fn from_text_accepts_v1_and_empty_traces() {
        let v1 = Trace::from_text("# v1 comment\n1.0\tlr-higgs\t10\n").unwrap();
        assert_eq!(v1.jobs[0].tenant, 0);
        assert_eq!(v1.jobs[0].deadline, None);
        let empty = Trace::from_text("# nothing but comments\n\n").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.horizon(), SimTime::ZERO);
    }

    #[test]
    fn multi_tenant_trace_roundtrips_with_deadlines() {
        let spec = TenantSpec {
            n_tenants: 4,
            deadline_frac: 0.5,
            deadline_slack: 2.0,
        };
        let mix = JobMix::default_mix();
        let t = Trace::generate_multi(ArrivalProcess::Poisson { rate: 1.0 }, &mix, &spec, 300, 13);
        assert_eq!(t.tenants(), vec![0, 1, 2, 3]);
        let with_deadline = t.jobs.iter().filter(|j| j.deadline.is_some()).count();
        assert!(
            (100..=200).contains(&with_deadline),
            "~half the jobs carry deadlines, got {with_deadline}"
        );
        for j in t.jobs.iter().filter(|j| j.deadline.is_some()) {
            assert!(j.deadline.unwrap() > j.submit);
        }
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.to_text(), text, "v2 round-trip is byte-identical");
    }

    #[test]
    fn v3_budget_lines_roundtrip() {
        let mix = JobMix::default_mix();
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 1.0 }, &mix, 50, 3)
            .with_budget(0, 12.5)
            .with_budget(7, 0.0);
        let text = t.to_text();
        assert!(text.starts_with("# lml-fleet trace v3"));
        assert!(text.contains("budget\t0\t12.5\n"));
        assert!(text.contains("budget\t7\t0.0\n"));
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.to_text(), text, "v3 round-trip is byte-identical");
        assert_eq!(back.budgets.get(&0), Some(&12.5));
    }

    #[test]
    fn budget_less_traces_still_emit_v2_bytes() {
        let mix = JobMix::default_mix();
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 1.0 }, &mix, 20, 3);
        assert!(t.budgets.is_empty());
        assert!(t.to_text().starts_with("# lml-fleet trace v2"));
    }

    #[test]
    fn malformed_budget_lines_are_rejected() {
        // Arity, bad tenant, bad/negative/non-finite amounts, duplicates.
        assert!(Trace::from_text("budget\t0\n").is_err());
        assert!(Trace::from_text("budget\t0\t1.0\t2.0\n").is_err());
        assert!(Trace::from_text("budget\tbob\t1.0\n").is_err());
        assert!(Trace::from_text("budget\t0\tlots\n").is_err());
        assert!(Trace::from_text("budget\t0\t-1.0\n").is_err());
        assert!(Trace::from_text("budget\t0\tinf\n").is_err());
        assert!(Trace::from_text("budget\t0\t1.0\nbudget\t0\t2.0\n").is_err());
        // Budget-only traces are fine (empty but capped).
        let t = Trace::from_text("budget\t3\t5.0\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.budgets.get(&3), Some(&5.0));
        // v1/v2 job lines still parse next to budget lines.
        let t = Trace::from_text("budget\t0\t5.0\n1.0\tlr-higgs\t10\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = JobMix::new(vec![(JobClass::LrHiggs, 3.0), (JobClass::RnCifar, 1.0)]);
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 1.0 }, &mix, 4_000, 5);
        let lr = t
            .jobs
            .iter()
            .filter(|j| j.class == JobClass::LrHiggs)
            .count();
        let frac = lr as f64 / t.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "LR fraction {frac}");
    }
}
