//! Workload generation: arrival processes, job mixes, and replayable traces.
//!
//! A [`Trace`] is the unit of input to the fleet simulator: a list of
//! [`JobRequest`]s sorted by submission time. Traces are either generated
//! from an [`ArrivalProcess`] + [`JobMix`] with a seeded RNG (bit-identical
//! across runs) or replayed from the plain-text format produced by
//! [`Trace::to_text`], so a measured production trace can be swapped in
//! without touching the simulator.

use crate::job::{JobClass, JobRequest};
use lml_sim::{Pcg64, SimTime};

/// How job submissions arrive over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` jobs/second — the classic open-system
    /// model of a large independent tenant population.
    Poisson { rate: f64 },
    /// A modulated Poisson process: within every `period`, the first
    /// `duty` fraction arrives at `burst_rate`, the rest at `base_rate`.
    /// Models diurnal load and synchronized retraining waves.
    Burst {
        base_rate: f64,
        burst_rate: f64,
        period: f64,
        duty: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate at absolute time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Burst {
                base_rate,
                burst_rate,
                period,
                duty,
            } => {
                let phase = (t / period).fract();
                if phase < duty {
                    burst_rate
                } else {
                    base_rate
                }
            }
        }
    }

    /// Sample the gap to the next arrival after time `t` (exponential at
    /// the local rate — exact for Poisson, a standard step approximation
    /// for the modulated process).
    fn next_gap(&self, t: f64, rng: &mut Pcg64) -> f64 {
        let rate = self.rate_at(t);
        assert!(rate > 0.0, "arrival rate must be positive");
        -(1.0 - rng.uniform()).ln() / rate
    }
}

/// A weighted mixture over job classes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMix {
    entries: Vec<(JobClass, f64)>,
}

impl JobMix {
    /// Build a mix from (class, weight) pairs; weights are normalized.
    pub fn new(entries: Vec<(JobClass, f64)>) -> Self {
        assert!(!entries.is_empty(), "empty job mix");
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "job mix weights must sum to > 0");
        JobMix {
            entries: entries.into_iter().map(|(c, w)| (c, w / total)).collect(),
        }
    }

    /// A single-class mix.
    pub fn only(class: JobClass) -> Self {
        JobMix::new(vec![(class, 1.0)])
    }

    /// The default multi-tenant mix: mostly fast convex jobs, a tail of
    /// heavy deep-learning jobs — the shape under which the FaaS/IaaS
    /// trade-off of the paper matters most.
    pub fn default_mix() -> Self {
        JobMix::new(vec![
            (JobClass::LrHiggs, 0.32),
            (JobClass::SvmRcv1, 0.30),
            (JobClass::KmHiggs, 0.20),
            (JobClass::LrYfcc, 0.08),
            (JobClass::MnCifar, 0.08),
            (JobClass::RnCifar, 0.02),
        ])
    }

    /// Convex-only mix (every job is FaaS-friendly).
    pub fn convex_mix() -> Self {
        JobMix::new(vec![
            (JobClass::LrHiggs, 0.4),
            (JobClass::SvmRcv1, 0.4),
            (JobClass::KmHiggs, 0.2),
        ])
    }

    pub fn classes(&self) -> impl Iterator<Item = JobClass> + '_ {
        self.entries.iter().map(|&(c, _)| c)
    }

    fn sample(&self, rng: &mut Pcg64) -> JobClass {
        let u = rng.uniform();
        let mut acc = 0.0;
        for &(c, w) in &self.entries {
            acc += w;
            if u < acc {
                return c;
            }
        }
        self.entries.last().expect("non-empty mix").0
    }
}

/// A replayable list of job submissions, sorted by submission time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub jobs: Vec<JobRequest>,
}

impl Trace {
    /// Generate `n_jobs` arrivals from the process and mix. Same seed →
    /// identical trace, byte for byte.
    pub fn generate(process: ArrivalProcess, mix: &JobMix, n_jobs: usize, seed: u64) -> Trace {
        let mut rng = Pcg64::new(seed ^ 0xF1EE7);
        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(n_jobs);
        for id in 0..n_jobs {
            t += process.next_gap(t, &mut rng);
            let class = mix.sample(&mut rng);
            jobs.push(JobRequest {
                id: id as u64,
                class,
                submit: SimTime::secs(t),
                workers: class.default_workers(),
            });
        }
        Trace { jobs }
    }

    /// Serialize to the replayable text format: one `time class workers`
    /// line per job, times in shortest-roundtrip notation.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# lml-fleet trace v1: submit_secs\tclass\tworkers\n");
        for j in &self.jobs {
            out.push_str(&format!(
                "{:?}\t{}\t{}\n",
                j.submit.as_secs(),
                j.class.name(),
                j.workers
            ));
        }
        out
    }

    /// Parse the text format back into a trace (ids re-assigned in file
    /// order). Round-trips [`Trace::to_text`] exactly.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut jobs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let t: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing time", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad time: {e}", lineno + 1))?;
            let class = parts
                .next()
                .and_then(JobClass::parse)
                .ok_or_else(|| format!("line {}: unknown job class", lineno + 1))?;
            let workers: usize = parts
                .next()
                .ok_or_else(|| format!("line {}: missing workers", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad workers: {e}", lineno + 1))?;
            if workers == 0 {
                return Err(format!("line {}: zero workers", lineno + 1));
            }
            jobs.push(JobRequest {
                id: jobs.len() as u64,
                class,
                submit: SimTime::secs(t),
                workers,
            });
        }
        if !jobs.windows(2).all(|w| w[0].submit <= w[1].submit) {
            return Err("trace not sorted by submission time".into());
        }
        Ok(Trace { jobs })
    }

    /// Submission time of the last job.
    pub fn horizon(&self) -> SimTime {
        self.jobs.last().map_or(SimTime::ZERO, |j| j.submit)
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_deterministic() {
        let mix = JobMix::default_mix();
        let a = Trace::generate(ArrivalProcess::Poisson { rate: 0.5 }, &mix, 200, 7);
        let b = Trace::generate(ArrivalProcess::Poisson { rate: 0.5 }, &mix, 200, 7);
        assert_eq!(a, b);
        let c = Trace::generate(ArrivalProcess::Poisson { rate: 0.5 }, &mix, 200, 8);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn poisson_mean_rate_close_to_nominal() {
        let mix = JobMix::only(JobClass::LrHiggs);
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 2.0 }, &mix, 4_000, 42);
        let horizon = t.horizon().as_secs();
        let rate = t.len() as f64 / horizon;
        assert!((rate - 2.0).abs() < 0.15, "empirical rate {rate}");
    }

    #[test]
    fn burst_process_alternates_rates() {
        let p = ArrivalProcess::Burst {
            base_rate: 0.1,
            burst_rate: 10.0,
            period: 100.0,
            duty: 0.2,
        };
        assert_eq!(p.rate_at(5.0), 10.0);
        assert_eq!(p.rate_at(50.0), 0.1);
        assert_eq!(p.rate_at(105.0), 10.0);
        let mix = JobMix::only(JobClass::SvmRcv1);
        let t = Trace::generate(p, &mix, 500, 1);
        // Bursts compress arrivals: many more jobs land in burst windows.
        let in_burst = t
            .jobs
            .iter()
            .filter(|j| (j.submit.as_secs() / 100.0).fract() < 0.2)
            .count();
        assert!(in_burst > t.len() / 2, "{in_burst} of {}", t.len());
    }

    #[test]
    fn trace_text_roundtrips() {
        let mix = JobMix::default_mix();
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 1.0 }, &mix, 300, 99);
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.to_text(), text, "round-trip is byte-identical");
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Trace::from_text("1.0\tnot-a-class\t10").is_err());
        assert!(Trace::from_text("abc\tlr-higgs\t10").is_err());
        assert!(Trace::from_text("1.0\tlr-higgs\t0").is_err());
        assert!(Trace::from_text("5.0\tlr-higgs\t10\n1.0\tlr-higgs\t10").is_err());
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = JobMix::new(vec![(JobClass::LrHiggs, 3.0), (JobClass::RnCifar, 1.0)]);
        let t = Trace::generate(ArrivalProcess::Poisson { rate: 1.0 }, &mix, 4_000, 5);
        let lr = t
            .jobs
            .iter()
            .filter(|j| j.class == JobClass::LrHiggs)
            .count();
        let frac = lr as f64 / t.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "LR fraction {frac}");
    }
}
