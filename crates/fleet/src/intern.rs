//! Dense key interning for hot-path per-tenant state.
//!
//! The simulator's inner loop touches several maps keyed by [`TenantId`]
//! or `(TenantId, JobClass)` on every admission, completion, and observe
//! call: DRR service credit, spend ledgers, budget caps, EWMA estimator
//! state, preemption-rate posteriors. As `BTreeMap`s these cost a
//! pointer-chasing ordered lookup per touch; profiles of `fleet_scale`
//! showed them and the event heap dominating the remaining wall.
//!
//! [`TenantMap`] replaces them with a tiny interner plus a dense value
//! vector. Tenant ids are "dense small integers" by convention
//! (`crate::job::TenantId`), so the id→slot table is direct-mapped — a
//! `Vec<u32>` indexed by the tenant id itself — and a lookup is two
//! array reads. Ids past `DIRECT_CAP` (adversarially sparse traces)
//! fall back to a sorted-vec binary search so memory stays bounded.
//!
//! Each map interns independently: a tenant occupies a slot in a given
//! map only once that map has actually seen it, which exactly preserves
//! the presence semantics of the `BTreeMap`s it replaces (e.g. the spend
//! gauge must list precisely the tenants ever charged). Iteration on the
//! JSON/metrics cold paths goes through [`TenantMap::iter_sorted`] /
//! [`TenantMap::into_iter_sorted`], which order by the original tenant id
//! so emitted bytes (and float summation order) match the ordered-map
//! output bit for bit.

use crate::job::{JobClass, TenantId};

/// Largest tenant id served by the direct-mapped index table. At 4 bytes
/// a slot the table tops out at 4 MiB; anything sparser than that goes to
/// the binary-search side table.
const DIRECT_CAP: usize = 1 << 20;

/// Sentinel in the direct-mapped table: "not interned here".
const EMPTY: u32 = u32::MAX;

/// A map from [`TenantId`] to `V` backed by dense interned slots.
///
/// `get`/`get_or_insert_with` are O(1) for ids below `DIRECT_CAP`.
/// Insertion order is preserved in the dense storage; sorted views are
/// materialized on demand (cold paths only).
#[derive(Debug, Clone)]
pub struct TenantMap<V> {
    /// Direct-mapped id → dense slot, grown lazily to the largest id seen.
    idx: Vec<u32>,
    /// Sorted `(id, slot)` pairs for ids ≥ [`DIRECT_CAP`].
    sparse: Vec<(TenantId, u32)>,
    /// Dense slot → original id (parallel to `vals`).
    keys: Vec<TenantId>,
    vals: Vec<V>,
}

impl<V> Default for TenantMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> TenantMap<V> {
    pub fn new() -> Self {
        TenantMap {
            idx: Vec::new(),
            sparse: Vec::new(),
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Dense slot for `tenant`, if interned in this map.
    #[inline]
    fn slot(&self, tenant: TenantId) -> Option<usize> {
        let t = tenant as usize;
        if t < DIRECT_CAP {
            match self.idx.get(t) {
                Some(&s) if s != EMPTY => Some(s as usize),
                _ => None,
            }
        } else {
            self.sparse
                .binary_search_by_key(&tenant, |&(id, _)| id)
                .ok()
                .map(|i| self.sparse[i].1 as usize)
        }
    }

    #[inline]
    pub fn get(&self, tenant: TenantId) -> Option<&V> {
        self.slot(tenant).map(|s| &self.vals[s])
    }

    #[inline]
    pub fn get_mut(&mut self, tenant: TenantId) -> Option<&mut V> {
        self.slot(tenant).map(|s| &mut self.vals[s])
    }

    /// The slot for `tenant`, interning it with `default()` on first
    /// touch — the dense analogue of `entry(t).or_insert_with(..)`.
    #[inline]
    pub fn get_or_insert_with(&mut self, tenant: TenantId, default: impl FnOnce() -> V) -> &mut V {
        let s = match self.slot(tenant) {
            Some(s) => s,
            None => self.intern(tenant, default()),
        };
        &mut self.vals[s]
    }

    /// Insert or overwrite, returning the previous value if any.
    pub fn insert(&mut self, tenant: TenantId, value: V) -> Option<V> {
        match self.slot(tenant) {
            Some(s) => Some(std::mem::replace(&mut self.vals[s], value)),
            None => {
                self.intern(tenant, value);
                None
            }
        }
    }

    /// Allocate a fresh dense slot for a not-yet-interned tenant.
    fn intern(&mut self, tenant: TenantId, value: V) -> usize {
        let slot = self.vals.len();
        let t = tenant as usize;
        if t < DIRECT_CAP {
            if t >= self.idx.len() {
                self.idx.resize(t + 1, EMPTY);
            }
            self.idx[t] = slot as u32;
        } else {
            let pos = self
                .sparse
                .binary_search_by_key(&tenant, |&(id, _)| id)
                .unwrap_err();
            self.sparse.insert(pos, (tenant, slot as u32));
        }
        self.keys.push(tenant);
        self.vals.push(value);
        slot
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Mutable sweep over every value, in intern order. Used for bulk
    /// resets (budget-window rollover) where order is irrelevant.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.vals.iter_mut()
    }

    /// Iterate `(tenant, &value)` ascending by tenant id — the iteration
    /// order of the `BTreeMap` this replaces. Sorts a slot permutation on
    /// each call; only for cold paths (gauges, JSON rows, Jain sums).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (TenantId, &V)> {
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_unstable_by_key(|&s| self.keys[s]);
        order.into_iter().map(|s| (self.keys[s], &self.vals[s]))
    }

    /// Consume into `(tenant, value)` pairs ascending by tenant id.
    pub fn into_iter_sorted(self) -> impl Iterator<Item = (TenantId, V)> {
        let mut pairs: Vec<(TenantId, V)> = self.keys.into_iter().zip(self.vals).collect();
        pairs.sort_unstable_by_key(|&(t, _)| t);
        pairs.into_iter()
    }
}

/// A map from `(TenantId, JobClass)` to `V`: interned tenant slots, each
/// fanned out over the six job classes. Lookup is the tenant's O(1) slot
/// plus a fixed-offset class index. Never iterated — the estimator and
/// risk state it backs are read/update only.
#[derive(Debug, Clone, Default)]
pub struct TenantClassMap<V> {
    inner: TenantMap<[Option<V>; JobClass::ALL.len()]>,
}

impl<V> TenantClassMap<V> {
    pub fn new() -> Self {
        TenantClassMap {
            inner: TenantMap::new(),
        }
    }

    #[inline]
    pub fn get(&self, tenant: TenantId, class: JobClass) -> Option<&V> {
        self.inner
            .get(tenant)
            .and_then(|slots| slots[class as usize].as_ref())
    }

    /// The slot for `(tenant, class)`, created with `default()` on first
    /// touch — the dense analogue of `entry((t, c)).or_insert_with(..)`.
    #[inline]
    pub fn get_or_insert_with(
        &mut self,
        tenant: TenantId,
        class: JobClass,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        let slots = self
            .inner
            .get_or_insert_with(tenant, || std::array::from_fn(|_| None));
        slots[class as usize].get_or_insert_with(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn get_or_insert_matches_entry_semantics() {
        let mut m: TenantMap<f64> = TenantMap::new();
        *m.get_or_insert_with(3, || 0.0) += 1.5;
        *m.get_or_insert_with(3, || 0.0) += 1.5;
        *m.get_or_insert_with(1, || 0.0) += 5.0;
        assert_eq!(m.get(3), Some(&3.0));
        assert_eq!(m.get(1), Some(&5.0));
        assert_eq!(m.get(2), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_overwrites_and_returns_previous() {
        let mut m: TenantMap<&str> = TenantMap::new();
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7, "b"), Some("a"));
        assert_eq!(m.get(7), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sorted_iteration_matches_btreemap_order() {
        let ids = [9u32, 2, 40, 0, 17, 5];
        let mut dense: TenantMap<u64> = TenantMap::new();
        let mut reference: BTreeMap<TenantId, u64> = BTreeMap::new();
        for (i, &t) in ids.iter().enumerate() {
            dense.insert(t, i as u64);
            reference.insert(t, i as u64);
        }
        let got: Vec<(TenantId, u64)> = dense.iter_sorted().map(|(t, &v)| (t, v)).collect();
        let want: Vec<(TenantId, u64)> = reference.iter().map(|(&t, &v)| (t, v)).collect();
        assert_eq!(got, want);
        let got_owned: Vec<(TenantId, u64)> = dense.into_iter_sorted().collect();
        assert_eq!(got_owned, want);
    }

    #[test]
    fn sparse_ids_past_direct_cap_still_work() {
        let mut m: TenantMap<i32> = TenantMap::new();
        let big = (DIRECT_CAP as u32) + 12345;
        m.insert(big, 1);
        m.insert(3, 2);
        m.insert(big + 7, 3);
        assert_eq!(m.get(big), Some(&1));
        assert_eq!(m.get(big + 7), Some(&3));
        assert_eq!(m.get(big + 1), None);
        let order: Vec<TenantId> = m.iter_sorted().map(|(t, _)| t).collect();
        assert_eq!(order, vec![3, big, big + 7]);
    }

    #[test]
    fn tenant_class_map_keys_independently_per_class() {
        let mut m: TenantClassMap<u32> = TenantClassMap::new();
        *m.get_or_insert_with(4, JobClass::LrHiggs, || 0) += 10;
        *m.get_or_insert_with(4, JobClass::RnCifar, || 0) += 20;
        *m.get_or_insert_with(9, JobClass::LrHiggs, || 0) += 30;
        assert_eq!(m.get(4, JobClass::LrHiggs), Some(&10));
        assert_eq!(m.get(4, JobClass::RnCifar), Some(&20));
        assert_eq!(m.get(9, JobClass::LrHiggs), Some(&30));
        assert_eq!(m.get(4, JobClass::SvmRcv1), None);
        assert_eq!(m.get(9, JobClass::RnCifar), None);
    }
}
