//! Minimal deterministic JSON writer.
//!
//! The fleet metrics are exported as JSON so future PRs can track a
//! perf/cost trajectory across runs. No external serialization crate is
//! vendored in this offline build, so this is a tiny hand-rolled emitter:
//! fields appear in insertion order, floats use Rust's shortest-roundtrip
//! formatting, and nothing iterates a `HashMap` — two runs with the same
//! inputs produce byte-identical output.

use std::fmt::Write as _;

/// Incremental JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        // Even the small nested objects (quantile rollups, per-run spans)
        // run tens of bytes; starting above the doubling ramp keeps the
        // metrics emitter off the allocator's resize path.
        let mut buf = String::with_capacity(128);
        buf.push('{');
        JsonObject { buf, any: false }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        quote_into(&mut self.buf, k);
        self.buf.push(':');
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        quote_into(&mut self.buf, v);
        self
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        // `{:?}` already yields `1.0`-style output that JSON accepts.
        let _ = write!(self.buf, "{v:?}");
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Insert pre-rendered JSON (a nested object or array).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Render a JSON array from pre-rendered element strings.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Format a finite f64 as a JSON number (shortest roundtrip form).
pub fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    let s = format!("{v:?}");
    // `{:?}` already yields `1.0`-style output that JSON accepts.
    s
}

/// Quote and escape a JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    quote_into(&mut out, s);
    out
}

/// Quote and escape a JSON string directly into `out` — the allocation-free
/// form the builder uses on its hot path.
fn quote_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_objects_in_insertion_order() {
        let j = JsonObject::new()
            .str("b", "x")
            .u64("a", 3)
            .f64("c", 1.5)
            .finish();
        assert_eq!(j, r#"{"b":"x","a":3,"c":1.5}"#);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(quote("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn floats_roundtrip() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        let v = 123.456789012345;
        let back: f64 = fmt_f64(v).parse().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn arrays_join_elements() {
        assert_eq!(array(&["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(&[]), "[]");
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        fmt_f64(f64::NAN);
    }
}
