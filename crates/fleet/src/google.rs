//! Google cluster-usage trace adapter (task_events table).
//!
//! The Google cluster-data traces (2011 v2 format and its descendants)
//! record scheduler events as CSV rows:
//!
//! ```text
//! timestamp_us,missing_info,job_id,task_index,machine_id,event_type,user,...
//! ```
//!
//! This module adapts that shape onto the fleet simulator as a streaming
//! [`TraceSource`]: each job's **first SUBMIT event** (event type `0`)
//! becomes one training-job submission, users become tenants (dense ids
//! in order of first appearance), and job ids are hashed deterministically
//! onto the Table 4 job zoo with the same FNV-1a mapping the Azure
//! adapter uses. Later tasks and resubmissions of an already-seen job id
//! are skipped, as are all non-SUBMIT event types.
//!
//! Unlike the Azure CSVs, task_events files are sorted by timestamp, so
//! the adapter streams rows straight into the replay engine with constant
//! memory per row — the only state that grows is the seen-job-id set,
//! O(#distinct jobs), which is what bounds duplicate detection. Files
//! that violate time order are rejected (streaming cannot re-sort).
//!
//! Rows need at least 7 comma-separated fields; extra columns (scheduling
//! class, priority, resource requests) are ignored. Header lines and `#`
//! comments are skipped, headers also mid-file (concatenated shards).
//!
//! A bundled sample lives at `crates/fleet/data/google_sample.csv`.

use crate::azure::fnv1a;
use crate::job::{JobClass, JobRequest, TenantId};
use crate::stream::TraceSource;
use crate::workload::Trace;
use lml_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::io::BufRead;

/// The job class a Google job id maps to (deterministic, same FNV-1a
/// spread as the Azure adapter's function mapping).
pub fn class_for_job(job_id: &str) -> JobClass {
    JobClass::ALL[(fnv1a(job_id) % JobClass::ALL.len() as u64) as usize]
}

/// Is this a header line naming the columns? Public exports vary the
/// spelling — `timestamp`, `time_us`, `Timestamp (us)` — so normalize
/// case and separators on the first field rather than matching a string.
fn is_header(line: &str) -> bool {
    let first = line.split(',').next().unwrap_or("");
    let normalized: String = first
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    normalized.starts_with("time")
}

/// Streaming adapter over task_events CSV: pull-based, constant memory
/// per row (plus the O(#jobs) dedupe set).
pub struct GoogleSource<R> {
    reader: R,
    line: String,
    /// Zero-based index of the next line to read.
    lineno: usize,
    seen_jobs: BTreeSet<u64>,
    tenants: BTreeMap<String, TenantId>,
    next_tenant: TenantId,
    last_submit: SimTime,
    next_id: u64,
}

impl<R: BufRead> GoogleSource<R> {
    pub fn new(reader: R) -> Self {
        GoogleSource {
            reader,
            line: String::new(),
            lineno: 0,
            seen_jobs: BTreeSet::new(),
            tenants: BTreeMap::new(),
            next_tenant: 0,
            last_submit: SimTime::ZERO,
            next_id: 0,
        }
    }
}

impl<R: BufRead> TraceSource for GoogleSource<R> {
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String> {
        // task_events carry no budget notion; every tenant is uncapped.
        Ok(BTreeMap::new())
    }

    fn next_job(&mut self) -> Result<Option<JobRequest>, String> {
        loop {
            self.line.clear();
            let n = self
                .reader
                .read_line(&mut self.line)
                .map_err(|e| format!("line {}: read error: {e}", self.lineno + 1))?;
            if n == 0 {
                return Ok(None);
            }
            let lineno = self.lineno;
            self.lineno += 1;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') || is_header(line) {
                continue;
            }
            let parts: Vec<&str> = line.split(',').map(str::trim).collect();
            if parts.len() < 7 {
                return Err(format!(
                    "line {}: expected >= 7 comma-separated fields, got {}",
                    lineno + 1,
                    parts.len()
                ));
            }
            let event_type: u32 = parts[5]
                .parse()
                .map_err(|e| format!("line {}: bad event type: {e}", lineno + 1))?;
            // Only SUBMIT (0) events become job arrivals.
            if event_type != 0 {
                continue;
            }
            let ts_us: f64 = parts[0]
                .parse()
                .map_err(|e| format!("line {}: bad timestamp: {e}", lineno + 1))?;
            if !ts_us.is_finite() || ts_us < 0.0 {
                return Err(format!(
                    "line {}: timestamp must be finite and >= 0",
                    lineno + 1
                ));
            }
            let submit = SimTime::secs(ts_us / 1e6);
            if submit < self.last_submit {
                return Err(format!(
                    "line {}: task_events not sorted by timestamp (the streaming \
                     adapter cannot re-sort)",
                    lineno + 1
                ));
            }
            self.last_submit = submit;
            let job_id: u64 = parts[2]
                .parse()
                .map_err(|e| format!("line {}: bad job id: {e}", lineno + 1))?;
            // One arrival per job: later tasks / resubmissions are skipped.
            if !self.seen_jobs.insert(job_id) {
                continue;
            }
            if parts[6].is_empty() {
                return Err(format!("line {}: empty user", lineno + 1));
            }
            let tenant = match self.tenants.get(parts[6]) {
                Some(&t) => t,
                None => {
                    let t = self.next_tenant;
                    self.next_tenant += 1;
                    self.tenants.insert(parts[6].to_string(), t);
                    t
                }
            };
            let class = class_for_job(parts[2]);
            let id = self.next_id;
            self.next_id += 1;
            return Ok(Some(JobRequest {
                id,
                class,
                submit,
                workers: class.default_workers(),
                tenant,
                deadline: None,
            }));
        }
    }
}

/// Parse task_events CSV into an in-memory [`Trace`] by draining the
/// streaming source (convenience for small fixtures and tests).
pub fn parse(csv: &str) -> Result<Trace, String> {
    crate::stream::collect(GoogleSource::new(csv.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = include_str!("../data/google_sample.csv");

    #[test]
    fn bundled_sample_parses() {
        let trace = parse(SAMPLE).expect("bundled sample must parse");
        assert!(trace.len() >= 10, "sample has {} jobs", trace.len());
        let tenants = trace.tenants();
        assert!(tenants.len() >= 3, "sample spans {} tenants", tenants.len());
        assert_eq!(tenants, (0..tenants.len() as u32).collect::<Vec<_>>());
        assert!(trace.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert!(trace.budgets.is_empty());
    }

    #[test]
    fn only_first_submit_per_job_counts() {
        let csv = "\
            1000000,,42,0,,0,alice,2,9,0.1,0.1,0.01,\n\
            1000000,,42,1,,0,alice,2,9,0.1,0.1,0.01,\n\
            2000000,,42,0,,0,alice,2,9,0.1,0.1,0.01,\n\
            3000000,,43,0,,0,bob,2,9,0.1,0.1,0.01,\n";
        let t = parse(csv).unwrap();
        assert_eq!(t.len(), 2, "tasks and resubmits of job 42 collapse");
        assert_eq!(t.jobs[0].submit, SimTime::secs(1.0));
        assert_eq!(t.jobs[1].tenant, 1, "bob is the second tenant seen");
    }

    #[test]
    fn non_submit_events_are_skipped() {
        let csv = "\
            1000000,,42,0,,0,alice,2,9,,,,\n\
            1500000,,42,0,m7,1,alice,2,9,,,,\n\
            1600000,,42,0,m7,4,alice,2,9,,,,\n\
            2000000,,43,0,,0,bob,2,9,,,,\n";
        let t = parse(csv).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn out_of_order_submits_are_rejected() {
        let csv = "\
            5000000,,1,0,,0,alice,2,9,,,,\n\
            2000000,,2,0,,0,bob,2,9,,,,\n";
        let e = parse(csv).unwrap_err();
        assert!(e.contains("line 2") && e.contains("not sorted"), "{e}");
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        // Too few fields.
        let e = parse("1000,,42,0,,0\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        // Bad timestamp / event type / job id, empty user.
        assert!(parse("soon,,42,0,,0,alice\n").is_err());
        assert!(parse("nan,,42,0,,0,alice\n").is_err());
        assert!(parse("-1,,42,0,,0,alice\n").is_err());
        assert!(parse("1000,,42,0,,boot,alice\n").is_err());
        assert!(parse("1000,,soon,0,,0,alice\n").is_err());
        let e = parse("1000,,41,0,,0,alice\n2000,,42,0,,0,\n").unwrap_err();
        assert!(e.contains("line 2") && e.contains("empty user"), "{e}");
    }

    #[test]
    fn header_variants_and_comments_are_skipped() {
        for header in [
            "timestamp,missing_info,job_id,task_index,machine_id,event_type,user",
            "Timestamp (us),Missing,JobID,TaskIndex,MachineID,EventType,User",
            "time_us,missing,job,task,machine,event,user",
        ] {
            let csv = format!("# shard 0\n{header}\n1000000,,42,0,,0,alice,2,9\n");
            let t = parse(&csv).unwrap_or_else(|e| panic!("{header:?}: {e}"));
            assert_eq!(t.len(), 1, "{header:?}");
        }
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn job_class_mapping_is_stable_and_spread() {
        assert_eq!(class_for_job("6253708944"), class_for_job("6253708944"));
        let classes: std::collections::BTreeSet<_> = (0..40)
            .map(|i| class_for_job(&format!("62537{i}")))
            .collect();
        assert!(classes.len() >= 3, "only {} classes hit", classes.len());
    }

    #[test]
    fn streaming_twice_is_deterministic() {
        // The CI fixture diff relies on this: two independent streams of
        // the same bytes produce identical traces.
        assert_eq!(parse(SAMPLE).unwrap(), parse(SAMPLE).unwrap());
    }
}
