//! The prediction layer: a pluggable [`Estimator`] behind every
//! model-driven scheduling policy.
//!
//! Until PR 4 each scheduler trusted the paper's §5.3 analytical model
//! blindly, through a private `(f64, f64, f64, f64)` tuple helper. This
//! module makes prediction a first-class subsystem with a feedback loop:
//!
//! * [`Estimate`] — the named (runtime, cost) × (FaaS, IaaS) quadruple the
//!   tuple used to smuggle around;
//! * [`Estimator`] — `predict(&JobRequest) -> Estimate` consumed by the
//!   routers, plus `observe(&CompletedJob)` fed by the simulator on every
//!   `Done` lifecycle transition (preempted/resumed attempts included, so
//!   an online model learns spot-inflated runtimes);
//! * [`Analytic`] — the §5.3 model verbatim (extracted from
//!   `scheduler.rs`), observation-blind;
//! * [`Online`] — a per-(tenant, job-class) EWMA/deviation blend over
//!   actual epoch times, dollars, and cold-start draws, seeded from the
//!   analytic prior so cold-start behaviour is unchanged;
//! * [`Hybrid`] — analytic prior morphing into the online posterior as
//!   observations accumulate (`n / (n + prior_weight)` weighting).
//!
//! The point: the fleet simulator can now study what happens when the
//! model is *wrong* (set [`crate::sim::FleetConfig::epoch_scale`] to
//! perturb the actual epoch counts away from the prior) — the scenario
//! real fleets live in.
//!
//! Since PR 5 the layer also carries the fleet's *risk* state, because the
//! interesting scheduling decisions (trust a deadline job to spot, defer
//! vs reject an over-budget tenant) are tail decisions, not mean
//! decisions:
//!
//! * [`Estimate::eta_q`] — a calibrated quantile ETA (P95 by default).
//!   [`Online`] turns its deviation EWMA into a margin whose multiplier is
//!   calibrated online (adaptive-conformal style: the multiplier steps up
//!   on every miss and down on every cover until empirical coverage
//!   matches the target quantile).
//! * [`RiskModel`] — learned per-(tenant, class) spot preemption rates: a
//!   Gamma posterior over (preemption events / held instance-seconds),
//!   seeded from the configured mean so zero observations reproduce the
//!   static-config behaviour exactly. The simulator feeds every spot
//!   attempt outcome back as a [`PreemptionObs`] through
//!   [`crate::scheduler::Scheduler::observe_preemption`] — preemptions
//!   *and* clean completions, so the rate estimate is exposure-weighted
//!   and unbiased, not a count of disasters.

use crate::intern::TenantClassMap;
use crate::job::{JobClass, JobRequest, TenantId};
use crate::platform::SpotConfig;
use crate::scheduler::Route;
use lml_analytic::estimator::estimate_epochs;
use lml_analytic::model::{faas_cost, faas_time, iaas_time, AnalyticCase, Scaling};
use lml_sim::{Cost, SimTime};

/// The quantile fleet risk decisions are priced at by default: P95.
pub const ETA_QUANTILE: f64 = 0.95;

/// Runtime/cost estimates for one job on both firm substrates, startup
/// excluded (the fleet charges the actual simulated startup). Replaces the
/// anonymous `(t_faas, c_faas, t_iaas, c_iaas)` tuple every policy used to
/// carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Predicted run seconds on FaaS (data loading + training).
    pub t_faas: f64,
    /// Predicted FaaS dollars (GB-second billing of the execution).
    pub c_faas: f64,
    /// Predicted run seconds on booted IaaS instances.
    pub t_iaas: f64,
    /// Predicted IaaS dollars (instance-seconds for the run).
    pub c_iaas: f64,
    /// Calibrated [`ETA_QUANTILE`] (P95) runtime margin *above the mean*
    /// on FaaS, in seconds. Always stored in the P95 convention: an
    /// estimator calibrating a different target quantile rescales its raw
    /// margin through the same z-ratio [`Estimate::eta_q`] reads back
    /// with, so `eta_q(route, target)` returns the calibrated cover point
    /// exactly. 0 for estimators that carry no spread state (the analytic
    /// prior, cold-start learners) — their quantile ETA is the mean.
    pub m_faas: f64,
    /// Calibrated P95 runtime margin above the mean on IaaS/spot, seconds.
    pub m_iaas: f64,
    /// Quantile-invariant tail shift on FaaS, seconds: the gap between
    /// this estimate's published *mean* and the anchor its spread is
    /// calibrated around. Zero for estimators whose spread is calibrated
    /// on their own mean ([`Online`], the blind models); nonzero for
    /// blends whose mean is dragged toward a prior ([`Hybrid`]) — there
    /// the tail must still reach the calibrated posterior, so the shift
    /// is applied to every quantile above the median *without* the
    /// z-rescaling the spread gets (prior drag is a displacement, not a
    /// dispersion).
    pub s_faas: f64,
    /// Quantile-invariant tail shift on IaaS/spot, seconds.
    pub s_iaas: f64,
}

impl Estimate {
    /// A spread-free estimate (the quantile ETA collapses to the mean) —
    /// what every observation-blind model produces.
    pub fn point(t_faas: f64, c_faas: f64, t_iaas: f64, c_iaas: f64) -> Estimate {
        Estimate {
            t_faas,
            c_faas,
            t_iaas,
            c_iaas,
            m_faas: 0.0,
            m_iaas: 0.0,
            s_faas: 0.0,
            s_iaas: 0.0,
        }
    }

    /// Predicted run seconds on the given route (spot runs on IaaS-class
    /// instances, so it shares the IaaS prediction).
    pub fn time(&self, route: Route) -> f64 {
        match route {
            Route::Faas => self.t_faas,
            Route::Iaas | Route::Spot => self.t_iaas,
        }
    }

    /// Predicted dollars on the given route.
    pub fn cost(&self, route: Route) -> f64 {
        match route {
            Route::Faas => self.c_faas,
            Route::Iaas | Route::Spot => self.c_iaas,
        }
    }

    /// Calibrated P95 runtime margin on the given route, seconds.
    pub fn margin(&self, route: Route) -> f64 {
        match route {
            Route::Faas => self.m_faas,
            Route::Iaas | Route::Spot => self.m_iaas,
        }
    }

    /// Quantile-invariant tail shift on the given route, seconds.
    pub fn shift(&self, route: Route) -> f64 {
        match route {
            Route::Faas => self.s_faas,
            Route::Iaas | Route::Spot => self.s_iaas,
        }
    }

    /// Quantile runtime ETA on the given route: the mean, plus the tail
    /// shift (un-rescaled — displacement, not dispersion), plus the
    /// stored margin rescaled from its [`ETA_QUANTILE`] calibration point
    /// to `q` through the normal z-ratio (`q = 0.95` uses the margin
    /// verbatim; `q ≤ 0.5` is the mean). The margin is *calibrated*, not
    /// assumed normal — the rescaling is only used for off-default
    /// quantiles.
    pub fn eta_q(&self, route: Route, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0, 1)");
        if q <= 0.5 {
            return self.time(route);
        }
        // At the calibration point the z-ratio is exactly 1 — skip both
        // inverse-CDF evaluations on the (default) hot path.
        let rescale = if q == ETA_QUANTILE {
            1.0
        } else {
            z_score(q) / z_score_eta_quantile()
        };
        self.time(route) + self.shift(route) + self.margin(route) * rescale
    }

    /// The default-risk ETA: [`Estimate::eta_q`] at [`ETA_QUANTILE`].
    pub fn eta_p95(&self, route: Route) -> f64 {
        self.eta_q(route, ETA_QUANTILE)
    }
}

/// `z_score(ETA_QUANTILE)`, computed once: it is the denominator of every
/// off-default quantile rescale.
fn z_score_eta_quantile() -> f64 {
    static Z: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *Z.get_or_init(|| z_score(ETA_QUANTILE))
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |ε| < 1.2e-9) — the z-score behind [`Estimate::eta_q`]'s quantile
/// rescaling.
fn z_score(q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "z-score needs q in (0, 1), got {q}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if q < P_LOW {
        let u = (-2.0 * q.ln()).sqrt();
        (((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0)
    } else if q <= 1.0 - P_LOW {
        let u = q - 0.5;
        let r = u * u;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * u
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let u = (-2.0 * (1.0 - q).ln()).sqrt();
        -(((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0)
    }
}

/// Actuals of one finished job, fed back to the estimator by the simulator
/// the moment the job's lifecycle reaches `Done`.
#[derive(Debug, Clone, Copy)]
pub struct CompletedJob {
    pub id: u64,
    pub class: JobClass,
    pub tenant: TenantId,
    /// Route the scheduler chose (spot jobs keep `Spot` even after a pool
    /// fallback).
    pub route: Route,
    pub workers: usize,
    /// Actual training seconds — including epochs redone after spot
    /// preemptions, so online models learn spot-inflated runtimes.
    pub run: SimTime,
    /// Actual fleet startup: cold/warm starts, dispatch, boots and
    /// restores (including boots lost to preemption).
    pub startup: SimTime,
    /// Dollars attributed to the job.
    pub cost: Cost,
    /// Whole epochs the job needed (actual, i.e. after any zoo
    /// miscalibration).
    pub epochs_total: u32,
    pub preemptions: u32,
}

/// A runtime/cost prediction model with a closed observation loop.
///
/// `Send` is a supertrait (estimators live inside
/// [`Scheduler`](crate::scheduler::Scheduler)s, which cross thread
/// boundaries in the parallel bench sweep engine).
pub trait Estimator: std::fmt::Debug + Send {
    fn name(&self) -> &'static str;
    /// Predict run seconds and dollars on both substrates for this job.
    fn predict(&self, job: &JobRequest) -> Estimate;
    /// Feed back the actuals of a finished job.
    fn observe(&mut self, done: &CompletedJob);
    /// Learned startup seconds for (job, route), when the estimator has
    /// observed any — schedulers may use it in place of a static margin.
    fn startup_hint(&self, _job: &JobRequest, _route: Route) -> Option<SimTime> {
        None
    }
    /// Pin the analytic prior's epochs-to-threshold for a class (e.g. from
    /// a §5.3 sampling-estimator run).
    fn pin_epochs(&mut self, class: JobClass, epochs: f64);
    /// Clone into a box (lets schedulers holding `Box<dyn Estimator>`
    /// stay `Clone`).
    fn clone_box(&self) -> Box<dyn Estimator>;
}

impl Clone for Box<dyn Estimator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Re-estimate `R` (epochs to threshold) for `class` by training on a
/// `sample_frac` subsample — the paper's §5.3 estimator. The result can be
/// pinned into any estimator's analytic prior via
/// [`Estimator::pin_epochs`].
pub fn calibrate_epochs(class: JobClass, sample_frac: f64, max_epochs: usize, seed: u64) -> f64 {
    estimate_epochs(
        class.dataset(),
        class.model(),
        class.algorithm(),
        class.lr(),
        class.threshold(),
        sample_frac,
        max_epochs,
        seed,
    )
    .epochs
}

/// The paper's §5.3 analytical model, observation-blind: `observe` is a
/// no-op, so this reproduces the pre-PR-4 behaviour of every scheduler
/// exactly.
#[derive(Debug, Clone)]
pub struct Analytic {
    faas_case: AnalyticCase,
    iaas_case: AnalyticCase,
    /// Per-class epoch overrides (sampling-estimator calibration).
    epochs: [Option<f64>; JobClass::ALL.len()],
    /// Memoized `(workers, estimate)` per class: the prediction is a pure
    /// function of (class, workers), and `predict` sits on the simulator's
    /// per-admission hot path, so one slot per class covers the common
    /// single-width trace without re-running the piecewise model. Interior
    /// mutability keeps the `&self` trait signature.
    memo: std::cell::RefCell<[Option<(usize, Estimate)>; JobClass::ALL.len()]>,
}

impl Default for Analytic {
    fn default() -> Self {
        Self::new()
    }
}

impl Analytic {
    /// Priced with the default cases (S3-channel FaaS, t2.medium IaaS) —
    /// matches [`crate::sim::FleetConfig::default`].
    pub fn new() -> Self {
        Analytic {
            faas_case: AnalyticCase::faas_s3(),
            iaas_case: AnalyticCase::iaas_t2(),
            epochs: [None; JobClass::ALL.len()],
            memo: Default::default(),
        }
    }

    /// Priced with the fleet's own channel/pricing cases, so predictions
    /// price the same substrates the simulator charges.
    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        Analytic {
            faas_case: cfg.faas_case,
            iaas_case: cfg.iaas_case,
            epochs: [None; JobClass::ALL.len()],
            memo: Default::default(),
        }
    }

    /// Directly pin the epoch estimate for a class (builder style).
    pub fn with_epochs(mut self, class: JobClass, epochs: f64) -> Self {
        self.epochs[class as usize] = Some(epochs);
        self.memo.get_mut()[class as usize] = None;
        self
    }

    /// Epochs-to-threshold the prior assumes for `class`.
    pub fn epochs_for(&self, class: JobClass) -> f64 {
        self.epochs[class as usize].unwrap_or_else(|| class.default_epochs())
    }
}

impl Estimator for Analytic {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn predict(&self, job: &JobRequest) -> Estimate {
        let idx = job.class as usize;
        if let Some((w, e)) = self.memo.borrow()[idx] {
            if w == job.workers {
                return e;
            }
        }
        let mut p = job.class.profile();
        p.epochs = self.epochs_for(job.class);
        let w = job.workers;
        let t_faas = faas_time(&p, &self.faas_case, Scaling::Perfect, w).as_secs()
            - lml_analytic::constants::t_f().eval(w as f64);
        let c_faas = faas_cost(&p, &self.faas_case, Scaling::Perfect, w).as_usd();
        let t_iaas = iaas_time(&p, &self.iaas_case, Scaling::Perfect, w).as_secs()
            - lml_analytic::constants::t_i().eval(w as f64);
        // Warm-pool IaaS: bill the instances for the run, not the boot.
        let c_iaas = w as f64 * self.iaas_case.worker_price_per_s * t_iaas;
        let e = Estimate::point(t_faas, c_faas, t_iaas, c_iaas);
        self.memo.borrow_mut()[idx] = Some((w, e));
        e
    }

    fn observe(&mut self, _done: &CompletedJob) {}

    fn pin_epochs(&mut self, class: JobClass, epochs: f64) {
        self.epochs[class as usize] = Some(epochs);
        self.memo.get_mut()[class as usize] = None;
    }

    fn clone_box(&self) -> Box<dyn Estimator> {
        Box::new(self.clone())
    }
}

/// Learned per-(tenant, class, substrate) state.
#[derive(Debug, Clone, Copy)]
struct SubstrateStats {
    /// Observations folded in so far.
    n: u64,
    /// EWMA of observed whole epochs per job (learns zoo miscalibration).
    epochs: f64,
    /// EWMA of the per-epoch slowdown vs the prior *at the observed
    /// width* (learns spot inflation and channel error). Ratios — not
    /// absolute seconds — so a learned correction transfers across
    /// worker counts through the prior's own width scaling.
    epoch_ratio: f64,
    /// EWMA of |observed/prior − predicted/prior| runtime ratios — the
    /// relative spread behind the quantile-style margin.
    dev: f64,
    /// Calibrated multiplier on `dev` whose product is the
    /// [`ETA_QUANTILE`] margin. Adapted online (adaptive-conformal step:
    /// up by `lr·q` on every miss, down by `lr·(1−q)` on every cover), so
    /// empirical coverage converges to the target quantile regardless of
    /// the error distribution's shape.
    q_mult: f64,
    /// EWMA of the attributed-dollars ratio vs the prior (firm routes
    /// only).
    cost_ratio: f64,
    /// Firm-route observations behind `cost_ratio`. Spot completions
    /// deliberately never teach dollars, so blend weights for the *cost*
    /// posterior must count these, not `n` — a spot-heavy tenant's cost
    /// posterior is really still the seed.
    n_cost: u64,
    /// EWMA of observed startup seconds (cold-start draws, boots,
    /// restores).
    startup: f64,
}

/// Per-(tenant, class) stats, one slot per substrate. Spot observations
/// fold into the IaaS slot — spot runs on IaaS-class instances and its
/// preemption-inflated actuals are exactly what the model should learn.
#[derive(Debug, Clone, Copy, Default)]
struct ClassStats {
    faas: Option<SubstrateStats>,
    iaas: Option<SubstrateStats>,
}

impl ClassStats {
    fn slot(&self, route: Route) -> Option<SubstrateStats> {
        match route {
            Route::Faas => self.faas,
            Route::Iaas | Route::Spot => self.iaas,
        }
    }
}

/// Online estimator: per-(tenant, job-class) EWMAs over actual epoch
/// counts, per-epoch slowdown ratios, dollar ratios, and cold-start
/// draws, seeded from the analytic prior — with zero observations it
/// predicts exactly what [`Analytic`] would, so cold-start behaviour is
/// unchanged. Corrections are learned as *ratios against the prior*, so
/// they transfer across worker counts (a mixed-width trace doesn't see a
/// 10-wide job's absolute seconds quoted for a 100-wide one). Runtimes
/// learn from every route (spot's preemption-inflated actuals included);
/// dollars learn from firm routes only, since spot attributions carry the
/// market discount and would deflate the quoted reserved-pool price.
/// The cost posterior deliberately learns *attributed* dollars (startup
/// and checkpoint charges included) — what a tenant actually pays — so
/// even on a calibrated zoo it drifts a few percent above the prior's
/// run-only idealization; that gap is honest model error, and it shows
/// up as the analytic estimator's residual cost MAPE.
#[derive(Debug, Clone)]
pub struct Online {
    prior: Analytic,
    /// Weight each new observation gets in the EWMAs.
    pub alpha: f64,
    /// Deviations added on top of the mean runtime prediction — a cheap
    /// quantile blend; 0.0 (the default) predicts the mean.
    pub margin: f64,
    /// Target coverage of the calibrated quantile margin carried in
    /// [`Estimate::m_faas`]/[`Estimate::m_iaas`] (default
    /// [`ETA_QUANTILE`]).
    pub target_q: f64,
    /// Step size of the online coverage calibration.
    pub calib_lr: f64,
    state: TenantClassMap<ClassStats>,
}

/// Where the calibrated margin multiplier starts: ≈ the normal-theory
/// z₉₅/MAD ratio, so the very first margins are plausible before the
/// coverage feedback has anything to say.
const Q_MULT_SEED: f64 = 2.0;

impl Default for Online {
    fn default() -> Self {
        Self::new(Analytic::new())
    }
}

impl Online {
    pub fn new(prior: Analytic) -> Self {
        Online {
            prior,
            alpha: 0.3,
            margin: 0.0,
            target_q: ETA_QUANTILE,
            calib_lr: 0.25,
            state: TenantClassMap::new(),
        }
    }

    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        Self::new(Analytic::for_config(cfg))
    }

    /// Set the EWMA observation weight (0 < α ≤ 1).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Predict `mean + margin × deviation` instead of the mean — a
    /// conservative quantile-style runtime estimate.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be >= 0");
        self.margin = margin;
        self
    }

    /// Set the target coverage of the calibrated quantile margin
    /// (0.5 < q < 1).
    pub fn with_target_q(mut self, q: f64) -> Self {
        assert!(q > 0.5 && q < 1.0, "target quantile must be in (0.5, 1)");
        self.target_q = q;
        self
    }

    pub fn prior(&self) -> &Analytic {
        &self.prior
    }

    /// Observations folded in for (tenant, class) on the route's substrate.
    pub fn observations(&self, tenant: TenantId, class: JobClass, route: Route) -> u64 {
        self.state
            .get(tenant, class)
            .and_then(|cs| cs.slot(route))
            .map_or(0, |s| s.n)
    }

    /// Firm-route *cost* observations for (tenant, class) on the route's
    /// substrate — the honest sample size behind the cost posterior (spot
    /// completions never teach dollars).
    pub fn cost_observations(&self, tenant: TenantId, class: JobClass, route: Route) -> u64 {
        self.state
            .get(tenant, class)
            .and_then(|cs| cs.slot(route))
            .map_or(0, |s| s.n_cost)
    }
}

impl Estimator for Online {
    fn name(&self) -> &'static str {
        "online"
    }

    fn predict(&self, job: &JobRequest) -> Estimate {
        let mut e = self.prior.predict(job);
        if let Some(cs) = self.state.get(job.tenant, job.class) {
            let prior_epochs = self.prior.epochs_for(job.class).max(1.0);
            // The raw margin `dev × q_mult` is calibrated at `target_q`;
            // the `Estimate` field contract stores margins in the
            // ETA_QUANTILE (P95) convention, so rescale through the same
            // z-ratio `eta_q` reads back with — `eta_q(route, target_q)`
            // then returns exactly the calibrated cover point, whatever
            // the target. The factor is 1.0 at the default target.
            let to_p95 = z_score(ETA_QUANTILE) / z_score(self.target_q);
            // Learned corrections apply multiplicatively to the prior at
            // *this* job's width: epoch-count ratio × per-epoch slowdown,
            // plus the margin's share of the relative spread. The quantile
            // margin is the calibrated multiple of the spread, scaled back
            // into seconds through the prior at this width.
            let correct = |t: &mut f64, c: &mut f64, m: &mut f64, s: &SubstrateStats| {
                let t_prior = *t;
                *t = t_prior * (s.epochs / prior_epochs * s.epoch_ratio + self.margin * s.dev);
                *c *= s.cost_ratio;
                *m = (t_prior * s.dev * s.q_mult * to_p95).max(0.0);
            };
            if let Some(s) = cs.faas {
                correct(&mut e.t_faas, &mut e.c_faas, &mut e.m_faas, &s);
            }
            if let Some(s) = cs.iaas {
                correct(&mut e.t_iaas, &mut e.c_iaas, &mut e.m_iaas, &s);
            }
        }
        e
    }

    fn observe(&mut self, done: &CompletedJob) {
        // The prior's view at the observed width normalizes every
        // observation into ratios (tenant and submit time don't enter the
        // analytic model).
        let probe = JobRequest::new(done.id, done.class, SimTime::ZERO, done.workers);
        let p = self.prior.predict(&probe);
        let prior_epochs = self.prior.epochs_for(done.class).max(1.0);
        let t_prior = p.time(done.route).max(f64::MIN_POSITIVE);
        let c_prior = p.cost(done.route).max(f64::MIN_POSITIVE);
        let entry = self
            .state
            .get_or_insert_with(done.tenant, done.class, ClassStats::default);
        let slot = match done.route {
            Route::Faas => &mut entry.faas,
            Route::Iaas | Route::Spot => &mut entry.iaas,
        };
        let s = slot.get_or_insert(SubstrateStats {
            n: 0,
            epochs: prior_epochs,
            epoch_ratio: 1.0,
            dev: 0.0,
            q_mult: Q_MULT_SEED,
            cost_ratio: 1.0,
            n_cost: 0,
            // There is no analytic prior for startup: the first cold-start
            // draw seeds the EWMA directly.
            startup: done.startup.as_secs(),
        });
        let a = self.alpha;
        let epochs_obs = done.epochs_total.max(1) as f64;
        let rel_obs = done.run.as_secs() / t_prior;
        let rel_prev = s.epochs / prior_epochs * s.epoch_ratio;
        // Coverage feedback first, against the quantile this state was
        // predicting *before* the observation teaches it — the mean
        // correction (including the legacy `margin` blend, which predict()
        // folds into the mean) plus the calibrated margin, i.e. exactly
        // the `eta_q` this state was publishing. Step the multiplier up on
        // a miss, down on a cover, so the long-run cover rate converges to
        // `target_q` (adaptive conformal — distribution-free).
        let covered = rel_obs <= rel_prev + (self.margin + s.q_mult) * s.dev;
        let step = if covered {
            self.target_q - 1.0
        } else {
            self.target_q
        };
        s.q_mult = (s.q_mult + self.calib_lr * step).max(0.0);
        s.dev = (1.0 - a) * s.dev + a * (rel_obs - rel_prev).abs();
        s.epochs = (1.0 - a) * s.epochs + a * epochs_obs;
        // Per-epoch slowdown: how much longer one epoch really took than
        // the prior said it would (at this width).
        let ratio_obs = rel_obs * prior_epochs / epochs_obs;
        s.epoch_ratio = (1.0 - a) * s.epoch_ratio + a * ratio_obs;
        // Spot attributions carry the market discount (and restart
        // settlements): folding them into the cost EWMA would deflate the
        // price quoted for the full-price reserved pool, so only firm
        // routes teach dollars. Runtimes learn from every route — spot's
        // preemption-inflated actuals are exactly the signal wanted.
        if done.route != Route::Spot {
            s.cost_ratio = (1.0 - a) * s.cost_ratio + a * done.cost.as_usd() / c_prior;
            s.n_cost += 1;
        }
        if s.n > 0 {
            s.startup = (1.0 - a) * s.startup + a * done.startup.as_secs();
        }
        s.n += 1;
    }

    fn startup_hint(&self, job: &JobRequest, route: Route) -> Option<SimTime> {
        self.state
            .get(job.tenant, job.class)
            .and_then(|cs| cs.slot(route))
            .map(|s| SimTime::secs(s.startup))
    }

    fn pin_epochs(&mut self, class: JobClass, epochs: f64) {
        self.prior.pin_epochs(class, epochs);
    }

    fn clone_box(&self) -> Box<dyn Estimator> {
        Box::new(self.clone())
    }
}

/// Hybrid estimator: analytic prior morphing into the online posterior as
/// observations accumulate. Each substrate's prediction is the linear
/// blend `(1 − w) × prior + w × online` with `w = n / (n + prior_weight)`,
/// so a handful of noisy completions can't yank routing around, but a
/// sustained miscalibration is eventually fully corrected.
#[derive(Debug, Clone)]
pub struct Hybrid {
    online: Online,
    /// Observation count at which the online posterior carries half the
    /// weight.
    pub prior_weight: f64,
}

impl Default for Hybrid {
    fn default() -> Self {
        Self::new(Analytic::new())
    }
}

impl Hybrid {
    pub fn new(prior: Analytic) -> Self {
        Hybrid {
            online: Online::new(prior),
            prior_weight: 4.0,
        }
    }

    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        Self::new(Analytic::for_config(cfg))
    }

    /// Observations needed before the online posterior carries half the
    /// weight (must be > 0).
    pub fn with_prior_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0, "prior weight must be > 0");
        self.prior_weight = w;
        self
    }

    fn weight(&self, tenant: TenantId, class: JobClass, route: Route) -> f64 {
        let n = self.online.observations(tenant, class, route) as f64;
        n / (n + self.prior_weight)
    }

    /// Blend weight for the *cost* posterior: counts firm-route cost
    /// observations only. `Online::observe` deliberately never teaches
    /// `cost_ratio` from spot completions, so counting those toward the
    /// cost lerp would present the stale seed with full posterior
    /// confidence for spot-heavy tenants.
    fn cost_weight(&self, tenant: TenantId, class: JobClass, route: Route) -> f64 {
        let n = self.online.cost_observations(tenant, class, route) as f64;
        n / (n + self.prior_weight)
    }
}

fn lerp(a: f64, b: f64, w: f64) -> f64 {
    a + (b - a) * w
}

impl Estimator for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn predict(&self, job: &JobRequest) -> Estimate {
        let prior = self.online.prior().predict(job);
        let post = self.online.predict(job);
        let wf = self.weight(job.tenant, job.class, Route::Faas);
        let wi = self.weight(job.tenant, job.class, Route::Iaas);
        let wcf = self.cost_weight(job.tenant, job.class, Route::Faas);
        let wci = self.cost_weight(job.tenant, job.class, Route::Iaas);
        let t_faas = lerp(prior.t_faas, post.t_faas, wf);
        let t_iaas = lerp(prior.t_iaas, post.t_iaas, wi);
        Estimate {
            t_faas,
            c_faas: lerp(prior.c_faas, post.c_faas, wcf),
            t_iaas,
            c_iaas: lerp(prior.c_iaas, post.c_iaas, wci),
            // The calibration loop lives in the posterior: its coverage
            // feedback tracks `post.t + post.m`. The blend's quantile ETA
            // must reach that same calibrated point at *every* quantile,
            // however far the prior drags the blended mean — so the mean
            // gap travels in the quantile-invariant shift (displacement)
            // while the posterior's spread stays z-rescalable, and
            // `eta_q(route, q)` lands exactly on `post.t + post.m·z-ratio`.
            // The shift is clamped at zero: a pessimistic prior already
            // over-covers. Cold start: post == prior, shift and margin 0.
            m_faas: post.m_faas,
            m_iaas: post.m_iaas,
            s_faas: (post.t_faas - t_faas).max(0.0),
            s_iaas: (post.t_iaas - t_iaas).max(0.0),
        }
    }

    fn observe(&mut self, done: &CompletedJob) {
        self.online.observe(done);
    }

    fn startup_hint(&self, job: &JobRequest, route: Route) -> Option<SimTime> {
        self.online.startup_hint(job, route)
    }

    fn pin_epochs(&mut self, class: JobClass, epochs: f64) {
        self.online.pin_epochs(class, epochs);
    }

    fn clone_box(&self) -> Box<dyn Estimator> {
        Box::new(self.clone())
    }
}

/// One spot attempt's outcome, fed back to the scheduler by the simulator
/// the moment the market settles it — on `SpotPreempted` *and* on
/// `SpotDone`, so the learned preemption rate is exposure-weighted rather
/// than a count of disasters.
#[derive(Debug, Clone, Copy)]
pub struct PreemptionObs {
    pub class: JobClass,
    pub tenant: TenantId,
    pub workers: usize,
    /// Wall-seconds the spot cluster was held this attempt (boot, restore
    /// and run — instances are reclaimable in every phase).
    pub held: SimTime,
    /// `true` if the market reclaimed the cluster, `false` if the attempt
    /// ran to completion.
    pub preempted: bool,
}

/// Learned per-(tenant, class) spot preemption rates.
///
/// The market preempts each instance independently at some rate λ
/// (exponential lifetimes — see [`crate::platform::SpotTier`]), so the
/// sufficient statistics per key are (preemption events, held
/// instance-seconds of exposure). The posterior is Gamma–Poisson: the
/// configured mean time to preempt enters as `prior_weight` pseudo-events
/// spread over `prior_weight × mttp` pseudo-exposure, so **zero
/// observations reproduce the static config exactly** and sustained
/// evidence overturns it. [`RiskModel::frozen`] pins the posterior at the
/// prior — the static-mean baseline the risk-aware admission is measured
/// against.
#[derive(Debug, Clone)]
pub struct RiskModel {
    /// Configured per-instance mean time to preempt — the zero-observation
    /// prior.
    prior_mttp: SimTime,
    /// Pseudo-events the prior is worth: how much evidence it takes for
    /// the posterior to carry half the weight.
    pub prior_weight: f64,
    /// Learning disabled: the posterior never moves off the prior.
    frozen: bool,
    state: TenantClassMap<RateStats>,
}

#[derive(Debug, Clone, Copy, Default)]
struct RateStats {
    /// Spot attempts observed (preempted or clean).
    attempts: u64,
    /// Preemption events.
    events: f64,
    /// Held instance-seconds across all observed attempts.
    exposure: f64,
}

impl RiskModel {
    /// Posterior seeded from a per-instance mean time to preempt.
    pub fn new(prior_mttp: SimTime) -> Self {
        assert!(
            prior_mttp.as_secs() > 0.0,
            "prior mean time to preempt must be positive"
        );
        RiskModel {
            prior_mttp,
            prior_weight: 4.0,
            frozen: false,
            state: TenantClassMap::new(),
        }
    }

    /// Posterior seeded from a per-instance preemption rate λ (events per
    /// instance-second) instead of its inverse.
    pub fn from_rate(rate_per_instance_s: f64) -> Self {
        assert!(
            rate_per_instance_s > 0.0 && rate_per_instance_s.is_finite(),
            "preemption rate must be positive and finite"
        );
        Self::new(SimTime::secs(1.0 / rate_per_instance_s))
    }

    /// Seeded from the fleet's spot configuration — the prior is exactly
    /// the tier's advertised exponential-clock parameter
    /// ([`SpotConfig::preemption_rate_per_instance_s`]), so an unobserved
    /// posterior and the simulated market speak the same λ.
    pub fn for_config(cfg: &SpotConfig) -> Self {
        Self::from_rate(cfg.preemption_rate_per_instance_s())
    }

    /// Pseudo-events the prior is worth (must be > 0).
    pub fn with_prior_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0, "prior weight must be > 0");
        self.prior_weight = w;
        self
    }

    /// Freeze the posterior at the configured prior — the static-mean
    /// baseline (observations are still counted, never weighed).
    pub fn frozen(mut self) -> Self {
        self.frozen = true;
        self
    }

    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Fold in one spot attempt outcome.
    pub fn observe(&mut self, obs: &PreemptionObs) {
        let s = self
            .state
            .get_or_insert_with(obs.tenant, obs.class, RateStats::default);
        s.attempts += 1;
        s.exposure += obs.workers as f64 * obs.held.as_secs();
        if obs.preempted {
            s.events += 1.0;
        }
    }

    /// Spot attempts observed for (tenant, class).
    pub fn observations(&self, tenant: TenantId, class: JobClass) -> u64 {
        self.state.get(tenant, class).map_or(0, |s| s.attempts)
    }

    /// Posterior mean preemption rate per instance-second for
    /// (tenant, class). At zero observations (or frozen) this is exactly
    /// `1 / prior_mttp`.
    pub fn rate(&self, tenant: TenantId, class: JobClass) -> f64 {
        let (events, exposure) = if self.frozen {
            (0.0, 0.0)
        } else {
            self.state
                .get(tenant, class)
                .map_or((0.0, 0.0), |s| (s.events, s.exposure))
        };
        (self.prior_weight + events) / (self.prior_weight * self.prior_mttp.as_secs() + exposure)
    }

    /// Posterior mean per-instance time to preempt for (tenant, class).
    pub fn mean_time_to_preempt(&self, tenant: TenantId, class: JobClass) -> SimTime {
        SimTime::secs(1.0 / self.rate(tenant, class))
    }

    /// Expected preemptions a `workers`-wide job accumulates over
    /// `wall_secs` of held time: the cluster dies at `workers × λ` (first
    /// instance reclaimed kills the attempt).
    pub fn expected_preemptions(
        &self,
        tenant: TenantId,
        class: JobClass,
        workers: usize,
        wall_secs: f64,
    ) -> f64 {
        self.rate(tenant, class) * workers as f64 * wall_secs.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(class: JobClass) -> JobRequest {
        JobRequest::new(0, class, SimTime::ZERO, class.default_workers())
    }

    fn done_after(class: JobClass, run_secs: f64, route: Route) -> CompletedJob {
        CompletedJob {
            id: 0,
            class,
            tenant: 0,
            route,
            workers: class.default_workers(),
            run: SimTime::secs(run_secs),
            startup: SimTime::secs(5.0),
            cost: Cost::usd(0.2),
            epochs_total: class.epoch_count(),
            preemptions: 0,
        }
    }

    #[test]
    fn estimate_indexes_by_route() {
        let e = Estimate {
            t_faas: 1.0,
            c_faas: 2.0,
            t_iaas: 3.0,
            c_iaas: 4.0,
            m_faas: 0.5,
            m_iaas: 1.5,
            s_faas: 0.2,
            s_iaas: 0.7,
        };
        assert_eq!(e.time(Route::Faas), 1.0);
        assert_eq!(e.cost(Route::Faas), 2.0);
        assert_eq!(e.time(Route::Iaas), 3.0);
        assert_eq!(e.time(Route::Spot), 3.0, "spot shares the IaaS numbers");
        assert_eq!(e.cost(Route::Spot), 4.0);
        assert_eq!(e.margin(Route::Spot), 1.5, "spot shares the IaaS margin");
        assert_eq!(e.shift(Route::Spot), 0.7, "spot shares the IaaS shift");
    }

    #[test]
    fn eta_q_prices_the_tail_above_the_mean() {
        let e = Estimate {
            t_faas: 10.0,
            c_faas: 1.0,
            t_iaas: 20.0,
            c_iaas: 1.0,
            m_faas: 2.0,
            m_iaas: 4.0,
            s_faas: 0.0,
            s_iaas: 1.0,
        };
        // At the calibration point the margin applies verbatim (plus any
        // quantile-invariant shift).
        assert!((e.eta_p95(Route::Faas) - 12.0).abs() < 1e-12);
        assert!((e.eta_q(Route::Iaas, ETA_QUANTILE) - 25.0).abs() < 1e-12);
        // Monotone in q; the median collapses to the mean.
        assert_eq!(e.eta_q(Route::Iaas, 0.5), 20.0);
        assert!(e.eta_q(Route::Iaas, 0.99) > e.eta_p95(Route::Iaas));
        assert!(e.eta_q(Route::Iaas, 0.9) < e.eta_p95(Route::Iaas));
        assert!(e.eta_q(Route::Iaas, 0.9) > e.time(Route::Iaas));
        // The shift is a displacement, not a dispersion: it survives the
        // z-rescaling untouched (the spread alone shrinks toward P50).
        let spread_90 = e.eta_q(Route::Iaas, 0.9) - 20.0 - 1.0;
        assert!(spread_90 < 4.0 && spread_90 > 0.0);
        // A spread-free estimate's quantile ETA is the mean at every q.
        let p = Estimate::point(10.0, 1.0, 20.0, 1.0);
        assert_eq!(p.eta_q(Route::Faas, 0.99), 10.0);
    }

    #[test]
    fn z_score_matches_known_quantiles() {
        for (q, z) in [(0.95, 1.6449), (0.975, 1.9600), (0.5, 0.0), (0.99, 2.3263)] {
            assert!(
                (z_score(q) - z).abs() < 1e-3,
                "z({q}) = {} want {z}",
                z_score(q)
            );
        }
        assert!((z_score(0.05) + z_score(0.95)).abs() < 1e-6, "symmetric");
        assert!(z_score(0.01) < -2.0, "lower tail");
    }

    #[test]
    fn online_quantile_margin_calibrates_coverage() {
        // Deterministic 2×-miscalibrated actuals: the EWMA mean approaches
        // from below forever, so without a calibrated margin the P95 ETA
        // would *never* cover. The adaptive multiplier must close the gap.
        let mut online = Online::new(Analytic::new());
        let j = job(JobClass::LrHiggs);
        let actual = online.predict(&j).t_iaas * 2.0;
        let (mut covered, mut seen) = (0, 0);
        for k in 0..60 {
            let e = online.predict(&j);
            if k >= 10 {
                seen += 1;
                if actual <= e.eta_p95(Route::Iaas) + 1e-9 {
                    covered += 1;
                }
            }
            online.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
        }
        let coverage = covered as f64 / seen as f64;
        assert!(
            coverage >= 0.9,
            "calibrated P95 must cover ≥ 90% after warm-up, got {coverage}"
        );
        // The margin is honest work, not a blanket: it stays well under
        // the mean correction itself once converged.
        let e = online.predict(&j);
        assert!(e.m_iaas > 0.0);
        assert!(
            e.m_iaas < e.t_iaas,
            "margin {} vs mean {}",
            e.m_iaas,
            e.t_iaas
        );
    }

    #[test]
    fn off_default_target_q_round_trips_through_eta_q() {
        // An estimator calibrating P80 must publish its margin so that
        // `eta_q(route, 0.8)` returns the *calibrated* cover point — not
        // the P95-convention margin shrunk by z(0.8)/z(0.95) a second
        // time. After exactly one 2× observation the raw P80 margin is
        // computable by hand: dev = α·|2−1| = 0.3 and q_mult stepped once
        // from its seed on a miss (2.0 + lr·q = 2.2), both scaled by the
        // prior runtime.
        let j = job(JobClass::LrHiggs);
        let prior_t = Analytic::new().predict(&j).t_iaas;
        let mut o = Online::new(Analytic::new()).with_target_q(0.8);
        o.observe(&done_after(JobClass::LrHiggs, prior_t * 2.0, Route::Iaas));
        let e = o.predict(&j);
        let raw_margin = prior_t * 0.3 * (2.0 + 0.25 * 0.8);
        assert!(
            (e.eta_q(Route::Iaas, 0.8) - (e.t_iaas + raw_margin)).abs() < 1e-9,
            "eta_q at the calibration target must return the calibrated point: {} vs {}",
            e.eta_q(Route::Iaas, 0.8),
            e.t_iaas + raw_margin
        );
        // Stored in the P95 convention: the field itself is the raw
        // margin stretched by z(0.95)/z(0.8).
        assert!(
            e.m_iaas > raw_margin,
            "P95 convention stretches a P80 margin"
        );
    }

    #[test]
    fn hybrid_quantile_eta_reaches_the_calibrated_posterior() {
        // The blend's mean is dragged toward a 2×-optimistic prior, but
        // its published quantile ETA must still reach the posterior's
        // calibrated cover point — otherwise the blend's "P95" sits below
        // the truth and covers nothing.
        let mut hybrid = Hybrid::new(Analytic::new()).with_prior_weight(4.0);
        let j = job(JobClass::LrHiggs);
        let actual = hybrid.predict(&j).t_iaas * 2.0;
        for _ in 0..12 {
            hybrid.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
        }
        let e = hybrid.predict(&j);
        let post = {
            let mut online = Online::new(Analytic::new());
            for _ in 0..12 {
                online.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
            }
            online.predict(&j)
        };
        assert!(
            e.t_iaas < post.eta_p95(Route::Iaas),
            "premise: the prior drags the mean"
        );
        // At every quantile above the median — not just the calibration
        // point — the blend lands on the posterior's calibrated ETA: the
        // mean gap rides the un-rescaled shift, the spread alone rescales.
        for q in [0.8, 0.9, ETA_QUANTILE, 0.99] {
            assert!(
                (e.eta_q(Route::Iaas, q) - post.eta_q(Route::Iaas, q)).abs() < 1e-9,
                "blend quantile at {q}: {} must reach the calibrated posterior {}",
                e.eta_q(Route::Iaas, q),
                post.eta_q(Route::Iaas, q)
            );
        }
        // Cold start still publishes no margin and no shift.
        let unseen = job(JobClass::RnCifar);
        assert_eq!(hybrid.predict(&unseen).m_iaas, 0.0);
        assert_eq!(hybrid.predict(&unseen).s_iaas, 0.0);
    }

    #[test]
    fn hybrid_cost_blend_ignores_spot_completions() {
        // 30 spot completions teach runtimes but not dollars: the hybrid
        // runtime prediction must move while the cost prediction stays the
        // pure prior (the seed is all the cost evidence there is).
        let mut hybrid = Hybrid::new(Analytic::new()).with_prior_weight(4.0);
        let j = job(JobClass::LrHiggs);
        let prior = Analytic::new().predict(&j);
        for _ in 0..30 {
            hybrid.observe(&done_after(
                JobClass::LrHiggs,
                prior.t_iaas * 3.0,
                Route::Spot,
            ));
        }
        let e = hybrid.predict(&j);
        assert!(e.t_iaas > prior.t_iaas * 2.0, "runtime posterior moved");
        assert_eq!(
            e.c_iaas, prior.c_iaas,
            "spot-only evidence must leave the cost at the prior"
        );
        // A firm completion starts moving the cost blend again.
        hybrid.observe(&done_after(JobClass::LrHiggs, prior.t_iaas, Route::Iaas));
        assert_ne!(hybrid.predict(&j).c_iaas, prior.c_iaas);
    }

    #[test]
    fn risk_model_zero_observations_reproduce_the_config() {
        let r = RiskModel::new(SimTime::secs(1_000.0));
        assert_eq!(
            r.mean_time_to_preempt(0, JobClass::LrHiggs),
            SimTime::secs(1_000.0)
        );
        assert!((r.rate(0, JobClass::LrHiggs) - 1e-3).abs() < 1e-15);
        // A 10-wide job over 50 wall-seconds: 500 instance-seconds at
        // λ = 1/1000 → 0.5 expected preemptions.
        assert!((r.expected_preemptions(0, JobClass::LrHiggs, 10, 50.0) - 0.5).abs() < 1e-12);
        assert_eq!(r.observations(0, JobClass::LrHiggs), 0);
    }

    #[test]
    fn risk_model_posterior_overturns_a_wrong_prior() {
        // Config says instances live 4 000 s; the observed market kills a
        // 10-wide cluster every ~100 s (true per-instance mttp 1 000 s).
        let mut r = RiskModel::new(SimTime::secs(4_000.0)).with_prior_weight(4.0);
        for _ in 0..40 {
            r.observe(&PreemptionObs {
                class: JobClass::LrHiggs,
                tenant: 0,
                workers: 10,
                held: SimTime::secs(100.0),
                preempted: true,
            });
        }
        let mttp = r.mean_time_to_preempt(0, JobClass::LrHiggs).as_secs();
        assert!(
            (900.0..1_400.0).contains(&mttp),
            "posterior must converge toward the true 1 000 s, got {mttp}"
        );
        // State is per-(tenant, class).
        assert_eq!(
            r.mean_time_to_preempt(1, JobClass::LrHiggs),
            SimTime::secs(4_000.0)
        );
        assert_eq!(r.observations(0, JobClass::LrHiggs), 40);
    }

    #[test]
    fn risk_model_clean_attempts_pull_the_rate_down() {
        // A benign market observed through clean completions only: the
        // posterior rate must drop below an alarmist prior.
        let mut r = RiskModel::new(SimTime::secs(100.0)).with_prior_weight(2.0);
        for _ in 0..20 {
            r.observe(&PreemptionObs {
                class: JobClass::KmHiggs,
                tenant: 3,
                workers: 10,
                held: SimTime::secs(200.0),
                preempted: false,
            });
        }
        assert!(
            r.mean_time_to_preempt(3, JobClass::KmHiggs) > SimTime::secs(1_000.0),
            "exposure without events must stretch the learned mttp"
        );
    }

    #[test]
    fn frozen_risk_model_never_learns() {
        let mut r = RiskModel::new(SimTime::secs(500.0)).frozen();
        assert!(r.is_frozen());
        for _ in 0..50 {
            r.observe(&PreemptionObs {
                class: JobClass::LrHiggs,
                tenant: 0,
                workers: 10,
                held: SimTime::secs(10.0),
                preempted: true,
            });
        }
        assert_eq!(
            r.mean_time_to_preempt(0, JobClass::LrHiggs),
            SimTime::secs(500.0),
            "the static-mean baseline keeps quoting the config"
        );
        assert_eq!(r.observations(0, JobClass::LrHiggs), 50, "still counted");
    }

    #[test]
    fn analytic_matches_deep_vs_convex_ordering() {
        let a = Analytic::new();
        let deep = a.predict(&job(JobClass::RnCifar));
        let convex = a.predict(&job(JobClass::LrHiggs));
        // The paper's §5.2 headline: deep communication-bound jobs are far
        // slower on FaaS than on IaaS; convex jobs are competitive.
        assert!(deep.t_faas > deep.t_iaas * 3.0);
        assert!(convex.t_faas > 0.0 && convex.t_iaas > 0.0);
        assert!(convex.c_faas > 0.0 && convex.c_iaas > 0.0);
    }

    #[test]
    fn analytic_pin_epochs_scales_runtime() {
        let base = Analytic::new();
        let mut pinned = Analytic::new();
        pinned.pin_epochs(JobClass::LrHiggs, JobClass::LrHiggs.default_epochs() * 10.0);
        let j = job(JobClass::LrHiggs);
        assert!(pinned.predict(&j).t_faas > base.predict(&j).t_faas * 5.0);
        assert_eq!(
            Analytic::new()
                .with_epochs(JobClass::LrHiggs, 60.0)
                .epochs_for(JobClass::LrHiggs),
            60.0
        );
    }

    #[test]
    fn online_cold_start_equals_analytic_prior() {
        let online = Online::new(Analytic::new());
        let a = Analytic::new();
        for class in JobClass::ALL {
            let j = job(class);
            assert_eq!(online.predict(&j), a.predict(&j), "{class:?}");
            assert_eq!(online.startup_hint(&j, Route::Faas), None);
        }
    }

    #[test]
    fn online_converges_to_observed_runtime() {
        let mut online = Online::new(Analytic::new());
        let j = job(JobClass::LrHiggs);
        let prior_t = online.predict(&j).t_iaas;
        let actual = prior_t * 2.0; // the zoo is miscalibrated ×2
        for _ in 0..40 {
            online.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
        }
        let t = online.predict(&j).t_iaas;
        assert!(
            (t - actual).abs() / actual < 0.02,
            "EWMA must converge: predicted {t}, actual {actual}"
        );
        // The FaaS side is untouched by IaaS observations.
        assert_eq!(online.predict(&j).t_faas, online.prior().predict(&j).t_faas);
        assert_eq!(online.observations(0, JobClass::LrHiggs, Route::Iaas), 40);
        assert_eq!(online.observations(0, JobClass::LrHiggs, Route::Faas), 0);
    }

    #[test]
    fn online_learns_per_tenant_and_cold_start_draws() {
        let mut online = Online::new(Analytic::new());
        let mut d = done_after(JobClass::SvmRcv1, 100.0, Route::Faas);
        d.tenant = 3;
        online.observe(&d);
        let mut j = job(JobClass::SvmRcv1);
        j.tenant = 3;
        assert_eq!(
            online.startup_hint(&j, Route::Faas),
            Some(SimTime::secs(5.0)),
            "first draw seeds the startup EWMA"
        );
        j.tenant = 0;
        assert_eq!(
            online.startup_hint(&j, Route::Faas),
            None,
            "state is per-tenant"
        );
    }

    #[test]
    fn online_margin_is_conservative_under_noise() {
        let base = Online::new(Analytic::new());
        let mut plain = base.clone();
        let mut wide = base.with_margin(1.0);
        let j = job(JobClass::KmHiggs);
        let prior_t = plain.predict(&j).t_iaas;
        for k in 0..20 {
            // Alternate fast/slow actuals: the mean is ~prior, the spread
            // is large.
            let run = if k % 2 == 0 {
                prior_t * 0.5
            } else {
                prior_t * 1.5
            };
            let d = done_after(JobClass::KmHiggs, run, Route::Iaas);
            plain.observe(&d);
            wide.observe(&d);
        }
        assert!(
            wide.predict(&j).t_iaas > plain.predict(&j).t_iaas,
            "margin must add spread on top of the mean"
        );
    }

    #[test]
    fn spot_observations_fold_into_the_iaas_slot() {
        let mut online = Online::new(Analytic::new());
        let j = job(JobClass::LrHiggs);
        let prior_t = online.predict(&j).t_iaas;
        // Spot actuals are preemption-inflated: 3× the prior.
        for _ in 0..30 {
            online.observe(&done_after(JobClass::LrHiggs, prior_t * 3.0, Route::Spot));
        }
        assert!(online.predict(&j).t_iaas > prior_t * 2.0);
        assert_eq!(online.observations(0, JobClass::LrHiggs, Route::Spot), 30);
    }

    #[test]
    fn learned_corrections_transfer_across_worker_counts() {
        // Observe a 2× slowdown at width 10; a 100-wide job of the same
        // class must get the same *relative* correction on top of the
        // prior's own width scaling — not the 10-wide job's absolute
        // seconds.
        let mut online = Online::new(Analytic::new());
        let narrow = job(JobClass::LrHiggs); // default 10 workers
        let mut wide = narrow;
        wide.workers = 100;
        let prior = Analytic::new();
        let (pn, pw) = (prior.predict(&narrow), prior.predict(&wide));
        assert_ne!(pn.t_iaas, pw.t_iaas, "premise: the prior is width-aware");
        for _ in 0..30 {
            online.observe(&done_after(JobClass::LrHiggs, pn.t_iaas * 2.0, Route::Iaas));
        }
        let (en, ew) = (online.predict(&narrow), online.predict(&wide));
        let (rn, rw) = (en.t_iaas / pn.t_iaas, ew.t_iaas / pw.t_iaas);
        assert!((rn - 2.0).abs() < 0.05, "narrow correction converged: {rn}");
        assert!(
            (rn - rw).abs() < 1e-9,
            "the relative correction is width-invariant: {rn} vs {rw}"
        );
        assert!((en.c_iaas / pn.c_iaas - ew.c_iaas / pw.c_iaas).abs() < 1e-9);
    }

    #[test]
    fn hybrid_moves_from_prior_to_posterior() {
        let mut hybrid = Hybrid::new(Analytic::new()).with_prior_weight(4.0);
        let j = job(JobClass::LrHiggs);
        let prior_t = hybrid.predict(&j).t_iaas;
        let actual = prior_t * 2.0;
        let mut last = prior_t;
        for k in 1..=30 {
            hybrid.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
            let t = hybrid.predict(&j).t_iaas;
            assert!(
                t >= last - 1e-9,
                "step {k}: prediction must move monotonically toward the actual"
            );
            last = t;
        }
        assert!(
            (last - actual).abs() / actual < 0.15,
            "after 30 observations the posterior dominates: {last} vs {actual}"
        );
        // An unseen class still predicts the pure prior.
        let unseen = job(JobClass::RnCifar);
        assert_eq!(
            hybrid.predict(&unseen),
            Analytic::new().predict(&unseen),
            "cold start unchanged"
        );
    }

    #[test]
    fn boxed_estimators_clone() {
        let mut online = Online::new(Analytic::new());
        online.observe(&done_after(JobClass::LrHiggs, 500.0, Route::Iaas));
        let boxed: Box<dyn Estimator> = Box::new(online);
        let copy = boxed.clone();
        let j = job(JobClass::LrHiggs);
        assert_eq!(boxed.predict(&j), copy.predict(&j));
        assert_eq!(copy.name(), "online");
        assert_eq!(Hybrid::default().name(), "hybrid");
        assert_eq!(Analytic::new().name(), "analytic");
    }
}
