//! The prediction layer: a pluggable [`Estimator`] behind every
//! model-driven scheduling policy.
//!
//! Until PR 4 each scheduler trusted the paper's §5.3 analytical model
//! blindly, through a private `(f64, f64, f64, f64)` tuple helper. This
//! module makes prediction a first-class subsystem with a feedback loop:
//!
//! * [`Estimate`] — the named (runtime, cost) × (FaaS, IaaS) quadruple the
//!   tuple used to smuggle around;
//! * [`Estimator`] — `predict(&JobRequest) -> Estimate` consumed by the
//!   routers, plus `observe(&CompletedJob)` fed by the simulator on every
//!   `Done` lifecycle transition (preempted/resumed attempts included, so
//!   an online model learns spot-inflated runtimes);
//! * [`Analytic`] — the §5.3 model verbatim (extracted from
//!   `scheduler.rs`), observation-blind;
//! * [`Online`] — a per-(tenant, job-class) EWMA/deviation blend over
//!   actual epoch times, dollars, and cold-start draws, seeded from the
//!   analytic prior so cold-start behaviour is unchanged;
//! * [`Hybrid`] — analytic prior morphing into the online posterior as
//!   observations accumulate (`n / (n + prior_weight)` weighting).
//!
//! The point: the fleet simulator can now study what happens when the
//! model is *wrong* (set [`crate::sim::FleetConfig::epoch_scale`] to
//! perturb the actual epoch counts away from the prior) — the scenario
//! real fleets live in.

use crate::job::{JobClass, JobRequest, TenantId};
use crate::scheduler::Route;
use lml_analytic::estimator::estimate_epochs;
use lml_analytic::model::{faas_cost, faas_time, iaas_time, AnalyticCase, Scaling};
use lml_sim::{Cost, SimTime};
use std::collections::BTreeMap;

/// Runtime/cost estimates for one job on both firm substrates, startup
/// excluded (the fleet charges the actual simulated startup). Replaces the
/// anonymous `(t_faas, c_faas, t_iaas, c_iaas)` tuple every policy used to
/// carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Predicted run seconds on FaaS (data loading + training).
    pub t_faas: f64,
    /// Predicted FaaS dollars (GB-second billing of the execution).
    pub c_faas: f64,
    /// Predicted run seconds on booted IaaS instances.
    pub t_iaas: f64,
    /// Predicted IaaS dollars (instance-seconds for the run).
    pub c_iaas: f64,
}

impl Estimate {
    /// Predicted run seconds on the given route (spot runs on IaaS-class
    /// instances, so it shares the IaaS prediction).
    pub fn time(&self, route: Route) -> f64 {
        match route {
            Route::Faas => self.t_faas,
            Route::Iaas | Route::Spot => self.t_iaas,
        }
    }

    /// Predicted dollars on the given route.
    pub fn cost(&self, route: Route) -> f64 {
        match route {
            Route::Faas => self.c_faas,
            Route::Iaas | Route::Spot => self.c_iaas,
        }
    }
}

/// Actuals of one finished job, fed back to the estimator by the simulator
/// the moment the job's lifecycle reaches `Done`.
#[derive(Debug, Clone, Copy)]
pub struct CompletedJob {
    pub id: u64,
    pub class: JobClass,
    pub tenant: TenantId,
    /// Route the scheduler chose (spot jobs keep `Spot` even after a pool
    /// fallback).
    pub route: Route,
    pub workers: usize,
    /// Actual training seconds — including epochs redone after spot
    /// preemptions, so online models learn spot-inflated runtimes.
    pub run: SimTime,
    /// Actual fleet startup: cold/warm starts, dispatch, boots and
    /// restores (including boots lost to preemption).
    pub startup: SimTime,
    /// Dollars attributed to the job.
    pub cost: Cost,
    /// Whole epochs the job needed (actual, i.e. after any zoo
    /// miscalibration).
    pub epochs_total: u32,
    pub preemptions: u32,
}

/// A runtime/cost prediction model with a closed observation loop.
pub trait Estimator: std::fmt::Debug {
    fn name(&self) -> &'static str;
    /// Predict run seconds and dollars on both substrates for this job.
    fn predict(&self, job: &JobRequest) -> Estimate;
    /// Feed back the actuals of a finished job.
    fn observe(&mut self, done: &CompletedJob);
    /// Learned startup seconds for (job, route), when the estimator has
    /// observed any — schedulers may use it in place of a static margin.
    fn startup_hint(&self, _job: &JobRequest, _route: Route) -> Option<SimTime> {
        None
    }
    /// Pin the analytic prior's epochs-to-threshold for a class (e.g. from
    /// a §5.3 sampling-estimator run).
    fn pin_epochs(&mut self, class: JobClass, epochs: f64);
    /// Clone into a box (lets schedulers holding `Box<dyn Estimator>`
    /// stay `Clone`).
    fn clone_box(&self) -> Box<dyn Estimator>;
}

impl Clone for Box<dyn Estimator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Re-estimate `R` (epochs to threshold) for `class` by training on a
/// `sample_frac` subsample — the paper's §5.3 estimator. The result can be
/// pinned into any estimator's analytic prior via
/// [`Estimator::pin_epochs`].
pub fn calibrate_epochs(class: JobClass, sample_frac: f64, max_epochs: usize, seed: u64) -> f64 {
    estimate_epochs(
        class.dataset(),
        class.model(),
        class.algorithm(),
        class.lr(),
        class.threshold(),
        sample_frac,
        max_epochs,
        seed,
    )
    .epochs
}

/// The paper's §5.3 analytical model, observation-blind: `observe` is a
/// no-op, so this reproduces the pre-PR-4 behaviour of every scheduler
/// exactly.
#[derive(Debug, Clone)]
pub struct Analytic {
    faas_case: AnalyticCase,
    iaas_case: AnalyticCase,
    /// Per-class epoch overrides (sampling-estimator calibration).
    epochs: BTreeMap<JobClass, f64>,
}

impl Default for Analytic {
    fn default() -> Self {
        Self::new()
    }
}

impl Analytic {
    /// Priced with the default cases (S3-channel FaaS, t2.medium IaaS) —
    /// matches [`crate::sim::FleetConfig::default`].
    pub fn new() -> Self {
        Analytic {
            faas_case: AnalyticCase::faas_s3(),
            iaas_case: AnalyticCase::iaas_t2(),
            epochs: BTreeMap::new(),
        }
    }

    /// Priced with the fleet's own channel/pricing cases, so predictions
    /// price the same substrates the simulator charges.
    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        Analytic {
            faas_case: cfg.faas_case,
            iaas_case: cfg.iaas_case,
            epochs: BTreeMap::new(),
        }
    }

    /// Directly pin the epoch estimate for a class (builder style).
    pub fn with_epochs(mut self, class: JobClass, epochs: f64) -> Self {
        self.epochs.insert(class, epochs);
        self
    }

    /// Epochs-to-threshold the prior assumes for `class`.
    pub fn epochs_for(&self, class: JobClass) -> f64 {
        self.epochs
            .get(&class)
            .copied()
            .unwrap_or_else(|| class.default_epochs())
    }
}

impl Estimator for Analytic {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn predict(&self, job: &JobRequest) -> Estimate {
        let mut p = job.class.profile();
        p.epochs = self.epochs_for(job.class);
        let w = job.workers;
        let t_faas = faas_time(&p, &self.faas_case, Scaling::Perfect, w).as_secs()
            - lml_analytic::constants::t_f().eval(w as f64);
        let c_faas = faas_cost(&p, &self.faas_case, Scaling::Perfect, w).as_usd();
        let t_iaas = iaas_time(&p, &self.iaas_case, Scaling::Perfect, w).as_secs()
            - lml_analytic::constants::t_i().eval(w as f64);
        // Warm-pool IaaS: bill the instances for the run, not the boot.
        let c_iaas = w as f64 * self.iaas_case.worker_price_per_s * t_iaas;
        Estimate {
            t_faas,
            c_faas,
            t_iaas,
            c_iaas,
        }
    }

    fn observe(&mut self, _done: &CompletedJob) {}

    fn pin_epochs(&mut self, class: JobClass, epochs: f64) {
        self.epochs.insert(class, epochs);
    }

    fn clone_box(&self) -> Box<dyn Estimator> {
        Box::new(self.clone())
    }
}

/// Learned per-(tenant, class, substrate) state.
#[derive(Debug, Clone, Copy)]
struct SubstrateStats {
    /// Observations folded in so far.
    n: u64,
    /// EWMA of observed whole epochs per job (learns zoo miscalibration).
    epochs: f64,
    /// EWMA of the per-epoch slowdown vs the prior *at the observed
    /// width* (learns spot inflation and channel error). Ratios — not
    /// absolute seconds — so a learned correction transfers across
    /// worker counts through the prior's own width scaling.
    epoch_ratio: f64,
    /// EWMA of |observed/prior − predicted/prior| runtime ratios — the
    /// relative spread behind the quantile-style margin.
    dev: f64,
    /// EWMA of the attributed-dollars ratio vs the prior (firm routes
    /// only).
    cost_ratio: f64,
    /// EWMA of observed startup seconds (cold-start draws, boots,
    /// restores).
    startup: f64,
}

/// Per-(tenant, class) stats, one slot per substrate. Spot observations
/// fold into the IaaS slot — spot runs on IaaS-class instances and its
/// preemption-inflated actuals are exactly what the model should learn.
#[derive(Debug, Clone, Copy, Default)]
struct ClassStats {
    faas: Option<SubstrateStats>,
    iaas: Option<SubstrateStats>,
}

impl ClassStats {
    fn slot(&self, route: Route) -> Option<SubstrateStats> {
        match route {
            Route::Faas => self.faas,
            Route::Iaas | Route::Spot => self.iaas,
        }
    }
}

/// Online estimator: per-(tenant, job-class) EWMAs over actual epoch
/// counts, per-epoch slowdown ratios, dollar ratios, and cold-start
/// draws, seeded from the analytic prior — with zero observations it
/// predicts exactly what [`Analytic`] would, so cold-start behaviour is
/// unchanged. Corrections are learned as *ratios against the prior*, so
/// they transfer across worker counts (a mixed-width trace doesn't see a
/// 10-wide job's absolute seconds quoted for a 100-wide one). Runtimes
/// learn from every route (spot's preemption-inflated actuals included);
/// dollars learn from firm routes only, since spot attributions carry the
/// market discount and would deflate the quoted reserved-pool price.
/// The cost posterior deliberately learns *attributed* dollars (startup
/// and checkpoint charges included) — what a tenant actually pays — so
/// even on a calibrated zoo it drifts a few percent above the prior's
/// run-only idealization; that gap is honest model error, and it shows
/// up as the analytic estimator's residual cost MAPE.
#[derive(Debug, Clone)]
pub struct Online {
    prior: Analytic,
    /// Weight each new observation gets in the EWMAs.
    pub alpha: f64,
    /// Deviations added on top of the mean runtime prediction — a cheap
    /// quantile blend; 0.0 (the default) predicts the mean.
    pub margin: f64,
    state: BTreeMap<(TenantId, JobClass), ClassStats>,
}

impl Default for Online {
    fn default() -> Self {
        Self::new(Analytic::new())
    }
}

impl Online {
    pub fn new(prior: Analytic) -> Self {
        Online {
            prior,
            alpha: 0.3,
            margin: 0.0,
            state: BTreeMap::new(),
        }
    }

    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        Self::new(Analytic::for_config(cfg))
    }

    /// Set the EWMA observation weight (0 < α ≤ 1).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Predict `mean + margin × deviation` instead of the mean — a
    /// conservative quantile-style runtime estimate.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be >= 0");
        self.margin = margin;
        self
    }

    pub fn prior(&self) -> &Analytic {
        &self.prior
    }

    /// Observations folded in for (tenant, class) on the route's substrate.
    pub fn observations(&self, tenant: TenantId, class: JobClass, route: Route) -> u64 {
        self.state
            .get(&(tenant, class))
            .and_then(|cs| cs.slot(route))
            .map_or(0, |s| s.n)
    }
}

impl Estimator for Online {
    fn name(&self) -> &'static str {
        "online"
    }

    fn predict(&self, job: &JobRequest) -> Estimate {
        let mut e = self.prior.predict(job);
        if let Some(cs) = self.state.get(&(job.tenant, job.class)) {
            let prior_epochs = self.prior.epochs_for(job.class).max(1.0);
            // Learned corrections apply multiplicatively to the prior at
            // *this* job's width: epoch-count ratio × per-epoch slowdown,
            // plus the margin's share of the relative spread.
            let correct = |t: &mut f64, c: &mut f64, s: &SubstrateStats| {
                *t *= s.epochs / prior_epochs * s.epoch_ratio + self.margin * s.dev;
                *c *= s.cost_ratio;
            };
            if let Some(s) = cs.faas {
                correct(&mut e.t_faas, &mut e.c_faas, &s);
            }
            if let Some(s) = cs.iaas {
                correct(&mut e.t_iaas, &mut e.c_iaas, &s);
            }
        }
        e
    }

    fn observe(&mut self, done: &CompletedJob) {
        // The prior's view at the observed width normalizes every
        // observation into ratios (tenant and submit time don't enter the
        // analytic model).
        let probe = JobRequest::new(done.id, done.class, SimTime::ZERO, done.workers);
        let p = self.prior.predict(&probe);
        let prior_epochs = self.prior.epochs_for(done.class).max(1.0);
        let t_prior = p.time(done.route).max(f64::MIN_POSITIVE);
        let c_prior = p.cost(done.route).max(f64::MIN_POSITIVE);
        let entry = self.state.entry((done.tenant, done.class)).or_default();
        let slot = match done.route {
            Route::Faas => &mut entry.faas,
            Route::Iaas | Route::Spot => &mut entry.iaas,
        };
        let s = slot.get_or_insert(SubstrateStats {
            n: 0,
            epochs: prior_epochs,
            epoch_ratio: 1.0,
            dev: 0.0,
            cost_ratio: 1.0,
            // There is no analytic prior for startup: the first cold-start
            // draw seeds the EWMA directly.
            startup: done.startup.as_secs(),
        });
        let a = self.alpha;
        let epochs_obs = done.epochs_total.max(1) as f64;
        let rel_obs = done.run.as_secs() / t_prior;
        let rel_prev = s.epochs / prior_epochs * s.epoch_ratio;
        s.dev = (1.0 - a) * s.dev + a * (rel_obs - rel_prev).abs();
        s.epochs = (1.0 - a) * s.epochs + a * epochs_obs;
        // Per-epoch slowdown: how much longer one epoch really took than
        // the prior said it would (at this width).
        let ratio_obs = rel_obs * prior_epochs / epochs_obs;
        s.epoch_ratio = (1.0 - a) * s.epoch_ratio + a * ratio_obs;
        // Spot attributions carry the market discount (and restart
        // settlements): folding them into the cost EWMA would deflate the
        // price quoted for the full-price reserved pool, so only firm
        // routes teach dollars. Runtimes learn from every route — spot's
        // preemption-inflated actuals are exactly the signal wanted.
        if done.route != Route::Spot {
            s.cost_ratio = (1.0 - a) * s.cost_ratio + a * done.cost.as_usd() / c_prior;
        }
        if s.n > 0 {
            s.startup = (1.0 - a) * s.startup + a * done.startup.as_secs();
        }
        s.n += 1;
    }

    fn startup_hint(&self, job: &JobRequest, route: Route) -> Option<SimTime> {
        self.state
            .get(&(job.tenant, job.class))
            .and_then(|cs| cs.slot(route))
            .map(|s| SimTime::secs(s.startup))
    }

    fn pin_epochs(&mut self, class: JobClass, epochs: f64) {
        self.prior.pin_epochs(class, epochs);
    }

    fn clone_box(&self) -> Box<dyn Estimator> {
        Box::new(self.clone())
    }
}

/// Hybrid estimator: analytic prior morphing into the online posterior as
/// observations accumulate. Each substrate's prediction is the linear
/// blend `(1 − w) × prior + w × online` with `w = n / (n + prior_weight)`,
/// so a handful of noisy completions can't yank routing around, but a
/// sustained miscalibration is eventually fully corrected.
#[derive(Debug, Clone)]
pub struct Hybrid {
    online: Online,
    /// Observation count at which the online posterior carries half the
    /// weight.
    pub prior_weight: f64,
}

impl Default for Hybrid {
    fn default() -> Self {
        Self::new(Analytic::new())
    }
}

impl Hybrid {
    pub fn new(prior: Analytic) -> Self {
        Hybrid {
            online: Online::new(prior),
            prior_weight: 4.0,
        }
    }

    pub fn for_config(cfg: &crate::sim::FleetConfig) -> Self {
        Self::new(Analytic::for_config(cfg))
    }

    /// Observations needed before the online posterior carries half the
    /// weight (must be > 0).
    pub fn with_prior_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0, "prior weight must be > 0");
        self.prior_weight = w;
        self
    }

    fn weight(&self, tenant: TenantId, class: JobClass, route: Route) -> f64 {
        let n = self.online.observations(tenant, class, route) as f64;
        n / (n + self.prior_weight)
    }
}

fn lerp(a: f64, b: f64, w: f64) -> f64 {
    a + (b - a) * w
}

impl Estimator for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn predict(&self, job: &JobRequest) -> Estimate {
        let prior = self.online.prior().predict(job);
        let post = self.online.predict(job);
        let wf = self.weight(job.tenant, job.class, Route::Faas);
        let wi = self.weight(job.tenant, job.class, Route::Iaas);
        Estimate {
            t_faas: lerp(prior.t_faas, post.t_faas, wf),
            c_faas: lerp(prior.c_faas, post.c_faas, wf),
            t_iaas: lerp(prior.t_iaas, post.t_iaas, wi),
            c_iaas: lerp(prior.c_iaas, post.c_iaas, wi),
        }
    }

    fn observe(&mut self, done: &CompletedJob) {
        self.online.observe(done);
    }

    fn startup_hint(&self, job: &JobRequest, route: Route) -> Option<SimTime> {
        self.online.startup_hint(job, route)
    }

    fn pin_epochs(&mut self, class: JobClass, epochs: f64) {
        self.online.pin_epochs(class, epochs);
    }

    fn clone_box(&self) -> Box<dyn Estimator> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(class: JobClass) -> JobRequest {
        JobRequest::new(0, class, SimTime::ZERO, class.default_workers())
    }

    fn done_after(class: JobClass, run_secs: f64, route: Route) -> CompletedJob {
        CompletedJob {
            id: 0,
            class,
            tenant: 0,
            route,
            workers: class.default_workers(),
            run: SimTime::secs(run_secs),
            startup: SimTime::secs(5.0),
            cost: Cost::usd(0.2),
            epochs_total: class.epoch_count(),
            preemptions: 0,
        }
    }

    #[test]
    fn estimate_indexes_by_route() {
        let e = Estimate {
            t_faas: 1.0,
            c_faas: 2.0,
            t_iaas: 3.0,
            c_iaas: 4.0,
        };
        assert_eq!(e.time(Route::Faas), 1.0);
        assert_eq!(e.cost(Route::Faas), 2.0);
        assert_eq!(e.time(Route::Iaas), 3.0);
        assert_eq!(e.time(Route::Spot), 3.0, "spot shares the IaaS numbers");
        assert_eq!(e.cost(Route::Spot), 4.0);
    }

    #[test]
    fn analytic_matches_deep_vs_convex_ordering() {
        let a = Analytic::new();
        let deep = a.predict(&job(JobClass::RnCifar));
        let convex = a.predict(&job(JobClass::LrHiggs));
        // The paper's §5.2 headline: deep communication-bound jobs are far
        // slower on FaaS than on IaaS; convex jobs are competitive.
        assert!(deep.t_faas > deep.t_iaas * 3.0);
        assert!(convex.t_faas > 0.0 && convex.t_iaas > 0.0);
        assert!(convex.c_faas > 0.0 && convex.c_iaas > 0.0);
    }

    #[test]
    fn analytic_pin_epochs_scales_runtime() {
        let base = Analytic::new();
        let mut pinned = Analytic::new();
        pinned.pin_epochs(JobClass::LrHiggs, JobClass::LrHiggs.default_epochs() * 10.0);
        let j = job(JobClass::LrHiggs);
        assert!(pinned.predict(&j).t_faas > base.predict(&j).t_faas * 5.0);
        assert_eq!(
            Analytic::new()
                .with_epochs(JobClass::LrHiggs, 60.0)
                .epochs_for(JobClass::LrHiggs),
            60.0
        );
    }

    #[test]
    fn online_cold_start_equals_analytic_prior() {
        let online = Online::new(Analytic::new());
        let a = Analytic::new();
        for class in JobClass::ALL {
            let j = job(class);
            assert_eq!(online.predict(&j), a.predict(&j), "{class:?}");
            assert_eq!(online.startup_hint(&j, Route::Faas), None);
        }
    }

    #[test]
    fn online_converges_to_observed_runtime() {
        let mut online = Online::new(Analytic::new());
        let j = job(JobClass::LrHiggs);
        let prior_t = online.predict(&j).t_iaas;
        let actual = prior_t * 2.0; // the zoo is miscalibrated ×2
        for _ in 0..40 {
            online.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
        }
        let t = online.predict(&j).t_iaas;
        assert!(
            (t - actual).abs() / actual < 0.02,
            "EWMA must converge: predicted {t}, actual {actual}"
        );
        // The FaaS side is untouched by IaaS observations.
        assert_eq!(online.predict(&j).t_faas, online.prior().predict(&j).t_faas);
        assert_eq!(online.observations(0, JobClass::LrHiggs, Route::Iaas), 40);
        assert_eq!(online.observations(0, JobClass::LrHiggs, Route::Faas), 0);
    }

    #[test]
    fn online_learns_per_tenant_and_cold_start_draws() {
        let mut online = Online::new(Analytic::new());
        let mut d = done_after(JobClass::SvmRcv1, 100.0, Route::Faas);
        d.tenant = 3;
        online.observe(&d);
        let mut j = job(JobClass::SvmRcv1);
        j.tenant = 3;
        assert_eq!(
            online.startup_hint(&j, Route::Faas),
            Some(SimTime::secs(5.0)),
            "first draw seeds the startup EWMA"
        );
        j.tenant = 0;
        assert_eq!(
            online.startup_hint(&j, Route::Faas),
            None,
            "state is per-tenant"
        );
    }

    #[test]
    fn online_margin_is_conservative_under_noise() {
        let base = Online::new(Analytic::new());
        let mut plain = base.clone();
        let mut wide = base.with_margin(1.0);
        let j = job(JobClass::KmHiggs);
        let prior_t = plain.predict(&j).t_iaas;
        for k in 0..20 {
            // Alternate fast/slow actuals: the mean is ~prior, the spread
            // is large.
            let run = if k % 2 == 0 {
                prior_t * 0.5
            } else {
                prior_t * 1.5
            };
            let d = done_after(JobClass::KmHiggs, run, Route::Iaas);
            plain.observe(&d);
            wide.observe(&d);
        }
        assert!(
            wide.predict(&j).t_iaas > plain.predict(&j).t_iaas,
            "margin must add spread on top of the mean"
        );
    }

    #[test]
    fn spot_observations_fold_into_the_iaas_slot() {
        let mut online = Online::new(Analytic::new());
        let j = job(JobClass::LrHiggs);
        let prior_t = online.predict(&j).t_iaas;
        // Spot actuals are preemption-inflated: 3× the prior.
        for _ in 0..30 {
            online.observe(&done_after(JobClass::LrHiggs, prior_t * 3.0, Route::Spot));
        }
        assert!(online.predict(&j).t_iaas > prior_t * 2.0);
        assert_eq!(online.observations(0, JobClass::LrHiggs, Route::Spot), 30);
    }

    #[test]
    fn learned_corrections_transfer_across_worker_counts() {
        // Observe a 2× slowdown at width 10; a 100-wide job of the same
        // class must get the same *relative* correction on top of the
        // prior's own width scaling — not the 10-wide job's absolute
        // seconds.
        let mut online = Online::new(Analytic::new());
        let narrow = job(JobClass::LrHiggs); // default 10 workers
        let mut wide = narrow;
        wide.workers = 100;
        let prior = Analytic::new();
        let (pn, pw) = (prior.predict(&narrow), prior.predict(&wide));
        assert_ne!(pn.t_iaas, pw.t_iaas, "premise: the prior is width-aware");
        for _ in 0..30 {
            online.observe(&done_after(JobClass::LrHiggs, pn.t_iaas * 2.0, Route::Iaas));
        }
        let (en, ew) = (online.predict(&narrow), online.predict(&wide));
        let (rn, rw) = (en.t_iaas / pn.t_iaas, ew.t_iaas / pw.t_iaas);
        assert!((rn - 2.0).abs() < 0.05, "narrow correction converged: {rn}");
        assert!(
            (rn - rw).abs() < 1e-9,
            "the relative correction is width-invariant: {rn} vs {rw}"
        );
        assert!((en.c_iaas / pn.c_iaas - ew.c_iaas / pw.c_iaas).abs() < 1e-9);
    }

    #[test]
    fn hybrid_moves_from_prior_to_posterior() {
        let mut hybrid = Hybrid::new(Analytic::new()).with_prior_weight(4.0);
        let j = job(JobClass::LrHiggs);
        let prior_t = hybrid.predict(&j).t_iaas;
        let actual = prior_t * 2.0;
        let mut last = prior_t;
        for k in 1..=30 {
            hybrid.observe(&done_after(JobClass::LrHiggs, actual, Route::Iaas));
            let t = hybrid.predict(&j).t_iaas;
            assert!(
                t >= last - 1e-9,
                "step {k}: prediction must move monotonically toward the actual"
            );
            last = t;
        }
        assert!(
            (last - actual).abs() / actual < 0.15,
            "after 30 observations the posterior dominates: {last} vs {actual}"
        );
        // An unseen class still predicts the pure prior.
        let unseen = job(JobClass::RnCifar);
        assert_eq!(
            hybrid.predict(&unseen),
            Analytic::new().predict(&unseen),
            "cold start unchanged"
        );
    }

    #[test]
    fn boxed_estimators_clone() {
        let mut online = Online::new(Analytic::new());
        online.observe(&done_after(JobClass::LrHiggs, 500.0, Route::Iaas));
        let boxed: Box<dyn Estimator> = Box::new(online);
        let copy = boxed.clone();
        let j = job(JobClass::LrHiggs);
        assert_eq!(boxed.predict(&j), copy.predict(&j));
        assert_eq!(copy.name(), "online");
        assert_eq!(Hybrid::default().name(), "hybrid");
        assert_eq!(Analytic::new().name(), "analytic");
    }
}
