//! The fleet simulator: an event-driven loop over the shared
//! [`EventQueue`], driving arrivals through a [`Scheduler`] onto the three
//! platform models until every job completes.
//!
//! Job service times come from the §5.3 analytical model (minus its
//! single-job startup terms — the fleet charges the *actual* startup it
//! simulates: warm/cold starts on FaaS, dispatch or queueing on IaaS, boot
//! plus preemption restarts on spot), so a thousand-job fleet simulates in
//! host milliseconds.
//!
//! Admission queues obey the scheduler's [`QueueDiscipline`]: FIFO, EDF
//! (earliest deadline first), or deficit round-robin across tenants by
//! weighted service — the fair-share quota enforcement point.
//!
//! Every job moves through the explicit [`JobLifecycle`] state machine
//! (`Queued → Booting → Running{epochs_done} → … → Done/Rejected`), shared
//! by all schedulers and all three tiers. Progress is epoch-granular: a
//! [`CheckpointPolicy`] decides when spot-routed jobs upload recovery
//! checkpoints (priced through `lml-storage`'s S3 profile), a preemption
//! rolls the job back to its last durable checkpoint instead of to zero,
//! and completion events are always scheduled from the *remaining* epochs
//! — including after a pool fallback. Tenants with a budget in the trace
//! are cut off once their attributed spend exhausts it
//! ([`JobLifecycle::Rejected`]) — or, with a [`FleetConfig::budget_window`]
//! configured, held in [`JobLifecycle::Deferred`] until the next window's
//! fresh allowance.
//!
//! The loop is closed back to the prediction layer: every `Done`
//! transition feeds the job's actuals (run, startup, dollars — including
//! spot-inflated reruns) to the scheduler's [`crate::estimate::Estimator`]
//! via [`Scheduler::observe`], and the prediction snapshotted at admission
//! is scored against the actuals in the metrics (MAPE rollups). Setting
//! [`FleetConfig::epoch_scale`] ≠ 1 miscalibrates the zoo — jobs really
//! need more (or fewer) epochs than the analytic prior assumes — which is
//! exactly the regime where learning estimators earn their keep.
//!
//! # Streaming replay
//!
//! The engine is *pull-based*: [`replay_observed`] draws arrivals from a
//! [`TraceSource`] one at a time and stores in-flight jobs in a
//! generational slab, so resident memory is bounded by the working set
//! (jobs admitted but not yet terminal), never by trace length — a
//! 10M-job replay holds the same state as a 400-job one.
//! [`simulate`]/[`simulate_observed`] are the in-memory compatibility
//! wrappers: they delegate through [`InMemorySource`], and replaying any
//! trace through a streaming source is **byte-identical** to the
//! in-memory path (same metrics JSON — the tie-break key is the dense
//! arrival sequence number, which equals the trace index).
//!
//! For traces too large to even collect per-job records, [`replay_stats`]
//! folds every retired job into a constant-size [`ReplaySummary`] —
//! that's the O(1)-memory path the million-job smoke test drives.
//! Observers that request a [`FleetObserver::rollup_period`] additionally
//! receive incremental [`WindowRollup`]s as the simulation clock crosses
//! each boundary, so long replays report progress without buffering.

use crate::estimate::{CompletedJob, Estimate, PreemptionObs};
use crate::intern::TenantMap;
use crate::job::{JobClass, JobRequest, TenantId};
use crate::lifecycle::{
    preempt_outcome, restore_beats_redo, AttemptPlan, CheckpointPolicy, JobLifecycle,
};
use crate::metrics::{FleetMetrics, JobRecord, PlatformTotals, WindowRollup};
use crate::observe::{
    AttemptSpan, Decision, DecisionRecord, FleetEvent, FleetObserver, GaugeSample, NullObserver,
    PlatformEvent, ReplayStats,
};
use crate::platform::{FaasConfig, FaasRegion, IaasConfig, IaasPool, SpotConfig, SpotTier};
use crate::scheduler::{FleetView, QueueDiscipline, Route, Scheduler};
use crate::stream::{InMemorySource, TraceSource};
use crate::workload::Trace;
use lml_analytic::constants;
use lml_analytic::model::{faas_cost, faas_time, iaas_time, AnalyticCase, AnalyticParams, Scaling};
use lml_sim::{ByteSize, Cost, EventQueue, SimTime};
use lml_storage::checkpoint::{checkpoint_bytes, CheckpointCosting};
use std::collections::BTreeMap;

/// Fleet-wide configuration: the three platforms and their channel cases.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    pub faas: FaasConfig,
    pub iaas: IaasConfig,
    /// The preemptible tier (only exercised when a policy routes there).
    pub spot: SpotConfig,
    /// Recovery-checkpoint policy for spot-routed jobs. Uploads go to the
    /// S3 profile's channel (always-on, flat per-PUT pricing); `Never`
    /// reproduces the PR 2 lose-everything behaviour.
    pub checkpoint: CheckpointPolicy,
    /// Analytical channel/pricing case for FaaS jobs (default: S3, 3 GB).
    pub faas_case: AnalyticCase,
    /// Analytical case for IaaS jobs (default: t2.medium network).
    pub iaas_case: AnalyticCase,
    /// Zoo miscalibration knob: the *actual* epochs every job needs are
    /// the class's calibrated count times this factor, while schedulers'
    /// analytic priors keep assuming the unscaled count. 1.0 (the
    /// default) reproduces a perfectly calibrated zoo; 2.0 is the
    /// "epoch counts perturbed ×2" study.
    pub epoch_scale: f64,
    /// Budget accounting window. `None` (the default) keeps PR 3's hard
    /// caps: an over-budget tenant's jobs are `Rejected`. With a window,
    /// trace budgets become per-window allowances — a standing clock
    /// resets the spend ledgers at every boundary, over-budget tenants'
    /// jobs are `Deferred`, and a deferred backlog re-admits at each
    /// boundary only up to the fresh allowance (the remainder waits for
    /// later windows). Zero-budget tenants are still rejected: no window
    /// can ever afford them.
    pub budget_window: Option<SimTime>,
    /// Checkpoint storage-class threshold: recovery checkpoints at or
    /// under this size go through the DynamoDB profile (per-unit puts,
    /// 30 ms latency — right for tiny convex models), larger ones through
    /// S3. `None` sends everything to S3.
    pub checkpoint_tier_threshold: Option<ByteSize>,
    /// What a missed deadline is deemed to cost, in dollars — one side of
    /// the deferral-vs-rejection pricing when a tenant is over its
    /// windowed allowance. Deferring a job whose P95 ETA after the next
    /// window boundary still makes its deadline costs nothing; deferring
    /// one that will (at P95) miss costs this.
    pub deadline_miss_cost: f64,
    /// What rejecting a job outright is deemed to cost, in dollars — the
    /// other side of the pricing. With the defaults (equal costs, ties
    /// defer) every over-allowance job defers, reproducing the PR 4
    /// behaviour; price rejection *below* a miss and admission starts
    /// rejecting the jobs deferral can only doom.
    pub rejection_cost: f64,
}

/// Default checkpoint storage-class threshold: the cost break-even where
/// DynamoDB's per-KB write units (4 × $1.25e-6) meet S3's flat $5e-6 PUT.
/// At or under this size DynamoDB is never dearer and always faster
/// (30 ms vs 80 ms), so tiering is strictly dominant; above it S3's flat
/// request price wins on dollars.
pub const CHECKPOINT_TIER_THRESHOLD: ByteSize = ByteSize(4_000);

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            faas: FaasConfig::default(),
            iaas: IaasConfig::default(),
            spot: SpotConfig::default(),
            checkpoint: CheckpointPolicy::Never,
            faas_case: AnalyticCase::faas_s3(),
            iaas_case: AnalyticCase::iaas_t2(),
            epoch_scale: 1.0,
            budget_window: None,
            checkpoint_tier_threshold: Some(CHECKPOINT_TIER_THRESHOLD),
            deadline_miss_cost: 1.0,
            rejection_cost: 1.0,
        }
    }
}

/// Single-job service time on FaaS once its functions are up: data loading
/// plus training (the analytical FaaS(w) minus its t_F(w) startup term).
pub fn faas_run(p: &AnalyticParams, case: &AnalyticCase, w: usize) -> SimTime {
    faas_time(p, case, Scaling::Perfect, w) - SimTime::secs(constants::t_f().eval(w as f64))
}

/// Single-job service time on booted IaaS instances (IaaS(w) minus t_I(w)).
pub fn iaas_run(p: &AnalyticParams, case: &AnalyticCase, w: usize) -> SimTime {
    iaas_time(p, case, Scaling::Perfect, w) - SimTime::secs(constants::t_i().eval(w as f64))
}

/// A generational reference to a resident job in the slab. Events carry
/// handles instead of trace indices, so the engine never needs the whole
/// trace in memory; the generation counter turns any use-after-retire bug
/// into a loud debug assertion instead of silent state corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Handle {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// The resident job finishes on FaaS.
    FaasDone(Handle),
    /// The resident job finishes on IaaS.
    IaasDone(Handle),
    /// The resident job finishes on spot.
    SpotDone(Handle),
    /// The spot market reclaims the job's instances mid-flight.
    SpotPreempted(Handle),
    /// A batch of `k` IaaS instances finished booting.
    Provisioned(usize),
    /// Check whether idle IaaS capacity above the floor should be released.
    IdleCheck,
    /// A budget accounting window opens: spend ledgers reset and deferred
    /// jobs are admitted.
    BudgetWindow,
    /// The observer's standing telemetry clock fires: sample the gauges.
    /// Only ever scheduled when an active observer requests a
    /// [`FleetObserver::gauge_period`] — the default [`NullObserver`] run
    /// carries none, keeping the event stream byte-identical to the
    /// unobserved simulator.
    GaugeTick,
}

/// Mutable per-job state built up during the run. The queue/startup/run
/// components accumulate across spot preemption restarts, so
/// `queue + startup + run` always equals finish − submit.
#[derive(Debug, Clone, Copy)]
struct JobState {
    route: Route,
    /// The explicit lifecycle machine; every mutation goes through
    /// [`JobLifecycle::transition`], so illegal paths panic.
    lifecycle: JobLifecycle,
    queue: SimTime,
    startup: SimTime,
    run: SimTime,
    warm_hits: usize,
    cost: Cost,
    preemptions: u32,
    /// Attempts that restarted from a durable checkpoint (not from zero).
    resumes: u32,
    /// Whole epochs this job needs (its class's `R`, rounded up).
    epochs_total: u32,
    /// Durable progress: epochs whose checkpoint (or completion) survives
    /// a preemption.
    epochs_done: u32,
    /// Training seconds redone because a preemption struck past the last
    /// durable checkpoint.
    lost_work: SimTime,
    /// Checkpoint uploads initiated (durable, in-flight at preemption, and
    /// on successful attempts alike — all billed).
    ckpt_writes: u32,
    /// Checkpoint dollars: uploads plus restore reads.
    ckpt_cost: Cost,
    /// The scheduler's prediction for the routed substrate, snapshotted at
    /// admission (None for constant routers and rejected jobs).
    predicted: Option<Estimate>,
    /// The job sat out at least one budget accounting window.
    deferred: bool,
    /// When the job last became ready to start (submission, or the moment
    /// a preemption threw it back).
    ready_since: SimTime,
    /// Spot attempts launched so far (indexes the preemption clock).
    attempt: u32,
    /// Launch bookkeeping of the in-flight spot attempt.
    attempt_start: SimTime,
    attempt_boot: SimTime,
    attempt_restore: SimTime,
    attempt_plan: Option<AttemptPlan>,
}

/// One resident job: the request, its mutable run state, and the dense
/// arrival sequence number that replaces the trace index everywhere the
/// old engine compared indices (queue tie-breaks, record order).
#[derive(Debug, Clone, Copy)]
struct Slot {
    job: JobRequest,
    state: JobState,
    seq: u64,
    gen: u32,
}

/// Per-class analytic cache: every value here is a pure function of
/// `(class, workers, config)`, so recomputing it per event is pure waste —
/// the job zoo has six classes and the hot path touches the same handful
/// of formulas on every dispatch. One entry per class, keyed by the
/// workers it was computed for (recomputed on a width change, which never
/// happens in homogeneous-width traces).
#[derive(Debug, Clone, Copy)]
struct ClassCache {
    workers: usize,
    epochs_total: u32,
    faas_run: SimTime,
    faas_cost: Cost,
    iaas_run_full: SimTime,
    ckpt_write_secs: f64,
    ckpt_write_dollars: Cost,
    ckpt_read_time: SimTime,
    ckpt_read_dollars: Cost,
}

const N_CLASSES: usize = JobClass::ALL.len();

/// The deferral-vs-rejection pricing of one over-allowance job, with the
/// inputs that settled it (fed to the decision audit).
#[derive(Debug, Clone, Copy)]
struct OverAllowance {
    /// Rejection priced strictly below deferral.
    reject: bool,
    /// Deadline slack remaining at the pricing instant, seconds.
    laxity_s: Option<f64>,
    /// The window boundary a deferred job would be released at, seconds.
    release_s: Option<f64>,
    /// Best-substrate quantile run after release, seconds.
    eta_q_s: Option<f64>,
}

/// Constant-size aggregates for the bounded ([`replay_stats`]) path:
/// every retired job folds in here instead of materializing a record.
#[derive(Debug, Clone, Copy, Default)]
struct SummaryAcc {
    completed: u64,
    rejected: u64,
    deferred: u64,
    makespan: SimTime,
    /// Attributed dollars of completed FaaS-routed jobs (mirrors the
    /// `faas_cost` term of [`FleetMetrics::total_cost`]).
    faas_attributed: Cost,
    /// Checkpoint dollars across all jobs.
    ckpt_dollars: Cost,
}

/// Where retired jobs go: full records (the metrics path) or the
/// constant-size fold (the bounded path).
enum Sink {
    /// Per-job records indexed by arrival seq — memory O(trace length),
    /// exactly what [`FleetMetrics::from_records`] needs.
    Records(Vec<Option<JobRecord>>),
    /// Constant-memory aggregates for [`replay_stats`].
    Bounded(SummaryAcc),
}

/// Incremental rollup bookkeeping (armed only when the observer asks for
/// a [`FleetObserver::rollup_period`]).
struct RollupState {
    period: SimTime,
    /// The next boundary to flush at.
    next: SimTime,
    index: u64,
    submitted: u64,
    completed: u64,
    rejected: u64,
    cost: Cost,
}

/// Constant-size outcome of a bounded replay ([`replay_stats`]): the
/// headline counters without the per-job records.
///
/// `total_cost` follows the same decomposition as
/// [`FleetMetrics::total_cost`] (FaaS execution + provisioned floor +
/// pool bill + spot bill + checkpoint traffic), but the summation order
/// differs from the record-based rollup, so compare it to the metrics
/// value with a tolerance, never byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplaySummary {
    /// Arrivals pulled from the source (the streamed trace length).
    pub jobs: u64,
    /// Jobs that completed (reached `Done`).
    pub completed: u64,
    /// Jobs refused admission.
    pub rejected: u64,
    /// Jobs that sat out at least one budget window.
    pub deferred: u64,
    /// Finish time of the last job that ran.
    pub makespan: SimTime,
    /// Total platform dollars (see type docs for the decomposition).
    pub total_cost: Cost,
    /// High-water mark of the resident job slab — the number the
    /// streaming engine promises stays bounded by the in-flight set.
    pub peak_resident_jobs: u64,
}

/// All simulator state, threaded through the event handlers.
struct Fleet<'a> {
    cfg: &'a FleetConfig,
    /// Per-tenant dollar caps from the source's preamble (trace v3);
    /// absent tenants are uncapped.
    budgets: TenantMap<f64>,
    faas: FaasRegion,
    iaas: IaasPool,
    spot: SpotTier,
    /// Checkpoint channel: S3 write/read time and request dollars.
    ckpt: CheckpointCosting,
    /// The resident job slab: admitted, non-terminal jobs. Slots are
    /// recycled through `free` as jobs retire, so capacity tracks the
    /// peak *working set*, not the trace length.
    slots: Vec<Slot>,
    free: Vec<u32>,
    class_cache: [Option<ClassCache>; N_CLASSES],
    events: EventQueue<Event>,
    /// FaaS admission queue. The live entries are `faas_queue[faas_head..]`:
    /// FIFO consumption advances the cursor instead of shifting the tail,
    /// and the drained prefix is compacted away only once it dominates
    /// the buffer — amortized O(1) per start instead of O(queue).
    faas_queue: Vec<Handle>,
    faas_head: usize,
    iaas_queue: Vec<Handle>,
    /// Workers queued on each platform, maintained incrementally at
    /// enqueue/start so `view()` and the autoscaler stay O(1) instead of
    /// re-summing the queues on every admission.
    faas_queued_workers: usize,
    iaas_queued_workers: usize,
    /// Weighted-service ledger behind the deficit-round-robin discipline:
    /// worker-seconds of run time started so far, per tenant. Only
    /// maintained when the scheduler's discipline is DRR (`track_service`).
    tenant_service: TenantMap<f64>,
    /// Attributed dollars per tenant — the budget-cap enforcement ledger
    /// (reset every accounting window when deferral is on). Only
    /// maintained when someone reads it (`track_spend`).
    tenant_spend: TenantMap<f64>,
    /// Jobs held back until the next budget window, in arrival order.
    deferred_queue: Vec<Handle>,
    /// The standing `BudgetWindow` event chain is armed.
    window_scheduled: bool,
    /// Admitted jobs not yet in a terminal lifecycle state (includes
    /// deferred jobs).
    live: usize,
    /// The source has at least one arrival still to deliver.
    more_arrivals: bool,
    /// Arrivals pulled from the source so far (also the next seq).
    arrivals_streamed: u64,
    /// High-water mark of slab occupancy.
    peak_resident: u64,
    /// The scheduler's ETA quantile, captured once up front (constant for
    /// every in-tree scheduler) — record building needs it per retire.
    eta_quantile: f64,
    /// `obs.active()`, cached: the vtable call was on the hot path.
    obs_on: bool,
    /// Maintain `tenant_spend` (budgets declared, or a gauge-sampling
    /// observer reads it — `sample_gauges` only runs on a gauge clock, so
    /// an observer without one never sees the ledger).
    track_spend: bool,
    /// Maintain `tenant_service` (scheduler discipline is DRR).
    track_service: bool,
    rollup: Option<RollupState>,
    sink: Sink,
    /// The observability sink: every lifecycle transition, scheduler
    /// decision, platform event, dispatch span, and gauge sample is
    /// narrated here. [`NullObserver`] (the default) makes every call a
    /// no-op and `obs_on` gates payload assembly.
    obs: &'a mut (dyn FleetObserver + 'a),
}

impl<'a> Fleet<'a> {
    fn new(
        cfg: &'a FleetConfig,
        budgets: BTreeMap<TenantId, f64>,
        seed: u64,
        obs: &'a mut (dyn FleetObserver + 'a),
        eta_quantile: f64,
        track_service: bool,
        collect: bool,
    ) -> Self {
        let obs_on = obs.active();
        let rollup = obs.rollup_period().map(|p| {
            debug_assert!(p.as_secs() > 0.0, "rollup period must be positive");
            RollupState {
                period: p,
                next: p,
                index: 0,
                submitted: 0,
                completed: 0,
                rejected: 0,
                cost: Cost::ZERO,
            }
        });
        Fleet {
            cfg,
            track_spend: !budgets.is_empty() || obs.gauge_period().is_some(),
            budgets: budgets
                .into_iter()
                .fold(TenantMap::new(), |mut caps, (t, cap)| {
                    caps.insert(t, cap);
                    caps
                }),
            faas: FaasRegion::new(cfg.faas),
            iaas: IaasPool::new(cfg.iaas),
            spot: SpotTier::new(cfg.spot, seed),
            ckpt: match cfg.checkpoint_tier_threshold {
                Some(t) => CheckpointCosting::tiered(t),
                None => CheckpointCosting::s3(),
            },
            slots: Vec::new(),
            free: Vec::new(),
            class_cache: [None; N_CLASSES],
            events: EventQueue::new(),
            faas_queue: Vec::new(),
            faas_head: 0,
            iaas_queue: Vec::new(),
            faas_queued_workers: 0,
            iaas_queued_workers: 0,
            tenant_service: TenantMap::new(),
            tenant_spend: TenantMap::new(),
            deferred_queue: Vec::new(),
            window_scheduled: false,
            live: 0,
            more_arrivals: false,
            arrivals_streamed: 0,
            peak_resident: 0,
            eta_quantile,
            obs_on,
            track_service,
            rollup,
            sink: if collect {
                Sink::Records(Vec::new())
            } else {
                Sink::Bounded(SummaryAcc::default())
            },
            obs,
        }
    }

    #[inline]
    fn slot(&self, h: Handle) -> &Slot {
        let s = &self.slots[h.slot as usize];
        debug_assert_eq!(s.gen, h.gen, "stale job handle");
        s
    }

    #[inline]
    fn state_mut(&mut self, h: Handle) -> &mut JobState {
        let s = &mut self.slots[h.slot as usize];
        debug_assert_eq!(s.gen, h.gen, "stale job handle");
        &mut s.state
    }

    /// Admit a pulled arrival into the slab: assign its dense seq, build
    /// fresh run state, and record the occupancy high-water mark.
    fn insert(&mut self, job: JobRequest) -> Handle {
        let seq = self.arrivals_streamed;
        self.arrivals_streamed += 1;
        let epochs_total = self.class_cache(job.class, job.workers).epochs_total;
        let state = JobState {
            route: Route::Faas,
            lifecycle: JobLifecycle::Queued,
            queue: SimTime::ZERO,
            startup: SimTime::ZERO,
            run: SimTime::ZERO,
            warm_hits: 0,
            cost: Cost::ZERO,
            preemptions: 0,
            resumes: 0,
            epochs_total,
            epochs_done: 0,
            lost_work: SimTime::ZERO,
            ckpt_writes: 0,
            ckpt_cost: Cost::ZERO,
            predicted: None,
            deferred: false,
            ready_since: job.submit,
            attempt: 0,
            attempt_start: SimTime::ZERO,
            attempt_boot: SimTime::ZERO,
            attempt_restore: SimTime::ZERO,
            attempt_plan: None,
        };
        let h = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.job = job;
                s.state = state;
                s.seq = seq;
                Handle { slot, gen: s.gen }
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    job,
                    state,
                    seq,
                    gen: 0,
                });
                Handle { slot, gen: 0 }
            }
        };
        self.live += 1;
        let resident = (self.slots.len() - self.free.len()) as u64;
        self.peak_resident = self.peak_resident.max(resident);
        if let Some(r) = &mut self.rollup {
            r.submitted += 1;
        }
        h
    }

    /// Fold a terminal job into the sink and recycle its slab slot.
    fn retire(&mut self, h: Handle) {
        self.live -= 1;
        let idx = h.slot as usize;
        debug_assert_eq!(self.slots[idx].gen, h.gen, "stale job handle");
        // Borrow, don't copy: the slot is ~300 bytes and this runs once
        // per job. Field-disjoint borrows (slots vs rollup vs sink) keep
        // the borrow checker happy; the slot is recycled only after the
        // record has been folded out.
        let Slot {
            job: ref j,
            state: ref s,
            seq,
            ..
        } = self.slots[idx];
        debug_assert!(
            s.lifecycle.is_terminal(),
            "retire needs a terminal lifecycle state"
        );
        let rejected = s.lifecycle == JobLifecycle::Rejected;
        if let Some(r) = &mut self.rollup {
            if rejected {
                r.rejected += 1;
            } else {
                r.completed += 1;
            }
        }
        let eta_quantile = self.eta_quantile;
        match &mut self.sink {
            Sink::Records(records) => {
                let rec = JobRecord {
                    id: j.id,
                    class: j.class,
                    route: s.route,
                    workers: j.workers,
                    tenant: j.tenant,
                    submit: j.submit,
                    deadline: j.deadline,
                    queue: s.queue,
                    startup: s.startup,
                    run: s.run,
                    warm_hits: s.warm_hits,
                    preemptions: s.preemptions,
                    resumes: s.resumes,
                    spot_attempts: s.attempt,
                    lost_work: s.lost_work,
                    checkpoint_writes: s.ckpt_writes,
                    checkpoint_cost: s.ckpt_cost,
                    rejected,
                    deferred: s.deferred,
                    predicted_run: s.predicted.map(|e| SimTime::secs(e.time(s.route))),
                    // The calibrated quantile ETA snapshotted at admission,
                    // at the tail the scheduler itself routed with (P95 by
                    // default) — what the coverage rollup scores against
                    // the actual run.
                    predicted_run_q: s
                        .predicted
                        .map(|e| SimTime::secs(e.eta_q(s.route, eta_quantile))),
                    // Spot attributions ride the market discount the
                    // firm-price prediction deliberately ignores; scoring
                    // them would report the discount as estimator error,
                    // so spot jobs carry no cost prediction (their
                    // runtimes still score — spot inflation IS estimator
                    // error).
                    predicted_cost: match s.route {
                        Route::Spot => None,
                        _ => s.predicted.map(|e| Cost::usd(e.cost(s.route))),
                    },
                    cost: s.cost,
                };
                let at = seq as usize;
                if records.len() <= at {
                    records.resize_with(at + 1, || None);
                }
                debug_assert!(records[at].is_none(), "job retired twice");
                records[at] = Some(rec);
            }
            Sink::Bounded(acc) => {
                if rejected {
                    acc.rejected += 1;
                } else {
                    acc.completed += 1;
                    let finish = j.submit + s.queue + s.startup + s.run;
                    acc.makespan = acc.makespan.max(finish);
                    if s.route == Route::Faas {
                        acc.faas_attributed += s.cost;
                    }
                }
                if s.deferred {
                    acc.deferred += 1;
                }
                acc.ckpt_dollars += s.ckpt_cost;
            }
        }
        let slot = &mut self.slots[idx];
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.slot);
    }

    /// Flush every rollup window whose boundary the (monotone) event clock
    /// has crossed. Called before processing each event, so counters land
    /// in the window the events actually happened in.
    fn flush_rollups_to(&mut self, now: SimTime) {
        let Some(r) = &mut self.rollup else { return };
        while now >= r.next {
            let w = WindowRollup {
                index: r.index,
                start: r.next - r.period,
                end: r.next,
                submitted: r.submitted,
                completed: r.completed,
                rejected: r.rejected,
                cost: r.cost,
                resident_jobs: (self.slots.len() - self.free.len()) as u64,
            };
            self.obs.rollup(&w);
            r.index += 1;
            r.next += r.period;
            r.submitted = 0;
            r.completed = 0;
            r.rejected = 0;
            r.cost = Cost::ZERO;
        }
    }

    /// Emit the trailing partial window, if anything happened since the
    /// last boundary.
    fn finish_rollups(&mut self) {
        let Some(r) = &mut self.rollup else { return };
        // An untouched rollup holds an exact-zero sum. lml-analyze: allow(float-eq)
        if r.submitted + r.completed + r.rejected == 0 && r.cost.as_usd() == 0.0 {
            return;
        }
        let w = WindowRollup {
            index: r.index,
            start: r.next - r.period,
            end: r.next,
            submitted: r.submitted,
            completed: r.completed,
            rejected: r.rejected,
            cost: r.cost,
            resident_jobs: (self.slots.len() - self.free.len()) as u64,
        };
        self.obs.rollup(&w);
    }

    /// The per-class analytic bundle, recomputed only when the class's
    /// width changes (see [`ClassCache`]).
    fn class_cache(&mut self, class: JobClass, workers: usize) -> ClassCache {
        let idx = class as usize;
        if let Some(c) = self.class_cache[idx] {
            if c.workers == workers {
                return c;
            }
        }
        let mut p = class.profile();
        p.epochs *= self.cfg.epoch_scale;
        let bytes = checkpoint_bytes(class.profile().model_bytes);
        let c = ClassCache {
            workers,
            epochs_total: Self::actual_epochs(class, self.cfg.epoch_scale),
            faas_run: faas_run(&p, &self.cfg.faas_case, workers),
            faas_cost: faas_cost(&p, &self.cfg.faas_case, Scaling::Perfect, workers),
            iaas_run_full: iaas_run(&p, &self.cfg.iaas_case, workers),
            ckpt_write_secs: self.ckpt.write_time(bytes).as_secs(),
            ckpt_write_dollars: self.ckpt.write_dollars(bytes),
            ckpt_read_time: self.ckpt.read_time(bytes),
            ckpt_read_dollars: self.ckpt.read_dollars(bytes),
        };
        self.class_cache[idx] = Some(c);
        c
    }

    /// Advance the job's lifecycle through the validated state machine and
    /// narrate the transition to the observer.
    fn step(&mut self, h: Handle, now: SimTime, next: JobLifecycle) {
        let slot = &mut self.slots[h.slot as usize];
        debug_assert_eq!(slot.gen, h.gen, "stale job handle");
        let from = slot.state.lifecycle;
        slot.state.lifecycle.transition(next);
        if self.obs_on {
            let ev = FleetEvent {
                at: now,
                job: slot.job.id,
                tenant: slot.job.tenant,
                route: slot.state.route,
                attempt: slot.state.attempt,
                from,
                to: next,
            };
            self.obs.lifecycle(&ev);
        }
    }

    /// Sample the standing telemetry gauges into the observer.
    fn sample_gauges(&mut self, now: SimTime) {
        if !self.obs_on {
            return;
        }
        let g = GaugeSample {
            at: now,
            queue_depth: (self.faas_queue.len() - self.faas_head) + self.iaas_queue.len(),
            deferred: self.deferred_queue.len(),
            faas_in_use: self.cfg.faas.concurrency_limit - self.faas.available(),
            faas_limit: self.cfg.faas.concurrency_limit,
            iaas_busy: self.iaas.capacity() - self.iaas.free(),
            iaas_capacity: self.iaas.capacity(),
            spot_in_use: self.spot.in_use(),
            tenant_spend: self
                .tenant_spend
                .iter_sorted()
                .map(|(t, &s)| (t, s))
                .collect(),
        };
        self.obs.gauges(&g);
    }

    /// Whole epochs a job of `class` actually needs, after the zoo
    /// miscalibration knob (≥ 1).
    fn actual_epochs(class: JobClass, scale: f64) -> u32 {
        assert!(
            scale.is_finite() && scale > 0.0,
            "epoch_scale must be finite and > 0"
        );
        ((class.default_epochs() * scale).ceil() as u32).max(1)
    }

    /// Attribute `c` dollars to the job, its tenant's spend ledger, and
    /// the open rollup window.
    fn charge(&mut self, h: Handle, c: Cost) {
        let slot = &mut self.slots[h.slot as usize];
        debug_assert_eq!(slot.gen, h.gen, "stale job handle");
        slot.state.cost += c;
        if self.track_spend {
            *self
                .tenant_spend
                .get_or_insert_with(slot.job.tenant, || 0.0) += c.as_usd();
        }
        if let Some(r) = &mut self.rollup {
            r.cost += c;
        }
    }

    /// Is this tenant's budget (if any) already exhausted?
    fn budget_exhausted(&self, tenant: TenantId) -> bool {
        self.budgets
            .get(tenant)
            .is_some_and(|&cap| self.tenant_spend.get(tenant).copied().unwrap_or(0.0) >= cap)
    }

    fn queued_workers(&self, q: &[Handle]) -> usize {
        q.iter().map(|&h| self.slot(h).job.workers).sum()
    }

    fn view(&self) -> FleetView {
        debug_assert_eq!(
            self.faas_queued_workers,
            self.queued_workers(&self.faas_queue[self.faas_head..])
        );
        debug_assert_eq!(
            self.iaas_queued_workers,
            self.queued_workers(&self.iaas_queue)
        );
        FleetView {
            faas_in_use: self.cfg.faas.concurrency_limit - self.faas.available(),
            faas_limit: self.cfg.faas.concurrency_limit,
            faas_queued_workers: self.faas_queued_workers,
            iaas_free: self.iaas.free(),
            iaas_capacity: self.iaas.capacity(),
            iaas_provisioning: self.iaas.provisioning(),
            iaas_queued_workers: self.iaas_queued_workers,
        }
    }

    /// Credit a started job's service to its tenant (the DRR ledger).
    /// Skipped entirely under FIFO/EDF — nothing reads the ledger there.
    fn credit_service(&mut self, h: Handle, run: SimTime) {
        if !self.track_service {
            return;
        }
        let j = self.slot(h).job;
        *self.tenant_service.get_or_insert_with(j.tenant, || 0.0) +=
            j.workers as f64 * run.as_secs();
    }

    /// Position in `q` of the job the discipline admits next, or `None` if
    /// the queue is empty. All orders are deterministic: ties break by
    /// arrival seq (the streaming stand-in for the submission index).
    fn pick_pos(&self, q: &[Handle], sched: &dyn Scheduler) -> Option<usize> {
        if q.is_empty() {
            return None;
        }
        match sched.discipline() {
            QueueDiscipline::Fifo => Some(0),
            QueueDiscipline::Edf => q
                .iter()
                .enumerate()
                .min_by(|&(_, &a), &(_, &b)| {
                    let sa = self.slot(a);
                    let sb = self.slot(b);
                    let da = sa.job.deadline.map_or(f64::INFINITY, |d| d.as_secs());
                    let db = sb.job.deadline.map_or(f64::INFINITY, |d| d.as_secs());
                    da.total_cmp(&db).then(sa.seq.cmp(&sb.seq))
                })
                .map(|(pos, _)| pos),
            QueueDiscipline::Drr => q
                .iter()
                .enumerate()
                .min_by(|&(_, &a), &(_, &b)| {
                    let norm = |h: Handle| {
                        let t = self.slot(h).job.tenant;
                        self.tenant_service.get(t).copied().unwrap_or(0.0) / sched.tenant_weight(t)
                    };
                    norm(a)
                        .total_cmp(&norm(b))
                        .then(self.slot(a).seq.cmp(&self.slot(b).seq))
                })
                .map(|(pos, _)| pos),
        }
    }

    /// Try to begin the job on FaaS at `now`; schedules its completion.
    /// FaaS jobs are never preempted, so they always run all their epochs.
    fn start_faas(&mut self, h: Handle, now: SimTime) -> bool {
        let job = self.slot(h).job;
        match self.faas.try_start(now, job.workers) {
            Some((startup, warm_hits)) => {
                let workers = job.workers;
                let cache = self.class_cache(job.class, workers);
                let run = cache.faas_run;
                let s = self.state_mut(h);
                let queued_at = s.ready_since;
                s.queue += now - s.ready_since;
                // Queue time accumulates exactly once per wait interval.
                s.ready_since = now;
                s.startup += startup;
                s.run += run;
                s.warm_hits = warm_hits;
                let attempt = s.attempt;
                self.step(h, now, JobLifecycle::Booting);
                self.step(h, now, JobLifecycle::Running { epochs_done: 0 });
                if self.obs_on {
                    self.obs.platform(
                        now,
                        &PlatformEvent::FaasStart {
                            job: job.id,
                            workers,
                            warm_hits,
                        },
                    );
                    self.obs.attempt(&AttemptSpan {
                        job: job.id,
                        tenant: job.tenant,
                        substrate: Route::Faas,
                        attempt,
                        queued_at,
                        dispatched_at: now,
                        startup_s: startup.as_secs(),
                        run_s: run.as_secs(),
                    });
                }
                // GB-second billing of the execution (Lambda does not bill
                // provisioning time; the §5.3 cost formula is the same).
                self.charge(h, cache.faas_cost);
                self.events.push(now + startup + run, Event::FaasDone(h));
                self.credit_service(h, run);
                true
            }
            None => false,
        }
    }

    /// Try to begin the job on idle IaaS instances at `now`. A job thrown
    /// back by the spot market resumes from its last durable checkpoint:
    /// only the *remaining* epochs are scheduled (plus the restore read),
    /// so the pool's completion estimate no longer re-runs finished work.
    fn start_iaas(&mut self, h: Handle, now: SimTime) -> bool {
        let job = self.slot(h).job;
        if !self.iaas.try_start(now, job.workers) {
            return false;
        }
        let workers = job.workers;
        let cache = self.class_cache(job.class, workers);
        let total = self.slot(h).state.epochs_total;
        let epoch_secs = cache.iaas_run_full.as_secs() / total as f64;
        // Restore-vs-redo priced at the reserved pool's own rate.
        let rate = workers as f64 * self.cfg.iaas_case.worker_price_per_s;
        let (from, restore, restore_dollars) = self.resume_point(h, &cache, epoch_secs, rate);
        let run = SimTime::secs((total - from) as f64 * epoch_secs);
        let startup = self.cfg.iaas.dispatch_latency + restore;
        let s = self.state_mut(h);
        let queued_at = s.ready_since;
        s.queue += now - s.ready_since;
        // Close the wait interval: queue seconds accumulate exactly once
        // per wait, however the job got here (fresh admission or the
        // Requeued→pool-fallback path).
        s.ready_since = now;
        s.startup += startup;
        s.run += run;
        if from > 0 {
            s.resumes += 1;
        }
        // Keep the durable scalar in lock-step with the attempt's start:
        // a declined restore abandons the checkpoint for good (the trade
        // can't improve — epoch length is fixed per job), and the
        // banked-but-redone epochs count as lost work like any other.
        s.lost_work += SimTime::secs((s.epochs_done - from) as f64 * epoch_secs);
        s.epochs_done = from;
        s.ckpt_cost += restore_dollars;
        let attempt = s.attempt;
        self.step(h, now, JobLifecycle::Booting);
        self.step(h, now, JobLifecycle::Running { epochs_done: from });
        if self.obs_on {
            if from > 0 {
                self.obs.platform(
                    now,
                    &PlatformEvent::CheckpointRestore {
                        job: job.id,
                        epochs: from,
                    },
                );
            }
            self.obs.attempt(&AttemptSpan {
                job: job.id,
                tenant: job.tenant,
                substrate: Route::Iaas,
                attempt,
                queued_at,
                dispatched_at: now,
                startup_s: startup.as_secs(),
                run_s: run.as_secs(),
            });
        }
        // Attributed share of the pool bill; the pool's own integral is
        // authoritative for totals.
        let cost = Cost::usd(
            workers as f64 * self.cfg.iaas_case.worker_price_per_s * (startup + run).as_secs(),
        ) + restore_dollars;
        self.charge(h, cost);
        self.events.push(now + startup + run, Event::IaasDone(h));
        self.credit_service(h, run);
        true
    }

    /// Where the job's next attempt starts: its last durable checkpoint if
    /// restoring it beats redoing the epochs on *both* time and dollars
    /// ([`restore_beats_redo`] — `rate_per_s` is the routed substrate's
    /// instance rate for the whole job), else from scratch. Returns
    /// (start epoch, restore time, restore dollars). The dollar check
    /// matters for budget-capped tenants: a restore read that costs more
    /// than redoing cheap epochs must not be billed.
    fn resume_point(
        &self,
        h: Handle,
        cache: &ClassCache,
        epoch_secs: f64,
        rate_per_s: f64,
    ) -> (u32, SimTime, Cost) {
        let from = self.slot(h).state.epochs_done;
        if from == 0 {
            return (0, SimTime::ZERO, Cost::ZERO);
        }
        let restore = cache.ckpt_read_time;
        let redo = SimTime::secs(from as f64 * epoch_secs);
        if restore_beats_redo(restore, cache.ckpt_read_dollars, redo, rate_per_s) {
            (from, restore, cache.ckpt_read_dollars)
        } else {
            (0, SimTime::ZERO, Cost::ZERO)
        }
    }

    /// Launch (or relaunch after preemption) the job on the spot tier.
    /// Spot capacity is market-deep, so launches never queue — but the
    /// sampled preemption clock may reclaim the cluster mid-run. The
    /// attempt resumes from the last durable checkpoint and schedules only
    /// the remaining epochs; checkpoint uploads are asynchronous, so the
    /// attempt's wall clock is `boot + restore + remaining × epoch`.
    fn start_spot(&mut self, h: Handle, now: SimTime) {
        let job = self.slot(h).job;
        let workers = job.workers;
        let cache = self.class_cache(job.class, workers);
        let total = self.slot(h).state.epochs_total;
        let epoch_secs = cache.iaas_run_full.as_secs() / total as f64;
        let write_secs = cache.ckpt_write_secs;
        let job_mttp = self.cfg.spot.mean_time_to_preempt.as_secs() / workers as f64;
        let interval = self
            .cfg
            .checkpoint
            .interval_epochs(epoch_secs, write_secs, job_mttp);
        // Restore-vs-redo priced at the market's discounted rate.
        let rate = self.spot_attributed(workers, SimTime::secs(1.0)).as_usd();
        let (from, restore, restore_dollars) = self.resume_point(h, &cache, epoch_secs, rate);
        let plan = AttemptPlan {
            start_epoch: from,
            total_epochs: total,
            epoch_secs,
            interval,
            write_secs,
        };
        let boot = self.spot.start(workers);
        let run = SimTime::secs(plan.run_secs());
        let attempt = self.slot(h).state.attempt;
        let preempt_after = self.spot.preemption_clock(job.id, attempt, workers);
        let s = self.state_mut(h);
        let queued_at = s.ready_since;
        s.queue += now - s.ready_since;
        s.ready_since = now;
        s.attempt += 1;
        s.attempt_start = now;
        s.attempt_boot = boot;
        s.attempt_restore = restore;
        s.attempt_plan = Some(plan);
        if from > 0 {
            s.resumes += 1;
        }
        // As in start_iaas: the attempt's start IS the durable progress,
        // and epochs a declined restore abandons are redone — lost work.
        s.lost_work += SimTime::secs((s.epochs_done - from) as f64 * epoch_secs);
        s.epochs_done = from;
        s.ckpt_cost += restore_dollars;
        self.step(h, now, JobLifecycle::Booting);
        self.step(h, now, JobLifecycle::Running { epochs_done: from });
        if self.obs_on {
            if from > 0 {
                self.obs.platform(
                    now,
                    &PlatformEvent::CheckpointRestore {
                        job: job.id,
                        epochs: from,
                    },
                );
            }
            self.obs.attempt(&AttemptSpan {
                job: job.id,
                tenant: job.tenant,
                substrate: Route::Spot,
                attempt,
                queued_at,
                dispatched_at: now,
                startup_s: (boot + restore).as_secs(),
                run_s: run.as_secs(),
            });
        }
        // Attribute the full planned attempt at launch — the same
        // charge-at-dispatch timing FaaS and IaaS use, so tenant budget
        // caps bite route-independently. A preemption settles the
        // difference between planned and actually-held seconds.
        let planned = self.spot_attributed(workers, boot + restore + run);
        self.charge(h, planned + restore_dollars);
        if preempt_after < boot + restore + run {
            self.events
                .push(now + preempt_after, Event::SpotPreempted(h));
        } else {
            self.events
                .push(now + boot + restore + run, Event::SpotDone(h));
        }
        // Restart attempts consume (and are credited) capacity too.
        self.credit_service(h, run);
    }

    /// Attributed spot cost of holding `workers` instances for `held` —
    /// the tier's own pricing, so attribution and bill can't diverge.
    fn spot_attributed(&self, workers: usize, held: SimTime) -> Cost {
        self.spot.price_of(workers, held)
    }

    /// Drain the FaaS admission queue in discipline order. The picked job
    /// blocks the queue if it doesn't fit (strict priority — no backfill
    /// past an earlier deadline or a shorter-served tenant).
    fn drain_faas(&mut self, now: SimTime, sched: &dyn Scheduler) {
        if self.faas_head == self.faas_queue.len() || self.faas.available() == 0 {
            // Nothing can start (every job needs ≥ 1 slot): skip the pass.
            // `try_start` only prunes the warm pool on the way to a
            // decision, and pruning is idempotent over advancing time, so
            // deferring it to the next attempt changes nothing.
            return;
        }
        if matches!(sched.discipline(), QueueDiscipline::Fifo) {
            // FIFO always picks the front: advance the standing head
            // cursor past the started prefix — no tail shift at all —
            // and compact the buffer only when the dead prefix dominates.
            while self.faas_head < self.faas_queue.len() {
                let h = self.faas_queue[self.faas_head];
                if !self.start_faas(h, now) {
                    break;
                }
                self.faas_queued_workers -= self.slot(h).job.workers;
                self.faas_head += 1;
            }
            if self.faas_head > 32 && self.faas_head * 2 >= self.faas_queue.len() {
                self.faas_queue.drain(..self.faas_head);
                self.faas_head = 0;
            }
            return;
        }
        while let Some(pos) = self.pick_pos(&self.faas_queue[self.faas_head..], sched) {
            let h = self.faas_queue[self.faas_head + pos];
            if self.start_faas(h, now) {
                self.faas_queued_workers -= self.slot(h).job.workers;
                self.faas_queue.remove(self.faas_head + pos);
            } else {
                break;
            }
        }
    }

    /// Discipline-ordered drain with backfill: every queued job is tried
    /// once per drain (in pick order), so a blocked wide job does not
    /// strand idle instances; leftovers re-trigger the autoscaler.
    fn drain_iaas(&mut self, now: SimTime, sched: &dyn Scheduler) {
        if self.iaas_queue.is_empty() {
            return;
        }
        if self.iaas.free() == 0 {
            // No idle instance means no job can start (`start_iaas` has no
            // effect on failure): keep the queue as-is and go straight to
            // the autoscaler, exactly what a full failed pass would do.
            self.autoscale(now);
            return;
        }
        let mut pending = std::mem::take(&mut self.iaas_queue);
        // Backfill fail-fast: a job wider than the idle capacity cannot
        // start, and after the first `start_iaas` of the pass has ticked
        // the pool's billing integrals to `now`, a failed attempt is a
        // pure no-op (its redundant tick advances by dt = 0, adding
        // exactly +0.0) — so skipping the call is byte-identical output
        // at a fraction of the cost. The first attempt always goes
        // through, to keep the integral subdivision exactly as it was.
        let mut ticked = false;
        match sched.discipline() {
            QueueDiscipline::Fifo => {
                // FIFO visits jobs in queue order: one in-order pass,
                // starters leave, blocked jobs stay — no per-pick scan
                // or element shifting. Hand-rolled compaction instead of
                // `retain` so the pass can stop the moment idle capacity
                // hits zero (nothing after that point can start) and keep
                // the entire tail with one bulk copy of handles.
                let mut out = 0;
                let mut i = 0;
                while i < pending.len() {
                    if ticked && self.iaas.free() == 0 {
                        break;
                    }
                    let h = pending[i];
                    i += 1;
                    if ticked && self.slot(h).job.workers > self.iaas.free() {
                        pending[out] = h;
                        out += 1;
                        continue;
                    }
                    ticked = true;
                    if self.start_iaas(h, now) {
                        self.iaas_queued_workers -= self.slot(h).job.workers;
                    } else {
                        pending[out] = h;
                        out += 1;
                    }
                }
                pending.copy_within(i.., out);
                out += pending.len() - i;
                pending.truncate(out);
            }
            QueueDiscipline::Edf => {
                // Deadlines are fixed within a drain, so sorting once
                // yields exactly the order repeated min-picks would.
                pending.sort_unstable_by(|&a, &b| {
                    let sa = self.slot(a);
                    let sb = self.slot(b);
                    let da = sa.job.deadline.map_or(f64::INFINITY, |d| d.as_secs());
                    let db = sb.job.deadline.map_or(f64::INFINITY, |d| d.as_secs());
                    da.total_cmp(&db).then(sa.seq.cmp(&sb.seq))
                });
                pending.retain(|&h| {
                    if ticked && self.slot(h).job.workers > self.iaas.free() {
                        return true;
                    }
                    ticked = true;
                    if self.start_iaas(h, now) {
                        self.iaas_queued_workers -= self.slot(h).job.workers;
                        false
                    } else {
                        true
                    }
                });
                // Leftovers are deadline-ordered here; put them back in
                // arrival order (seqs are submission-ordered).
                pending.sort_unstable_by_key(|&h| self.slot(h).seq);
            }
            QueueDiscipline::Drr => {
                // Deficit counters move as jobs start, so every pick
                // re-scans; the pick is value-keyed (service, seq), so
                // swap_remove is safe and avoids the shift.
                let mut blocked = Vec::new();
                while let Some(pos) = self.pick_pos(&pending, sched) {
                    let h = pending.swap_remove(pos);
                    if ticked && self.slot(h).job.workers > self.iaas.free() {
                        blocked.push(h);
                        continue;
                    }
                    ticked = true;
                    if self.start_iaas(h, now) {
                        self.iaas_queued_workers -= self.slot(h).job.workers;
                    } else {
                        blocked.push(h);
                    }
                }
                pending = blocked;
                // `swap_remove` scrambled the leftovers; put them back in
                // arrival order (seqs are submission-ordered).
                pending.sort_unstable_by_key(|&h| self.slot(h).seq);
            }
        }
        // The FIFO arm's `retain` never reorders, so the queue is already
        // back in arrival order here for every discipline.
        self.iaas_queue = pending;
        if !self.iaas_queue.is_empty() {
            self.autoscale(now);
        }
    }

    /// Boot more instances if queued demand exceeds what is idle or coming.
    fn autoscale(&mut self, now: SimTime) {
        let deficit = self
            .iaas_queued_workers
            .saturating_sub(self.iaas.free() + self.iaas.provisioning());
        if deficit > 0 {
            if let Some((k, boot)) = self.iaas.scale_up(now, deficit) {
                self.events.push(now + boot, Event::Provisioned(k));
                if self.obs_on {
                    self.obs.platform(
                        now,
                        &PlatformEvent::AutoscaleUp {
                            instances: k,
                            boot_s: boot.as_secs(),
                        },
                    );
                }
            }
        }
    }

    /// Mark the job finished: all epochs durable, lifecycle `Done`, the
    /// actuals fed back to the scheduler's estimator — the closed
    /// prediction loop — and the slab slot recycled.
    fn complete(&mut self, h: Handle, now: SimTime, sched: &mut dyn Scheduler) {
        {
            let s = self.state_mut(h);
            s.epochs_done = s.epochs_total;
        }
        self.step(h, now, JobLifecycle::Done);
        let Slot {
            job: j, state: s, ..
        } = *self.slot(h);
        sched.observe(&CompletedJob {
            id: j.id,
            class: j.class,
            tenant: j.tenant,
            route: s.route,
            workers: j.workers,
            run: s.run,
            startup: s.startup,
            cost: s.cost,
            epochs_total: s.epochs_total,
            preemptions: s.preemptions,
        });
        self.retire(h);
    }

    /// Route the job at `now` and enqueue (or launch) it on the chosen
    /// platform. Shared by fresh arrivals and budget-window releases; the
    /// scheduler's prediction is snapshotted here so prediction error is
    /// scored against what the estimator believed *at admission*.
    fn admit(&mut self, h: Handle, now: SimTime, sched: &mut dyn Scheduler) {
        let view = self.view();
        // The scheduler sees the job as of *admission*: a job released
        // from budget deferral has burned part of its slack, so its
        // submit is advanced to `now` and laxity() measures the deadline
        // slack actually remaining (fresh arrivals have submit == now and
        // are unchanged). Record-keeping keeps the original submit.
        let mut job = self.slot(h).job;
        job.submit = job.submit.max(now);
        // Snapshot first: the prediction scored later is the one routing
        // is about to act on (route() may mutate scheduler state).
        let predicted = sched.estimate(&job);
        let route = sched.route(&job, &view);
        {
            let s = self.state_mut(h);
            s.predicted = predicted;
            s.route = route;
        }
        if self.obs_on {
            // The audit record names the inputs routing acted on: the
            // snapshotted prediction at the tail the policy prices, the
            // risk-adjusted spot ETA (when the policy computes one), and
            // the deadline slack remaining at this admission.
            let q = sched.eta_quantile();
            let e = predicted;
            self.obs.decision(&DecisionRecord {
                at: now,
                job: job.id,
                tenant: job.tenant,
                decision: Decision::Admit {
                    route,
                    eta_quantile: q,
                    predicted_run_s: e.map(|e| e.time(route)),
                    eta_q_s: e.map(|e| e.eta_q(route, q)),
                    spot_eta_s: e.and_then(|e| sched.spot_eta_hint(&job, &e)),
                    laxity_s: job.laxity().map(|l| l.as_secs()),
                },
            });
        }
        // Width is validated against the *routed* platform only: a job
        // too wide for one substrate is fine as long as its scheduler
        // never sends it there.
        match route {
            Route::Faas => {
                assert!(
                    job.workers <= self.cfg.faas.concurrency_limit,
                    "job {} routed to FaaS but wider than the account concurrency limit",
                    job.id
                );
                self.faas_queue.push(h);
                self.faas_queued_workers += job.workers;
                self.drain_faas(now, sched);
            }
            Route::Iaas => {
                assert!(
                    job.workers <= self.cfg.iaas.max_instances,
                    "job {} routed to IaaS but wider than the autoscaling ceiling",
                    job.id
                );
                self.iaas_queue.push(h);
                self.iaas_queued_workers += job.workers;
                self.drain_iaas(now, sched);
            }
            Route::Spot => {
                assert!(
                    job.workers <= self.cfg.iaas.max_instances,
                    "job {} routed to spot but wider than the reserved pool it may \
                     fall back to after {} preemptions",
                    job.id,
                    self.cfg.spot.max_retries
                );
                self.start_spot(h, now);
            }
        }
    }

    /// Deferral-vs-rejection pricing for an over-allowance arrival: defer
    /// costs nothing when the job's P95 completion after the next window
    /// boundary still makes its deadline, and `deadline_miss_cost` when it
    /// (at P95) cannot; rejection always costs `rejection_cost`.
    /// `reject` is set when rejecting is strictly cheaper — i.e. the job
    /// is doomed at the tail and the platform prices a clean refusal below
    /// a late finish. Deadline-less jobs (and constant routers, which
    /// predict nothing) always defer. The intermediate prices ride along
    /// so the decision audit can name what settled the call.
    fn price_over_allowance(
        &self,
        h: Handle,
        now: SimTime,
        sched: &dyn Scheduler,
    ) -> OverAllowance {
        let mut pricing = OverAllowance {
            reject: false,
            laxity_s: None,
            release_s: None,
            eta_q_s: None,
        };
        // The standing window chain ticks at multiples of `w`: the job
        // would be released at the next boundary. Known whether or not the
        // job carries a deadline, so every Defer audit names it.
        let release = self
            .cfg
            .budget_window
            .map(|w| SimTime::secs(((now.as_secs() / w.as_secs()).floor() + 1.0) * w.as_secs()));
        pricing.release_s = release.map(|r| r.as_secs());
        let job = self.slot(h).job;
        let Some(deadline) = job.deadline else {
            return pricing;
        };
        pricing.laxity_s = Some(deadline.as_secs() - now.as_secs());
        let Some(release) = release else {
            return pricing;
        };
        let mut probe = job;
        probe.submit = release;
        let Some(e) = sched.estimate(&probe) else {
            return pricing;
        };
        // Best-substrate quantile run after release, priced at the same
        // tail the scheduler routes with (queue/startup slack is the
        // deadline's own business — the pricing only needs the tail run).
        let q = sched.eta_quantile();
        let eta = e.eta_q(Route::Faas, q).min(e.eta_q(Route::Iaas, q));
        pricing.eta_q_s = Some(eta);
        let misses = release + SimTime::secs(eta) > deadline;
        let defer_cost = if misses {
            self.cfg.deadline_miss_cost
        } else {
            0.0
        };
        pricing.reject = self.cfg.rejection_cost < defer_cost;
        pricing
    }

    /// Emit the defer/reject decision record for an over-allowance job.
    fn record_refusal(&mut self, h: Handle, now: SimTime, pricing: OverAllowance, rejected: bool) {
        if !self.obs_on {
            return;
        }
        let j = self.slot(h).job;
        let decision = if rejected {
            Decision::Reject {
                laxity_s: pricing.laxity_s,
                release_s: pricing.release_s,
                eta_q_s: pricing.eta_q_s,
                deadline_miss_cost: self.cfg.deadline_miss_cost,
                rejection_cost: self.cfg.rejection_cost,
            }
        } else {
            Decision::Defer {
                laxity_s: pricing.laxity_s,
                release_s: pricing.release_s,
                eta_q_s: pricing.eta_q_s,
                deadline_miss_cost: self.cfg.deadline_miss_cost,
                rejection_cost: self.cfg.rejection_cost,
            }
        };
        self.obs.decision(&DecisionRecord {
            at: now,
            job: j.id,
            tenant: j.tenant,
            decision,
        });
    }

    /// Hold the job until the next budget window boundary. The standing
    /// window chain (set up by the replay driver whenever the source
    /// declares budgets) guarantees a boundary event is already in flight.
    fn defer(&mut self, h: Handle, now: SimTime) {
        debug_assert!(self.window_scheduled, "deferral needs the window chain");
        self.step(h, now, JobLifecycle::Deferred);
        self.state_mut(h).deferred = true;
        self.deferred_queue.push(h);
    }

    /// Handle every event type (arrivals never enter the queue — the
    /// replay driver pulls them from the [`TraceSource`] directly).
    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut dyn Scheduler) {
        match ev {
            Event::FaasDone(h) => {
                self.faas.release(now, self.slot(h).job.workers);
                self.complete(h, now, sched);
                self.drain_faas(now, sched);
            }
            Event::IaasDone(h) => {
                self.iaas.finish(now, self.slot(h).job.workers);
                self.complete(h, now, sched);
                self.drain_iaas(now, sched);
                if self.iaas_queue.is_empty() {
                    self.events
                        .push(now + self.cfg.iaas.idle_after, Event::IdleCheck);
                }
            }
            Event::SpotDone(h) => {
                let Slot { job, state: s, .. } = *self.slot(h);
                let workers = job.workers;
                let plan = s.attempt_plan.expect("spot completion without a plan");
                let run = SimTime::secs(plan.run_secs());
                let held = s.attempt_boot + s.attempt_restore + run;
                self.spot.finish(workers, held);
                // Clean attempts feed the risk loop too: exposure without
                // an event is what keeps the learned rate unbiased.
                sched.observe_preemption(&PreemptionObs {
                    class: job.class,
                    tenant: job.tenant,
                    workers,
                    held,
                    preempted: false,
                });
                // The instance-seconds were attributed at launch; only the
                // uploads the successful attempt initiated remain to bill
                // — checkpointing is insurance, paid either way.
                let writes = plan.writes_on_success();
                let cache = self.class_cache(job.class, workers);
                let write_dollars = cache.ckpt_write_dollars * writes as f64;
                let cost = write_dollars;
                let st = self.state_mut(h);
                st.startup += st.attempt_boot + st.attempt_restore;
                st.run += run;
                st.ckpt_writes += writes;
                st.ckpt_cost += write_dollars;
                if writes > 0 && self.obs_on {
                    self.obs.platform(
                        now,
                        &PlatformEvent::CheckpointWrite {
                            job: job.id,
                            writes,
                        },
                    );
                }
                self.charge(h, cost);
                self.complete(h, now, sched);
            }
            Event::SpotPreempted(h) => {
                let Slot { job, state: s, .. } = *self.slot(h);
                let workers = job.workers;
                let plan = s.attempt_plan.expect("spot preemption without a plan");
                let held = now - s.attempt_start;
                let overhead = s.attempt_boot + s.attempt_restore;
                // Seconds of the run phase actually trained before the
                // market struck (zero if it struck during boot/restore).
                let run_elapsed = (held - overhead).as_secs().max(0.0);
                let outcome = preempt_outcome(&plan, run_elapsed);
                self.spot.preempted(workers, held);
                // Every reclaim reaches the scheduler's preemption
                // posterior the moment it lands, not only when (if) the
                // job finally completes.
                sched.observe_preemption(&PreemptionObs {
                    class: job.class,
                    tenant: job.tenant,
                    workers,
                    held,
                    preempted: true,
                });
                // Every initiated upload is billed — including the partial
                // write the preemption interrupted. The launch attributed
                // the full planned hold; settle down to the seconds the
                // market actually allowed.
                let cache = self.class_cache(job.class, workers);
                let write_dollars = cache.ckpt_write_dollars * outcome.writes_started as f64;
                let planned = overhead + SimTime::secs(plan.run_secs());
                let settle =
                    self.spot_attributed(workers, held) - self.spot_attributed(workers, planned);
                let cost = settle + write_dollars;
                let st = self.state_mut(h);
                st.preemptions += 1;
                st.startup += held.min(overhead);
                st.run += SimTime::secs(run_elapsed);
                st.lost_work += outcome.lost_work;
                st.ckpt_writes += outcome.writes_started;
                st.ckpt_cost += write_dollars;
                let durable = outcome.durable_epochs;
                if outcome.writes_interrupted > 0 {
                    self.step(
                        h,
                        now,
                        JobLifecycle::Checkpointing {
                            epochs_done: durable,
                        },
                    );
                }
                self.step(
                    h,
                    now,
                    JobLifecycle::Preempted {
                        epochs_done: durable,
                    },
                );
                self.step(
                    h,
                    now,
                    JobLifecycle::Requeued {
                        epochs_done: durable,
                    },
                );
                if self.obs_on {
                    self.obs.platform(
                        now,
                        &PlatformEvent::SpotReclaim {
                            job: job.id,
                            // The in-flight attempt's 0-based index (the
                            // launch already advanced the counter).
                            attempt: self.slot(h).state.attempt - 1,
                            workers,
                            held_s: held.as_secs(),
                        },
                    );
                    if outcome.writes_started > 0 {
                        self.obs.platform(
                            now,
                            &PlatformEvent::CheckpointWrite {
                                job: job.id,
                                writes: outcome.writes_started,
                            },
                        );
                    }
                }
                let st = self.state_mut(h);
                st.epochs_done = durable;
                st.ready_since = now;
                self.charge(h, cost);
                // Work past the last durable checkpoint is lost: requeue on
                // a fresh spot cluster, or — once the retry budget is spent
                // — fall back to the reserved pool, resuming from the
                // checkpoint there (the record keeps its Spot route and its
                // preemption history).
                if self.slot(h).state.preemptions <= self.cfg.spot.max_retries {
                    self.start_spot(h, now);
                } else {
                    self.iaas_queue.push(h);
                    self.iaas_queued_workers += workers;
                    self.drain_iaas(now, sched);
                }
            }
            Event::Provisioned(k) => {
                self.iaas.provisioned(now, k);
                self.drain_iaas(now, sched);
            }
            Event::IdleCheck => {
                if self.iaas_queue.is_empty() {
                    let released = self.iaas.scale_down_idle(now);
                    if released > 0 && self.obs_on {
                        self.obs.platform(
                            now,
                            &PlatformEvent::AutoscaleDown {
                                instances: released,
                            },
                        );
                    }
                }
            }
            Event::BudgetWindow => {
                // A new accounting window opens: every tenant gets a fresh
                // allowance, and the jobs that sat out the last window are
                // admitted (in arrival order). The chain re-arms itself at
                // every boundary — ledgers reset whether or not anyone was
                // deferred, so budgets really are per-window allowances —
                // and stops once all jobs are terminal (the trailing event,
                // if any, is dropped by the replay loop before it can
                // stretch the makespan).
                for spent in self.tenant_spend.values_mut() {
                    *spent = 0.0;
                }
                let held = std::mem::take(&mut self.deferred_queue);
                for h in held {
                    // The fresh allowance is a cap, not a floodgate: a
                    // backlog larger than one window's budget drains at
                    // the budgeted rate, window over window (spend is
                    // attributed at dispatch, so jobs admitted here but
                    // still queueing don't show yet — the same
                    // charge-at-dispatch approximation arrivals use).
                    if self.budget_exhausted(self.slot(h).job.tenant) {
                        // Re-price before holding the job another window:
                        // a deadline that was viable at arrival may have
                        // become doomed while the job waited — the exact
                        // case the pricing exists to refuse cleanly.
                        let pricing = self.price_over_allowance(h, now, &*sched);
                        if pricing.reject {
                            self.step(h, now, JobLifecycle::Queued);
                            self.step(h, now, JobLifecycle::Rejected);
                            self.record_refusal(h, now, pricing, true);
                            self.retire(h);
                        } else {
                            self.deferred_queue.push(h);
                        }
                        continue;
                    }
                    self.step(h, now, JobLifecycle::Queued);
                    self.admit(h, now, sched);
                }
                if self.live > 0 || self.more_arrivals {
                    let w = self.cfg.budget_window.expect("chain implies a window");
                    self.events.push(now + w, Event::BudgetWindow);
                } else {
                    self.window_scheduled = false;
                }
            }
            Event::GaugeTick => {
                // The observer's standing telemetry clock: sample and
                // re-arm while work remains (the trailing tick, like the
                // budget window's, is dropped by the replay loop so it
                // can't stretch the run).
                self.sample_gauges(now);
                if self.live > 0 || self.more_arrivals {
                    if let Some(p) = self.obs.gauge_period() {
                        self.events.push(now + p, Event::GaugeTick);
                    }
                }
            }
        }
    }
}

/// What a replay produced: full metrics (records collected) or the
/// constant-size summary (bounded path).
enum ReplayResult {
    // Boxed: the full rollup dwarfs the bounded summary, and this enum
    // crosses a return boundary per replay, not per event.
    Metrics(Box<FleetMetrics>),
    Summary(ReplaySummary),
}

/// The streaming replay driver behind every public entry point: pull
/// arrivals from `source` on demand, merge them with the event heap on
/// simulation time (arrival wins ties — it would have carried the lowest
/// heap sequence number in the batch-scheduled engine, so the pop order
/// is bit-identical), and run the fleet to quiescence.
fn run_replay<S: TraceSource>(
    mut source: S,
    cfg: &FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    observer: &mut (dyn FleetObserver + '_),
    collect: bool,
) -> Result<ReplayResult, String> {
    // The budget preamble comes first (sources deliver it before any job).
    let budgets = source.budgets()?;
    observer.begin(scheduler.name(), seed, source.len_hint().unwrap_or(0));
    let mut pending = source.next_job()?;
    let eta_quantile = scheduler.eta_quantile();
    let track_service = matches!(scheduler.discipline(), QueueDiscipline::Drr);
    let mut fleet = Fleet::new(
        cfg,
        budgets,
        seed,
        observer,
        eta_quantile,
        track_service,
        collect,
    );
    fleet.more_arrivals = pending.is_some();
    // The heap only ever holds in-flight events (completions, preemptions,
    // provisioning, the standing clocks) — never future arrivals — so one
    // modest reservation covers any trace length. Kept under the
    // allocator's mmap threshold: a fresh 128 KiB block per run would be
    // a syscall plus a page-fault storm in a cold process.
    fleet.events.reserve(512);
    // Pre-size the slabs from the advisory length hint: one exact-fit
    // allocation beats a doubling-chain of reallocs mid-replay (a wrong
    // hint costs a realloc or some slack, never correctness). The record
    // sink genuinely reaches trace length; the job slab only holds the
    // in-flight working set, so its reservation stays bounded no matter
    // how long the trace claims to be.
    if let Some(n) = source.len_hint() {
        if let Sink::Records(records) = &mut fleet.sink {
            records.reserve_exact(n);
        }
        fleet.slots.reserve(n.min(256));
        fleet.free.reserve(n.min(256));
    }
    // Budget windows are a standing clock, not a deferral side effect:
    // ledgers must reset at *every* boundary (a tenant spending a steady
    // 70% of its allowance per window is never over budget), so arm the
    // chain up front whenever windowed budgets are in play.
    if let Some(w) = cfg.budget_window {
        if !fleet.budgets.is_empty() && pending.is_some() {
            fleet.window_scheduled = true;
            fleet.events.push(w, Event::BudgetWindow);
        }
    }
    // Arm the observer's standing gauge clock, if it wants one. With the
    // default (`None`) the queue carries no extra events at all.
    if let Some(p) = fleet.obs.gauge_period() {
        if pending.is_some() {
            fleet.events.push(p, Event::GaugeTick);
        }
    }

    let mut last_time = SimTime::ZERO;
    let mut last_submit = SimTime::ZERO;
    let mut pops: u64 = 0;
    loop {
        // Merge the pulled arrival stream with the event heap on time;
        // at a tie the arrival goes first (see the function docs).
        let take_arrival = match (&pending, fleet.events.peek_time()) {
            (Some(j), Some(t)) => j.submit <= t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_arrival {
            let job = pending.take().expect("checked above");
            pending = source.next_job()?;
            fleet.more_arrivals = pending.is_some();
            let now = job.submit;
            if now < last_submit {
                return Err(format!(
                    "trace source delivered out-of-order arrivals: job {} submits at {} \
                     after {} (streaming replay needs non-decreasing submit times)",
                    job.id,
                    now.as_secs(),
                    last_submit.as_secs()
                ));
            }
            last_submit = now;
            pops += 1;
            fleet.flush_rollups_to(now);
            last_time = now;
            let h = fleet.insert(job);
            // Budget cap: a tenant whose attributed spend has exhausted its
            // declared budget gets no more admissions this window. With a
            // budget window configured the job is priced per job —
            // `Deferred` to the next window's fresh allowance when that
            // can still work (or costs less than refusing), `Rejected`
            // when a P95 deadline miss is already locked in and the
            // platform prices rejection below it. Without a window (or for
            // a tenant whose cap is zero — no window can ever afford it)
            // the job ends `Rejected` without touching a platform.
            if fleet.budget_exhausted(job.tenant) {
                let cap = fleet.budgets.get(job.tenant).copied().unwrap_or(0.0);
                let pricing = match cfg.budget_window {
                    Some(_) if cap > 0.0 => fleet.price_over_allowance(h, now, &*scheduler),
                    _ => OverAllowance {
                        reject: true,
                        laxity_s: None,
                        release_s: None,
                        eta_q_s: None,
                    },
                };
                if pricing.reject {
                    fleet.step(h, now, JobLifecycle::Rejected);
                    fleet.record_refusal(h, now, pricing, true);
                    fleet.retire(h);
                } else {
                    fleet.defer(h, now);
                    fleet.record_refusal(h, now, pricing, false);
                }
                continue;
            }
            fleet.admit(h, now, scheduler);
        } else {
            let (now, ev) = fleet.events.pop().expect("checked above");
            pops += 1;
            if matches!(ev, Event::BudgetWindow | Event::GaugeTick)
                && fleet.live == 0
                && !fleet.more_arrivals
            {
                // A standing chain's trailing tick after the last job
                // finished: dropped before it can stretch the makespan or
                // idle billing.
                continue;
            }
            fleet.flush_rollups_to(now);
            if ev != Event::GaugeTick {
                // Gauge ticks observe; they must not move the billing
                // clock (idle-pool finalization bills through `last_time`).
                last_time = now;
            }
            fleet.handle(now, ev, scheduler);
        }
    }

    fleet.iaas.finalize(last_time);
    debug_assert!(fleet.live == 0, "all jobs must reach a terminal state");
    debug_assert_eq!(
        fleet.slots.len(),
        fleet.free.len(),
        "every slab slot must be recycled"
    );
    fleet.finish_rollups();
    fleet.obs.replay(&ReplayStats {
        arrivals_streamed: fleet.arrivals_streamed,
        peak_resident_jobs: fleet.peak_resident,
        peak_queue_depth: fleet.events.peak_len() as u64,
    });
    // Arrivals never enter the heap, but they are events all the same:
    // count them as both pushes and pops so the throughput headline stays
    // comparable with the batch-scheduled engine.
    let pushes = fleet.events.pushes() + fleet.arrivals_streamed;
    fleet.obs.end(pushes, pops);

    let Fleet {
        sink,
        faas,
        iaas,
        spot,
        arrivals_streamed,
        peak_resident,
        ..
    } = fleet;
    Ok(match sink {
        Sink::Records(records) => {
            let records: Vec<JobRecord> = records
                .into_iter()
                .map(|r| r.expect("every streamed job retires exactly once"))
                .collect();
            // The provisioned floor bills over the makespan (last job
            // finish), not over `last_time` — the trailing IaaS IdleCheck
            // event would otherwise add phantom idle_after seconds only to
            // policies that touch the pool. One definition, shared with
            // the metrics rollup.
            let makespan = JobRecord::makespan(&records);
            ReplayResult::Metrics(Box::new(FleetMetrics::from_records(
                scheduler.name(),
                seed,
                records,
                PlatformTotals {
                    iaas_cost: iaas.cost(),
                    warm_hit_rate: faas.warm_hit_rate(),
                    cold_starts: faas.cold_starts(),
                    iaas_utilization: iaas.utilization(),
                    iaas_peak_instances: iaas.peak_capacity(),
                    faas_peak_concurrency: faas.peak_concurrency(),
                    spot_cost: spot.cost(),
                    preemptions: spot.preemptions(),
                    faas_provisioned_cost: faas.provisioned_cost(makespan),
                    spot_peak_instances: spot.peak_in_use(),
                },
            )))
        }
        Sink::Bounded(acc) => {
            // Same decomposition as FleetMetrics::total_cost, minus the
            // per-record intermediates the bounded path never holds.
            let total_cost = acc.faas_attributed
                + faas.provisioned_cost(acc.makespan)
                + iaas.cost()
                + spot.cost()
                + acc.ckpt_dollars;
            ReplayResult::Summary(ReplaySummary {
                jobs: arrivals_streamed,
                completed: acc.completed,
                rejected: acc.rejected,
                deferred: acc.deferred,
                makespan: acc.makespan,
                total_cost,
                peak_resident_jobs: peak_resident,
            })
        }
    })
}

/// Stream `source` through `scheduler` on the configured platforms,
/// collecting full per-job metrics.
///
/// Memory holds the in-flight working set plus one [`JobRecord`] per
/// streamed job (the metrics need them); for traces too large even for
/// that, use [`replay_stats`]. Replaying an in-memory trace through
/// [`InMemorySource`] is byte-identical to [`simulate`].
///
/// ```
/// use lml_fleet::{
///     replay, simulate, AllFaas, ArrivalProcess, FleetConfig, InMemorySource, JobMix, Trace,
/// };
///
/// let trace = Trace::generate(
///     ArrivalProcess::Poisson { rate: 0.2 },
///     &JobMix::default_mix(),
///     50,
///     7,
/// );
/// let cfg = FleetConfig::default();
/// let streamed = replay(InMemorySource::new(&trace), &cfg, &mut AllFaas, 7).unwrap();
/// let in_memory = simulate(&trace, &cfg, &mut AllFaas, 7);
/// assert_eq!(streamed.to_json(), in_memory.to_json(), "same bytes");
/// ```
pub fn replay<S: TraceSource>(
    source: S,
    cfg: &FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
) -> Result<FleetMetrics, String> {
    replay_observed(source, cfg, scheduler, seed, &mut NullObserver)
}

/// [`replay`] with an observer: every validated lifecycle transition,
/// scheduler decision, platform event, dispatch span, windowed gauge
/// sample, and — when the observer requests a
/// [`FleetObserver::rollup_period`] — incremental [`WindowRollup`]s as the
/// clock crosses each boundary, plus the final [`ReplayStats`].
pub fn replay_observed<S: TraceSource>(
    source: S,
    cfg: &FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    observer: &mut (dyn FleetObserver + '_),
) -> Result<FleetMetrics, String> {
    match run_replay(source, cfg, scheduler, seed, observer, true)? {
        ReplayResult::Metrics(m) => Ok(*m),
        ReplayResult::Summary(_) => unreachable!("collecting replay returns metrics"),
    }
}

/// Constant-memory replay: stream `source` to quiescence keeping only the
/// in-flight working set and a running [`ReplaySummary`] — no per-job
/// records, so a ten-million-job trace needs the same resident state as a
/// four-hundred-job one. The summary's `peak_resident_jobs` reports the
/// slab high-water mark that proves it.
pub fn replay_stats<S: TraceSource>(
    source: S,
    cfg: &FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    observer: &mut (dyn FleetObserver + '_),
) -> Result<ReplaySummary, String> {
    match run_replay(source, cfg, scheduler, seed, observer, false)? {
        ReplayResult::Summary(s) => Ok(s),
        ReplayResult::Metrics(_) => unreachable!("bounded replay returns a summary"),
    }
}

/// Run `trace` through `scheduler` on the configured platforms.
///
/// Observability-free view of [`simulate_observed`]: the default
/// [`NullObserver`] makes every hook a no-op, so this is byte-identical to
/// the pre-observer simulator.
///
/// Output is a pure function of `(trace, config, scheduler, seed)` —
/// same inputs, byte-identical [`FleetMetrics::to_json`]:
///
/// ```
/// use lml_fleet::{simulate, AllFaas, ArrivalProcess, FleetConfig, JobMix, Trace};
///
/// let trace = Trace::generate(
///     ArrivalProcess::Poisson { rate: 0.2 },
///     &JobMix::default_mix(),
///     50,
///     7,
/// );
/// let cfg = FleetConfig::default();
/// let m = simulate(&trace, &cfg, &mut AllFaas, 7);
/// assert_eq!(m.n_jobs, 50);
/// assert!(m.to_json().starts_with(r#"{"schema":"lml-fleet/metrics/v1""#));
///
/// let again = simulate(&trace, &cfg, &mut AllFaas, 7);
/// assert_eq!(m.to_json(), again.to_json(), "same seed, same bytes");
/// ```
pub fn simulate(
    trace: &Trace,
    cfg: &FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
) -> FleetMetrics {
    simulate_observed(trace, cfg, scheduler, seed, &mut NullObserver)
}

/// Run `trace` through `scheduler`, narrating the run into `observer`:
/// every validated lifecycle transition, scheduler decision (with the
/// ETAs/prices that drove it), platform event, dispatch span, and — when
/// the observer requests a [`FleetObserver::gauge_period`] — windowed
/// telemetry gauges on a standing clock.
///
/// The observer is passive: it mutates nothing the simulation reads, so a
/// [`NullObserver`] run is byte-identical to the unobserved simulator.
/// (An armed gauge clock does insert `GaugeTick` events into the queue —
/// runs compare byte-for-byte against runs with the same observer
/// configuration.)
///
/// ```
/// use lml_fleet::{
///     simulate, simulate_observed, AllIaas, ArrivalProcess, FleetConfig, JobMix,
///     ThroughputProbe, Trace,
/// };
///
/// let trace = Trace::generate(
///     ArrivalProcess::Poisson { rate: 0.2 },
///     &JobMix::default_mix(),
///     50,
///     7,
/// );
/// let cfg = FleetConfig::default();
/// let mut probe = ThroughputProbe::new();
/// let m = simulate_observed(&trace, &cfg, &mut AllIaas, 7, &mut probe);
/// assert_eq!(probe.runs, 1);
/// assert!(probe.heap_pops > 0 && probe.busy_secs() > 0.0);
///
/// // Passive observer: metrics match the unobserved run exactly.
/// let unobserved = simulate(&trace, &cfg, &mut AllIaas, 7);
/// assert_eq!(m.to_json(), unobserved.to_json());
/// ```
pub fn simulate_observed<'a>(
    trace: &'a Trace,
    cfg: &'a FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    observer: &'a mut (dyn FleetObserver + 'a),
) -> FleetMetrics {
    replay_observed(InMemorySource::new(trace), cfg, scheduler, seed, observer)
        .expect("an in-memory trace cannot fail to stream")
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;
    use crate::scheduler::{AllFaas, AllIaas, CostAware, DeadlineAware, FairShare};
    use crate::workload::{ArrivalProcess, JobMix, TenantSpec, Trace};

    fn small_trace(n: usize, rate: f64, seed: u64) -> Trace {
        Trace::generate(
            ArrivalProcess::Poisson { rate },
            &JobMix::convex_mix(),
            n,
            seed,
        )
    }

    #[test]
    fn all_jobs_complete_on_every_policy() {
        let trace = small_trace(100, 0.5, 42);
        let cfg = FleetConfig::default();
        for (name, sched) in [
            ("all-faas", &mut AllFaas as &mut dyn Scheduler),
            ("all-iaas", &mut AllIaas),
            ("cost-aware", &mut CostAware::new()),
            ("deadline-aware", &mut DeadlineAware::new()),
            ("fair-share", &mut FairShare::new()),
        ] {
            let m = simulate(&trace, &cfg, sched, 42);
            assert_eq!(m.n_jobs, 100, "{name}");
            assert!(m.makespan >= trace.horizon(), "{name}");
            assert!(m.latency.p99 >= m.latency.p50, "{name}");
            assert!(m.total_cost().as_usd() > 0.0, "{name}");
        }
    }

    #[test]
    fn same_seed_same_metrics_json() {
        let cfg = FleetConfig::default();
        let run = || {
            let trace = small_trace(200, 1.0, 7);
            simulate(&trace, &cfg, &mut CostAware::new(), 7).to_json()
        };
        assert_eq!(run(), run(), "byte-identical JSON for identical inputs");
    }

    #[test]
    fn warm_hit_rate_rises_with_arrival_rate() {
        let cfg = FleetConfig::default();
        let rate_of = |rate: f64| {
            let trace = small_trace(300, rate, 11);
            simulate(&trace, &cfg, &mut AllFaas, 11).warm_hit_rate
        };
        let slow = rate_of(0.0003); // one job every ~55 min: pools go stale
        let fast = rate_of(1.0);
        assert!(
            fast > slow + 0.2,
            "cold-start probability must fall as traffic rises: slow {slow} fast {fast}"
        );
    }

    #[test]
    fn faas_queue_kicks_in_at_the_concurrency_limit() {
        let mut cfg = FleetConfig::default();
        cfg.faas.concurrency_limit = 20; // two 10-worker jobs at a time
        let trace = Trace::generate(
            ArrivalProcess::Poisson { rate: 5.0 },
            &JobMix::only(JobClass::LrHiggs),
            40,
            3,
        );
        let m = simulate(&trace, &cfg, &mut AllFaas, 3);
        assert!(m.queue.max > 0.0, "queueing must appear under the limit");
        assert!(m.faas_peak_concurrency <= 20);
    }

    #[test]
    fn iaas_autoscaler_grows_and_charges_idle_floor() {
        let trace = small_trace(150, 1.0, 5);
        let cfg = FleetConfig::default();
        let m = simulate(&trace, &cfg, &mut AllIaas, 5);
        assert!(
            m.iaas_peak_instances > cfg.iaas.min_instances,
            "burst must trigger scale-up, peak {}",
            m.iaas_peak_instances
        );
        assert!(m.iaas_cost.as_usd() > 0.0);
        assert!(m.iaas_utilization > 0.0 && m.iaas_utilization <= 1.0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace::from_jobs(vec![]);
        let m = simulate(&trace, &FleetConfig::default(), &mut AllFaas, 1);
        assert_eq!(m.n_jobs, 0);
        assert_eq!(m.total_cost().as_usd() + m.latency.p99, 0.0);
        assert_eq!(m.deadline_hit_rate(), 1.0, "vacuously met");
        assert_eq!(m.fairness, 1.0, "vacuously fair");
    }

    /// All spot-routed jobs complete despite preemptions, preemptions are
    /// counted, and the spot bill is cheaper than the equivalent on-demand
    /// attribution.
    #[test]
    fn spot_jobs_survive_preemption_and_cost_less() {
        let mut cfg = FleetConfig::default();
        // Aggressive market: ~17 min mean per instance, 10-wide jobs die
        // every ~100 s — the convex zoo still finishes.
        cfg.spot.mean_time_to_preempt = SimTime::secs(1_000.0);
        let trace = small_trace(120, 0.5, 19);
        let mut sched = FairShare::new().with_spot_fraction(1.0);
        let m = simulate(&trace, &cfg, &mut sched, 19);
        assert_eq!(m.n_jobs, 120);
        assert!(m.jobs_on_spot > 0, "spot fraction 1.0 must route to spot");
        assert!(m.preemptions > 0, "aggressive market must preempt someone");
        let preempted: u32 = m.records.iter().map(|r| r.preemptions).sum();
        assert_eq!(preempted as u64, m.preemptions, "per-job counts add up");
        // The per-job attribution covers at least the tier's bill (records
        // of jobs that fell back to the pool also carry an IaaS share).
        assert!(m.spot_cost.as_usd() > 0.0);
        let attributed: f64 = m
            .records
            .iter()
            .filter(|r| r.route == Route::Spot)
            .map(|r| r.cost.as_usd())
            .sum();
        assert!(
            attributed >= m.spot_cost.as_usd() * (1.0 - 1e-9),
            "attribution {attributed} vs tier bill {}",
            m.spot_cost.as_usd()
        );
    }

    /// On a hostile market every attempt dies fast; jobs exhaust the retry
    /// budget, fall back to the reserved pool, and still all complete.
    #[test]
    fn hostile_spot_market_falls_back_to_reserved_pool() {
        let mut cfg = FleetConfig::default();
        cfg.spot.mean_time_to_preempt = SimTime::secs(50.0); // 10-wide: ~5 s
        cfg.spot.max_retries = 2;
        let trace = small_trace(60, 0.5, 31);
        let mut sched = FairShare::new().with_spot_fraction(1.0);
        let m = simulate(&trace, &cfg, &mut sched, 31);
        assert_eq!(m.n_jobs, 60, "every job completes despite the market");
        assert!(m.preemptions > 0);
        for r in &m.records {
            assert!(
                r.preemptions <= cfg.spot.max_retries + 1,
                "job {} preempted {} times, budget is {}",
                r.id,
                r.preemptions,
                cfg.spot.max_retries
            );
            // Accounting stays consistent across restarts and fallback.
            assert!(
                (r.finish() - r.submit - r.latency()).as_secs().abs() < 1e-6,
                "latency components must tile submit→finish for job {}",
                r.id
            );
        }
        assert!(
            m.iaas_cost.as_usd() > 0.0,
            "fallback work lands on the pool"
        );
    }

    /// The preemption process is part of the deterministic seed contract.
    #[test]
    fn spot_preemptions_are_deterministic() {
        let mut cfg = FleetConfig::default();
        cfg.spot.mean_time_to_preempt = SimTime::secs(2_000.0);
        let run = |seed: u64| {
            let trace = small_trace(100, 0.5, seed);
            let mut sched = FairShare::new().with_spot_fraction(0.8);
            simulate(&trace, &cfg, &mut sched, seed).to_json()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds give different markets");
    }

    /// Provisioned concurrency converts cold starts to warm starts at a
    /// trickle arrival rate — and bills for it.
    #[test]
    fn provisioned_concurrency_buys_warm_starts() {
        let trace = small_trace(60, 0.002, 23); // pools go stale between jobs
        let cold_cfg = FleetConfig::default();
        let cold = simulate(&trace, &cold_cfg, &mut AllFaas, 23);
        let mut warm_cfg = FleetConfig::default();
        warm_cfg.faas.provisioned_concurrency = 100;
        let warm = simulate(&trace, &warm_cfg, &mut AllFaas, 23);
        assert!(
            warm.warm_hit_rate > cold.warm_hit_rate + 0.3,
            "provisioned floor must lift warm hits: {} vs {}",
            warm.warm_hit_rate,
            cold.warm_hit_rate
        );
        assert!(warm.startup.p99 < cold.startup.p99);
        assert_eq!(cold.faas_provisioned_cost.as_usd(), 0.0);
        assert!(warm.faas_provisioned_cost.as_usd() > 0.0);
    }

    /// On a perfectly calibrated zoo, cost-aware predictions match the
    /// simulated FaaS runs exactly (identical formulas) — runtime MAPE is
    /// ~0 — and constant routers predict nothing.
    #[test]
    fn predictions_are_snapshotted_and_scored() {
        let trace = small_trace(80, 0.5, 17);
        let cfg = FleetConfig::default();
        let m = simulate(&trace, &cfg, &mut CostAware::new(), 17);
        assert_eq!(m.predicted_jobs, 80, "every admitted job carries one");
        let faas_apes: Vec<f64> = m
            .records
            .iter()
            .filter(|r| r.route == Route::Faas)
            .filter_map(|r| r.runtime_ape())
            .collect();
        for ape in &faas_apes {
            assert!(*ape < 1e-9, "calibrated FaaS prediction is exact: {ape}");
        }
        let blind = simulate(&trace, &cfg, &mut AllFaas, 17);
        assert_eq!(blind.predicted_jobs, 0);
        assert_eq!(blind.runtime_mape, 0.0);
        assert!(blind.records.iter().all(|r| r.predicted_run.is_none()));
    }

    /// The epoch-scale knob stretches actual runtimes while the analytic
    /// prior stays put: MAPE under the blind estimator ≈ the miscalibration,
    /// and the online estimator learns it away within the run.
    #[test]
    fn miscalibrated_zoo_inflates_blind_mape_and_online_learns_it() {
        let trace = small_trace(300, 0.5, 23);
        let cfg = FleetConfig {
            epoch_scale: 2.0,
            ..FleetConfig::default()
        };
        let blind = simulate(&trace, &cfg, &mut CostAware::new(), 23);
        assert!(
            (blind.runtime_mape - 0.5).abs() < 0.05,
            "actuals are 2× the prediction → MAPE ≈ 0.5, got {}",
            blind.runtime_mape
        );
        let mut learned = CostAware::new().with_estimator(Box::new(crate::estimate::Online::new(
            crate::estimate::Analytic::new(),
        )));
        let online = simulate(&trace, &cfg, &mut learned, 23);
        assert!(
            online.runtime_mape < blind.runtime_mape * 0.6,
            "online feedback must cut MAPE: {} vs blind {}",
            online.runtime_mape,
            blind.runtime_mape
        );
        let windows = online.runtime_mape_windows(3);
        assert!(
            windows[2] < windows[0],
            "late windows must beat early ones: {windows:?}"
        );
        // Sanity: the calibrated zoo keeps near-zero error for both.
        let calib = simulate(&trace, &FleetConfig::default(), &mut CostAware::new(), 23);
        assert!(calib.runtime_mape < 0.05, "{}", calib.runtime_mape);
    }

    /// Budget deferral: with an accounting window, an over-budget tenant's
    /// jobs wait for the next window instead of dying — nothing is
    /// rejected, every job eventually completes, and the deferrals are
    /// surfaced per tenant.
    #[test]
    fn budget_window_defers_instead_of_rejecting() {
        let spec = TenantSpec {
            n_tenants: 2,
            deadline_frac: 0.0,
            deadline_slack: 3.0,
        };
        let base = Trace::generate_multi(
            ArrivalProcess::Poisson { rate: 0.5 },
            &JobMix::convex_mix(),
            &spec,
            200,
            31,
        )
        .with_budget(0, 0.02);
        let reject_cfg = FleetConfig::default();
        let rejected = simulate(&base, &reject_cfg, &mut CostAware::new(), 31);
        assert!(rejected.rejected_jobs > 0, "premise: the cap bites");
        assert_eq!(rejected.deferred_jobs, 0);

        let defer_cfg = FleetConfig {
            budget_window: Some(SimTime::hours(1.0)),
            ..FleetConfig::default()
        };
        let deferred = simulate(&base, &defer_cfg, &mut CostAware::new(), 31);
        assert_eq!(deferred.rejected_jobs, 0, "deferral replaces rejection");
        assert!(deferred.deferred_jobs > 0, "the cap must still bite");
        assert_eq!(deferred.n_jobs, 200, "every job completes eventually");
        // Deferred jobs belong to the capped tenant and waited at least
        // until a window boundary.
        let rows = deferred.per_tenant();
        let t0 = rows
            .iter()
            .find(|t| t.tenant == 0)
            .expect("tenant 0 has a per-tenant row");
        let t1 = rows
            .iter()
            .find(|t| t.tenant == 1)
            .expect("tenant 1 has a per-tenant row");
        assert_eq!(t0.deferred, deferred.deferred_jobs);
        assert_eq!(t1.deferred, 0, "the uncapped tenant never waits");
        for r in deferred.records.iter().filter(|r| r.deferred) {
            assert_eq!(r.tenant, 0);
            assert!(
                r.queue.as_secs() > 0.0,
                "a deferred job's wait shows up as queue time"
            );
        }
        // A zero budget can never be afforded: still rejected, window or
        // not (otherwise the job would defer forever).
        let zero = Trace::generate_multi(
            ArrivalProcess::Poisson { rate: 0.5 },
            &JobMix::convex_mix(),
            &spec,
            50,
            31,
        )
        .with_budget(0, 0.0);
        let m = simulate(&zero, &defer_cfg, &mut CostAware::new(), 31);
        assert!(m.rejected_jobs > 0);
        assert_eq!(m.deferred_jobs, 0);
        // Deterministic like everything else.
        let again = simulate(&base, &defer_cfg, &mut CostAware::new(), 31);
        assert_eq!(again.to_json(), deferred.to_json());
    }

    /// Per-window allowance semantics: ledgers reset at *every* window
    /// boundary, not just after a deferral — a tenant spending under its
    /// cap per window is never held up, however much it accumulates
    /// across windows.
    #[test]
    fn budget_window_resets_every_boundary() {
        use crate::job::{JobClass, JobRequest};
        // One ~$0.007 IaaS job per hourly window; the $0.012 cap covers
        // any single window but not the cumulative total.
        let jobs = (0..4)
            .map(|k| {
                JobRequest::new(
                    k,
                    JobClass::LrHiggs,
                    SimTime::secs(3_600.0 * k as f64 + 1.0),
                    10,
                )
            })
            .collect();
        let trace = Trace::from_jobs(jobs).with_budget(0, 0.012);
        let hard = simulate(&trace, &FleetConfig::default(), &mut CostAware::new(), 1);
        assert!(hard.rejected_jobs > 0, "premise: the total blows the cap");
        let defer_cfg = FleetConfig {
            budget_window: Some(SimTime::hours(1.0)),
            ..FleetConfig::default()
        };
        let m = simulate(&trace, &defer_cfg, &mut CostAware::new(), 1);
        assert_eq!(m.rejected_jobs, 0);
        assert_eq!(
            m.deferred_jobs, 0,
            "steady under-cap-per-window spend must never defer"
        );
        assert_eq!(m.n_jobs, 4);
    }

    /// A backlog bigger than one window's allowance drains at the
    /// budgeted rate, window over window — the boundary release re-checks
    /// the fresh allowance instead of flushing everything at once.
    #[test]
    fn budget_window_drains_backlog_at_the_budgeted_rate() {
        use crate::job::{JobClass, JobRequest};
        // Six ~$0.007 jobs burst at t≈0; the $0.012 cap affords ~2 per
        // hourly window.
        let jobs = (0..6)
            .map(|k| JobRequest::new(k, JobClass::LrHiggs, SimTime::secs(k as f64), 10))
            .collect();
        let trace = Trace::from_jobs(jobs).with_budget(0, 0.012);
        let cfg = FleetConfig {
            budget_window: Some(SimTime::hours(1.0)),
            ..FleetConfig::default()
        };
        let m = simulate(&trace, &cfg, &mut CostAware::new(), 1);
        assert_eq!(m.rejected_jobs, 0);
        assert_eq!(m.n_jobs, 6, "the whole backlog completes eventually");
        assert_eq!(m.deferred_jobs, 4, "two run now, four wait");
        assert!(
            m.makespan > SimTime::hours(2.0),
            "the tail needs a third window, makespan {}",
            m.makespan
        );
    }

    /// A job released from deferral has burned part of its slack: the
    /// scheduler must be routed with the *remaining* laxity, not the
    /// submit-relative one.
    #[test]
    fn deferred_jobs_route_with_remaining_laxity() {
        use crate::job::{JobClass, JobRequest};

        /// Records the laxity each routed job presents.
        struct Probe {
            seen: Vec<Option<f64>>,
        }
        impl Scheduler for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn route(&mut self, job: &JobRequest, _view: &FleetView) -> Route {
                self.seen.push(job.laxity().map(|l| l.as_secs()));
                Route::Faas
            }
        }

        let mut burner = JobRequest::new(0, JobClass::LrHiggs, SimTime::ZERO, 10);
        burner.tenant = 0;
        let mut late = JobRequest::new(1, JobClass::LrHiggs, SimTime::secs(5.0), 10);
        late.tenant = 0;
        late.deadline = Some(SimTime::secs(10_000.0));
        let trace = Trace::from_jobs(vec![burner, late]).with_budget(0, 0.001);
        let cfg = FleetConfig {
            budget_window: Some(SimTime::hours(1.0)),
            ..FleetConfig::default()
        };
        let mut probe = Probe { seen: Vec::new() };
        let m = simulate(&trace, &cfg, &mut probe, 1);
        assert_eq!(m.deferred_jobs, 1, "the burner exhausts the cap");
        // The deferred job is released at the t=3600 boundary: the
        // scheduler must see 10000 − 3600, not 10000 − 5.
        assert_eq!(probe.seen[0], None);
        assert_eq!(probe.seen[1], Some(10_000.0 - 3_600.0));
    }

    /// The Requeued→pool-fallback path accounts queue time exactly once
    /// per wait interval: the latency components must tile submit→finish
    /// even when a job is preempted off spot, waits for a busy reserved
    /// pool, and resumes there. (A double-counted wait would make
    /// queue + startup + run overshoot the physical finish time.)
    #[test]
    fn fallback_queue_time_accumulates_once_per_wait() {
        let mut cfg = FleetConfig::default();
        cfg.spot.mean_time_to_preempt = SimTime::secs(100.0); // ~10 s for 10-wide
        cfg.spot.max_retries = 0; // first preemption falls back to the pool
        cfg.checkpoint = CheckpointPolicy::every(1);
        cfg.iaas.min_instances = 10;
        cfg.iaas.max_instances = 10; // one 10-wide job at a time: fallback queues
        let jobs = (0..4)
            .map(|k| JobRequest::new(k, JobClass::LrHiggs, SimTime::secs(k as f64), 10))
            .collect();
        let trace = Trace::from_jobs(jobs);
        let mut sched = FairShare::new().with_spot_fraction(1.0);
        let m = simulate(&trace, &cfg, &mut sched, 5);
        assert_eq!(m.n_jobs, 4);
        assert!(m.preemptions > 0, "premise: the market strikes");
        let mut someone_waited = false;
        for r in &m.records {
            assert!(
                (r.finish() - r.submit - r.latency()).as_secs().abs() < 1e-6,
                "job {}: queue {} + startup {} + run {} must tile submit→finish",
                r.id,
                r.queue,
                r.startup,
                r.run
            );
            someone_waited |= r.queue.as_secs() > 1.0;
        }
        assert!(
            someone_waited,
            "premise: the capped pool makes a fallback job actually wait"
        );
    }

    /// Deferral-vs-rejection pricing: with rejection priced below a P95
    /// deadline miss, an over-allowance job whose deadline is already
    /// doomed at the next window boundary is rejected, while a viable one
    /// still defers. With the default (equal) prices every job defers —
    /// the PR 4 behaviour.
    #[test]
    fn admission_prices_deferral_against_rejection_per_job() {
        use crate::job::JobRequest;
        let window = SimTime::hours(1.0);
        let mk_trace = || {
            let mut burner = JobRequest::new(0, JobClass::LrHiggs, SimTime::ZERO, 10);
            burner.tenant = 0;
            // Doomed: over-allowance and its deadline lands *before* the
            // next window boundary — deferral can only deliver it late.
            let mut doomed = JobRequest::new(1, JobClass::LrHiggs, SimTime::secs(5.0), 10);
            doomed.tenant = 0;
            doomed.deadline = Some(SimTime::secs(600.0));
            // Viable: the boundary release still makes this deadline.
            let mut viable = JobRequest::new(2, JobClass::LrHiggs, SimTime::secs(6.0), 10);
            viable.tenant = 0;
            viable.deadline = Some(SimTime::secs(20_000.0));
            Trace::from_jobs(vec![burner, doomed, viable]).with_budget(0, 0.001)
        };
        let priced_cfg = FleetConfig {
            budget_window: Some(window),
            rejection_cost: 0.1,
            deadline_miss_cost: 1.0,
            ..FleetConfig::default()
        };
        let m = simulate(&mk_trace(), &priced_cfg, &mut CostAware::new(), 1);
        assert_eq!(m.rejected_jobs, 1, "the doomed job is refused cleanly");
        assert_eq!(m.deferred_jobs, 1, "the viable job waits for its window");
        assert!(m.records[1].rejected && !m.records[2].rejected);
        assert!(m.records[2].deferred);
        // Default prices tie → ties defer → PR 4 behaviour byte-for-byte.
        let default_cfg = FleetConfig {
            budget_window: Some(window),
            ..FleetConfig::default()
        };
        let m = simulate(&mk_trace(), &default_cfg, &mut CostAware::new(), 1);
        assert_eq!(m.rejected_jobs, 0);
        assert_eq!(m.deferred_jobs, 2);
        // Constant routers predict nothing: pricing degrades to deferral
        // rather than rejecting on a guess.
        let m = simulate(&mk_trace(), &priced_cfg, &mut AllFaas, 1);
        assert_eq!(m.rejected_jobs, 0);
    }

    /// Jobs that become doomed *while deferred* are re-priced at every
    /// window boundary: a deadline that was viable at arrival but slips
    /// past the P95 miss point during the wait is rejected (when rejection
    /// is priced below a miss) instead of deferring window after window
    /// toward a guaranteed late finish.
    #[test]
    fn boundary_release_reprices_jobs_doomed_while_deferred() {
        use crate::job::JobRequest;
        let mk_trace = || {
            // The burner exhausts the tiny allowance; J1 and J2 arrive
            // over-allowance, both viable for the first boundary (release
            // 3 600 + short run < 5 000). At the boundary J1 drains the
            // fresh allowance first (arrival order), so J2 is still over
            // — and its deadline now falls before the *next* boundary at
            // 7 200: doomed.
            let mut burner = JobRequest::new(0, JobClass::LrHiggs, SimTime::ZERO, 10);
            burner.tenant = 0;
            let mut j1 = JobRequest::new(1, JobClass::LrHiggs, SimTime::secs(5.0), 10);
            j1.tenant = 0;
            j1.deadline = Some(SimTime::secs(5_000.0));
            let mut j2 = JobRequest::new(2, JobClass::LrHiggs, SimTime::secs(6.0), 10);
            j2.tenant = 0;
            j2.deadline = Some(SimTime::secs(5_000.0));
            Trace::from_jobs(vec![burner, j1, j2]).with_budget(0, 0.005)
        };
        let cfg = FleetConfig {
            budget_window: Some(SimTime::hours(1.0)),
            rejection_cost: 0.1,
            deadline_miss_cost: 1.0,
            ..FleetConfig::default()
        };
        let m = simulate(&mk_trace(), &cfg, &mut CostAware::new(), 1);
        assert_eq!(m.rejected_jobs, 1, "J2 is refused at the boundary");
        assert!(m.records[2].rejected, "the doomed job is the one rejected");
        assert!(m.records[1].deferred && !m.records[1].rejected);
        // Default (tied) prices keep the old behaviour: J2 re-defers and
        // is delivered late instead.
        let defaults = FleetConfig {
            budget_window: Some(SimTime::hours(1.0)),
            ..FleetConfig::default()
        };
        let m = simulate(&mk_trace(), &defaults, &mut CostAware::new(), 1);
        assert_eq!(m.rejected_jobs, 0);
        assert_eq!(m.n_jobs, 3, "everything still completes, just late");
    }

    /// EDF admission: on a capacity-capped pool the deadline jobs overtake
    /// deadline-less ones in the queue.
    #[test]
    fn edf_discipline_reorders_the_queue() {
        let mut cfg = FleetConfig::default();
        cfg.iaas.min_instances = 10;
        cfg.iaas.max_instances = 30; // persistent backlog at rate 2/s
        let spec = TenantSpec {
            n_tenants: 1,
            deadline_frac: 0.5,
            deadline_slack: 4.0,
        };
        let trace = Trace::generate_multi(
            ArrivalProcess::Poisson { rate: 2.0 },
            &JobMix::only(JobClass::LrHiggs),
            &spec,
            30,
            13,
        );
        // EDF queues deadline jobs first: their mean queue wait is lower.
        let m = simulate(&trace, &cfg, &mut DeadlineAware::new(), 13);
        let mean = |with_deadline: bool| {
            let rs: Vec<f64> = m
                .records
                .iter()
                .filter(|r| r.deadline.is_some() == with_deadline)
                .map(|r| r.queue.as_secs())
                .collect();
            rs.iter().sum::<f64>() / rs.len().max(1) as f64
        };
        assert!(
            mean(true) < mean(false),
            "deadline jobs must wait less: {} vs {}",
            mean(true),
            mean(false)
        );
    }

    #[test]
    fn streamed_replay_is_byte_identical_to_in_memory() {
        use crate::stream::{collect, GeneratorSource, TextSource};
        // A budgeted, multi-tenant, deadline-carrying trace with windowed
        // deferral exercises every v3 feature on the wire.
        let spec = TenantSpec {
            n_tenants: 3,
            deadline_frac: 0.5,
            deadline_slack: 4.0,
        };
        let trace = Trace::generate_multi(
            ArrivalProcess::Poisson { rate: 0.6 },
            &JobMix::convex_mix(),
            &spec,
            120,
            29,
        )
        .with_budget(0, 0.05)
        .with_budget(1, 2.0);
        let cfg = FleetConfig {
            budget_window: Some(SimTime::secs(3_600.0)),
            ..Default::default()
        };
        let baseline = simulate(&trace, &cfg, &mut CostAware::new(), 29).to_json();
        let streamed = replay(InMemorySource::new(&trace), &cfg, &mut CostAware::new(), 29)
            .expect("in-memory replay cannot fail")
            .to_json();
        assert_eq!(streamed, baseline, "in-memory source");
        let text = trace.to_text();
        let from_text = replay(
            TextSource::new(text.as_bytes()),
            &cfg,
            &mut CostAware::new(),
            29,
        )
        .expect("text replay parses its own to_text output")
        .to_json();
        assert_eq!(from_text, baseline, "text source");
        // Generator-backed source vs its materialized twin (generated
        // traces carry no budgets, so the default config applies).
        let gen = || {
            GeneratorSource::new(
                ArrivalProcess::Poisson { rate: 0.6 },
                JobMix::convex_mix(),
                spec,
                120,
                31,
            )
        };
        let gen_trace = collect(gen()).expect("generator source yields valid arrivals");
        let gen_baseline = simulate(
            &gen_trace,
            &FleetConfig::default(),
            &mut DeadlineAware::new(),
            31,
        )
        .to_json();
        let gen_streamed = replay(
            gen(),
            &FleetConfig::default(),
            &mut DeadlineAware::new(),
            31,
        )
        .expect("generator replay cannot fail")
        .to_json();
        assert_eq!(gen_streamed, gen_baseline, "generator source");
    }

    #[test]
    fn replay_stats_is_bounded_and_consistent() {
        let trace = small_trace(300, 1.0, 11).with_budget(0, 0.02);
        let cfg = FleetConfig::default();
        let m = simulate(&trace, &cfg, &mut CostAware::new(), 11);
        let s = replay_stats(
            InMemorySource::new(&trace),
            &cfg,
            &mut CostAware::new(),
            11,
            &mut NullObserver,
        )
        .expect("in-memory replay_stats cannot fail");
        assert_eq!(s.jobs, 300);
        assert_eq!(s.completed + s.rejected, 300);
        assert_eq!(s.rejected as usize, m.rejected_jobs);
        assert_eq!(s.deferred as usize, m.deferred_jobs);
        assert_eq!(s.makespan, m.makespan, "same fold, same float");
        assert!(
            (s.total_cost.as_usd() - m.total_cost().as_usd()).abs() < 1e-6,
            "bounded total {} vs metrics total {}",
            s.total_cost.as_usd(),
            m.total_cost().as_usd()
        );
        assert!(s.peak_resident_jobs >= 1 && s.peak_resident_jobs <= 300);
    }

    #[test]
    fn incremental_rollups_cover_the_run() {
        use crate::observe::RollupCollector;
        let trace = small_trace(200, 1.0, 7);
        let cfg = FleetConfig::default();
        let baseline = simulate(&trace, &cfg, &mut AllFaas, 7).to_json();
        let mut coll = RollupCollector::new(SimTime::secs(600.0));
        let m = replay_observed(
            InMemorySource::new(&trace),
            &cfg,
            &mut AllFaas,
            7,
            &mut coll,
        )
        .expect("rollup-observed replay cannot fail");
        assert_eq!(m.to_json(), baseline, "rollup observer is passive");
        let stats = coll.replay_stats.expect("replay stats delivered");
        assert_eq!(stats.arrivals_streamed, 200);
        assert!(stats.peak_resident_jobs >= 1);
        // Windows are dense from index 0 and the counters partition the
        // whole run: nothing double-counted, nothing dropped.
        for (i, w) in coll.windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
            assert_eq!(w.end, w.start + SimTime::secs(600.0));
        }
        let submitted: u64 = coll.windows.iter().map(|w| w.submitted).sum();
        let completed: u64 = coll.windows.iter().map(|w| w.completed).sum();
        let rejected: u64 = coll.windows.iter().map(|w| w.rejected).sum();
        assert_eq!(submitted, 200);
        assert_eq!(completed + rejected, 200);
        let cost: f64 = coll.windows.iter().map(|w| w.cost.as_usd()).sum();
        assert!(
            (cost - m.faas_cost.as_usd()).abs() < 1e-9,
            "windowed dollars must sum to the attributed total"
        );
    }
}
