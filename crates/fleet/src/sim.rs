//! The fleet simulator: an event-driven loop over the shared
//! [`EventQueue`], driving arrivals through a [`Scheduler`] onto the two
//! platform models until every job completes.
//!
//! Job service times come from the §5.3 analytical model (minus its
//! single-job startup terms — the fleet charges the *actual* startup it
//! simulates: warm/cold starts on FaaS, dispatch or queueing on IaaS), so a
//! thousand-job fleet simulates in host milliseconds.

use crate::job::JobRequest;
use crate::metrics::{FleetMetrics, JobRecord};
use crate::platform::{FaasConfig, FaasRegion, IaasConfig, IaasPool};
use crate::scheduler::{FleetView, Route, Scheduler};
use crate::workload::Trace;
use lml_analytic::constants;
use lml_analytic::model::{faas_cost, faas_time, iaas_time, AnalyticCase, AnalyticParams, Scaling};
use lml_sim::{Cost, EventQueue, SimTime};
use std::collections::VecDeque;

/// Fleet-wide configuration: the two platforms and their channel cases.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    pub faas: FaasConfig,
    pub iaas: IaasConfig,
    /// Analytical channel/pricing case for FaaS jobs (default: S3, 3 GB).
    pub faas_case: AnalyticCase,
    /// Analytical case for IaaS jobs (default: t2.medium network).
    pub iaas_case: AnalyticCase,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            faas: FaasConfig::default(),
            iaas: IaasConfig::default(),
            faas_case: AnalyticCase::faas_s3(),
            iaas_case: AnalyticCase::iaas_t2(),
        }
    }
}

/// Single-job service time on FaaS once its functions are up: data loading
/// plus training (the analytical FaaS(w) minus its t_F(w) startup term).
pub fn faas_run(p: &AnalyticParams, case: &AnalyticCase, w: usize) -> SimTime {
    faas_time(p, case, Scaling::Perfect, w) - SimTime::secs(constants::t_f().eval(w as f64))
}

/// Single-job service time on booted IaaS instances (IaaS(w) minus t_I(w)).
pub fn iaas_run(p: &AnalyticParams, case: &AnalyticCase, w: usize) -> SimTime {
    iaas_time(p, case, Scaling::Perfect, w) - SimTime::secs(constants::t_i().eval(w as f64))
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Job `i` of the trace arrives.
    Arrive(usize),
    /// Job `i` finishes on FaaS.
    FaasDone(usize),
    /// Job `i` finishes on IaaS.
    IaasDone(usize),
    /// A batch of `k` IaaS instances finished booting.
    Provisioned(usize),
    /// Check whether idle IaaS capacity above the floor should be released.
    IdleCheck,
}

/// Mutable per-job state built up during the run.
#[derive(Debug, Clone, Copy)]
struct JobState {
    route: Route,
    queue: SimTime,
    startup: SimTime,
    run: SimTime,
    warm_hits: usize,
    cost: Cost,
    done: bool,
}

/// All simulator state, threaded through the event handlers.
struct Fleet<'a> {
    cfg: &'a FleetConfig,
    jobs: &'a [JobRequest],
    faas: FaasRegion,
    iaas: IaasPool,
    state: Vec<JobState>,
    events: EventQueue<Event>,
    faas_queue: VecDeque<usize>,
    iaas_queue: VecDeque<usize>,
}

impl<'a> Fleet<'a> {
    fn new(cfg: &'a FleetConfig, jobs: &'a [JobRequest]) -> Self {
        let state = jobs
            .iter()
            .map(|_| JobState {
                route: Route::Faas,
                queue: SimTime::ZERO,
                startup: SimTime::ZERO,
                run: SimTime::ZERO,
                warm_hits: 0,
                cost: Cost::ZERO,
                done: false,
            })
            .collect();
        Fleet {
            cfg,
            jobs,
            faas: FaasRegion::new(cfg.faas),
            iaas: IaasPool::new(cfg.iaas),
            state,
            events: EventQueue::new(),
            faas_queue: VecDeque::new(),
            iaas_queue: VecDeque::new(),
        }
    }

    fn queued_workers(q: &VecDeque<usize>, jobs: &[JobRequest]) -> usize {
        q.iter().map(|&i| jobs[i].workers).sum()
    }

    fn view(&self) -> FleetView {
        FleetView {
            faas_in_use: self.cfg.faas.concurrency_limit - self.faas.available(),
            faas_limit: self.cfg.faas.concurrency_limit,
            faas_queued_workers: Self::queued_workers(&self.faas_queue, self.jobs),
            iaas_free: self.iaas.free(),
            iaas_capacity: self.iaas.capacity(),
            iaas_provisioning: self.iaas.provisioning(),
            iaas_queued_workers: Self::queued_workers(&self.iaas_queue, self.jobs),
        }
    }

    /// Try to begin job `i` on FaaS at `now`; schedules its completion.
    fn start_faas(&mut self, i: usize, now: SimTime) -> bool {
        let job = &self.jobs[i];
        match self.faas.try_start(now, job.workers) {
            Some((startup, warm_hits)) => {
                let p = job.class.profile();
                let run = faas_run(&p, &self.cfg.faas_case, job.workers);
                let s = &mut self.state[i];
                s.queue = now - job.submit;
                s.startup = startup;
                s.run = run;
                s.warm_hits = warm_hits;
                // GB-second billing of the execution (Lambda does not bill
                // provisioning time; the §5.3 cost formula is the same).
                s.cost = faas_cost(&p, &self.cfg.faas_case, Scaling::Perfect, job.workers);
                self.events.push(now + startup + run, Event::FaasDone(i));
                true
            }
            None => false,
        }
    }

    /// Try to begin job `i` on idle IaaS instances at `now`.
    fn start_iaas(&mut self, i: usize, now: SimTime) -> bool {
        let job = &self.jobs[i];
        if !self.iaas.try_start(now, job.workers) {
            return false;
        }
        let p = job.class.profile();
        let run = iaas_run(&p, &self.cfg.iaas_case, job.workers);
        let startup = self.cfg.iaas.dispatch_latency;
        let s = &mut self.state[i];
        s.queue = now - job.submit;
        s.startup = startup;
        s.run = run;
        // Attributed share of the pool bill; the pool's own integral is
        // authoritative for totals.
        s.cost = Cost::usd(
            job.workers as f64 * self.cfg.iaas_case.worker_price_per_s * (startup + run).as_secs(),
        );
        self.events.push(now + startup + run, Event::IaasDone(i));
        true
    }

    /// Strict FIFO drain of the FaaS admission queue.
    fn drain_faas(&mut self, now: SimTime) {
        while let Some(&i) = self.faas_queue.front() {
            if self.start_faas(i, now) {
                self.faas_queue.pop_front();
            } else {
                break;
            }
        }
    }

    /// FIFO + backfill drain: start any queued job that fits, front first,
    /// letting smaller jobs overtake a blocked head-of-line job. Jobs still
    /// queued afterwards re-trigger the autoscaler — backfill may have
    /// consumed capacity that an earlier scale-up had counted toward them.
    fn drain_iaas(&mut self, now: SimTime) {
        let pending: Vec<usize> = self.iaas_queue.drain(..).collect();
        for i in pending {
            if !self.start_iaas(i, now) {
                self.iaas_queue.push_back(i);
            }
        }
        if !self.iaas_queue.is_empty() {
            self.autoscale(now);
        }
    }

    /// Boot more instances if queued demand exceeds what is idle or coming.
    fn autoscale(&mut self, now: SimTime) {
        let deficit = Self::queued_workers(&self.iaas_queue, self.jobs)
            .saturating_sub(self.iaas.free() + self.iaas.provisioning());
        if deficit > 0 {
            if let Some((k, boot)) = self.iaas.scale_up(now, deficit) {
                self.events.push(now + boot, Event::Provisioned(k));
            }
        }
    }

    /// Handle every event type except `Arrive` (which needs the external
    /// scheduler and is driven directly by [`simulate`]).
    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrive(_) => unreachable!("arrivals are handled by simulate"),
            Event::FaasDone(i) => {
                self.faas.release(now, self.jobs[i].workers);
                self.state[i].done = true;
                self.drain_faas(now);
            }
            Event::IaasDone(i) => {
                self.iaas.finish(now, self.jobs[i].workers);
                self.state[i].done = true;
                self.drain_iaas(now);
                if self.iaas_queue.is_empty() {
                    self.events
                        .push(now + self.cfg.iaas.idle_after, Event::IdleCheck);
                }
            }
            Event::Provisioned(k) => {
                self.iaas.provisioned(now, k);
                self.drain_iaas(now);
            }
            Event::IdleCheck => {
                if self.iaas_queue.is_empty() {
                    self.iaas.scale_down_idle(now);
                }
            }
        }
    }
}

/// Run `trace` through `scheduler` on the configured platforms.
pub fn simulate(
    trace: &Trace,
    cfg: &FleetConfig,
    scheduler: &mut dyn Scheduler,
    seed: u64,
) -> FleetMetrics {
    let mut fleet = Fleet::new(cfg, &trace.jobs);
    for (i, j) in trace.jobs.iter().enumerate() {
        fleet.events.push(j.submit, Event::Arrive(i));
    }

    let mut last_time = SimTime::ZERO;
    while let Some((now, ev)) = fleet.events.pop() {
        last_time = now;
        if let Event::Arrive(i) = ev {
            let view = fleet.view();
            let route = scheduler.route(&fleet.jobs[i], &view);
            fleet.state[i].route = route;
            // Width is validated against the *routed* platform only: a job
            // too wide for one substrate is fine as long as its scheduler
            // never sends it there.
            match route {
                Route::Faas => {
                    assert!(
                        fleet.jobs[i].workers <= cfg.faas.concurrency_limit,
                        "job {i} routed to FaaS but wider than the account concurrency limit"
                    );
                    if !fleet.faas_queue.is_empty() || !fleet.start_faas(i, now) {
                        fleet.faas_queue.push_back(i);
                    }
                }
                Route::Iaas => {
                    assert!(
                        fleet.jobs[i].workers <= cfg.iaas.max_instances,
                        "job {i} routed to IaaS but wider than the autoscaling ceiling"
                    );
                    if !fleet.start_iaas(i, now) {
                        fleet.iaas_queue.push_back(i);
                        fleet.autoscale(now);
                    } else if !fleet.iaas_queue.is_empty() {
                        // This arrival backfilled past queued jobs and may
                        // have consumed capacity counted toward them.
                        fleet.autoscale(now);
                    }
                }
            }
        } else {
            fleet.handle(now, ev);
        }
    }

    fleet.iaas.finalize(last_time);
    debug_assert!(fleet.state.iter().all(|s| s.done), "all jobs must complete");

    let records: Vec<JobRecord> = trace
        .jobs
        .iter()
        .zip(&fleet.state)
        .map(|(j, s)| JobRecord {
            id: j.id,
            class: j.class,
            route: s.route,
            workers: j.workers,
            submit: j.submit,
            queue: s.queue,
            startup: s.startup,
            run: s.run,
            warm_hits: s.warm_hits,
            cost: s.cost,
        })
        .collect();

    FleetMetrics::from_records(
        scheduler.name(),
        seed,
        records,
        fleet.iaas.cost(),
        fleet.faas.warm_hit_rate(),
        fleet.faas.cold_starts(),
        fleet.iaas.utilization(),
        fleet.iaas.peak_capacity(),
        fleet.faas.peak_concurrency(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;
    use crate::scheduler::{AllFaas, AllIaas, CostAware};
    use crate::workload::{ArrivalProcess, JobMix, Trace};

    fn small_trace(n: usize, rate: f64, seed: u64) -> Trace {
        Trace::generate(
            ArrivalProcess::Poisson { rate },
            &JobMix::convex_mix(),
            n,
            seed,
        )
    }

    #[test]
    fn all_jobs_complete_on_every_policy() {
        let trace = small_trace(100, 0.5, 42);
        let cfg = FleetConfig::default();
        for (name, sched) in [
            ("all-faas", &mut AllFaas as &mut dyn Scheduler),
            ("all-iaas", &mut AllIaas),
            ("cost-aware", &mut CostAware::new()),
        ] {
            let m = simulate(&trace, &cfg, sched, 42);
            assert_eq!(m.n_jobs, 100, "{name}");
            assert!(m.makespan >= trace.horizon(), "{name}");
            assert!(m.latency.p99 >= m.latency.p50, "{name}");
            assert!(m.total_cost().as_usd() > 0.0, "{name}");
        }
    }

    #[test]
    fn same_seed_same_metrics_json() {
        let cfg = FleetConfig::default();
        let run = || {
            let trace = small_trace(200, 1.0, 7);
            simulate(&trace, &cfg, &mut CostAware::new(), 7).to_json()
        };
        assert_eq!(run(), run(), "byte-identical JSON for identical inputs");
    }

    #[test]
    fn warm_hit_rate_rises_with_arrival_rate() {
        let cfg = FleetConfig::default();
        let rate_of = |rate: f64| {
            let trace = small_trace(300, rate, 11);
            simulate(&trace, &cfg, &mut AllFaas, 11).warm_hit_rate
        };
        let slow = rate_of(0.0003); // one job every ~55 min: pools go stale
        let fast = rate_of(1.0);
        assert!(
            fast > slow + 0.2,
            "cold-start probability must fall as traffic rises: slow {slow} fast {fast}"
        );
    }

    #[test]
    fn faas_queue_kicks_in_at_the_concurrency_limit() {
        let mut cfg = FleetConfig::default();
        cfg.faas.concurrency_limit = 20; // two 10-worker jobs at a time
        let trace = Trace::generate(
            ArrivalProcess::Poisson { rate: 5.0 },
            &JobMix::only(JobClass::LrHiggs),
            40,
            3,
        );
        let m = simulate(&trace, &cfg, &mut AllFaas, 3);
        assert!(m.queue.max > 0.0, "queueing must appear under the limit");
        assert!(m.faas_peak_concurrency <= 20);
    }

    #[test]
    fn iaas_autoscaler_grows_and_charges_idle_floor() {
        let trace = small_trace(150, 1.0, 5);
        let cfg = FleetConfig::default();
        let m = simulate(&trace, &cfg, &mut AllIaas, 5);
        assert!(
            m.iaas_peak_instances > cfg.iaas.min_instances,
            "burst must trigger scale-up, peak {}",
            m.iaas_peak_instances
        );
        assert!(m.iaas_cost.as_usd() > 0.0);
        assert!(m.iaas_utilization > 0.0 && m.iaas_utilization <= 1.0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace { jobs: vec![] };
        let m = simulate(&trace, &FleetConfig::default(), &mut AllFaas, 1);
        assert_eq!(m.n_jobs, 0);
        assert_eq!(m.total_cost().as_usd() + m.latency.p99, 0.0);
    }
}
