//! Azure-Functions-style trace adapter.
//!
//! The Azure Functions 2019/2021 public traces record serverless
//! invocations as CSV rows keyed by hashed owner / app / function ids with
//! an end timestamp and a duration. This module adapts that shape onto the
//! fleet simulator: each row becomes one training-job submission, owners
//! become tenants (dense ids in order of first appearance), and function
//! ids are hashed deterministically onto the Table 4 job zoo. The adapter
//! converts rows directly into [`JobRequest`]s (sorted, validated) and
//! hands them to the replay engine through [`AzureSource`], the adapter's
//! [`TraceSource`]. The native-text rendering ([`to_trace_text`]) is kept
//! as a tested compatibility shim — `parse` is asserted equal to the
//! text round-trip — so an adapted trace still obeys exactly the same
//! validation and replay guarantees as a hand-written one.
//!
//! Accepted line format (header line and `#` comments are skipped):
//!
//! ```text
//! end_timestamp_ms,owner,app,func,duration_ms
//! 81000,owner-a,app-1,func-lr,21000
//! ```
//!
//! A bundled sample lives at `crates/fleet/data/azure_sample.csv`.

use crate::job::{JobClass, JobRequest, TenantId};
use crate::stream::TraceSource;
use crate::workload::Trace;
use lml_sim::SimTime;
use std::collections::BTreeMap;

/// One parsed invocation row, before conversion to a job submission.
#[derive(Debug, Clone, PartialEq)]
struct AzureRow {
    submit_secs: f64,
    owner: String,
    func: String,
}

/// FNV-1a 64-bit hash: stable across platforms and runs, used to map
/// opaque function ids onto the job zoo (here and in the Google adapter).
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The job class an Azure function id maps to (deterministic).
pub fn class_for_function(func: &str) -> JobClass {
    JobClass::ALL[(fnv1a(func) % JobClass::ALL.len() as u64) as usize]
}

/// Is this a header line naming the columns? The public traces (and tools
/// that re-export them) vary the spelling — `end_timestamp_ms`,
/// `EndTimestampMs`, `End Timestamp (ms)` — so the check normalizes case
/// and separators on the first field rather than matching one string.
fn is_header(line: &str) -> bool {
    let first = line.split(',').next().unwrap_or("");
    let normalized: String = first
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    normalized.starts_with("endtimestamp")
}

fn parse_rows(csv: &str) -> Result<Vec<AzureRow>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Skip header lines (also mid-file: concatenated shards re-emit
        // them).
        if is_header(line) {
            continue;
        }
        let parts: Vec<&str> = line.split(',').map(str::trim).collect();
        if parts.len() != 5 {
            return Err(format!(
                "line {}: expected 5 comma-separated fields, got {}",
                lineno + 1,
                parts.len()
            ));
        }
        let end_ms: f64 = parts[0]
            .parse()
            .map_err(|e| format!("line {}: bad end timestamp: {e}", lineno + 1))?;
        let duration_ms: f64 = parts[4]
            .parse()
            .map_err(|e| format!("line {}: bad duration: {e}", lineno + 1))?;
        if !end_ms.is_finite() || !duration_ms.is_finite() || duration_ms < 0.0 {
            return Err(format!(
                "line {}: timestamps must be finite, duration >= 0",
                lineno + 1
            ));
        }
        let submit_secs = (end_ms - duration_ms) / 1_000.0;
        if submit_secs < 0.0 {
            return Err(format!(
                "line {}: invocation starts before the trace epoch",
                lineno + 1
            ));
        }
        if parts[1].is_empty() || parts[3].is_empty() {
            return Err(format!("line {}: empty owner or function id", lineno + 1));
        }
        rows.push(AzureRow {
            submit_secs,
            owner: parts[1].to_string(),
            func: parts[3].to_string(),
        });
    }
    Ok(rows)
}

/// Rows sorted and converted: owners become dense tenant ids in order of
/// first appearance, function ids select job classes via
/// [`class_for_function`], and ids are assigned in sorted-time order —
/// the same mapping the text shim renders, without the intermediate
/// `String`.
fn to_jobs(csv: &str) -> Result<Vec<JobRequest>, String> {
    let mut rows = parse_rows(csv)?;
    rows.sort_by(|a, b| a.submit_secs.total_cmp(&b.submit_secs));
    // Assign tenant ids by first appearance in time order, so the mapping
    // is a pure function of the (sorted) trace.
    let mut tenants: BTreeMap<&str, TenantId> = BTreeMap::new();
    let mut next = 0u32;
    Ok(rows
        .iter()
        .enumerate()
        .map(|(id, r)| {
            let tenant = *tenants.entry(r.owner.as_str()).or_insert_with(|| {
                let t = next;
                next += 1;
                t
            });
            let class = class_for_function(&r.func);
            JobRequest {
                id: id as u64,
                class,
                submit: SimTime::secs(r.submit_secs),
                workers: class.default_workers(),
                tenant,
                deadline: None,
            }
        })
        .collect())
}

/// Convert Azure-style CSV to the native trace text format (v2).
/// Compatibility shim: the direct path ([`parse`] / [`source`]) is the
/// primary route; this rendering is kept byte-stable and tested equal to
/// it for tools that want the portable text form.
pub fn to_trace_text(csv: &str) -> Result<String, String> {
    let mut out =
        String::from("# lml-fleet trace v2 (azure adapter): submit\tclass\tworkers\ttenant\t-\n");
    for j in to_jobs(csv)? {
        out.push_str(&format!(
            "{:?}\t{}\t{}\t{}\t-\n",
            j.submit.as_secs(),
            j.class.name(),
            j.workers,
            j.tenant
        ));
    }
    Ok(out)
}

/// Parse Azure-style CSV straight into a [`Trace`] — rows convert
/// directly to [`JobRequest`]s, no intermediate text.
pub fn parse(csv: &str) -> Result<Trace, String> {
    Ok(Trace::from_jobs(to_jobs(csv)?))
}

/// The adapter as a [`TraceSource`]: rows stream into the replay engine
/// with no intermediate trace text or `Trace`. (The adapter must still
/// buffer the *rows* — the public CSVs are not sorted by submission time —
/// but that is one sort-and-drain pass, not three full renders.)
pub struct AzureSource {
    total: usize,
    jobs: std::vec::IntoIter<JobRequest>,
}

/// Build an [`AzureSource`] from Azure-style CSV text.
pub fn source(csv: &str) -> Result<AzureSource, String> {
    let jobs = to_jobs(csv)?;
    Ok(AzureSource {
        total: jobs.len(),
        jobs: jobs.into_iter(),
    })
}

impl TraceSource for AzureSource {
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String> {
        Ok(BTreeMap::new())
    }

    fn next_job(&mut self) -> Result<Option<JobRequest>, String> {
        Ok(self.jobs.next())
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = include_str!("../data/azure_sample.csv");

    #[test]
    fn bundled_sample_parses() {
        let trace = parse(SAMPLE).expect("bundled sample must parse");
        assert!(trace.len() >= 30, "sample has {} jobs", trace.len());
        let tenants = trace.tenants();
        assert!(tenants.len() >= 3, "sample spans {} tenants", tenants.len());
        // Tenant ids are dense, starting at 0.
        assert_eq!(tenants, (0..tenants.len() as u32).collect::<Vec<_>>());
        assert!(trace.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    fn adapter_feeds_from_text_and_roundtrips() {
        // The text shim stays equivalent to the direct path: rendering to
        // trace text and re-parsing gives exactly the trace `parse` builds.
        let text = to_trace_text(SAMPLE).unwrap();
        let trace = Trace::from_text(&text).unwrap();
        assert_eq!(trace.to_text().lines().count(), text.lines().count());
        assert_eq!(parse(SAMPLE).unwrap(), trace);
    }

    #[test]
    fn source_streams_the_same_jobs_as_parse() {
        let trace = parse(SAMPLE).unwrap();
        let mut src = source(SAMPLE).unwrap();
        assert_eq!(src.len_hint(), Some(trace.len()));
        assert!(src.budgets().unwrap().is_empty());
        let streamed = crate::stream::collect(source(SAMPLE).unwrap()).unwrap();
        assert_eq!(streamed, trace);
    }

    #[test]
    fn function_class_mapping_is_stable() {
        let c = class_for_function("f-abc");
        assert_eq!(c, class_for_function("f-abc"));
        // The six-way hash spreads distinct functions over several classes.
        let classes: std::collections::BTreeSet<_> = (0..40)
            .map(|i| class_for_function(&format!("func-{i}")))
            .collect();
        assert!(classes.len() >= 3, "only {} classes hit", classes.len());
    }

    #[test]
    fn out_of_order_rows_are_sorted_not_rejected() {
        let csv = "5000,o1,a,f1,1000\n2000,o2,a,f2,1000\n";
        let t = parse(csv).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.jobs[0].submit < t.jobs[1].submit);
        // The earlier submission's owner becomes tenant 0.
        assert_eq!(t.jobs[0].tenant, 0);
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        // Wrong arity.
        let e = parse("1000,o,a,f\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        // Unparsable timestamp / duration.
        assert!(parse("soon,o,a,f,10\n").is_err());
        assert!(parse("1000,o,a,f,later\n").is_err());
        // Negative duration and pre-epoch start.
        assert!(parse("1000,o,a,f,-5\n").is_err());
        assert!(parse("1000,o,a,f,2000\n").is_err());
        // Empty owner / function ids.
        assert!(parse("1000,,a,f,10\n").is_err());
        assert!(parse("1000,o,a,,10\n").is_err());
    }

    #[test]
    fn empty_and_comment_only_csv_yield_empty_traces() {
        assert!(parse("").unwrap().is_empty());
        let with_header = "# comment\nend_timestamp_ms,owner,app,func,duration_ms\n";
        assert!(parse(with_header).unwrap().is_empty());
    }

    #[test]
    fn header_variants_are_all_recognized() {
        for header in [
            "end_timestamp_ms,owner,app,func,duration_ms",
            "EndTimestampMs,Owner,App,Func,DurationMs",
            "END_TIMESTAMP_MS,OWNER,APP,FUNC,DURATION_MS",
            "End Timestamp (ms),Owner,App,Func,Duration (ms)",
            "end-timestamp-ms,owner,app,func,duration-ms",
        ] {
            let csv = format!("{header}\n2000,o1,a,f1,1000\n");
            let t = parse(&csv).unwrap_or_else(|e| panic!("{header:?}: {e}"));
            assert_eq!(t.len(), 1, "{header:?}");
        }
        // A data-looking first field is NOT a header, even if later fields
        // resemble column names.
        assert!(parse("1000,end_timestamp_ms,a,f,10\n").is_ok());
    }

    #[test]
    fn mid_file_headers_and_crlf_are_tolerated() {
        // Concatenated shards: each re-emits its header; CRLF line endings
        // survive `str::lines`.
        let csv = "end_timestamp_ms,owner,app,func,duration_ms\r\n\
                   2000,o1,a,f1,1000\r\n\
                   end_timestamp_ms,owner,app,func,duration_ms\r\n\
                   5000,o2,a,f2,1000\r\n";
        let t = parse(csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.tenants(), vec![0, 1]);
    }

    #[test]
    fn malformed_rows_beyond_the_happy_path_are_rejected() {
        // Non-finite timestamps and durations.
        assert!(parse("nan,o,a,f,10\n").is_err());
        assert!(parse("inf,o,a,f,10\n").is_err());
        assert!(parse("1000,o,a,f,nan\n").is_err());
        // Too many fields (a quoted comma would need real CSV parsing —
        // fail loudly instead of mis-attributing columns).
        assert!(parse("1000,o,a,f,10,extra\n").is_err());
        // Whitespace-only fields count as empty ids.
        assert!(parse("1000,   ,a,f,10\n").is_err());
        assert!(parse("1000,o,a,   ,10\n").is_err());
        // Errors carry the 1-based line number of the offending row.
        let e = parse("2000,o1,a,f1,1000\nbad,o,a,f,10\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }
}
