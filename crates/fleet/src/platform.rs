//! Platform models: a FaaS region with a warm-container pool and an IaaS
//! cluster pool with FIFO + backfill queueing and autoscaling.
//!
//! Both reuse the calibrated single-job constants of `lml-faas` / `lml-iaas`
//! (Table 6 start-up curves, GB-second and instance-hour billing) and layer
//! the *fleet-level* effects the paper cannot see with one job at a time:
//! cold-start probability falling as traffic rises, account concurrency
//! limits, queueing on reserved clusters, and idle reserved capacity
//! billing whether busy or not (§2.2).

use lml_faas::startup::{faas_startup_time, INVOKE_LATENCY};
use lml_iaas::cluster::iaas_startup_table;
use lml_iaas::InstanceType;
use lml_sim::{Cost, Pcg64, SimTime};

/// Provisioned-concurrency price per GB-second: what an always-warm
/// container costs whether invoked or not (AWS Lambda provisioned
/// concurrency, ≈¼ the on-demand duration rate).
pub const PROVISIONED_PRICE_PER_GB_SECOND: f64 = 0.000_004_166_7;

/// Function memory the fleet provisions, matching the §5.3 pricing case
/// (3 GB functions plus runtime overhead).
pub const FUNCTION_GB: f64 = 3.008;

/// FaaS region configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaasConfig {
    /// Account-level concurrent-execution limit (AWS default: 1000).
    pub concurrency_limit: usize,
    /// How long a finished container stays warm before the platform
    /// reclaims it.
    pub keep_alive: SimTime,
    /// Always-warm containers the account pre-pays for (provisioned
    /// concurrency). They never go cold, are consumed before the organic
    /// warm pool, and bill at [`PROVISIONED_PRICE_PER_GB_SECOND`] for the
    /// whole simulation whether invoked or not.
    pub provisioned_concurrency: usize,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            concurrency_limit: 1_000,
            keep_alive: SimTime::minutes(10.0),
            provisioned_concurrency: 0,
        }
    }
}

/// Runtime state of the FaaS region.
#[derive(Debug, Clone)]
pub struct FaasRegion {
    pub cfg: FaasConfig,
    /// Functions currently executing.
    in_use: usize,
    /// Expiry times of idle warm containers, ascending. Releases happen in
    /// event-time order and `keep_alive` is constant, so appends keep the
    /// deque sorted for free: pruning pops stale entries from the front and
    /// warm hits consume the freshest entries from the back — no per-start
    /// sort or scan.
    warm: std::collections::VecDeque<f64>,
    /// Idle provisioned (always-warm) containers.
    provisioned_free: usize,
    /// Highest concurrent execution count observed.
    peak_in_use: usize,
    /// Total workers started warm / cold, across all jobs.
    warm_starts: u64,
    cold_starts: u64,
}

impl FaasRegion {
    pub fn new(cfg: FaasConfig) -> Self {
        assert!(
            cfg.provisioned_concurrency <= cfg.concurrency_limit,
            "cannot provision past the account concurrency limit"
        );
        FaasRegion {
            cfg,
            in_use: 0,
            warm: std::collections::VecDeque::new(),
            provisioned_free: cfg.provisioned_concurrency,
            peak_in_use: 0,
            warm_starts: 0,
            cold_starts: 0,
        }
    }

    fn prune(&mut self, now: SimTime) {
        let t = now.as_secs();
        while self.warm.front().is_some_and(|&e| e < t) {
            self.warm.pop_front();
        }
    }

    /// Concurrency slack at `now`.
    pub fn available(&self) -> usize {
        self.cfg.concurrency_limit - self.in_use
    }

    /// Try to start a `workers`-wide job. On success returns the fleet-level
    /// startup latency and how many workers were served from the warm pool:
    /// warm workers re-attach with one Invoke round-trip, cold workers pay
    /// the Table 6 cold-start curve for the *cold* count only.
    pub fn try_start(&mut self, now: SimTime, workers: usize) -> Option<(SimTime, usize)> {
        assert!(workers >= 1);
        assert!(
            workers <= self.cfg.concurrency_limit,
            "job wider than the account concurrency limit"
        );
        if self.in_use + workers > self.cfg.concurrency_limit {
            return None;
        }
        self.prune(now);
        // Provisioned containers are consumed first (they are paid for
        // either way), then the organic keep-alive pool.
        let from_provisioned = workers.min(self.provisioned_free);
        self.provisioned_free -= from_provisioned;
        let from_pool = (workers - from_provisioned).min(self.warm.len());
        // Consume the freshest warm containers (the platform keeps the most
        // recently used ones alive longest anyway; any choice is valid):
        // the deque is expiry-sorted, so the freshest are the back entries.
        self.warm.truncate(self.warm.len() - from_pool);
        let warm_hits = from_provisioned + from_pool;
        let cold = workers - warm_hits;
        self.warm_starts += warm_hits as u64;
        self.cold_starts += cold as u64;
        self.in_use += workers;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        let startup = if cold > 0 {
            faas_startup_time(cold)
        } else {
            INVOKE_LATENCY
        };
        Some((startup, warm_hits))
    }

    /// A job finished: its containers return to the warm pool. The
    /// provisioned floor is refilled first (the platform always keeps
    /// `provisioned_concurrency` containers warm; identity is irrelevant),
    /// the remainder joins the keep-alive pool.
    pub fn release(&mut self, now: SimTime, workers: usize) {
        assert!(self.in_use >= workers, "releasing more than in use");
        self.in_use -= workers;
        self.prune(now);
        let to_provisioned =
            (self.cfg.provisioned_concurrency - self.provisioned_free).min(workers);
        self.provisioned_free += to_provisioned;
        let expire = now.as_secs() + self.cfg.keep_alive.as_secs();
        debug_assert!(
            self.warm.back().is_none_or(|&e| e <= expire),
            "releases must arrive in event-time order to keep the pool sorted"
        );
        self.warm
            .extend(std::iter::repeat_n(expire, workers - to_provisioned));
    }

    /// The pre-paid provisioned-concurrency bill over `horizon`: every
    /// provisioned container-second at the provisioned GB-second rate,
    /// busy or idle.
    pub fn provisioned_cost(&self, horizon: SimTime) -> Cost {
        Cost::usd(
            self.cfg.provisioned_concurrency as f64
                * FUNCTION_GB
                * PROVISIONED_PRICE_PER_GB_SECOND
                * horizon.as_secs(),
        )
    }

    /// Fraction of all started workers served warm.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_starts + self.cold_starts;
        if total == 0 {
            0.0
        } else {
            self.warm_starts as f64 / total as f64
        }
    }

    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    pub fn peak_concurrency(&self) -> usize {
        self.peak_in_use
    }
}

/// IaaS pool configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IaasConfig {
    pub instance: InstanceType,
    /// Instances kept reserved at all times (bill from t = 0).
    pub min_instances: usize,
    /// Autoscaling ceiling.
    pub max_instances: usize,
    /// How long idle capacity above the floor survives before release.
    pub idle_after: SimTime,
    /// Dispatch latency of a job onto already-running instances (the master
    /// dispensing scripts when the cluster is warm — vastly below the cold
    /// t_I(w) boot).
    pub dispatch_latency: SimTime,
}

impl Default for IaasConfig {
    fn default() -> Self {
        IaasConfig {
            instance: InstanceType::T2Medium,
            min_instances: 20,
            max_instances: 400,
            idle_after: SimTime::minutes(5.0),
            dispatch_latency: SimTime::secs(2.0),
        }
    }
}

/// Runtime state of the reserved-cluster pool.
#[derive(Debug, Clone)]
pub struct IaasPool {
    pub cfg: IaasConfig,
    /// Instances currently booted (busy + idle).
    capacity: usize,
    /// Idle booted instances.
    free: usize,
    /// Instances being provisioned (not yet ready).
    provisioning: usize,
    /// Billing/utilization integrals.
    last_t: f64,
    instance_seconds: f64,
    busy_instance_seconds: f64,
    peak_capacity: usize,
    scale_ups: u64,
}

impl IaasPool {
    pub fn new(cfg: IaasConfig) -> Self {
        assert!(cfg.min_instances <= cfg.max_instances);
        IaasPool {
            cfg,
            capacity: cfg.min_instances,
            free: cfg.min_instances,
            provisioning: 0,
            last_t: 0.0,
            instance_seconds: 0.0,
            busy_instance_seconds: 0.0,
            peak_capacity: cfg.min_instances,
            scale_ups: 0,
        }
    }

    /// Advance the billing/utilization integrals to `now`. Must be called
    /// (and is, by every mutator) before any state change.
    fn tick(&mut self, now: SimTime) {
        let t = now.as_secs();
        debug_assert!(
            t >= self.last_t - 1e-9,
            "time went backwards: {t} < {}",
            self.last_t
        );
        let dt = (t - self.last_t).max(0.0);
        self.instance_seconds += self.capacity as f64 * dt;
        self.busy_instance_seconds += (self.capacity - self.free) as f64 * dt;
        self.last_t = t;
    }

    pub fn free(&self) -> usize {
        self.free
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn provisioning(&self) -> usize {
        self.provisioning
    }

    /// Try to start a `workers`-wide job on idle instances.
    pub fn try_start(&mut self, now: SimTime, workers: usize) -> bool {
        assert!(workers >= 1);
        self.tick(now);
        if self.free >= workers {
            self.free -= workers;
            true
        } else {
            false
        }
    }

    /// A job finished; its instances become idle.
    pub fn finish(&mut self, now: SimTime, workers: usize) {
        self.tick(now);
        self.free += workers;
        assert!(self.free <= self.capacity, "more free than booted");
    }

    /// Request capacity for `deficit` more workers. Returns the number of
    /// instances actually launched and their boot time (the Table 6
    /// `t_I(k)` curve for the batch being booted).
    pub fn scale_up(&mut self, now: SimTime, deficit: usize) -> Option<(usize, SimTime)> {
        self.tick(now);
        let headroom = self.cfg.max_instances - self.capacity - self.provisioning;
        let k = deficit.min(headroom);
        if k == 0 {
            return None;
        }
        self.provisioning += k;
        self.scale_ups += 1;
        Some((k, SimTime::secs(iaas_startup_table().eval(k as f64))))
    }

    /// A batch of `k` provisioned instances is ready.
    pub fn provisioned(&mut self, now: SimTime, k: usize) {
        self.tick(now);
        assert!(self.provisioning >= k);
        self.provisioning -= k;
        self.capacity += k;
        self.free += k;
        self.peak_capacity = self.peak_capacity.max(self.capacity);
    }

    /// Release idle capacity above the reserved floor. Returns instances
    /// released.
    pub fn scale_down_idle(&mut self, now: SimTime) -> usize {
        self.tick(now);
        let releasable = self
            .free
            .min(self.capacity - self.cfg.min_instances.min(self.capacity));
        self.capacity -= releasable;
        self.free -= releasable;
        releasable
    }

    /// Close the books at the end of the simulation.
    pub fn finalize(&mut self, now: SimTime) {
        self.tick(now);
    }

    /// Reserved-capacity bill so far: every booted instance-second, busy or
    /// idle (§2.2: "reserved resources bill whether busy or idle").
    pub fn cost(&self) -> Cost {
        self.cfg.instance.hourly() * (self.instance_seconds / 3_600.0)
    }

    /// Busy fraction of all billed instance-seconds.
    pub fn utilization(&self) -> f64 {
        // Exact-zero guard against dividing by zero billed seconds.
        // lml-analyze: allow(float-eq)
        if self.instance_seconds == 0.0 {
            0.0
        } else {
            self.busy_instance_seconds / self.instance_seconds
        }
    }

    pub fn peak_capacity(&self) -> usize {
        self.peak_capacity
    }

    pub fn scale_up_events(&self) -> u64 {
        self.scale_ups
    }
}

/// Spot/preemptible tier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotConfig {
    pub instance: InstanceType,
    /// Price multiplier vs on-demand (0.3 ⇒ a 70% discount — the typical
    /// spot/preemptible market band).
    pub price_factor: f64,
    /// Mean time to preemption of a single spot instance (exponential,
    /// seeded). A `workers`-wide job dies when its *first* instance is
    /// reclaimed, so its effective mean is `mean_time_to_preempt/workers`.
    pub mean_time_to_preempt: SimTime,
    /// Preemptions a job tolerates before it gives up on the market and
    /// falls back to the reserved pool (bounds the restart storm a long
    /// job would otherwise spin through on a hostile market).
    pub max_retries: u32,
}

impl SpotConfig {
    /// The per-instance exponential-clock parameter λ = 1 / mean time to
    /// preempt — the single definition of the market's hostility, shared
    /// by [`SpotTier::preemption_clock`]'s sampler and the
    /// zero-observation prior of [`crate::estimate::RiskModel`]. A
    /// `workers`-wide cluster dies at `workers × λ` (first instance
    /// reclaimed kills the attempt).
    pub fn preemption_rate_per_instance_s(&self) -> f64 {
        assert!(self.mean_time_to_preempt.as_secs() > 0.0);
        1.0 / self.mean_time_to_preempt.as_secs()
    }
}

impl Default for SpotConfig {
    fn default() -> Self {
        SpotConfig {
            instance: InstanceType::T2Medium,
            price_factor: 0.3,
            mean_time_to_preempt: SimTime::hours(4.0),
            max_retries: 3,
        }
    }
}

/// Runtime state of the spot tier.
///
/// Unlike the reserved pool, spot capacity is modelled as market-deep: a
/// job always gets instances after the Table 6 boot curve, there is no
/// shared reservation and no idle billing — but every launch carries a
/// seeded exponential preemption clock, and a preempted job rolls back to
/// its last durable checkpoint (or to zero without one) and must requeue.
/// Billing covers exactly the instance-seconds actually held (boot + run
/// until completion or preemption) at the discounted rate.
#[derive(Debug, Clone)]
pub struct SpotTier {
    pub cfg: SpotConfig,
    seed: u64,
    in_use: usize,
    peak_in_use: usize,
    preemptions: u64,
    billed_instance_seconds: f64,
}

impl SpotTier {
    pub fn new(cfg: SpotConfig, seed: u64) -> Self {
        assert!(cfg.price_factor > 0.0 && cfg.price_factor <= 1.0);
        assert!(cfg.mean_time_to_preempt.as_secs() > 0.0);
        SpotTier {
            cfg,
            seed: seed ^ 0x5907_7157,
            in_use: 0,
            peak_in_use: 0,
            preemptions: 0,
            billed_instance_seconds: 0.0,
        }
    }

    /// Launch a `workers`-wide spot cluster. Returns the boot time (Table 6
    /// `t_I(w)`); sample the market's reclaim clock separately with
    /// [`SpotTier::preemption_clock`].
    pub fn start(&mut self, workers: usize) -> SimTime {
        assert!(workers >= 1);
        self.in_use += workers;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        SimTime::secs(iaas_startup_table().eval(workers as f64))
    }

    /// Sampled time-to-preemption of attempt `attempt` of job `job_id`,
    /// measured from launch: if it lands before the attempt's finish the
    /// caller must preempt the job at that instant.
    ///
    /// **Clock semantics.** Each *instance* dies after an independent
    /// Exp(1/`mean_time_to_preempt`) lifetime, and a `workers`-wide
    /// cluster is lost when its *first* instance is reclaimed. The minimum
    /// of `w` iid Exp(1/m) clocks is Exp(w/m), so the cluster's lifetime
    /// is sampled with mean `mean_time_to_preempt / workers` — the config
    /// field is per-instance; wide jobs die proportionally sooner (see
    /// `preemption_clock_mean_divides_by_width` for the statistical
    /// check).
    ///
    /// The sample is a pure function of (tier seed, job, attempt, width):
    /// two simulations of the same trace that differ only in checkpoint
    /// policy see identical reclaim times attempt-for-attempt, which is
    /// what makes "more frequent checkpoints never lose more work" a
    /// structural guarantee rather than a statistical accident.
    pub fn preemption_clock(&self, job_id: u64, attempt: u32, workers: usize) -> SimTime {
        assert!(workers >= 1);
        let tag = job_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64)
            .wrapping_mul(0xD605_1F65_4238_5DF6);
        let mut rng = Pcg64::new(self.seed ^ tag);
        let mean = self.cfg.mean_time_to_preempt.as_secs() / workers as f64;
        let u = rng.uniform();
        SimTime::secs(-(1.0 - u).ln() * mean)
    }

    /// The cluster ran to completion; bill the seconds it was held.
    pub fn finish(&mut self, workers: usize, held: SimTime) {
        assert!(self.in_use >= workers, "finishing more than in use");
        self.in_use -= workers;
        self.billed_instance_seconds += workers as f64 * held.as_secs();
    }

    /// The market reclaimed the cluster `held` seconds after launch; the
    /// partial run is billed, progress past the last durable checkpoint is
    /// lost.
    pub fn preempted(&mut self, workers: usize, held: SimTime) {
        self.finish(workers, held);
        self.preemptions += 1;
    }

    /// Discounted price of `instance_seconds` on this market — the single
    /// pricing point behind both the tier bill and per-job attribution.
    fn price(&self, instance_seconds: f64) -> Cost {
        self.cfg.instance.hourly() * (instance_seconds / 3_600.0 * self.cfg.price_factor)
    }

    /// Discounted price of holding `workers` instances for `held`.
    pub fn price_of(&self, workers: usize, held: SimTime) -> Cost {
        self.price(workers as f64 * held.as_secs())
    }

    /// Spot bill so far: held instance-seconds at the discounted rate.
    pub fn cost(&self) -> Cost {
        self.price(self.billed_instance_seconds)
    }

    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Spot instances currently held — a point-in-time gauge for telemetry
    /// (peak_in_use is the high-water mark, this is the live level).
    pub fn in_use(&self) -> usize {
        self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_limit_blocks_admission() {
        let mut r = FaasRegion::new(FaasConfig {
            concurrency_limit: 25,
            ..Default::default()
        });
        assert!(r.try_start(SimTime::ZERO, 20).is_some());
        assert!(r.try_start(SimTime::ZERO, 10).is_none(), "20 + 10 > 25");
        assert!(r.try_start(SimTime::ZERO, 5).is_some());
        assert_eq!(r.available(), 0);
    }

    #[test]
    fn warm_pool_eliminates_cold_starts() {
        let mut r = FaasRegion::new(FaasConfig::default());
        let (cold_startup, hits) = r.try_start(SimTime::ZERO, 10).unwrap();
        assert_eq!(hits, 0, "first job is all cold");
        assert!(cold_startup >= faas_startup_time(10));
        r.release(SimTime::secs(100.0), 10);
        // Second job inside the keep-alive window: all warm.
        let (warm_startup, hits) = r.try_start(SimTime::secs(150.0), 10).unwrap();
        assert_eq!(hits, 10);
        assert_eq!(warm_startup, INVOKE_LATENCY);
        assert!(warm_startup < cold_startup);
        assert!((r.warm_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warm_containers_expire() {
        let mut r = FaasRegion::new(FaasConfig {
            keep_alive: SimTime::secs(60.0),
            ..Default::default()
        });
        r.try_start(SimTime::ZERO, 10).unwrap();
        r.release(SimTime::secs(10.0), 10);
        // 100 s later the pool is stale: all cold again.
        let (_, hits) = r.try_start(SimTime::secs(200.0), 10).unwrap();
        assert_eq!(hits, 0);
    }

    #[test]
    fn partial_warm_pool_charges_cold_tail_only() {
        let mut r = FaasRegion::new(FaasConfig::default());
        r.try_start(SimTime::ZERO, 4).unwrap();
        r.release(SimTime::secs(5.0), 4);
        let (startup, hits) = r.try_start(SimTime::secs(10.0), 10).unwrap();
        assert_eq!(hits, 4);
        // Startup pays the cold curve of the 6 cold workers, not all 10.
        assert_eq!(startup, faas_startup_time(6));
    }

    #[test]
    fn iaas_pool_bills_idle_capacity() {
        let cfg = IaasConfig {
            min_instances: 10,
            ..Default::default()
        };
        let mut p = IaasPool::new(cfg);
        p.finalize(SimTime::hours(1.0));
        // 10 × $0.0464 × 1 h, all idle.
        assert!((p.cost().as_usd() - 0.464).abs() < 1e-9);
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn iaas_queue_capacity_accounting() {
        let mut p = IaasPool::new(IaasConfig {
            min_instances: 10,
            ..Default::default()
        });
        assert!(p.try_start(SimTime::ZERO, 8));
        assert!(!p.try_start(SimTime::ZERO, 5), "only 2 free");
        p.finish(SimTime::secs(50.0), 8);
        assert!(p.try_start(SimTime::secs(50.0), 5));
        p.finish(SimTime::secs(100.0), 5);
        p.finalize(SimTime::secs(100.0));
        // busy: 8 × 50 + 5 × 50 = 650 of 10 × 100 = 1000 instance-seconds.
        assert!((p.utilization() - 0.65).abs() < 1e-9);
    }

    #[test]
    fn iaas_scale_up_and_down() {
        let mut p = IaasPool::new(IaasConfig {
            min_instances: 5,
            max_instances: 50,
            ..Default::default()
        });
        let (k, boot) = p.scale_up(SimTime::ZERO, 20).unwrap();
        assert_eq!(k, 20);
        assert!(boot.as_secs() >= 120.0, "Table 6 boot time, got {boot}");
        p.provisioned(boot, 20);
        assert_eq!(p.capacity(), 25);
        assert_eq!(p.free(), 25);
        let released = p.scale_down_idle(boot + SimTime::minutes(10.0));
        assert_eq!(released, 20, "shrinks back to the floor");
        assert_eq!(p.capacity(), 5);
    }

    #[test]
    fn provisioned_concurrency_is_always_warm() {
        let mut r = FaasRegion::new(FaasConfig {
            provisioned_concurrency: 10,
            keep_alive: SimTime::secs(60.0),
            ..Default::default()
        });
        // First job, hours into the trace: still fully warm.
        let (startup, hits) = r.try_start(SimTime::hours(5.0), 10).unwrap();
        assert_eq!(hits, 10);
        assert_eq!(startup, INVOKE_LATENCY);
        // A second concurrent job must go cold — the floor is exhausted.
        let (_, hits) = r.try_start(SimTime::hours(5.0), 10).unwrap();
        assert_eq!(hits, 0);
        // After release the floor refills and outlives the keep-alive pool.
        r.release(SimTime::hours(5.1), 20);
        let (_, hits) = r.try_start(SimTime::hours(9.0), 12).unwrap();
        assert_eq!(hits, 10, "floor refilled, keep-alive pool expired");
    }

    #[test]
    fn provisioned_concurrency_bills_whether_used_or_not() {
        let r = FaasRegion::new(FaasConfig {
            provisioned_concurrency: 100,
            ..Default::default()
        });
        let c = r.provisioned_cost(SimTime::hours(1.0));
        let expected = 100.0 * FUNCTION_GB * PROVISIONED_PRICE_PER_GB_SECOND * 3_600.0;
        assert!((c.as_usd() - expected).abs() < 1e-9);
        let none = FaasRegion::new(FaasConfig::default());
        assert_eq!(none.provisioned_cost(SimTime::hours(1.0)).as_usd(), 0.0);
    }

    #[test]
    fn spot_tier_bills_discounted_held_seconds() {
        let cfg = SpotConfig {
            price_factor: 0.25,
            ..Default::default()
        };
        let mut s = SpotTier::new(cfg, 1);
        let boot = s.start(10);
        assert!(boot.as_secs() > 0.0, "spot clusters still boot");
        s.finish(10, SimTime::hours(1.0));
        // 10 instances × 1 h × $0.0464 × 0.25.
        assert!((s.cost().as_usd() - 0.116).abs() < 1e-9);
        assert_eq!(s.preemptions(), 0);
    }

    #[test]
    fn spot_preemption_clocks_are_seeded_per_job_and_attempt() {
        let s = SpotTier::new(SpotConfig::default(), 7);
        // Pure function of (seed, job, attempt): re-asking gives the same
        // answer, every coordinate changes it.
        assert_eq!(s.preemption_clock(3, 0, 10), s.preemption_clock(3, 0, 10));
        assert_ne!(s.preemption_clock(3, 0, 10), s.preemption_clock(3, 1, 10));
        assert_ne!(s.preemption_clock(3, 0, 10), s.preemption_clock(4, 0, 10));
        let other = SpotTier::new(SpotConfig::default(), 8);
        assert_ne!(
            s.preemption_clock(3, 0, 10),
            other.preemption_clock(3, 0, 10),
            "different tier seeds give different markets"
        );
    }

    /// The per-worker exponential mean divides correctly for multi-worker
    /// jobs: a `w`-wide cluster dies when its first instance does, so the
    /// sampled lifetimes must average `mean_time_to_preempt / w` — checked
    /// quantitatively for w = 1, 4, 20.
    #[test]
    fn preemption_clock_mean_divides_by_width() {
        let cfg = SpotConfig {
            mean_time_to_preempt: SimTime::secs(8_000.0),
            ..Default::default()
        };
        let s = SpotTier::new(cfg, 5);
        let n = 4_000u64;
        for workers in [1usize, 4, 20] {
            let mean: f64 = (0..n)
                .map(|j| s.preemption_clock(j, 0, workers).as_secs())
                .sum::<f64>()
                / n as f64;
            let expect = 8_000.0 / workers as f64;
            assert!(
                (mean - expect).abs() < expect * 0.1,
                "width {workers}: empirical mean {mean:.1} vs {expect}"
            );
        }
    }

    /// The config's rate helper and the tier's sampled clocks agree: the
    /// empirical per-instance mean lifetime inverts the advertised λ.
    #[test]
    fn preemption_rate_inverts_the_sampled_mean() {
        let cfg = SpotConfig {
            mean_time_to_preempt: SimTime::secs(5_000.0),
            ..Default::default()
        };
        assert!((cfg.preemption_rate_per_instance_s() - 2e-4).abs() < 1e-15);
        let s = SpotTier::new(cfg, 9);
        let n = 4_000u64;
        let mean: f64 = (0..n)
            .map(|j| s.preemption_clock(j, 0, 1).as_secs())
            .sum::<f64>()
            / n as f64;
        let implied_rate = 1.0 / mean;
        assert!(
            (implied_rate - cfg.preemption_rate_per_instance_s()).abs()
                < cfg.preemption_rate_per_instance_s() * 0.1,
            "sampled clocks imply λ = {implied_rate}, config advertises {}",
            cfg.preemption_rate_per_instance_s()
        );
    }

    #[test]
    fn iaas_scale_up_respects_ceiling() {
        let mut p = IaasPool::new(IaasConfig {
            min_instances: 5,
            max_instances: 10,
            ..Default::default()
        });
        let (k, _) = p.scale_up(SimTime::ZERO, 100).unwrap();
        assert_eq!(k, 5, "ceiling of 10 minus 5 booted");
        assert!(p.scale_up(SimTime::ZERO, 100).is_none(), "no headroom left");
    }
}
