//! OpenDC serverless trace adapter.
//!
//! OpenDC's serverless-workload format stores one CSV **per function**,
//! each an invocation timeline:
//!
//! ```text
//! Timestamp [ms],Invocations,Avg Exec time per Invocation,Provisioned CPU,...
//! 300000,2,350,1,128,...
//! ```
//!
//! A row says "this function was invoked N times in the window starting
//! at this timestamp". This module adapts a set of such timelines onto
//! the fleet simulator as a streaming [`TraceSource`]: the per-function
//! files are k-way merged in timestamp order (ties break on function
//! index, i.e. file order), and every invocation becomes one training-job
//! submission. Functions map onto tenants by their index in file order,
//! and onto the Table 4 job zoo by the same FNV-1a hash of the function
//! name that the Azure and Google adapters use, so the mapping is
//! deterministic across runs and platforms.
//!
//! Each timeline must be sorted by timestamp (OpenDC writes them that
//! way); the merge then yields a globally non-decreasing arrival stream
//! with constant memory per function — one buffered row each — which is
//! what the [`TraceSource`] contract requires. Files that violate time
//! order are rejected (streaming cannot re-sort). Rows with zero
//! invocations are skipped. Extra columns (exec time, provisioned
//! CPU/memory, usage averages) are ignored.
//!
//! OpenDC timelines carry no budget notion, so [`TraceSource::budgets`]
//! returns the empty map — only trace-text v3 preambles declare budgets.
//!
//! A bundled fixture lives under `crates/fleet/data/opendc/`.

use crate::azure::fnv1a;
use crate::job::{JobClass, JobRequest, TenantId};
use crate::stream::TraceSource;
use crate::workload::Trace;
use lml_sim::SimTime;
use std::collections::BTreeMap;
use std::io::BufRead;

/// The job class an OpenDC function name maps to (deterministic, same
/// FNV-1a spread as the Azure and Google adapters).
pub fn class_for_function(name: &str) -> JobClass {
    JobClass::ALL[(fnv1a(name) % JobClass::ALL.len() as u64) as usize]
}

/// Is this a header line? OpenDC spells the first column `Timestamp [ms]`
/// but exports vary, so normalize the first field like the other adapters.
fn is_header(line: &str) -> bool {
    let first = line.split(',').next().unwrap_or("");
    let normalized: String = first
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    normalized.starts_with("time")
}

/// One per-function timeline being streamed: the reader plus the one
/// buffered row the k-way merge peeks at.
struct FunctionStream<R> {
    name: String,
    reader: R,
    lineno: usize,
    last_ts: f64,
    /// Next unconsumed row: `(timestamp_secs, invocations_left)`.
    pending: Option<(f64, u64)>,
    done: bool,
}

impl<R: BufRead> FunctionStream<R> {
    /// Advance to the next row with a positive invocation count, filling
    /// `pending`. Returns an error on malformed or time-disordered rows.
    fn refill(&mut self) -> Result<(), String> {
        let mut line = String::new();
        while self.pending.is_none() && !self.done {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("{}: line {}: read error: {e}", self.name, self.lineno + 1))?;
            if n == 0 {
                self.done = true;
                return Ok(());
            }
            let lineno = self.lineno;
            self.lineno += 1;
            let row = line.trim();
            if row.is_empty() || row.starts_with('#') || is_header(row) {
                continue;
            }
            let mut fields = row.split(',').map(str::trim);
            let ts_ms: f64 =
                fields.next().unwrap_or("").parse().map_err(|e| {
                    format!("{}: line {}: bad timestamp: {e}", self.name, lineno + 1)
                })?;
            if !ts_ms.is_finite() || ts_ms < 0.0 {
                return Err(format!(
                    "{}: line {}: timestamp must be finite and >= 0",
                    self.name,
                    lineno + 1
                ));
            }
            let invocations: u64 = fields.next().unwrap_or("").parse().map_err(|e| {
                format!(
                    "{}: line {}: bad invocation count: {e}",
                    self.name,
                    lineno + 1
                )
            })?;
            let ts = ts_ms / 1e3;
            if ts < self.last_ts {
                return Err(format!(
                    "{}: line {}: timeline not sorted by timestamp (the streaming \
                     adapter cannot re-sort)",
                    self.name,
                    lineno + 1
                ));
            }
            self.last_ts = ts;
            if invocations > 0 {
                self.pending = Some((ts, invocations));
            }
        }
        Ok(())
    }
}

/// Streaming adapter over a set of OpenDC per-function invocation
/// timelines: pull-based k-way merge, one buffered row per function.
pub struct OpenDcSource<R> {
    functions: Vec<FunctionStream<R>>,
    /// Lazily primed: every stream's first row buffered before merging.
    primed: bool,
    next_id: u64,
}

impl<R: BufRead> OpenDcSource<R> {
    /// Build from `(function_name, reader)` pairs. File order defines the
    /// tenant id (function index) and the merge tie-break.
    pub fn new(functions: impl IntoIterator<Item = (String, R)>) -> Self {
        OpenDcSource {
            functions: functions
                .into_iter()
                .map(|(name, reader)| FunctionStream {
                    name,
                    reader,
                    lineno: 0,
                    last_ts: 0.0,
                    pending: None,
                    done: false,
                })
                .collect(),
            primed: false,
            next_id: 0,
        }
    }
}

impl OpenDcSource<std::io::BufReader<std::fs::File>> {
    /// Open every `*.csv` in `dir` as a function timeline, in sorted
    /// filename order (which fixes tenant ids deterministically).
    pub fn from_dir(dir: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let dir = dir.as_ref();
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("{}: no *.csv timelines found", dir.display()));
        }
        let mut functions = Vec::with_capacity(paths.len());
        for path in paths {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let file =
                std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            functions.push((name, std::io::BufReader::new(file)));
        }
        Ok(Self::new(functions))
    }
}

impl<R: BufRead> TraceSource for OpenDcSource<R> {
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String> {
        // Invocation timelines carry no budget notion; every tenant is
        // uncapped (only trace-text v3 preambles declare budgets).
        Ok(BTreeMap::new())
    }

    fn next_job(&mut self) -> Result<Option<JobRequest>, String> {
        if !self.primed {
            for f in &mut self.functions {
                f.refill()?;
            }
            self.primed = true;
        }
        // Earliest buffered row wins; the strict `<` keeps the lowest
        // function index on ties, so the merge is deterministic.
        let mut best: Option<(f64, usize)> = None;
        for (i, f) in self.functions.iter().enumerate() {
            if let Some((ts, _)) = f.pending {
                if best.is_none_or(|(bts, _)| ts < bts) {
                    best = Some((ts, i));
                }
            }
        }
        let Some((_, i)) = best else { return Ok(None) };
        let f = &mut self.functions[i];
        let (ts, left) = f.pending.take().expect("best has a pending row");
        if left > 1 {
            f.pending = Some((ts, left - 1));
        } else {
            f.refill()?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let class = class_for_function(&f.name);
        Ok(Some(JobRequest {
            id,
            class,
            submit: SimTime::secs(ts),
            workers: class.default_workers(),
            tenant: i as TenantId,
            deadline: None,
        }))
    }
}

/// Parse `(function_name, csv)` pairs into an in-memory [`Trace`] by
/// draining the streaming source (convenience for fixtures and tests).
pub fn parse(functions: &[(&str, &str)]) -> Result<Trace, String> {
    crate::stream::collect(OpenDcSource::new(
        functions
            .iter()
            .map(|&(name, csv)| (name.to_string(), csv.as_bytes())),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect;

    const FIXTURE: [(&str, &str); 3] = [
        ("img-resize", include_str!("../data/opendc/img-resize.csv")),
        ("ml-train", include_str!("../data/opendc/ml-train.csv")),
        ("thumb-gen", include_str!("../data/opendc/thumb-gen.csv")),
    ];

    #[test]
    fn bundled_fixture_parses() {
        let trace = parse(&FIXTURE).expect("bundled fixture must parse");
        assert!(trace.len() >= 10, "fixture has {} jobs", trace.len());
        let tenants = trace.tenants();
        assert_eq!(tenants, vec![0, 1, 2], "one tenant per function file");
        assert!(trace.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert!(trace.budgets.is_empty(), "OpenDC carries no budgets");
    }

    #[test]
    fn from_dir_matches_in_memory_fixture() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data/opendc");
        let from_dir = collect(OpenDcSource::from_dir(dir).unwrap()).unwrap();
        assert_eq!(from_dir, parse(&FIXTURE).unwrap());
    }

    #[test]
    fn invocation_counts_fan_out_and_merge_breaks_ties_by_file_order() {
        let t = parse(&[
            ("b-second", "Timestamp [ms],Invocations\n1000,2\n3000,1\n"),
            ("a-first", "Timestamp [ms],Invocations\n1000,1\n2000,1\n"),
        ])
        .unwrap();
        // 1000ms: two from file 0, one from file 1 (file order, not name
        // order, breaks the tie); then 2000ms, then 3000ms.
        let got: Vec<(f64, TenantId)> = t
            .jobs
            .iter()
            .map(|j| (j.submit.as_secs(), j.tenant))
            .collect();
        assert_eq!(got, vec![(1.0, 0), (1.0, 0), (1.0, 1), (2.0, 1), (3.0, 0)]);
        assert_eq!(
            t.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4],
            "ids are assigned in arrival order"
        );
    }

    #[test]
    fn zero_invocation_rows_are_skipped() {
        let t = parse(&[("f", "Timestamp [ms],Invocations\n0,0\n1000,0\n2000,1\n")]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.jobs[0].submit, SimTime::secs(2.0));
    }

    #[test]
    fn out_of_order_timelines_are_rejected() {
        let e = parse(&[("f", "Timestamp [ms],Invocations\n5000,1\n2000,1\n")]).unwrap_err();
        assert!(e.contains("f: line 3") && e.contains("not sorted"), "{e}");
    }

    #[test]
    fn malformed_rows_are_rejected_with_function_and_line() {
        let e = parse(&[("f", "soon,1\n")]).unwrap_err();
        assert!(
            e.contains("f: line 1") && e.contains("bad timestamp"),
            "{e}"
        );
        assert!(parse(&[("f", "nan,1\n")]).is_err());
        assert!(parse(&[("f", "-1,1\n")]).is_err());
        let e = parse(&[("f", "1000,often\n")]).unwrap_err();
        assert!(e.contains("bad invocation count"), "{e}");
        let e = parse(&[("f", "1000\n")]).unwrap_err();
        assert!(e.contains("bad invocation count"), "{e}");
    }

    #[test]
    fn headers_comments_and_blanks_are_skipped() {
        let csv = "# opendc export\nTimestamp [ms],Invocations,Avg Exec time\n\n1000,1,350\n";
        let t = parse(&[("f", csv)]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(parse(&[]).unwrap().is_empty(), "no functions, no jobs");
        assert!(parse(&[("f", "")]).unwrap().is_empty());
    }

    #[test]
    fn class_mapping_is_stable_and_spread() {
        assert_eq!(
            class_for_function("ml-train"),
            class_for_function("ml-train")
        );
        let classes: std::collections::BTreeSet<_> = (0..40)
            .map(|i| class_for_function(&format!("fn-{i}")))
            .collect();
        assert!(classes.len() >= 3, "only {} classes hit", classes.len());
    }

    #[test]
    fn streaming_twice_is_deterministic() {
        assert_eq!(parse(&FIXTURE).unwrap(), parse(&FIXTURE).unwrap());
    }
}
