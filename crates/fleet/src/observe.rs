//! Fleet observability: structured event tracing, scheduler decision
//! audit, windowed telemetry, and Chrome-trace export.
//!
//! The simulator's only output used to be the end-of-run
//! [`FleetMetrics`](crate::metrics::FleetMetrics) aggregate — no way to see *why* a job was routed to spot, deferred, or
//! rejected, nor how queue depth and spend evolved over time. This module
//! adds a [`FleetObserver`] trait the event loop narrates a run into:
//!
//! * every validated lifecycle transition as a typed [`FleetEvent`]
//!   stamped with sim time, job id, tenant, route, and attempt;
//! * every scheduler decision as a [`DecisionRecord`] carrying the inputs
//!   that drove it (predicted ETA, quantile ETA, risk-adjusted spot ETA,
//!   laxity, deferral-vs-rejection prices), so routing and admission are
//!   fully explainable post-hoc;
//! * platform events ([`PlatformEvent`]): warm hits/misses, autoscale
//!   up/down, spot reclaims, checkpoint writes and restores;
//! * per-attempt dispatch spans ([`AttemptSpan`]) — the exact
//!   queue/startup/run segments the metrics accumulate, one record per
//!   platform launch, from which the Chrome-trace exporter builds per-job
//!   timelines;
//! * windowed time-series gauges ([`GaugeSample`]) on a standing window
//!   clock: queue depth, deferred backlog, pool/warm utilization, spot
//!   holdings, per-tenant spend.
//!
//! Three sinks ship with the trait:
//!
//! * [`NullObserver`] — the zero-cost default behind [`crate::simulate`];
//!   every hook is a no-op and [`FleetObserver::active`] returns `false`,
//!   so the simulator skips even assembling the payloads. A `NullObserver`
//!   run is byte-identical to one compiled without any observer wiring.
//! * [`RecordingObserver`] — in-memory capture of all five streams with a
//!   deterministic JSON dump ([`RecordingObserver::to_json`], schema
//!   `lml-fleet/trace/v1`) and a Chrome trace-event exporter
//!   ([`RecordingObserver::to_chrome_trace`]) loadable in Perfetto or
//!   `chrome://tracing`.
//! * [`ThroughputProbe`] — a self-profiler counting simulator events, heap
//!   operations, and wall-clock events/second: the baseline number for the
//!   ROADMAP's ≥10× sim-speed item.
//!
//! Determinism contract: with the default `NullObserver` nothing changes —
//! no extra events enter the queue and every metrics byte matches the
//! unobserved simulator. An active observer with a
//! [`FleetObserver::gauge_period`] *does* add `GaugeTick` events to the
//! loop (they mutate nothing, but heap tie-breaking means the run is its
//! own determinism domain): two same-seed runs with the same observer
//! configuration still produce byte-identical traces *and* metrics.

use crate::job::TenantId;
use crate::json::{array, JsonObject};
use crate::lifecycle::JobLifecycle;
use crate::metrics::WindowRollup;
use crate::scheduler::Route;
use lml_sim::SimTime;

/// Streaming-replay counters handed to every observer just before
/// [`FleetObserver::end`]: how many arrivals the engine pulled from its
/// [`TraceSource`](crate::stream::TraceSource) and the peak size of the
/// resident job slab. For a streamed trace, `peak_resident_jobs` is the
/// number that stays bounded by the in-flight working set rather than the
/// trace length.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayStats {
    /// Arrivals pulled from the trace source over the run.
    pub arrivals_streamed: u64,
    /// Peak occupancy of the resident job slab (admitted, non-retired).
    pub peak_resident_jobs: u64,
    /// Peak number of pending entries in the event queue over the run.
    pub peak_queue_depth: u64,
}

/// One validated lifecycle transition, stamped with everything needed to
/// place it on a per-job timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEvent {
    /// Sim time of the transition.
    pub at: SimTime,
    /// Trace job id.
    pub job: u64,
    pub tenant: TenantId,
    /// The job's routed substrate as of this transition (records keep the
    /// original route across a spot→pool fallback).
    pub route: Route,
    /// Spot attempts launched so far (0 before the first launch).
    pub attempt: u32,
    pub from: JobLifecycle,
    pub to: JobLifecycle,
}

/// Why a job went where it went: the scheduler-decision audit record. One
/// is emitted per admission (fresh arrivals and budget-window releases
/// alike) and per deferral/rejection, carrying the inputs that drove the
/// decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    pub at: SimTime,
    pub job: u64,
    pub tenant: TenantId,
    pub decision: Decision,
}

/// The decision itself, with the prices and ETAs that settled it. Fields
/// are `None` when the deciding policy does not produce them (constant
/// routers predict nothing; deadline-less jobs have no laxity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// The job was routed onto a platform.
    Admit {
        route: Route,
        /// The tail the policy prices runtimes at.
        eta_quantile: f64,
        /// Mean predicted run on the routed substrate, seconds.
        predicted_run_s: Option<f64>,
        /// Calibrated quantile ETA on the routed substrate, seconds.
        eta_q_s: Option<f64>,
        /// Risk-adjusted spot ETA (clean attempt plus expected
        /// resume-and-rerun cycles from the preemption posterior) — what
        /// the laxity had to cover for a spot admission.
        spot_eta_s: Option<f64>,
        /// Deadline slack at admission, seconds.
        laxity_s: Option<f64>,
    },
    /// The job was held to the next budget-window boundary: deferral
    /// priced at or below rejection.
    Defer {
        laxity_s: Option<f64>,
        /// The window boundary the job would be released at, seconds.
        release_s: Option<f64>,
        /// Best-substrate quantile run after release, seconds — the ETA
        /// the deadline-miss test priced.
        eta_q_s: Option<f64>,
        /// What a P95 deadline miss is deemed to cost (the defer side of
        /// the pricing when the ETA misses; zero-cost when it makes it).
        deadline_miss_cost: f64,
        /// What rejecting outright is deemed to cost (the other side).
        rejection_cost: f64,
    },
    /// The job was refused admission: a hard budget cap with no window, a
    /// zero-budget tenant, or the deferral-vs-rejection pricing finding a
    /// P95 miss locked in and rejection strictly cheaper.
    Reject {
        laxity_s: Option<f64>,
        release_s: Option<f64>,
        eta_q_s: Option<f64>,
        deadline_miss_cost: f64,
        rejection_cost: f64,
    },
}

impl Decision {
    pub fn name(&self) -> &'static str {
        match self {
            Decision::Admit { .. } => "admit",
            Decision::Defer { .. } => "defer",
            Decision::Reject { .. } => "reject",
        }
    }
}

/// A platform-level event: what the substrates did, as it happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformEvent {
    /// A FaaS launch: `warm_hits` of the `workers` functions came from the
    /// warm pool, the rest cold-started.
    FaasStart {
        job: u64,
        workers: usize,
        warm_hits: usize,
    },
    /// The IaaS autoscaler started booting `instances` more machines.
    AutoscaleUp { instances: usize, boot_s: f64 },
    /// The IaaS autoscaler released `instances` idle machines above the
    /// floor.
    AutoscaleDown { instances: usize },
    /// The spot market reclaimed job `job`'s cluster `held_s` seconds
    /// after launch of attempt `attempt` (0-based).
    SpotReclaim {
        job: u64,
        attempt: u32,
        workers: usize,
        held_s: f64,
    },
    /// `writes` recovery-checkpoint uploads were initiated (billed whether
    /// durable or interrupted).
    CheckpointWrite { job: u64, writes: u32 },
    /// An attempt restored `epochs` durable epochs from checkpoint instead
    /// of redoing them.
    CheckpointRestore { job: u64, epochs: u32 },
}

impl PlatformEvent {
    pub fn name(&self) -> &'static str {
        match self {
            PlatformEvent::FaasStart { .. } => "faas_start",
            PlatformEvent::AutoscaleUp { .. } => "autoscale_up",
            PlatformEvent::AutoscaleDown { .. } => "autoscale_down",
            PlatformEvent::SpotReclaim { .. } => "spot_reclaim",
            PlatformEvent::CheckpointWrite { .. } => "checkpoint_write",
            PlatformEvent::CheckpointRestore { .. } => "checkpoint_restore",
        }
    }
}

/// One platform launch of one job: the exact queue/startup/run segments
/// the metrics accumulate, emitted at dispatch time. `startup_s`/`run_s`
/// are the *planned* segments; a spot attempt the market reclaims is
/// truncated by the matching [`PlatformEvent::SpotReclaim`] exactly the
/// way the simulator truncates it (startup capped at the held seconds,
/// run at what remained after the overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptSpan {
    pub job: u64,
    pub tenant: TenantId,
    /// The substrate this attempt actually launched on (a spot job's pool
    /// fallback dispatches an `Iaas` span).
    pub substrate: Route,
    /// 0-based spot attempt index at launch (0 for FaaS/IaaS dispatches of
    /// never-preempted jobs).
    pub attempt: u32,
    /// When the wait interval ending in this dispatch began (submission,
    /// window release, or the preemption that threw the job back).
    pub queued_at: SimTime,
    pub dispatched_at: SimTime,
    /// Planned startup seconds (boot + restore, or cold/warm start).
    pub startup_s: f64,
    /// Planned run seconds (remaining epochs only, after a resume).
    pub run_s: f64,
}

/// One sample of the standing telemetry clock: fleet-wide gauges at an
/// instant of sim time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    pub at: SimTime,
    /// Jobs sitting in the FaaS + IaaS admission queues.
    pub queue_depth: usize,
    /// Jobs held for the next budget window.
    pub deferred: usize,
    /// FaaS executions in flight / account concurrency limit.
    pub faas_in_use: usize,
    pub faas_limit: usize,
    /// Busy / booted IaaS instances.
    pub iaas_busy: usize,
    pub iaas_capacity: usize,
    /// Spot instances currently held.
    pub spot_in_use: usize,
    /// Attributed dollars per tenant this accounting window (ascending by
    /// tenant id — deterministic).
    pub tenant_spend: Vec<(TenantId, f64)>,
}

/// The observer the fleet loop narrates a run into. Every hook has a
/// no-op default, so sinks implement only what they need; the simulator
/// gates payload assembly on [`FleetObserver::active`], so the default
/// [`NullObserver`] costs one predictable branch per site.
///
/// `Send` is a supertrait so an observer can ride its simulation run onto
/// a bench sweep worker thread.
pub trait FleetObserver: Send {
    /// Whether the simulator should assemble and deliver payloads at all.
    /// `NullObserver` returns `false`; custom sinks inherit `true`.
    fn active(&self) -> bool {
        true
    }
    /// Period of the standing gauge clock, if this sink wants one. `None`
    /// (the default) keeps the event queue untouched — required for
    /// byte-identical parity with the unobserved simulator.
    fn gauge_period(&self) -> Option<SimTime> {
        None
    }
    /// A run is starting: policy name, seed, and job count.
    fn begin(&mut self, _policy: &str, _seed: u64, _n_jobs: usize) {}
    /// One validated lifecycle transition.
    fn lifecycle(&mut self, _ev: &FleetEvent) {}
    /// One scheduler decision with its inputs.
    fn decision(&mut self, _d: &DecisionRecord) {}
    /// One platform event.
    fn platform(&mut self, _at: SimTime, _ev: &PlatformEvent) {}
    /// One dispatch span.
    fn attempt(&mut self, _s: &AttemptSpan) {}
    /// One gauge sample from the standing clock.
    fn gauges(&mut self, _g: &GaugeSample) {}
    /// Width of the incremental metric-rollup windows, if this sink wants
    /// them. Unlike the gauge clock, rollups ride the engine's own event
    /// times — no events enter the queue, so arming them keeps the run
    /// byte-identical to an unobserved one. `None` (the default) skips
    /// rollup accounting entirely.
    fn rollup_period(&self) -> Option<SimTime> {
        None
    }
    /// One flushed metric window (the clock passed a `rollup_period`
    /// boundary, or the run ended with a partial window open). Windows
    /// arrive in index order with dense indices.
    fn rollup(&mut self, _w: &WindowRollup) {}
    /// Streaming counters for the finished run, delivered immediately
    /// before [`FleetObserver::end`]. Called on every observer, active or
    /// not (it carries no per-event payload).
    fn replay(&mut self, _stats: &ReplayStats) {}
    /// The run finished: total event-queue pushes and pops — the heap-ops
    /// numbers the [`ThroughputProbe`] turns into a baseline. Called on
    /// every observer, active or not (it carries no per-event payload).
    fn end(&mut self, _pushes: u64, _pops: u64) {}
}

/// The zero-cost default: every hook is a no-op and `active()` is
/// `false`, so the simulator skips payload assembly entirely. A run with
/// this observer is byte-identical to one without observer wiring.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl FleetObserver for NullObserver {
    fn active(&self) -> bool {
        false
    }
}

/// In-memory capture of all five observer streams, with a deterministic
/// `lml-fleet/trace/v1` JSON dump and a Chrome trace-event exporter.
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    policy: String,
    seed: u64,
    n_jobs: usize,
    gauge_period: Option<SimTime>,
    pub events: Vec<FleetEvent>,
    pub decisions: Vec<DecisionRecord>,
    pub platform: Vec<(SimTime, PlatformEvent)>,
    pub attempts: Vec<AttemptSpan>,
    pub gauges: Vec<GaugeSample>,
}

impl RecordingObserver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the standing gauge clock at `period`. Note this inserts
    /// `GaugeTick` events into the simulation's queue: gauges in hand, the
    /// run is still seed-deterministic, but its metrics bytes form their
    /// own determinism domain (compare like with like).
    pub fn with_gauge_period(mut self, period: SimTime) -> Self {
        assert!(period.as_secs() > 0.0, "gauge period must be positive");
        self.gauge_period = Some(period);
        self
    }

    /// Deterministic JSON dump of the full trace (`lml-fleet/trace/v1`).
    /// Two same-seed runs with the same observer configuration produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                JsonObject::new()
                    .f64("t", e.at.as_secs())
                    .u64("job", e.job)
                    .u64("tenant", e.tenant as u64)
                    .str("route", e.route.name())
                    .u64("attempt", e.attempt as u64)
                    .str("from", e.from.name())
                    .str("to", e.to.name())
                    .finish()
            })
            .collect();
        let decisions: Vec<String> = self.decisions.iter().map(decision_json).collect();
        let platform: Vec<String> = self
            .platform
            .iter()
            .map(|(at, ev)| platform_json(*at, ev))
            .collect();
        let attempts: Vec<String> = self
            .attempts
            .iter()
            .map(|s| {
                JsonObject::new()
                    .u64("job", s.job)
                    .u64("tenant", s.tenant as u64)
                    .str("substrate", s.substrate.name())
                    .u64("attempt", s.attempt as u64)
                    .f64("queued_at_s", s.queued_at.as_secs())
                    .f64("dispatched_at_s", s.dispatched_at.as_secs())
                    .f64("startup_s", s.startup_s)
                    .f64("run_s", s.run_s)
                    .finish()
            })
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|g| {
                let spend: Vec<String> = g
                    .tenant_spend
                    .iter()
                    .map(|&(t, usd)| {
                        JsonObject::new()
                            .u64("tenant", t as u64)
                            .f64("spend_usd", usd)
                            .finish()
                    })
                    .collect();
                JsonObject::new()
                    .f64("t", g.at.as_secs())
                    .u64("queue_depth", g.queue_depth as u64)
                    .u64("deferred", g.deferred as u64)
                    .u64("faas_in_use", g.faas_in_use as u64)
                    .u64("faas_limit", g.faas_limit as u64)
                    .u64("iaas_busy", g.iaas_busy as u64)
                    .u64("iaas_capacity", g.iaas_capacity as u64)
                    .u64("spot_in_use", g.spot_in_use as u64)
                    .raw("tenant_spend", &array(&spend))
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("schema", "lml-fleet/trace/v1")
            .str("policy", &self.policy)
            .u64("seed", self.seed)
            .u64("jobs", self.n_jobs as u64)
            .raw("events", &array(&events))
            .raw("decisions", &array(&decisions))
            .raw("platform", &array(&platform))
            .raw("attempts", &array(&attempts))
            .raw("gauges", &array(&gauges))
            .finish()
    }

    /// Per-job queue/startup/run seconds reconstructed from the attempt
    /// spans (spot attempts truncated by their matching reclaim events,
    /// with the simulator's own arithmetic). Returns `(job, queue,
    /// startup, run)` rows in first-dispatch order — these sums reconcile
    /// *exactly* with the run's `JobRecord` timings.
    pub fn span_timings(&self) -> Vec<(u64, f64, f64, f64)> {
        let mut order: Vec<u64> = Vec::new();
        let mut rows: Vec<(f64, f64, f64)> = Vec::new();
        let mut index = std::collections::BTreeMap::new();
        for s in &self.attempts {
            let k = *index.entry(s.job).or_insert_with(|| {
                order.push(s.job);
                rows.push((0.0, 0.0, 0.0));
                rows.len() - 1
            });
            let (startup, run) = match self.reclaim_of(s.job, s.attempt, s.substrate) {
                // The market struck `held_s` after launch: startup is
                // capped at the held seconds, run at what remained after
                // the overhead — the simulator's truncation, verbatim.
                Some(held_s) => (held_s.min(s.startup_s), (held_s - s.startup_s).max(0.0)),
                None => (s.startup_s, s.run_s),
            };
            rows[k].0 += (s.dispatched_at - s.queued_at).as_secs();
            rows[k].1 += startup;
            rows[k].2 += run;
        }
        order
            .into_iter()
            .zip(rows)
            .map(|(job, (q, s, r))| (job, q, s, r))
            .collect()
    }

    fn reclaim_of(&self, job: u64, attempt: u32, substrate: Route) -> Option<f64> {
        if substrate != Route::Spot {
            return None;
        }
        self.platform.iter().find_map(|(_, ev)| match ev {
            PlatformEvent::SpotReclaim {
                job: j,
                attempt: a,
                held_s,
                ..
            } if *j == job && *a == attempt => Some(*held_s),
            _ => None,
        })
    }

    /// Export the run as Chrome trace-event JSON (the `traceEvents` array
    /// format), loadable in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`. Each job is a track (`pid` = tenant, `tid` =
    /// job id) carrying complete (`ph:"X"`) spans for its queued, startup,
    /// and run phases per attempt; decisions and platform events appear as
    /// instant (`ph:"i"`) events on the same tracks. Timestamps are sim
    /// microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let us = |t: f64| t * 1e6;
        let mut evs: Vec<String> = Vec::new();
        let span = |name: &str, pid: TenantId, tid: u64, ts_s: f64, dur_s: f64, args: &str| {
            JsonObject::new()
                .str("name", name)
                .str("ph", "X")
                .f64("ts", us(ts_s))
                .f64("dur", us(dur_s))
                .u64("pid", pid as u64)
                .u64("tid", tid)
                .str("cat", "fleet")
                .raw("args", args)
                .finish()
        };
        for s in &self.attempts {
            let (startup, run) = match self.reclaim_of(s.job, s.attempt, s.substrate) {
                Some(held_s) => (held_s.min(s.startup_s), (held_s - s.startup_s).max(0.0)),
                None => (s.startup_s, s.run_s),
            };
            let args = JsonObject::new()
                .str("substrate", s.substrate.name())
                .u64("attempt", s.attempt as u64)
                .finish();
            let q0 = s.queued_at.as_secs();
            let d0 = s.dispatched_at.as_secs();
            if d0 > q0 {
                evs.push(span("queued", s.tenant, s.job, q0, d0 - q0, &args));
            }
            if startup > 0.0 {
                evs.push(span("startup", s.tenant, s.job, d0, startup, &args));
            }
            if run > 0.0 {
                evs.push(span("run", s.tenant, s.job, d0 + startup, run, &args));
            }
        }
        for d in &self.decisions {
            evs.push(
                JsonObject::new()
                    .str("name", d.decision.name())
                    .str("ph", "i")
                    .f64("ts", us(d.at.as_secs()))
                    .u64("pid", d.tenant as u64)
                    .u64("tid", d.job)
                    .str("cat", "decision")
                    .str("s", "t")
                    .raw("args", &decision_json(d))
                    .finish(),
            );
        }
        for (at, ev) in &self.platform {
            let (pid, tid) = match ev {
                PlatformEvent::FaasStart { job, .. }
                | PlatformEvent::SpotReclaim { job, .. }
                | PlatformEvent::CheckpointWrite { job, .. }
                | PlatformEvent::CheckpointRestore { job, .. } => (self.tenant_of(*job), *job),
                _ => (0, 0),
            };
            evs.push(
                JsonObject::new()
                    .str("name", ev.name())
                    .str("ph", "i")
                    .f64("ts", us(at.as_secs()))
                    .u64("pid", pid as u64)
                    .u64("tid", tid)
                    .str("cat", "platform")
                    .str("s", "t")
                    .raw("args", &platform_json(*at, ev))
                    .finish(),
            );
        }
        JsonObject::new()
            .raw("traceEvents", &array(&evs))
            .str("displayTimeUnit", "ms")
            .str(
                "otherData",
                &format!("lml-fleet policy={} seed={}", self.policy, self.seed),
            )
            .finish()
    }

    fn tenant_of(&self, job: u64) -> TenantId {
        self.attempts
            .iter()
            .find(|s| s.job == job)
            .map(|s| s.tenant)
            .or_else(|| self.events.iter().find(|e| e.job == job).map(|e| e.tenant))
            .unwrap_or(0)
    }
}

fn opt_f64(o: JsonObject, k: &str, v: Option<f64>) -> JsonObject {
    match v {
        Some(v) => o.f64(k, v),
        None => o.raw(k, "null"),
    }
}

fn decision_json(d: &DecisionRecord) -> String {
    let o = JsonObject::new()
        .f64("t", d.at.as_secs())
        .u64("job", d.job)
        .u64("tenant", d.tenant as u64)
        .str("decision", d.decision.name());
    match d.decision {
        Decision::Admit {
            route,
            eta_quantile,
            predicted_run_s,
            eta_q_s,
            spot_eta_s,
            laxity_s,
        } => {
            let o = o
                .str("route", route.name())
                .f64("eta_quantile", eta_quantile);
            let o = opt_f64(o, "predicted_run_s", predicted_run_s);
            let o = opt_f64(o, "eta_q_s", eta_q_s);
            let o = opt_f64(o, "spot_eta_s", spot_eta_s);
            opt_f64(o, "laxity_s", laxity_s).finish()
        }
        Decision::Defer {
            laxity_s,
            release_s,
            eta_q_s,
            deadline_miss_cost,
            rejection_cost,
        }
        | Decision::Reject {
            laxity_s,
            release_s,
            eta_q_s,
            deadline_miss_cost,
            rejection_cost,
        } => {
            let o = opt_f64(o, "laxity_s", laxity_s);
            let o = opt_f64(o, "release_s", release_s);
            let o = opt_f64(o, "eta_q_s", eta_q_s);
            o.f64("deadline_miss_cost_usd", deadline_miss_cost)
                .f64("rejection_cost_usd", rejection_cost)
                .finish()
        }
    }
}

fn platform_json(at: SimTime, ev: &PlatformEvent) -> String {
    let o = JsonObject::new()
        .f64("t", at.as_secs())
        .str("kind", ev.name());
    match *ev {
        PlatformEvent::FaasStart {
            job,
            workers,
            warm_hits,
        } => o
            .u64("job", job)
            .u64("workers", workers as u64)
            .u64("warm_hits", warm_hits as u64)
            .u64("cold_starts", (workers - warm_hits) as u64)
            .finish(),
        PlatformEvent::AutoscaleUp { instances, boot_s } => o
            .u64("instances", instances as u64)
            .f64("boot_s", boot_s)
            .finish(),
        PlatformEvent::AutoscaleDown { instances } => o.u64("instances", instances as u64).finish(),
        PlatformEvent::SpotReclaim {
            job,
            attempt,
            workers,
            held_s,
        } => o
            .u64("job", job)
            .u64("attempt", attempt as u64)
            .u64("workers", workers as u64)
            .f64("held_s", held_s)
            .finish(),
        PlatformEvent::CheckpointWrite { job, writes } => {
            o.u64("job", job).u64("writes", writes as u64).finish()
        }
        PlatformEvent::CheckpointRestore { job, epochs } => {
            o.u64("job", job).u64("epochs", epochs as u64).finish()
        }
    }
}

impl FleetObserver for RecordingObserver {
    fn gauge_period(&self) -> Option<SimTime> {
        self.gauge_period
    }
    fn begin(&mut self, policy: &str, seed: u64, n_jobs: usize) {
        self.policy = policy.to_string();
        self.seed = seed;
        self.n_jobs = n_jobs;
    }
    fn lifecycle(&mut self, ev: &FleetEvent) {
        self.events.push(*ev);
    }
    fn decision(&mut self, d: &DecisionRecord) {
        self.decisions.push(*d);
    }
    fn platform(&mut self, at: SimTime, ev: &PlatformEvent) {
        self.platform.push((at, *ev));
    }
    fn attempt(&mut self, s: &AttemptSpan) {
        self.attempts.push(*s);
    }
    fn gauges(&mut self, g: &GaugeSample) {
        self.gauges.push(g.clone());
    }
}

/// Collects incremental window rollups from a (streaming) replay and
/// nothing else. `active()` is `false`, so no per-event payloads are
/// assembled and no gauge clock is armed — and because the rollup flush
/// rides the engine's own event times, a run with this sink is
/// byte-identical to an unobserved one. This is the constant-memory way
/// to watch a million-job replay: one `WindowRollup` per window instead
/// of one `JobRecord` per job.
#[derive(Debug)]
pub struct RollupCollector {
    period: SimTime,
    /// Flushed windows, in index order.
    pub windows: Vec<WindowRollup>,
    /// Streaming counters delivered at the end of the run.
    pub replay_stats: Option<ReplayStats>,
}

impl RollupCollector {
    pub fn new(period: SimTime) -> Self {
        assert!(period.as_secs() > 0.0, "rollup period must be positive");
        RollupCollector {
            period,
            windows: Vec::new(),
            replay_stats: None,
        }
    }
}

impl FleetObserver for RollupCollector {
    fn active(&self) -> bool {
        false
    }
    fn rollup_period(&self) -> Option<SimTime> {
        Some(self.period)
    }
    fn rollup(&mut self, w: &WindowRollup) {
        self.windows.push(*w);
    }
    fn replay(&mut self, stats: &ReplayStats) {
        self.replay_stats = Some(*stats);
    }
}

/// One simulator run's span inside a [`ThroughputProbe`]: which run it
/// was, how many events it processed, and how long the simulation itself
/// took (trace generation, JSON rendering and file I/O excluded).
#[derive(Debug, Clone)]
pub struct RunSpan {
    /// Scheduler policy name the run used.
    pub policy: String,
    /// Run seed.
    pub seed: u64,
    /// Event-queue pops this run processed.
    pub events: u64,
    /// Wall-clock seconds between the run's `begin` and `end` hooks.
    pub secs: f64,
}

impl RunSpan {
    /// Events per second within this run's own span.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Self-profiler: how fast does the simulator itself run? Counts observer
/// deliveries and simulator heap operations, and measures wall-clock
/// events/second — the baseline the ROADMAP's parallel-sweep/sim-speed
/// items are scored against. Accumulates across runs, so one probe can
/// baseline a whole sweep grid; per-cell probes from a parallel sweep are
/// folded together with [`ThroughputProbe::merge`] in grid order.
///
/// Two clocks, two questions:
/// * [`wall_secs`](ThroughputProbe::wall_secs) — probe creation to now:
///   the sweep's end-to-end wall clock, I/O and all.
/// * [`busy_secs`](ThroughputProbe::busy_secs) — the sum of per-run
///   simulation spans (`begin`→`end`): CPU seconds spent simulating.
///   Under a parallel sweep `busy_secs` can exceed `wall_secs` — that
///   surplus IS the speedup.
#[derive(Debug)]
pub struct ThroughputProbe {
    started: std::time::Instant,
    /// Simulator runs folded into this probe.
    pub runs: u64,
    /// Lifecycle + decision + platform + attempt + gauge deliveries.
    pub observer_events: u64,
    /// Event-queue pushes across all runs.
    pub heap_pushes: u64,
    /// Event-queue pops across all runs.
    pub heap_pops: u64,
    /// Closed per-run spans, in completion (or merge) order.
    pub per_run: Vec<RunSpan>,
    /// Peak resident job slab occupancy across the folded runs (max over
    /// runs — the bounded-memory headline for streamed replays).
    pub peak_resident_jobs: u64,
    /// Arrivals pulled from trace sources across the folded runs.
    pub arrivals_streamed: u64,
    /// Peak event-queue depth across the folded runs (max over runs).
    pub peak_queue_depth: u64,
    /// Heap allocations over the probed region, when the driver stamps
    /// them from a counting allocator (0 = not measured).
    pub alloc_count: u64,
    /// Bytes requested by those allocations (0 = not measured).
    pub alloc_bytes: u64,
    /// Sweep-engine worker count, when a sweep stamps it (0 = unset).
    pub workers: usize,
    busy: std::time::Duration,
    /// The in-flight run: (policy, seed, begin instant).
    open_run: Option<(String, u64, std::time::Instant)>,
}

impl Default for ThroughputProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputProbe {
    pub fn new() -> Self {
        ThroughputProbe {
            started: std::time::Instant::now(),
            runs: 0,
            observer_events: 0,
            heap_pushes: 0,
            heap_pops: 0,
            per_run: Vec::new(),
            peak_resident_jobs: 0,
            arrivals_streamed: 0,
            peak_queue_depth: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            workers: 0,
            busy: std::time::Duration::ZERO,
            open_run: None,
        }
    }

    /// Stamp the sweep-engine worker count onto the report.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// Wall-clock seconds since the probe was created.
    pub fn wall_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Summed per-run simulation seconds (`begin`→`end` spans only).
    pub fn busy_secs(&self) -> f64 {
        self.busy.as_secs_f64()
    }

    /// Simulator events processed per wall-clock second — the headline
    /// baseline number.
    pub fn events_per_sec(&self) -> f64 {
        let w = self.wall_secs();
        if w > 0.0 {
            self.heap_pops as f64 / w
        } else {
            0.0
        }
    }

    /// Simulator events processed per *simulation* second — excludes the
    /// sweep's trace generation, JSON rendering and file I/O, so it tracks
    /// the event loop itself.
    pub fn events_per_busy_sec(&self) -> f64 {
        let b = self.busy_secs();
        if b > 0.0 {
            self.heap_pops as f64 / b
        } else {
            0.0
        }
    }

    /// Fold another probe's counters and spans into this one. The caller
    /// merges in grid order, so the combined `per_run` list is
    /// deterministic however the cells were scheduled; the earliest
    /// creation instant wins, keeping `wall_secs` the whole sweep's span.
    pub fn merge(&mut self, other: ThroughputProbe) {
        debug_assert!(other.open_run.is_none(), "merge after the run ended");
        self.started = self.started.min(other.started);
        self.runs += other.runs;
        self.observer_events += other.observer_events;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.busy += other.busy;
        self.per_run.extend(other.per_run);
        self.peak_resident_jobs = self.peak_resident_jobs.max(other.peak_resident_jobs);
        self.arrivals_streamed += other.arrivals_streamed;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.alloc_count += other.alloc_count;
        self.alloc_bytes += other.alloc_bytes;
    }

    /// Stamp heap-allocation totals measured over the probed region (a
    /// counting-allocator delta; see `lml_bench::alloc`).
    pub fn set_alloc(&mut self, count: u64, bytes: u64) {
        self.alloc_count = count;
        self.alloc_bytes = bytes;
    }

    /// JSON report of the probe. Wall-clock figures are inherently
    /// nondeterministic; keep this out of byte-diffed artifacts.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .per_run
            .iter()
            .map(|r| {
                JsonObject::new()
                    .str("policy", &r.policy)
                    .u64("seed", r.seed)
                    .u64("events", r.events)
                    .f64("secs", r.secs)
                    .f64("events_per_sec", r.events_per_sec())
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("schema", "lml-fleet/throughput/v1")
            .u64("runs", self.runs)
            .u64("sim_events", self.heap_pops)
            .u64("heap_pushes", self.heap_pushes)
            .u64("heap_pops", self.heap_pops)
            .u64("observer_events", self.observer_events)
            .f64("wall_secs", self.wall_secs())
            .f64("events_per_sec", self.events_per_sec())
            .f64("busy_secs", self.busy_secs())
            .f64("events_per_busy_sec", self.events_per_busy_sec())
            .u64("workers", self.workers as u64)
            .raw("per_run", &crate::json::array(&spans))
            .u64("peak_resident_jobs", self.peak_resident_jobs)
            .u64("arrivals_streamed", self.arrivals_streamed)
            .u64("peak_queue_depth", self.peak_queue_depth)
            .u64("alloc_count", self.alloc_count)
            .u64("alloc_bytes", self.alloc_bytes)
            .finish()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "throughput: {} runs | {} sim events | {} heap ops | {:.2}s wall | \
             {:.3}s sim | {:.0} events/s wall | {:.0} events/s sim | {} workers",
            self.runs,
            self.heap_pops,
            self.heap_pushes + self.heap_pops,
            self.wall_secs(),
            self.busy_secs(),
            self.events_per_sec(),
            self.events_per_busy_sec(),
            self.workers,
        )
    }
}

impl FleetObserver for ThroughputProbe {
    fn begin(&mut self, policy: &str, seed: u64, _n_jobs: usize) {
        self.open_run = Some((policy.to_string(), seed, std::time::Instant::now()));
    }
    fn lifecycle(&mut self, _ev: &FleetEvent) {
        self.observer_events += 1;
    }
    fn decision(&mut self, _d: &DecisionRecord) {
        self.observer_events += 1;
    }
    fn platform(&mut self, _at: SimTime, _ev: &PlatformEvent) {
        self.observer_events += 1;
    }
    fn attempt(&mut self, _s: &AttemptSpan) {
        self.observer_events += 1;
    }
    fn gauges(&mut self, _g: &GaugeSample) {
        self.observer_events += 1;
    }
    fn replay(&mut self, stats: &ReplayStats) {
        self.peak_resident_jobs = self.peak_resident_jobs.max(stats.peak_resident_jobs);
        self.arrivals_streamed += stats.arrivals_streamed;
        self.peak_queue_depth = self.peak_queue_depth.max(stats.peak_queue_depth);
    }
    fn end(&mut self, pushes: u64, pops: u64) {
        self.runs += 1;
        self.heap_pushes += pushes;
        self.heap_pops += pops;
        if let Some((policy, seed, at)) = self.open_run.take() {
            let span = at.elapsed();
            self.busy += span;
            self.per_run.push(RunSpan {
                policy,
                seed,
                events: pops,
                secs: span.as_secs_f64(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_inactive() {
        assert!(!NullObserver.active());
        assert!(NullObserver.gauge_period().is_none());
    }

    #[test]
    fn recording_observer_round_trips_streams() {
        let mut obs = RecordingObserver::new();
        obs.begin("test", 7, 2);
        obs.lifecycle(&FleetEvent {
            at: SimTime::secs(1.0),
            job: 3,
            tenant: 1,
            route: Route::Spot,
            attempt: 0,
            from: JobLifecycle::Queued,
            to: JobLifecycle::Booting,
        });
        obs.decision(&DecisionRecord {
            at: SimTime::secs(1.0),
            job: 3,
            tenant: 1,
            decision: Decision::Admit {
                route: Route::Spot,
                eta_quantile: 0.95,
                predicted_run_s: Some(10.0),
                eta_q_s: Some(12.0),
                spot_eta_s: Some(20.0),
                laxity_s: Some(100.0),
            },
        });
        obs.platform(
            SimTime::secs(2.0),
            &PlatformEvent::SpotReclaim {
                job: 3,
                attempt: 0,
                workers: 4,
                held_s: 1.0,
            },
        );
        let j = obs.to_json();
        assert!(j.starts_with(r#"{"schema":"lml-fleet/trace/v1""#));
        assert!(j.contains(r#""decision":"admit""#));
        assert!(j.contains(r#""spot_eta_s":20.0"#));
        assert!(j.contains(r#""kind":"spot_reclaim""#));
    }

    #[test]
    fn chrome_trace_truncates_reclaimed_attempts() {
        let mut obs = RecordingObserver::new();
        obs.attempt(&AttemptSpan {
            job: 9,
            tenant: 0,
            substrate: Route::Spot,
            attempt: 0,
            queued_at: SimTime::secs(0.0),
            dispatched_at: SimTime::secs(5.0),
            startup_s: 10.0,
            run_s: 100.0,
        });
        // Market strikes 30 s after launch: 10 s startup + 20 s of run.
        obs.platform(
            SimTime::secs(35.0),
            &PlatformEvent::SpotReclaim {
                job: 9,
                attempt: 0,
                workers: 2,
                held_s: 30.0,
            },
        );
        let rows = obs.span_timings();
        assert_eq!(rows, vec![(9, 5.0, 10.0, 20.0)]);
        let trace = obs.to_chrome_trace();
        assert!(trace.starts_with(r#"{"traceEvents":["#));
        assert!(trace.contains(r#""name":"run","ph":"X","ts":15000000.0,"dur":20000000.0"#));
    }

    #[test]
    fn probe_counts_heap_ops() {
        let mut p = ThroughputProbe::new();
        p.end(10, 8);
        p.end(5, 5);
        assert_eq!(p.runs, 2);
        assert_eq!(p.heap_pushes, 15);
        assert_eq!(p.heap_pops, 13);
        assert!(p.to_json().contains(r#""sim_events":13"#));
    }

    #[test]
    fn probe_folds_replay_stats_and_merge_takes_peak_max() {
        let mut a = ThroughputProbe::new();
        a.replay(&ReplayStats {
            arrivals_streamed: 400,
            peak_resident_jobs: 12,
            peak_queue_depth: 9,
        });
        a.end(10, 10);
        let mut b = ThroughputProbe::new();
        b.replay(&ReplayStats {
            arrivals_streamed: 600,
            peak_resident_jobs: 30,
            peak_queue_depth: 25,
        });
        b.end(10, 10);
        b.set_alloc(70, 4096);
        a.merge(b);
        assert_eq!(a.arrivals_streamed, 1000, "arrivals sum");
        assert_eq!(a.peak_resident_jobs, 30, "peak is a max, not a sum");
        assert_eq!(a.peak_queue_depth, 25, "queue depth is a max too");
        assert_eq!((a.alloc_count, a.alloc_bytes), (70, 4096), "allocs sum");
        let json = a.to_json();
        assert!(json.contains(r#""peak_resident_jobs":30"#));
        assert!(json.contains(r#""arrivals_streamed":1000"#));
        assert!(json.contains(r#""peak_queue_depth":25"#));
        assert!(json.contains(r#""alloc_count":70"#));
        assert!(json.contains(r#""alloc_bytes":4096"#));
        // Additive schema: the new fields land after the existing ones.
        let per_run = json.find(r#""per_run""#).unwrap();
        let peak = json.find(r#""peak_resident_jobs""#).unwrap();
        assert!(peak > per_run);
        assert!(json.find(r#""peak_queue_depth""#).unwrap() > peak);
        assert!(json.find(r#""alloc_count""#).unwrap() > peak);
    }

    #[test]
    fn rollup_collector_captures_windows_without_activating() {
        let mut c = RollupCollector::new(SimTime::secs(60.0));
        assert!(!c.active());
        assert_eq!(c.rollup_period(), Some(SimTime::secs(60.0)));
        c.rollup(&WindowRollup {
            index: 0,
            start: SimTime::ZERO,
            end: SimTime::secs(60.0),
            submitted: 5,
            completed: 3,
            rejected: 0,
            cost: lml_sim::Cost::usd(1.5),
            resident_jobs: 2,
        });
        c.replay(&ReplayStats {
            arrivals_streamed: 5,
            peak_resident_jobs: 4,
            peak_queue_depth: 3,
        });
        assert_eq!(c.windows.len(), 1);
        assert_eq!(c.windows[0].submitted, 5);
        assert_eq!(c.replay_stats.unwrap().peak_resident_jobs, 4);
    }
}
