//! Streaming trace sources: constant-memory replay input for the fleet
//! simulator.
//!
//! A [`TraceSource`] is a pull-based producer of [`JobRequest`]s in
//! non-decreasing submission order, preceded by an optional per-tenant
//! budget preamble. The replay engine ([`crate::sim::replay_observed`])
//! pulls one arrival at a time, so resident memory is bounded by the
//! *in-flight* job set, never by trace length — a 10M-job replay holds
//! the same working set as a 400-job one.
//!
//! Three sources live here; the Google cluster-usage adapter
//! ([`crate::google::GoogleSource`]) is the fourth:
//!
//! * [`InMemorySource`] — borrows an existing [`Trace`]. The compatibility
//!   path: `simulate`/`simulate_observed` delegate through it, and the
//!   engine's byte-stability contract (streamed metrics JSON ≡ in-memory
//!   metrics JSON) is tested against it.
//! * [`TextSource`] — chunked reader over the v1/v2/v3 trace text format,
//!   one line resident at a time. Shares the line grammar (and error
//!   strings) with [`Trace::from_text`] via `workload::parse_trace_line`.
//! * [`GeneratorSource`] — replays the exact RNG draw sequence of
//!   [`Trace::generate_multi`] lazily, so million-job synthetic traces
//!   never materialize and still match their materialized twin job for
//!   job.

use crate::job::{JobRequest, TenantId};
use crate::workload::{parse_trace_line, ArrivalProcess, JobMix, TenantSpec, Trace, TraceLine};
use lml_sim::{Pcg64, SimTime};
use std::collections::BTreeMap;
use std::io::BufRead;

/// A pull-based trace: a budget preamble, then jobs in non-decreasing
/// submission order.
///
/// Contract (relied on by the replay engine):
/// * [`TraceSource::budgets`] is called exactly once, before the first
///   [`TraceSource::next_job`] call.
/// * Jobs come back in non-decreasing `submit` order with ids assigned in
///   that order; a source that cannot guarantee order must return `Err`
///   (the engine surfaces it), never a misordered job.
/// * After the first `Ok(None)` the source is exhausted; further calls
///   keep returning `Ok(None)`.
pub trait TraceSource {
    /// The per-tenant dollar caps declared before any job (trace v3
    /// preamble). Called once, up front; the engine owns the returned map.
    ///
    /// Contract: budgets are a property of the *trace text format*, not of
    /// workloads in general. Only the v3 text preamble (and in-memory
    /// traces built from it) can declare caps; every other source —
    /// generator, Azure, Google, OpenDC adapters — must return an empty
    /// map, because their upstream formats have no budget notion and
    /// inventing caps would silently change admission behaviour. An empty
    /// map means "uncapped": the engine then never debits budgets and
    /// `budget_exhausted` rejections cannot occur.
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String>;

    /// Pull the next arrival, or `Ok(None)` when the trace is exhausted.
    fn next_job(&mut self) -> Result<Option<JobRequest>, String>;

    /// Exact job count when the source knows it (in-memory, generator),
    /// `None` when it cannot without a full scan (text, adapters). Used
    /// only for observer preambles and capacity hints, never correctness.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// Streams a borrowed in-memory [`Trace`]. This is the reference source:
/// replaying through it is byte-identical to the pre-streaming engine.
pub struct InMemorySource<'a> {
    trace: &'a Trace,
    next: usize,
}

impl<'a> InMemorySource<'a> {
    pub fn new(trace: &'a Trace) -> Self {
        InMemorySource { trace, next: 0 }
    }
}

impl TraceSource for InMemorySource<'_> {
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String> {
        Ok(self.trace.budgets.clone())
    }

    fn next_job(&mut self) -> Result<Option<JobRequest>, String> {
        let job = self.trace.jobs.get(self.next).copied();
        if job.is_some() {
            self.next += 1;
        }
        Ok(job)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.jobs.len())
    }
}

/// Chunked reader over the trace text format: one buffered line resident
/// at a time, so memory is constant in trace length.
///
/// Grammar and error strings match [`Trace::from_text`] exactly, with one
/// documented divergence: v3 `budget` lines must precede the first job
/// row. `from_text` accepts them anywhere because it sees the whole file;
/// a streaming reader has already handed budgets to the engine by the
/// time a late budget line shows up, so that is an error here.
pub struct TextSource<R> {
    reader: R,
    line: String,
    /// Zero-based index of the next line to read.
    lineno: usize,
    preamble_done: bool,
    /// First job row, pulled while scanning the budget preamble.
    pending: Option<JobRequest>,
    last_submit: SimTime,
    next_id: u64,
}

impl<R: BufRead> TextSource<R> {
    pub fn new(reader: R) -> Self {
        TextSource {
            reader,
            line: String::new(),
            lineno: 0,
            preamble_done: false,
            pending: None,
            last_submit: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Next parsed line with its zero-based line number, skipping blanks
    /// and comments; `None` at end of input.
    fn next_line(&mut self) -> Result<Option<(usize, TraceLine)>, String> {
        loop {
            self.line.clear();
            let n = self
                .reader
                .read_line(&mut self.line)
                .map_err(|e| format!("line {}: read error: {e}", self.lineno + 1))?;
            if n == 0 {
                return Ok(None);
            }
            let lineno = self.lineno;
            self.lineno += 1;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return parse_trace_line(line, lineno).map(|l| Some((lineno, l)));
        }
    }

    /// Check ordering, assign the next dense id, and admit a job row.
    fn admit(&mut self, submit: SimTime, line: TraceLine) -> Result<JobRequest, String> {
        if submit < self.last_submit {
            return Err("trace not sorted by submission time".into());
        }
        self.last_submit = submit;
        let TraceLine::Job {
            class,
            workers,
            tenant,
            deadline,
            ..
        } = line
        else {
            unreachable!("admit is only called with job rows");
        };
        let id = self.next_id;
        self.next_id += 1;
        Ok(JobRequest {
            id,
            class,
            submit,
            workers,
            tenant,
            deadline,
        })
    }
}

impl<R: BufRead> TraceSource for TextSource<R> {
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String> {
        let mut budgets = BTreeMap::new();
        loop {
            match self.next_line()? {
                None => break,
                Some((lineno, TraceLine::Budget { tenant, usd })) => {
                    if budgets.insert(tenant, usd).is_some() {
                        return Err(format!(
                            "line {}: duplicate budget for tenant {tenant}",
                            lineno + 1
                        ));
                    }
                }
                Some((_, line @ TraceLine::Job { submit, .. })) => {
                    let job = self.admit(submit, line)?;
                    self.pending = Some(job);
                    break;
                }
            }
        }
        self.preamble_done = true;
        Ok(budgets)
    }

    fn next_job(&mut self) -> Result<Option<JobRequest>, String> {
        debug_assert!(self.preamble_done, "budgets() must be called first");
        if let Some(job) = self.pending.take() {
            return Ok(Some(job));
        }
        match self.next_line()? {
            None => Ok(None),
            Some((lineno, TraceLine::Budget { .. })) => Err(format!(
                "line {}: budget lines must precede the first job row in a streamed trace",
                lineno + 1
            )),
            Some((_, line @ TraceLine::Job { submit, .. })) => self.admit(submit, line).map(Some),
        }
    }
}

/// Replays the RNG draw sequence of [`Trace::generate_multi`] one job at
/// a time: same seed, same process, same mix → the identical job stream,
/// without ever materializing the `Vec`.
pub struct GeneratorSource {
    process: ArrivalProcess,
    mix: JobMix,
    tenants: TenantSpec,
    n_jobs: usize,
    emitted: usize,
    rng: Pcg64,
    t: f64,
}

impl GeneratorSource {
    /// Same argument contract (and asserts) as [`Trace::generate_multi`].
    pub fn new(
        process: ArrivalProcess,
        mix: JobMix,
        tenants: TenantSpec,
        n_jobs: usize,
        seed: u64,
    ) -> Self {
        assert!(tenants.n_tenants >= 1, "need at least one tenant");
        assert!(
            (0.0..=1.0).contains(&tenants.deadline_frac),
            "deadline_frac must be in [0, 1]"
        );
        assert!(tenants.deadline_slack > 0.0, "deadline slack must be > 0");
        GeneratorSource {
            process,
            mix,
            tenants,
            n_jobs,
            emitted: 0,
            rng: Pcg64::new(seed ^ 0xF1EE7),
            t: 0.0,
        }
    }

    /// Single-tenant, deadline-less convenience (mirrors
    /// [`Trace::generate`]).
    pub fn generate(process: ArrivalProcess, mix: JobMix, n_jobs: usize, seed: u64) -> Self {
        GeneratorSource::new(process, mix, TenantSpec::default(), n_jobs, seed)
    }
}

impl TraceSource for GeneratorSource {
    fn budgets(&mut self) -> Result<BTreeMap<TenantId, f64>, String> {
        Ok(BTreeMap::new())
    }

    fn next_job(&mut self) -> Result<Option<JobRequest>, String> {
        if self.emitted == self.n_jobs {
            return Ok(None);
        }
        let id = self.emitted as u64;
        self.emitted += 1;
        // Exactly the per-job draw order of `Trace::generate_multi`: gap,
        // class, tenant (only when the population is > 1), deadline coin.
        self.t += self.process.next_gap(self.t, &mut self.rng);
        let class = self.mix.sample(&mut self.rng);
        let submit = SimTime::secs(self.t);
        let tenant = if self.tenants.n_tenants > 1 {
            self.rng.below(self.tenants.n_tenants as u64) as TenantId
        } else {
            0
        };
        let deadline =
            if self.tenants.deadline_frac > 0.0 && self.rng.coin(self.tenants.deadline_frac) {
                Some(submit + class.nominal_runtime() * self.tenants.deadline_slack)
            } else {
                None
            };
        Ok(Some(JobRequest {
            id,
            class,
            submit,
            workers: class.default_workers(),
            tenant,
            deadline,
        }))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.n_jobs)
    }
}

/// Drain any source into an in-memory [`Trace`] (test/debug helper; the
/// whole point of streaming is usually *not* to do this).
pub fn collect(mut source: impl TraceSource) -> Result<Trace, String> {
    let budgets = source.budgets()?;
    let mut jobs = Vec::with_capacity(source.len_hint().unwrap_or(0));
    while let Some(job) = source.next_job()? {
        jobs.push(job);
    }
    Ok(Trace { jobs, budgets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, JobMix, TenantSpec, Trace};

    fn sample_trace() -> Trace {
        let spec = TenantSpec {
            n_tenants: 3,
            deadline_frac: 0.4,
            deadline_slack: 2.0,
        };
        Trace::generate_multi(
            ArrivalProcess::Poisson { rate: 0.5 },
            &JobMix::default_mix(),
            &spec,
            120,
            11,
        )
        .with_budget(0, 40.0)
        .with_budget(2, 7.5)
    }

    #[test]
    fn in_memory_source_streams_the_trace_verbatim() {
        let trace = sample_trace();
        let mut src = InMemorySource::new(&trace);
        assert_eq!(src.len_hint(), Some(120));
        assert_eq!(src.budgets().unwrap(), trace.budgets);
        let back = collect(src).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn text_source_matches_from_text_on_v1_v2_v3() {
        for text in [
            "# v1\n1.0\tlr-higgs\t10\n2.5\tsvm-rcv1\t5\n",
            &sample_trace().to_text(),
            &Trace::generate(
                ArrivalProcess::Poisson { rate: 1.0 },
                &JobMix::convex_mix(),
                60,
                5,
            )
            .to_text(),
        ] {
            let expected = Trace::from_text(text).unwrap();
            let streamed = collect(TextSource::new(text.as_bytes())).unwrap();
            assert_eq!(streamed, expected);
        }
    }

    #[test]
    fn text_source_errors_match_from_text() {
        for bad in [
            "1.0\tnot-a-class\t10\n",
            "abc\tlr-higgs\t10\n",
            "1.0\tlr-higgs\t0\n",
            "1.0\tlr-higgs\t10\t0\n",
            "1.0\tlr-higgs\t10\t0\tsoon\n",
            "budget\t0\n",
            "budget\t0\t-1.0\n",
            "budget\t0\t1.0\nbudget\t0\t2.0\n",
            "5.0\tlr-higgs\t10\n1.0\tlr-higgs\t10\n",
        ] {
            let expected = Trace::from_text(bad).unwrap_err();
            let got = collect(TextSource::new(bad.as_bytes())).unwrap_err();
            assert_eq!(got, expected, "error parity for {bad:?}");
        }
    }

    #[test]
    fn text_source_rejects_budget_lines_after_jobs() {
        // `from_text` accepts this (whole file in hand); the streaming
        // reader has already surrendered the budget map, so it cannot.
        let text = "1.0\tlr-higgs\t10\nbudget\t0\t5.0\n";
        assert!(Trace::from_text(text).is_ok());
        let err = collect(TextSource::new(text.as_bytes())).unwrap_err();
        assert!(err.contains("budget lines must precede"), "{err}");
    }

    #[test]
    fn text_source_is_constant_memory_per_call() {
        // Not a real memory assertion — just that the reader never needs
        // the whole input: a source over a forever-empty tail still
        // terminates per call.
        let trace = sample_trace();
        let text = trace.to_text();
        let mut src = TextSource::new(text.as_bytes());
        let budgets = src.budgets().unwrap();
        assert_eq!(budgets, trace.budgets);
        let mut n = 0usize;
        while src.next_job().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, trace.len());
        assert!(src.next_job().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn generator_source_matches_materialized_generation() {
        let spec = TenantSpec {
            n_tenants: 4,
            deadline_frac: 0.5,
            deadline_slack: 3.0,
        };
        let mix = JobMix::default_mix();
        let process = ArrivalProcess::Burst {
            base_rate: 0.1,
            burst_rate: 5.0,
            period: 60.0,
            duty: 0.25,
        };
        let expected = Trace::generate_multi(process, &mix, &spec, 500, 77);
        let src = GeneratorSource::new(process, mix, spec, 500, 77);
        assert_eq!(src.len_hint(), Some(500));
        let streamed = collect(src).unwrap();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn generator_convenience_matches_trace_generate() {
        let mix = JobMix::convex_mix();
        let expected = Trace::generate(ArrivalProcess::Poisson { rate: 0.2 }, &mix, 200, 42);
        let streamed = collect(GeneratorSource::generate(
            ArrivalProcess::Poisson { rate: 0.2 },
            mix,
            200,
            42,
        ))
        .unwrap();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn v3_text_traces_are_the_only_budget_carrying_source() {
        // The budgets() contract: only the trace-text v3 preamble can
        // declare per-tenant caps. Every adapter over an external format
        // must come back uncapped (empty map).
        let mut v3 = TextSource::new("# v3\nbudget\t0\t12.5\n1.0\tlr-higgs\t10\t0\t-\n".as_bytes());
        let budgets = v3.budgets().unwrap();
        assert_eq!(budgets.get(&0), Some(&12.5), "v3 preamble carries caps");

        let mut generator = GeneratorSource::generate(
            ArrivalProcess::Poisson { rate: 0.5 },
            JobMix::default_mix(),
            10,
            1,
        );
        assert!(generator.budgets().unwrap().is_empty());

        let mut azure = crate::azure::source(include_str!("../data/azure_sample.csv")).unwrap();
        assert!(azure.budgets().unwrap().is_empty());

        let mut google =
            crate::google::GoogleSource::new(include_str!("../data/google_sample.csv").as_bytes());
        assert!(google.budgets().unwrap().is_empty());

        let mut opendc = crate::opendc::OpenDcSource::new([(
            "fn-a".to_string(),
            include_str!("../data/opendc/ml-train.csv").as_bytes(),
        )]);
        assert!(opendc.budgets().unwrap().is_empty());
    }
}
