//! # lml-fleet — multi-tenant serverless training fleet simulator
//!
//! The paper evaluates one training job at a time; its central trade-off —
//! FaaS elasticity vs. IaaS reservation (§5) — only fully materializes
//! under *load*: cold starts amortize across a warm container pool, and
//! reserved clusters queue jobs while Lambda fans out. This crate layers a
//! multi-tenant fleet on top of the single-job simulation:
//!
//! * [`job`] — the tenant job zoo: Table 4 (model, dataset) pairs with
//!   their paper-scale analytical profiles.
//! * [`workload`] — Poisson and burst arrival processes, weighted job
//!   mixes, and a replayable plain-text trace format, all seeded and
//!   bit-reproducible.
//! * [`platform`] — a FaaS region (account concurrency limit + warm pool
//!   built from the `lml-faas` startup/lifetime constants, so cold-start
//!   probability falls as traffic rises) and an IaaS pool (FIFO + backfill
//!   queueing, Table 6 boot-time autoscaling, idle billing).
//! * [`scheduler`] — the routing policies: all-FaaS, all-IaaS, and a
//!   cost-aware hybrid priced by the `lml-analytic` model with optional
//!   sampling-estimator calibration.
//! * [`sim`] — the event-driven fleet loop on the shared
//!   [`lml_sim::EventQueue`].
//! * [`metrics`] — per-job queue/startup/run breakdowns rolled up into
//!   p50/p95/p99 latency, dollars, warm-hit rate and utilization.
//! * [`json`] — the deterministic JSON emitter behind
//!   [`metrics::FleetMetrics::to_json`].

pub mod job;
pub mod json;
pub mod metrics;
pub mod platform;
pub mod scheduler;
pub mod sim;
pub mod workload;

pub use job::{JobClass, JobRequest};
pub use metrics::{FleetMetrics, JobRecord};
pub use platform::{FaasConfig, FaasRegion, IaasConfig, IaasPool};
pub use scheduler::{AllFaas, AllIaas, CostAware, FleetView, Route, Scheduler};
pub use sim::{simulate, FleetConfig};
pub use workload::{ArrivalProcess, JobMix, Trace};
