//! # lml-fleet — multi-tenant serverless training fleet simulator
//!
//! The paper evaluates one training job at a time; its central trade-off —
//! FaaS elasticity vs. IaaS reservation (§5) — only fully materializes
//! under *load*: cold starts amortize across a warm container pool, and
//! reserved clusters queue jobs while Lambda fans out. This crate layers a
//! multi-tenant fleet on top of the single-job simulation:
//!
//! * [`job`] — the tenant job zoo: Table 4 (model, dataset) pairs with
//!   their paper-scale analytical profiles.
//! * [`workload`] — Poisson and burst arrival processes, weighted job
//!   mixes, multi-tenant/deadline generation ([`workload::TenantSpec`]),
//!   and a replayable plain-text trace format, all seeded and
//!   bit-reproducible.
//! * [`azure`] — an Azure-Functions-style CSV adapter feeding
//!   [`Trace::from_text`] (owners → tenants, function ids → job classes);
//!   a bundled sample lives under `crates/fleet/data/`.
//! * [`google`] — a Google cluster-usage (task_events) adapter: a
//!   streaming [`TraceSource`] mapping each job's first SUBMIT event onto
//!   the job zoo (users → tenants), constant memory per row.
//! * [`opendc`] — an OpenDC serverless-trace adapter: per-function
//!   invocation-timeline CSVs k-way merged into one non-decreasing
//!   arrival stream (functions → tenants/classes); a bundled fixture
//!   lives under `crates/fleet/data/opendc/`.
//! * [`intern`] — dense key interning ([`TenantMap`],
//!   [`TenantClassMap`]): the O(1) Vec-indexed tables behind every
//!   hot-path per-tenant ledger and estimator state map, with
//!   sorted-by-id cold iteration preserving `BTreeMap` output order.
//! * [`stream`] — the pull-based [`TraceSource`] abstraction behind
//!   streaming replay: in-memory ([`InMemorySource`]), chunked text
//!   ([`TextSource`]), and generator-backed ([`GeneratorSource`])
//!   sources, so million-job traces replay without materializing.
//! * [`lifecycle`] — the explicit job-lifecycle state machine
//!   (`Queued → Booting → Running{epochs_done} → … → Done/Rejected`)
//!   shared by all schedulers and tiers, plus [`CheckpointPolicy`] and the
//!   epoch-granular attempt arithmetic behind checkpoint-aware spot
//!   recovery.
//! * [`platform`] — a FaaS region (account concurrency limit + warm pool +
//!   pre-paid provisioned-concurrency floor), an IaaS pool (FIFO +
//!   backfill queueing, Table 6 boot-time autoscaling, idle billing), and
//!   a preemptible spot tier (discounted, per-(job, attempt) seeded
//!   exponential preemption; preempted jobs resume from their last durable
//!   checkpoint).
//! * [`estimate`] — the prediction layer: the named [`Estimate`] quadruple
//!   (plus calibrated P95 margins, [`Estimate::eta_q`]), the pluggable
//!   [`Estimator`] trait, and its three impls — the §5.3 [`Analytic`]
//!   model, the per-(tenant, class) [`Online`] EWMA learned from the
//!   simulator's completion feedback, and the prior-to-posterior
//!   [`Hybrid`] blend — plus the risk subsystem: [`RiskModel`]'s learned
//!   per-(tenant, class) spot preemption-rate posteriors, fed every
//!   attempt outcome ([`PreemptionObs`]) through
//!   [`scheduler::Scheduler::observe_preemption`].
//! * [`scheduler`] — the routing policies: all-FaaS, all-IaaS, the
//!   cost-aware hybrid, deadline-aware EDF (spills to IaaS when FaaS can't
//!   make the deadline), and weighted fair-share (deficit round-robin
//!   across tenants), each declaring its admission [`QueueDiscipline`] and
//!   pricing through its estimator.
//! * [`sim`] — the event-driven fleet loop on the shared
//!   [`lml_sim::EventQueue`], with discipline-ordered admission queues and
//!   per-tenant service accounting. Arrivals are *pulled* from a
//!   [`TraceSource`] on demand and in-flight jobs live in a generational
//!   slab, so resident memory is bounded by the working set — [`replay`]
//!   collects full metrics, [`replay_stats`] runs in constant memory, and
//!   [`simulate`] is the byte-identical in-memory wrapper.
//! * [`metrics`] — per-job queue/startup/run breakdowns rolled up into
//!   p50/p95/p99 latency, dollars, warm-hit rate, utilization,
//!   deadline-hit rate, preemption counts, and per-tenant fairness.
//! * [`json`] — the deterministic JSON emitter behind
//!   [`metrics::FleetMetrics::to_json`].
//! * [`observe`] — the observability layer: the [`FleetObserver`] hook
//!   trait the simulator narrates runs through (lifecycle transitions,
//!   scheduler decision audits, platform events, windowed gauges), with a
//!   zero-cost [`NullObserver`] default, an in-memory [`RecordingObserver`]
//!   (byte-stable `lml-fleet/trace/v1` JSON + Chrome trace-event export),
//!   and a [`ThroughputProbe`] self-profiler.

#![forbid(unsafe_code)]

pub mod azure;
pub mod estimate;
pub mod google;
pub mod intern;
pub mod job;
pub mod json;
pub mod lifecycle;
pub mod metrics;
pub mod observe;
pub mod opendc;
pub mod platform;
pub mod scheduler;
pub mod sim;
pub mod stream;
pub mod workload;

pub use estimate::{
    Analytic, CompletedJob, Estimate, Estimator, Hybrid, Online, PreemptionObs, RiskModel,
    ETA_QUANTILE,
};
pub use google::GoogleSource;
pub use intern::{TenantClassMap, TenantMap};
pub use job::{JobClass, JobRequest, TenantId};
pub use lifecycle::{restore_beats_redo, CheckpointPolicy, JobLifecycle};
pub use metrics::{
    jain_index, ClassRow, FleetMetrics, JobRecord, PlatformTotals, TenantRow, WindowRollup,
};
pub use observe::{
    AttemptSpan, Decision, DecisionRecord, FleetEvent, FleetObserver, GaugeSample, NullObserver,
    PlatformEvent, RecordingObserver, ReplayStats, RollupCollector, ThroughputProbe,
};
pub use opendc::OpenDcSource;
pub use platform::{FaasConfig, FaasRegion, IaasConfig, IaasPool, SpotConfig, SpotTier};
pub use scheduler::{
    AllFaas, AllIaas, CostAware, DeadlineAware, FairShare, FleetView, QueueDiscipline, Route,
    Scheduler,
};
pub use sim::{
    replay, replay_observed, replay_stats, simulate, simulate_observed, FleetConfig, ReplaySummary,
    CHECKPOINT_TIER_THRESHOLD,
};
pub use stream::{GeneratorSource, InMemorySource, TextSource, TraceSource};
pub use workload::{ArrivalProcess, JobMix, TenantSpec, Trace};
