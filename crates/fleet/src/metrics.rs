//! Fleet metrics: per-job breakdowns rolled up into tail latencies, cost,
//! warm-hit rate, and utilization, exported as deterministic JSON.

use crate::job::JobClass;
use crate::json::{array, JsonObject};
use crate::scheduler::Route;
use lml_sim::stats::Summary;
use lml_sim::{Cost, SimTime};

/// Everything the simulator learned about one job.
#[derive(Debug, Clone, Copy)]
pub struct JobRecord {
    pub id: u64,
    pub class: JobClass,
    pub route: Route,
    pub workers: usize,
    pub submit: SimTime,
    /// Time spent waiting for admission (concurrency limit / busy pool).
    pub queue: SimTime,
    /// Fleet startup: cold/warm function start or cluster dispatch.
    pub startup: SimTime,
    /// Data loading + training time.
    pub run: SimTime,
    /// Workers served from the warm pool (FaaS only).
    pub warm_hits: usize,
    /// Attributed job cost: GB-seconds on FaaS, instance-time share on IaaS.
    pub cost: Cost,
}

impl JobRecord {
    /// Submission-to-completion latency.
    pub fn latency(&self) -> SimTime {
        self.queue + self.startup + self.run
    }

    pub fn finish(&self) -> SimTime {
        self.submit + self.latency()
    }
}

/// Percentile rollup of one latency component.
#[derive(Debug, Clone, Copy)]
pub struct Quantiles {
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl Quantiles {
    fn from_values(values: Vec<f64>) -> Quantiles {
        if values.is_empty() {
            return Quantiles {
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let s = Summary::from_values(values);
        Quantiles {
            mean: s.mean(),
            p50: s.percentile(50.0),
            p95: s.percentile(95.0),
            p99: s.percentile(99.0),
            max: s.max(),
        }
    }

    fn to_json(self) -> String {
        JsonObject::new()
            .f64("mean", self.mean)
            .f64("p50", self.p50)
            .f64("p95", self.p95)
            .f64("p99", self.p99)
            .f64("max", self.max)
            .finish()
    }
}

/// Fleet-level rollup of one simulation run.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    pub policy: String,
    pub seed: u64,
    pub n_jobs: usize,
    /// Completion time of the last job.
    pub makespan: SimTime,
    pub latency: Quantiles,
    pub queue: Quantiles,
    pub startup: Quantiles,
    /// Sum of attributed FaaS job costs (GB-second billing).
    pub faas_cost: Cost,
    /// IaaS pool bill (every booted instance-second, busy or idle).
    pub iaas_cost: Cost,
    pub jobs_on_faas: usize,
    pub jobs_on_iaas: usize,
    pub warm_hit_rate: f64,
    pub cold_starts: u64,
    pub iaas_utilization: f64,
    pub iaas_peak_instances: usize,
    pub faas_peak_concurrency: usize,
    pub records: Vec<JobRecord>,
}

impl FleetMetrics {
    /// Total dollars: FaaS execution + reserved-pool bill.
    pub fn total_cost(&self) -> Cost {
        self.faas_cost + self.iaas_cost
    }

    /// Mean sustained throughput over the makespan, jobs/second.
    pub fn throughput(&self) -> f64 {
        if self.makespan.as_secs() == 0.0 {
            0.0
        } else {
            self.n_jobs as f64 / self.makespan.as_secs()
        }
    }

    /// Build the rollup from per-job records and platform counters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_records(
        policy: &str,
        seed: u64,
        records: Vec<JobRecord>,
        iaas_cost: Cost,
        warm_hit_rate: f64,
        cold_starts: u64,
        iaas_utilization: f64,
        iaas_peak_instances: usize,
        faas_peak_concurrency: usize,
    ) -> FleetMetrics {
        let latency =
            Quantiles::from_values(records.iter().map(|r| r.latency().as_secs()).collect());
        let queue = Quantiles::from_values(records.iter().map(|r| r.queue.as_secs()).collect());
        let startup = Quantiles::from_values(records.iter().map(|r| r.startup.as_secs()).collect());
        let faas_cost: Cost = records
            .iter()
            .filter(|r| r.route == Route::Faas)
            .map(|r| r.cost)
            .sum();
        let makespan = records
            .iter()
            .map(|r| r.finish())
            .fold(SimTime::ZERO, SimTime::max);
        FleetMetrics {
            policy: policy.to_string(),
            seed,
            n_jobs: records.len(),
            makespan,
            latency,
            queue,
            startup,
            faas_cost,
            iaas_cost,
            jobs_on_faas: records.iter().filter(|r| r.route == Route::Faas).count(),
            jobs_on_iaas: records.iter().filter(|r| r.route == Route::Iaas).count(),
            warm_hit_rate,
            cold_starts,
            iaas_utilization,
            iaas_peak_instances,
            faas_peak_concurrency,
            records,
        }
    }

    /// Per-class (count, p99 latency, mean cost) breakdown, in class order.
    pub fn per_class(&self) -> Vec<(JobClass, usize, f64, f64)> {
        JobClass::ALL
            .into_iter()
            .filter_map(|c| {
                let rs: Vec<&JobRecord> = self.records.iter().filter(|r| r.class == c).collect();
                if rs.is_empty() {
                    return None;
                }
                let lat =
                    Quantiles::from_values(rs.iter().map(|r| r.latency().as_secs()).collect());
                let mean_cost = rs.iter().map(|r| r.cost.as_usd()).sum::<f64>() / rs.len() as f64;
                Some((c, rs.len(), lat.p99, mean_cost))
            })
            .collect()
    }

    /// Deterministic JSON export. Two runs with the same inputs produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let per_class: Vec<String> = self
            .per_class()
            .into_iter()
            .map(|(c, n, p99, mean_cost)| {
                JsonObject::new()
                    .str("class", c.name())
                    .u64("jobs", n as u64)
                    .f64("latency_p99_s", p99)
                    .f64("mean_cost_usd", mean_cost)
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("schema", "lml-fleet/metrics/v1")
            .str("policy", &self.policy)
            .u64("seed", self.seed)
            .u64("jobs", self.n_jobs as u64)
            .f64("makespan_s", self.makespan.as_secs())
            .f64("throughput_jobs_per_s", self.throughput())
            .raw("latency_s", &self.latency.to_json())
            .raw("queue_s", &self.queue.to_json())
            .raw("startup_s", &self.startup.to_json())
            .f64("faas_cost_usd", self.faas_cost.as_usd())
            .f64("iaas_cost_usd", self.iaas_cost.as_usd())
            .f64("total_cost_usd", self.total_cost().as_usd())
            .u64("jobs_on_faas", self.jobs_on_faas as u64)
            .u64("jobs_on_iaas", self.jobs_on_iaas as u64)
            .f64("warm_hit_rate", self.warm_hit_rate)
            .u64("cold_starts", self.cold_starts)
            .f64("iaas_utilization", self.iaas_utilization)
            .u64("iaas_peak_instances", self.iaas_peak_instances as u64)
            .u64("faas_peak_concurrency", self.faas_peak_concurrency as u64)
            .raw("per_class", &array(&per_class))
            .finish()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:>10}: {} jobs | p50 {} p95 {} p99 {} | {} total ({} faas + {} iaas) | warm {:.0}% | util {:.0}%",
            self.policy,
            self.n_jobs,
            SimTime::secs(self.latency.p50),
            SimTime::secs(self.latency.p95),
            SimTime::secs(self.latency.p99),
            self.total_cost(),
            self.faas_cost,
            self.iaas_cost,
            self.warm_hit_rate * 100.0,
            self.iaas_utilization * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, route: Route, queue: f64, run: f64, cost: f64) -> JobRecord {
        JobRecord {
            id,
            class: JobClass::LrHiggs,
            route,
            workers: 10,
            submit: SimTime::secs(id as f64),
            queue: SimTime::secs(queue),
            startup: SimTime::secs(1.0),
            run: SimTime::secs(run),
            warm_hits: 0,
            cost: Cost::usd(cost),
        }
    }

    fn metrics(records: Vec<JobRecord>) -> FleetMetrics {
        FleetMetrics::from_records("test", 1, records, Cost::usd(2.0), 0.5, 3, 0.8, 20, 100)
    }

    #[test]
    fn rollup_accounts_costs_by_route() {
        let m = metrics(vec![
            rec(0, Route::Faas, 0.0, 10.0, 0.5),
            rec(1, Route::Iaas, 5.0, 10.0, 0.1),
        ]);
        // IaaS job cost is attributed but the pool bill is authoritative.
        assert_eq!(m.faas_cost, Cost::usd(0.5));
        assert_eq!(m.iaas_cost, Cost::usd(2.0));
        assert_eq!(m.total_cost(), Cost::usd(2.5));
        assert_eq!(m.jobs_on_faas, 1);
        assert_eq!(m.jobs_on_iaas, 1);
    }

    #[test]
    fn latency_quantiles_cover_queue_and_startup() {
        let m = metrics(vec![rec(0, Route::Faas, 4.0, 10.0, 0.1)]);
        assert!((m.latency.p50 - 15.0).abs() < 1e-9, "4 + 1 + 10");
        assert!((m.queue.max - 4.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_versioned() {
        let m1 = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.5)]);
        let m2 = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.5)]);
        assert_eq!(m1.to_json(), m2.to_json());
        assert!(m1
            .to_json()
            .starts_with(r#"{"schema":"lml-fleet/metrics/v1""#));
    }

    #[test]
    fn makespan_is_last_finish() {
        let m = metrics(vec![
            rec(0, Route::Faas, 0.0, 10.0, 0.1),
            rec(5, Route::Faas, 0.0, 3.0, 0.1),
        ]);
        // job 1: submit 5 + 1 startup + 3 run = 9; job 0 finishes at 11.
        assert_eq!(m.makespan, SimTime::secs(11.0));
    }
}
