//! Fleet metrics: per-job breakdowns rolled up into tail latencies, cost,
//! warm-hit rate, utilization, deadline-hit rate, preemptions,
//! prediction-error (MAPE on runtime and dollars, overall and per class),
//! and a per-tenant fairness view, exported as deterministic JSON.

use crate::job::{JobClass, TenantId};
use crate::json::{array, JsonObject};
use crate::scheduler::Route;
use lml_sim::stats::Summary;
use lml_sim::{Cost, SimTime};

/// Everything the simulator learned about one job.
#[derive(Debug, Clone, Copy)]
pub struct JobRecord {
    pub id: u64,
    pub class: JobClass,
    pub route: Route,
    pub workers: usize,
    pub tenant: TenantId,
    pub submit: SimTime,
    /// Completion deadline, if the tenant set one.
    pub deadline: Option<SimTime>,
    /// Time spent waiting for admission (concurrency limit / busy pool).
    pub queue: SimTime,
    /// Fleet startup: cold/warm function start, cluster dispatch, or spot
    /// boots (including boots lost to preemption).
    pub startup: SimTime,
    /// Data loading + training time (including partial runs lost to
    /// preemption).
    pub run: SimTime,
    /// Workers served from the warm pool (FaaS only).
    pub warm_hits: usize,
    /// Times the spot market reclaimed this job's instances.
    pub preemptions: u32,
    /// Attempts that restarted from a durable checkpoint instead of from
    /// scratch.
    pub resumes: u32,
    /// Spot clusters launched for this job (0 for jobs that never touched
    /// the market) — the denominator behind per-job preemption risk.
    pub spot_attempts: u32,
    /// Training seconds redone because preemptions struck past the last
    /// durable checkpoint.
    pub lost_work: SimTime,
    /// Checkpoint uploads initiated (durable, interrupted, and on
    /// successful attempts alike — all billed).
    pub checkpoint_writes: u32,
    /// Checkpoint dollars attributed to this job: uploads plus restores.
    pub checkpoint_cost: Cost,
    /// Terminal `Rejected`: admission refused (tenant budget exhausted);
    /// the job never ran.
    pub rejected: bool,
    /// The job sat out at least one budget accounting window before
    /// admission (budget deferral instead of rejection).
    pub deferred: bool,
    /// The scheduler's predicted run time on the routed substrate,
    /// snapshotted at admission (`None` for constant routers and rejected
    /// jobs).
    pub predicted_run: Option<SimTime>,
    /// The calibrated quantile runtime ETA
    /// ([`crate::estimate::Estimate::eta_q`] at the scheduler's own
    /// quantile — [`crate::estimate::ETA_QUANTILE`] by default) on the
    /// routed substrate, snapshotted at admission. Equal to
    /// `predicted_run` for estimators without spread state; the coverage
    /// rollup scores it against the actual run.
    pub predicted_run_q: Option<SimTime>,
    /// The scheduler's predicted dollars on the routed substrate. `None`
    /// for spot-routed jobs too: their attributed dollars ride the market
    /// discount the firm-price prediction deliberately ignores, and
    /// scoring it would report the discount as estimator error.
    pub predicted_cost: Option<Cost>,
    /// Attributed job cost: GB-seconds on FaaS, instance-time share on
    /// IaaS, discounted held-seconds on spot, plus checkpoint dollars.
    pub cost: Cost,
}

impl JobRecord {
    /// Submission-to-completion latency.
    pub fn latency(&self) -> SimTime {
        self.queue + self.startup + self.run
    }

    pub fn finish(&self) -> SimTime {
        self.submit + self.latency()
    }

    /// Completion time of the last job that actually ran — the single
    /// definition of makespan, shared by the rollup and by the simulator's
    /// provisioned-floor billing so the two can never diverge. Rejected
    /// jobs carry only their submit time and don't stretch it.
    pub fn makespan(records: &[JobRecord]) -> SimTime {
        records
            .iter()
            .filter(|r| !r.rejected)
            .map(|r| r.finish())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Did the job meet its deadline? `None` when it had none or was
    /// rejected at admission (it never ran, so "met" is undefined — the
    /// rejection is surfaced separately).
    pub fn deadline_met(&self) -> Option<bool> {
        if self.rejected {
            return None;
        }
        self.deadline.map(|d| self.finish() <= d)
    }

    /// Absolute percentage error of the runtime prediction:
    /// `|actual − predicted| / actual` over the run component (the
    /// quantity the estimator predicts — queue and startup are charged
    /// separately). `None` without a prediction or an actual to score
    /// against.
    pub fn runtime_ape(&self) -> Option<f64> {
        if self.rejected {
            return None;
        }
        let predicted = self.predicted_run?.as_secs();
        let actual = self.run.as_secs();
        (actual > 0.0).then(|| (actual - predicted).abs() / actual)
    }

    /// Absolute percentage error of the cost prediction.
    pub fn cost_ape(&self) -> Option<f64> {
        if self.rejected {
            return None;
        }
        let predicted = self.predicted_cost?.as_usd();
        let actual = self.cost.as_usd();
        (actual > 0.0).then(|| (actual - predicted).abs() / actual)
    }

    /// Did the P95 ETA snapshotted at admission cover the actual run?
    /// `None` without a quantile prediction or an actual to score — the
    /// fleet-wide cover rate is the calibration check on
    /// [`crate::estimate::Estimate::eta_q`] (a calibrated estimator sits
    /// near the target quantile; a blind one sits wherever its luck put
    /// it).
    pub fn eta_covered(&self) -> Option<bool> {
        if self.rejected {
            return None;
        }
        let q = self.predicted_run_q?.as_secs();
        let actual = self.run.as_secs();
        (actual > 0.0).then_some(actual <= q + 1e-9)
    }
}

/// Mean of absolute percentage errors; 0.0 when nothing was predicted.
fn mape(apes: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for e in apes {
        sum += e;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Percentile rollup of one latency component.
#[derive(Debug, Clone, Copy)]
pub struct Quantiles {
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl Quantiles {
    fn from_values(values: Vec<f64>) -> Quantiles {
        if values.is_empty() {
            return Quantiles {
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut s = Summary::from_values(values);
        // Mean and max read the sample in insertion order; take them
        // before the in-place percentile sort permutes it (the summation
        // order is part of the byte-identical output contract).
        let mean = s.mean();
        let max = s.max();
        let [p50, p95, p99] = s.into_percentiles([50.0, 95.0, 99.0]);
        Quantiles {
            mean,
            p50,
            p95,
            p99,
            max,
        }
    }

    fn to_json(self) -> String {
        JsonObject::new()
            .f64("mean", self.mean)
            .f64("p50", self.p50)
            .f64("p95", self.p95)
            .f64("p99", self.p99)
            .f64("max", self.max)
            .finish()
    }
}

/// Platform-side counters and bills handed to the rollup (the per-job
/// records carry attributions; these integrals are authoritative).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlatformTotals {
    /// IaaS pool bill (every booted instance-second, busy or idle).
    pub iaas_cost: Cost,
    pub warm_hit_rate: f64,
    pub cold_starts: u64,
    pub iaas_utilization: f64,
    pub iaas_peak_instances: usize,
    pub faas_peak_concurrency: usize,
    /// Spot tier bill (held instance-seconds at the discounted rate).
    pub spot_cost: Cost,
    /// Spot preemption events across the run.
    pub preemptions: u64,
    /// Pre-paid provisioned-concurrency bill over the makespan.
    pub faas_provisioned_cost: Cost,
    pub spot_peak_instances: usize,
}

/// One fixed-width window of incremental replay metrics, flushed by the
/// streaming engine as the simulation clock passes each boundary (see
/// `FleetObserver::rollup_period`). Counters cover events *inside* the
/// window `[start, end)`; `resident_jobs` is the in-flight gauge at flush
/// time — the number the streaming engine promises stays bounded by the
/// working set, not by trace length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRollup {
    /// Zero-based window index (windows with no events are still emitted,
    /// so indices are dense).
    pub index: u64,
    pub start: SimTime,
    pub end: SimTime,
    /// Jobs whose arrival was pulled from the source in this window.
    pub submitted: u64,
    /// Jobs that reached a terminal completed state in this window.
    pub completed: u64,
    /// Jobs refused admission in this window.
    pub rejected: u64,
    /// Dollars charged in this window (all substrates and checkpoints).
    pub cost: Cost,
    /// Admitted, non-terminal jobs at flush time.
    pub resident_jobs: u64,
}

/// Per-tenant rollup row.
#[derive(Debug, Clone, Copy)]
pub struct TenantRow {
    pub tenant: TenantId,
    /// Jobs submitted (including rejected ones).
    pub jobs: usize,
    /// Jobs refused admission because the tenant's budget was exhausted.
    pub rejected: usize,
    /// Jobs that sat out at least one budget accounting window.
    pub deferred: usize,
    pub latency_p99: f64,
    pub cost: Cost,
    /// Worker-seconds of run time delivered to this tenant.
    pub service: f64,
}

/// Per-class rollup row (replaces the old anonymous tuple).
#[derive(Debug, Clone, Copy)]
pub struct ClassRow {
    pub class: JobClass,
    /// Jobs of this class that actually ran.
    pub jobs: usize,
    pub latency_p99: f64,
    /// Mean attributed dollars per job.
    pub mean_cost: f64,
    /// Jobs of this class that carried a runtime prediction.
    pub predicted: usize,
    /// Mean absolute percentage error of the runtime predictions.
    pub runtime_mape: f64,
    /// Mean absolute percentage error of the cost predictions.
    pub cost_mape: f64,
}

/// Fleet-level rollup of one simulation run.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    pub policy: String,
    pub seed: u64,
    pub n_jobs: usize,
    /// Completion time of the last job.
    pub makespan: SimTime,
    pub latency: Quantiles,
    pub queue: Quantiles,
    pub startup: Quantiles,
    /// Sum of attributed FaaS job costs (GB-second billing).
    pub faas_cost: Cost,
    /// Pre-paid provisioned-concurrency bill.
    pub faas_provisioned_cost: Cost,
    /// IaaS pool bill (every booted instance-second, busy or idle).
    pub iaas_cost: Cost,
    /// Spot tier bill.
    pub spot_cost: Cost,
    pub jobs_on_faas: usize,
    pub jobs_on_iaas: usize,
    pub jobs_on_spot: usize,
    pub warm_hit_rate: f64,
    pub cold_starts: u64,
    pub iaas_utilization: f64,
    pub iaas_peak_instances: usize,
    pub faas_peak_concurrency: usize,
    pub spot_peak_instances: usize,
    /// Spot preemption events across the run.
    pub preemptions: u64,
    /// Attempts that resumed from a durable checkpoint.
    pub resumes: u64,
    /// Training seconds redone fleet-wide because preemptions struck past
    /// the last durable checkpoint.
    pub lost_work: SimTime,
    /// Checkpoint uploads initiated fleet-wide.
    pub checkpoint_writes: u64,
    /// Checkpoint dollars fleet-wide (uploads plus restores).
    pub checkpoint_cost: Cost,
    /// Jobs refused admission on an exhausted tenant budget.
    pub rejected_jobs: usize,
    /// Jobs that sat out at least one budget accounting window before
    /// admission.
    pub deferred_jobs: usize,
    /// Jobs whose scheduler made a runtime/cost prediction at admission.
    pub predicted_jobs: usize,
    /// Mean absolute percentage error of the runtime predictions
    /// (|actual − predicted| / actual over the run component); 0.0 when
    /// nothing was predicted.
    pub runtime_mape: f64,
    /// Mean absolute percentage error of the cost predictions.
    pub cost_mape: f64,
    /// Jobs whose admission snapshot carried a P95 runtime ETA and whose
    /// actual run could score it.
    pub eta_q_jobs: usize,
    /// Of those, jobs whose actual run the P95 ETA covered.
    pub eta_q_covered: usize,
    /// Spot clusters launched fleet-wide (the exposure denominator behind
    /// the preemption counters).
    pub spot_attempts: u64,
    /// Jobs that carried a deadline / that met it. Rejected jobs never
    /// ran, so they appear in neither — `deadline_jobs_rejected` surfaces
    /// them so a policy that refuses doomed work can't read as one that
    /// improved deadline performance.
    pub deadline_jobs: usize,
    pub deadline_hits: usize,
    /// Deadline-carrying jobs refused admission (budget caps or the
    /// deferral-vs-rejection pricing): excluded from the hit-rate
    /// denominator, counted here.
    pub deadline_jobs_rejected: usize,
    /// Jain's fairness index over per-tenant delivered service
    /// (worker-seconds): 1 = perfectly even, 1/n = one tenant got it all.
    pub fairness: f64,
    pub records: Vec<JobRecord>,
}

impl FleetMetrics {
    /// Total dollars: FaaS execution + provisioned floor + reserved-pool
    /// bill + spot bill + checkpoint traffic.
    pub fn total_cost(&self) -> Cost {
        self.faas_cost
            + self.faas_provisioned_cost
            + self.iaas_cost
            + self.spot_cost
            + self.checkpoint_cost
    }

    /// Mean sustained throughput over the makespan, completed jobs/second
    /// (rejected jobs never ran, so they don't count as served work).
    pub fn throughput(&self) -> f64 {
        // Exact-zero guard against dividing by an empty makespan.
        // lml-analyze: allow(float-eq)
        if self.makespan.as_secs() == 0.0 {
            0.0
        } else {
            (self.n_jobs - self.rejected_jobs) as f64 / self.makespan.as_secs()
        }
    }

    /// Fraction of deadline-carrying jobs that finished in time (1.0 when
    /// no job had a deadline — vacuously met).
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.deadline_jobs == 0 {
            1.0
        } else {
            self.deadline_hits as f64 / self.deadline_jobs as f64
        }
    }

    /// Empirical coverage of the admission-time P95 ETA: the fraction of
    /// scoreable jobs whose actual run it covered. 1.0 when nothing was
    /// scoreable (vacuously covered — and NaN-free by construction). A
    /// calibrated estimator sits in [target, 1]; a miscalibrated blind
    /// prior sits near 0 when the zoo runs long.
    pub fn eta_coverage(&self) -> f64 {
        if self.eta_q_jobs == 0 {
            1.0
        } else {
            self.eta_q_covered as f64 / self.eta_q_jobs as f64
        }
    }

    /// Build the rollup from per-job records and platform counters.
    /// Latency/queue/startup quantiles and route counts cover jobs that
    /// actually ran; budget-rejected jobs are reported separately.
    ///
    /// One pass over the records feeds every accumulator (each was its own
    /// filter scan once — measurably hot on large sweeps); per-field
    /// summation order stays record order, so the floats are bit-identical
    /// to the multi-pass rollup.
    pub fn from_records(
        policy: &str,
        seed: u64,
        records: Vec<JobRecord>,
        totals: PlatformTotals,
    ) -> FleetMetrics {
        let n = records.len();
        let mut lat_s = Vec::with_capacity(n);
        let mut queue_s = Vec::with_capacity(n);
        let mut startup_s = Vec::with_capacity(n);
        let mut run_apes = Vec::new();
        let mut cost_apes = Vec::new();
        let mut faas_cost = Cost::ZERO;
        let (mut jobs_on_faas, mut jobs_on_iaas, mut jobs_on_spot) = (0usize, 0usize, 0usize);
        let (mut deadline_jobs, mut deadline_hits, mut deadline_jobs_rejected) =
            (0usize, 0usize, 0usize);
        let (mut rejected_jobs, mut deferred_jobs) = (0usize, 0usize);
        let (mut eta_q_jobs, mut eta_q_covered) = (0usize, 0usize);
        let (mut spot_attempts, mut resumes, mut checkpoint_writes) = (0u64, 0u64, 0u64);
        let mut lost_work = SimTime::ZERO;
        let mut checkpoint_cost = Cost::ZERO;
        // Tenant → accumulated service (worker-seconds); the dense map
        // is drained ascending by tenant id so the fairness index sums
        // tenants exactly as [`per_tenant_rows`] reports them.
        let mut service: crate::intern::TenantMap<f64> = crate::intern::TenantMap::new();
        for r in &records {
            if r.rejected {
                rejected_jobs += 1;
                if r.deadline.is_some() {
                    deadline_jobs_rejected += 1;
                }
            } else {
                lat_s.push(r.latency().as_secs());
                queue_s.push(r.queue.as_secs());
                startup_s.push(r.startup.as_secs());
                match r.route {
                    Route::Faas => {
                        jobs_on_faas += 1;
                        faas_cost += r.cost;
                    }
                    Route::Iaas => jobs_on_iaas += 1,
                    Route::Spot => jobs_on_spot += 1,
                }
                if r.deadline.is_some() {
                    deadline_jobs += 1;
                }
            }
            if r.deadline_met() == Some(true) {
                deadline_hits += 1;
            }
            if r.deferred {
                deferred_jobs += 1;
            }
            if let Some(a) = r.runtime_ape() {
                run_apes.push(a);
            }
            if let Some(a) = r.cost_ape() {
                cost_apes.push(a);
            }
            if let Some(covered) = r.eta_covered() {
                eta_q_jobs += 1;
                if covered {
                    eta_q_covered += 1;
                }
            }
            spot_attempts += r.spot_attempts as u64;
            resumes += r.resumes as u64;
            lost_work += r.lost_work;
            checkpoint_writes += r.checkpoint_writes as u64;
            checkpoint_cost += r.checkpoint_cost;
            *service.get_or_insert_with(r.tenant, || 0.0) += r.workers as f64 * r.run.as_secs();
        }
        let latency = Quantiles::from_values(lat_s);
        let queue = Quantiles::from_values(queue_s);
        let startup = Quantiles::from_values(startup_s);
        let makespan = JobRecord::makespan(&records);
        let predicted_jobs = run_apes.len();
        let runtime_mape = mape(run_apes.into_iter());
        let cost_mape = mape(cost_apes.into_iter());
        let fairness = jain_index(
            &service
                .into_iter_sorted()
                .map(|(_, s)| s)
                .collect::<Vec<_>>(),
        );
        FleetMetrics {
            policy: policy.to_string(),
            seed,
            n_jobs: n,
            makespan,
            latency,
            queue,
            startup,
            faas_cost,
            faas_provisioned_cost: totals.faas_provisioned_cost,
            iaas_cost: totals.iaas_cost,
            spot_cost: totals.spot_cost,
            jobs_on_faas,
            jobs_on_iaas,
            jobs_on_spot,
            warm_hit_rate: totals.warm_hit_rate,
            cold_starts: totals.cold_starts,
            iaas_utilization: totals.iaas_utilization,
            iaas_peak_instances: totals.iaas_peak_instances,
            faas_peak_concurrency: totals.faas_peak_concurrency,
            spot_peak_instances: totals.spot_peak_instances,
            preemptions: totals.preemptions,
            resumes,
            lost_work,
            checkpoint_writes,
            checkpoint_cost,
            rejected_jobs,
            deferred_jobs,
            predicted_jobs,
            runtime_mape,
            cost_mape,
            eta_q_jobs,
            eta_q_covered,
            spot_attempts,
            deadline_jobs,
            deadline_hits,
            deadline_jobs_rejected,
            fairness,
            records,
        }
    }

    /// Runtime MAPE over `k` consecutive windows of the predicted jobs (in
    /// submission order) — the convergence trajectory of a learning
    /// estimator. Windows with no predicted jobs report 0.0.
    pub fn runtime_mape_windows(&self, k: usize) -> Vec<f64> {
        assert!(k >= 1, "need at least one window");
        let apes: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.runtime_ape())
            .collect();
        (0..k)
            .map(|w| {
                let lo = w * apes.len() / k;
                let hi = (w + 1) * apes.len() / k;
                mape(apes[lo..hi].iter().copied())
            })
            .collect()
    }

    /// P95-ETA coverage over `k` consecutive windows of the scoreable jobs
    /// (in submission order) — the calibration trajectory: a learning
    /// estimator's late windows must land in [target, 1] however wrong the
    /// zoo is. Windows with nothing to score report 1.0 (vacuous).
    pub fn eta_coverage_windows(&self, k: usize) -> Vec<f64> {
        assert!(k >= 1, "need at least one window");
        let covers: Vec<bool> = self
            .records
            .iter()
            .filter_map(|r| r.eta_covered())
            .collect();
        (0..k)
            .map(|w| {
                let lo = w * covers.len() / k;
                let hi = (w + 1) * covers.len() / k;
                if lo == hi {
                    return 1.0;
                }
                covers[lo..hi].iter().filter(|&&c| c).count() as f64 / (hi - lo) as f64
            })
            .collect()
    }

    /// Per-class breakdown of the jobs that ran, in class order — named
    /// [`ClassRow`]s, prediction error included.
    pub fn per_class(&self) -> Vec<ClassRow> {
        // One bucketing pass instead of a scan per class; buckets keep
        // record order, so per-class sums and quantiles are bit-identical.
        let mut buckets: Vec<Vec<&JobRecord>> = vec![Vec::new(); JobClass::ALL.len()];
        for r in self.records.iter().filter(|r| !r.rejected) {
            buckets[r.class as usize].push(r);
        }
        JobClass::ALL
            .into_iter()
            .filter_map(|c| {
                let rs = &buckets[c as usize];
                if rs.is_empty() {
                    return None;
                }
                let lat =
                    Quantiles::from_values(rs.iter().map(|r| r.latency().as_secs()).collect());
                let mean_cost = rs.iter().map(|r| r.cost.as_usd()).sum::<f64>() / rs.len() as f64;
                Some(ClassRow {
                    class: c,
                    jobs: rs.len(),
                    latency_p99: lat.p99,
                    mean_cost,
                    predicted: rs.iter().filter_map(|r| r.runtime_ape()).count(),
                    runtime_mape: mape(rs.iter().filter_map(|r| r.runtime_ape())),
                    cost_mape: mape(rs.iter().filter_map(|r| r.cost_ape())),
                })
            })
            .collect()
    }

    /// Per-tenant rollup (jobs, p99 latency, attributed dollars, delivered
    /// service), ascending by tenant id.
    pub fn per_tenant(&self) -> Vec<TenantRow> {
        per_tenant_rows(&self.records)
    }

    /// Deterministic JSON export. Two runs with the same inputs produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let per_class: Vec<String> = self
            .per_class()
            .into_iter()
            .map(|c| {
                JsonObject::new()
                    .str("class", c.class.name())
                    .u64("jobs", c.jobs as u64)
                    .f64("latency_p99_s", c.latency_p99)
                    .f64("mean_cost_usd", c.mean_cost)
                    .u64("predicted", c.predicted as u64)
                    .f64("runtime_mape", c.runtime_mape)
                    .f64("cost_mape", c.cost_mape)
                    .finish()
            })
            .collect();
        let per_tenant: Vec<String> = self
            .per_tenant()
            .into_iter()
            .map(|t| {
                JsonObject::new()
                    .u64("tenant", t.tenant as u64)
                    .u64("jobs", t.jobs as u64)
                    .u64("rejected", t.rejected as u64)
                    .u64("deferred", t.deferred as u64)
                    .f64("latency_p99_s", t.latency_p99)
                    .f64("cost_usd", t.cost.as_usd())
                    .f64("service_worker_s", t.service)
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("schema", "lml-fleet/metrics/v1")
            .str("policy", &self.policy)
            .u64("seed", self.seed)
            .u64("jobs", self.n_jobs as u64)
            .f64("makespan_s", self.makespan.as_secs())
            .f64("throughput_jobs_per_s", self.throughput())
            .raw("latency_s", &self.latency.to_json())
            .raw("queue_s", &self.queue.to_json())
            .raw("startup_s", &self.startup.to_json())
            .f64("faas_cost_usd", self.faas_cost.as_usd())
            .f64(
                "faas_provisioned_cost_usd",
                self.faas_provisioned_cost.as_usd(),
            )
            .f64("iaas_cost_usd", self.iaas_cost.as_usd())
            .f64("spot_cost_usd", self.spot_cost.as_usd())
            .f64("total_cost_usd", self.total_cost().as_usd())
            .u64("jobs_on_faas", self.jobs_on_faas as u64)
            .u64("jobs_on_iaas", self.jobs_on_iaas as u64)
            .u64("jobs_on_spot", self.jobs_on_spot as u64)
            .f64("warm_hit_rate", self.warm_hit_rate)
            .u64("cold_starts", self.cold_starts)
            .f64("iaas_utilization", self.iaas_utilization)
            .u64("iaas_peak_instances", self.iaas_peak_instances as u64)
            .u64("faas_peak_concurrency", self.faas_peak_concurrency as u64)
            .u64("spot_peak_instances", self.spot_peak_instances as u64)
            .u64("preemptions", self.preemptions)
            .u64("resumes", self.resumes)
            .f64("lost_work_s", self.lost_work.as_secs())
            .u64("checkpoint_writes", self.checkpoint_writes)
            .f64("checkpoint_cost_usd", self.checkpoint_cost.as_usd())
            .u64("rejected_jobs", self.rejected_jobs as u64)
            .u64("deferred_jobs", self.deferred_jobs as u64)
            .u64("predicted_jobs", self.predicted_jobs as u64)
            .f64("runtime_mape", self.runtime_mape)
            .f64("cost_mape", self.cost_mape)
            .u64("eta_q_jobs", self.eta_q_jobs as u64)
            .u64("eta_q_covered", self.eta_q_covered as u64)
            .f64("eta_q_coverage", self.eta_coverage())
            .u64("spot_attempts", self.spot_attempts)
            .u64("deadline_jobs", self.deadline_jobs as u64)
            .u64("deadline_hits", self.deadline_hits as u64)
            .u64("deadline_jobs_rejected", self.deadline_jobs_rejected as u64)
            .f64("deadline_hit_rate", self.deadline_hit_rate())
            .f64("fairness", self.fairness)
            .raw("per_class", &array(&per_class))
            .raw("per_tenant", &array(&per_tenant))
            .finish()
    }

    /// One-line human summary — two lines when any tenant was deferred or
    /// rejected, so the console view names the tenants the admission layer
    /// actually refused (the JSON rollups always carry the per-tenant
    /// breakdown; this keeps the human view honest with it).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{:>14}: {} jobs | p50 {} p95 {} p99 {} | {} total | dl {:.0}% | fair {:.2} | preempt {} resume {} lost {} | warm {:.0}% | util {:.0}%",
            self.policy,
            self.n_jobs,
            SimTime::secs(self.latency.p50),
            SimTime::secs(self.latency.p95),
            SimTime::secs(self.latency.p99),
            self.total_cost(),
            self.deadline_hit_rate() * 100.0,
            self.fairness,
            self.preemptions,
            self.resumes,
            self.lost_work,
            self.warm_hit_rate * 100.0,
            self.iaas_utilization * 100.0,
        );
        if self.deferred_jobs > 0 || self.rejected_jobs > 0 {
            let refused: Vec<String> = self
                .per_tenant()
                .iter()
                .filter(|t| t.deferred > 0 || t.rejected > 0)
                .map(|t| format!("t{} defer {} reject {}", t.tenant, t.deferred, t.rejected))
                .collect();
            s.push_str(&format!(
                "\n{:>14}  admission: {}",
                "", // align under the policy name column
                refused.join(" | ")
            ));
        }
        s
    }
}

fn per_tenant_rows(records: &[JobRecord]) -> Vec<TenantRow> {
    /// Running per-tenant tallies; latencies collect for the quantile pass.
    struct Acc {
        jobs: usize,
        rejected: usize,
        deferred: usize,
        cost: Cost,
        service: f64,
        lat_s: Vec<f64>,
    }
    // One bucketing pass instead of a full scan per tenant; the dense
    // map is drained ascending by tenant id, and per-tenant accumulation
    // stays in record order, so sums and quantiles are bit-identical.
    let mut accs: crate::intern::TenantMap<Acc> = crate::intern::TenantMap::new();
    for r in records {
        let a = accs.get_or_insert_with(r.tenant, || Acc {
            jobs: 0,
            rejected: 0,
            deferred: 0,
            cost: Cost::ZERO,
            service: 0.0,
            lat_s: Vec::new(),
        });
        a.jobs += 1;
        if r.rejected {
            a.rejected += 1;
        } else {
            a.lat_s.push(r.latency().as_secs());
        }
        if r.deferred {
            a.deferred += 1;
        }
        a.cost += r.cost;
        a.service += r.workers as f64 * r.run.as_secs();
    }
    accs.into_iter_sorted()
        .map(|(t, a)| TenantRow {
            tenant: t,
            jobs: a.jobs,
            rejected: a.rejected,
            deferred: a.deferred,
            latency_p99: Quantiles::from_values(a.lat_s).p99,
            cost: a.cost,
            service: a.service,
        })
        .collect()
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 for an even allocation,
/// `1/n` when one party takes everything. Empty or all-zero → 1.0
/// (vacuously fair).
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    // Exact-zero guard: all-zero allocations are perfectly fair.
    // lml-analyze: allow(float-eq)
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, route: Route, queue: f64, run: f64, cost: f64) -> JobRecord {
        JobRecord {
            id,
            class: JobClass::LrHiggs,
            route,
            workers: 10,
            tenant: (id % 2) as TenantId,
            submit: SimTime::secs(id as f64),
            deadline: None,
            queue: SimTime::secs(queue),
            startup: SimTime::secs(1.0),
            run: SimTime::secs(run),
            warm_hits: 0,
            preemptions: 0,
            resumes: 0,
            spot_attempts: 0,
            lost_work: SimTime::ZERO,
            checkpoint_writes: 0,
            checkpoint_cost: Cost::ZERO,
            rejected: false,
            deferred: false,
            predicted_run: None,
            predicted_run_q: None,
            predicted_cost: None,
            cost: Cost::usd(cost),
        }
    }

    fn totals() -> PlatformTotals {
        PlatformTotals {
            iaas_cost: Cost::usd(2.0),
            warm_hit_rate: 0.5,
            cold_starts: 3,
            iaas_utilization: 0.8,
            iaas_peak_instances: 20,
            faas_peak_concurrency: 100,
            ..Default::default()
        }
    }

    fn metrics(records: Vec<JobRecord>) -> FleetMetrics {
        FleetMetrics::from_records("test", 1, records, totals())
    }

    #[test]
    fn rollup_accounts_costs_by_route() {
        let m = metrics(vec![
            rec(0, Route::Faas, 0.0, 10.0, 0.5),
            rec(1, Route::Iaas, 5.0, 10.0, 0.1),
        ]);
        // IaaS job cost is attributed but the pool bill is authoritative.
        assert_eq!(m.faas_cost, Cost::usd(0.5));
        assert_eq!(m.iaas_cost, Cost::usd(2.0));
        assert_eq!(m.total_cost(), Cost::usd(2.5));
        assert_eq!(m.jobs_on_faas, 1);
        assert_eq!(m.jobs_on_iaas, 1);
        assert_eq!(m.jobs_on_spot, 0);
    }

    #[test]
    fn latency_quantiles_cover_queue_and_startup() {
        let m = metrics(vec![rec(0, Route::Faas, 4.0, 10.0, 0.1)]);
        assert!((m.latency.p50 - 15.0).abs() < 1e-9, "4 + 1 + 10");
        assert!((m.queue.max - 4.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_versioned() {
        let m1 = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.5)]);
        let m2 = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.5)]);
        assert_eq!(m1.to_json(), m2.to_json());
        assert!(m1
            .to_json()
            .starts_with(r#"{"schema":"lml-fleet/metrics/v1""#));
        assert!(m1.to_json().contains(r#""per_tenant":["#));
    }

    #[test]
    fn makespan_is_last_finish() {
        let m = metrics(vec![
            rec(0, Route::Faas, 0.0, 10.0, 0.1),
            rec(5, Route::Faas, 0.0, 3.0, 0.1),
        ]);
        // job 1: submit 5 + 1 startup + 3 run = 9; job 0 finishes at 11.
        assert_eq!(m.makespan, SimTime::secs(11.0));
    }

    #[test]
    fn deadline_hit_rate_counts_only_deadline_jobs() {
        let mut hit = rec(0, Route::Faas, 0.0, 10.0, 0.1);
        hit.deadline = Some(SimTime::secs(100.0)); // finishes at 11
        let mut miss = rec(1, Route::Faas, 0.0, 10.0, 0.1);
        miss.deadline = Some(SimTime::secs(5.0)); // finishes at 12
        let free = rec(2, Route::Faas, 0.0, 10.0, 0.1);
        let m = metrics(vec![hit, miss, free]);
        assert_eq!(m.deadline_jobs, 2);
        assert_eq!(m.deadline_hits, 1);
        assert!((m.deadline_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(metrics(vec![free]).deadline_hit_rate(), 1.0);
    }

    #[test]
    fn jain_index_brackets_even_and_starved() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        let skewed = jain_index(&[9.0, 1.0]);
        assert!(skewed > 0.5 && skewed < 1.0, "{skewed}");
    }

    #[test]
    fn rejected_jobs_are_excluded_from_run_stats_but_surfaced() {
        let mut rej = rec(1, Route::Faas, 0.0, 0.0, 0.0);
        rej.rejected = true;
        rej.run = SimTime::ZERO;
        let ran = rec(0, Route::Faas, 0.0, 10.0, 0.5);
        let m = metrics(vec![ran, rej]);
        assert_eq!(m.n_jobs, 2);
        assert_eq!(m.rejected_jobs, 1);
        assert_eq!(m.jobs_on_faas, 1, "rejected jobs never reach a route");
        assert!(
            (m.latency.max - 11.0).abs() < 1e-9,
            "quantiles skip rejects"
        );
        let rows = m.per_tenant();
        assert_eq!((rows[1].tenant, rows[1].jobs, rows[1].rejected), (1, 1, 1));
        assert_eq!(rows[0].rejected, 0);
        let json = m.to_json();
        assert!(json.contains(r#""rejected_jobs":1"#));
        assert!(json.contains(r#""rejected":1"#));
        // A rejected job with a deadline counts as neither hit nor miss —
        // but it is surfaced, so refusing doomed work can't read as
        // improving deadline performance.
        let mut rej_dl = rec(2, Route::Faas, 0.0, 0.0, 0.0);
        rej_dl.rejected = true;
        rej_dl.deadline = Some(SimTime::secs(1.0));
        let m = metrics(vec![rej_dl]);
        assert_eq!(m.deadline_jobs, 0);
        assert_eq!(m.deadline_hit_rate(), 1.0, "vacuously met");
        assert_eq!(m.deadline_jobs_rejected, 1);
        assert!(m.to_json().contains(r#""deadline_jobs_rejected":1"#));
    }

    #[test]
    fn recovery_counters_roll_up_and_price_in() {
        let mut a = rec(0, Route::Spot, 0.0, 30.0, 0.2);
        a.preemptions = 2;
        a.resumes = 2;
        a.lost_work = SimTime::secs(7.5);
        a.checkpoint_writes = 4;
        a.checkpoint_cost = Cost::usd(0.01);
        let mut b = rec(1, Route::Spot, 0.0, 20.0, 0.1);
        b.lost_work = SimTime::secs(2.5);
        b.checkpoint_writes = 1;
        b.checkpoint_cost = Cost::usd(0.002);
        let m = metrics(vec![a, b]);
        assert_eq!(m.resumes, 2);
        assert_eq!(m.checkpoint_writes, 5);
        assert_eq!(m.lost_work, SimTime::secs(10.0));
        assert!((m.checkpoint_cost.as_usd() - 0.012).abs() < 1e-12);
        // Checkpoint dollars are part of the total bill.
        assert!((m.total_cost().as_usd() - (2.0 + 0.012)).abs() < 1e-12);
        let json = m.to_json();
        assert!(json.contains(r#""lost_work_s":10.0"#));
        assert!(json.contains(r#""resumes":2"#));
        assert!(json.contains(r#""checkpoint_writes":5"#));
    }

    #[test]
    fn prediction_error_rolls_up_as_mape() {
        // Job 0: predicted 8 s for a 10 s run (APE 0.2), cost spot-on.
        let mut a = rec(0, Route::Faas, 0.0, 10.0, 0.5);
        a.predicted_run = Some(SimTime::secs(8.0));
        a.predicted_cost = Some(Cost::usd(0.5));
        // Job 1: predicted 30 s for a 20 s run (APE 0.5), cost double.
        let mut b = rec(1, Route::Iaas, 0.0, 20.0, 0.1);
        b.predicted_run = Some(SimTime::secs(30.0));
        b.predicted_cost = Some(Cost::usd(0.2));
        // Job 2: no prediction (constant router) — excluded from MAPE.
        let c = rec(2, Route::Faas, 0.0, 10.0, 0.1);
        let m = metrics(vec![a, b, c]);
        assert_eq!(m.predicted_jobs, 2);
        assert!((m.runtime_mape - 0.35).abs() < 1e-12, "{}", m.runtime_mape);
        assert!((m.cost_mape - 0.5).abs() < 1e-12, "{}", m.cost_mape);
        let json = m.to_json();
        assert!(json.contains(r#""predicted_jobs":2"#));
        assert!(json.contains(r#""runtime_mape":0.35"#));
        assert!(json.contains(r#""cost_mape":0.5"#));
        // Per-class rows carry their own MAPE (all records are LrHiggs).
        let rows = m.per_class();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].predicted, 2);
        assert!((rows[0].runtime_mape - 0.35).abs() < 1e-12);
        // Windowed MAPE in submission order: [0.2], [0.5].
        assert_eq!(m.runtime_mape_windows(2), vec![0.2, 0.5]);
        // Predictions on nothing → MAPE 0, no predicted jobs.
        let empty = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.1)]);
        assert_eq!(empty.predicted_jobs, 0);
        assert_eq!(empty.runtime_mape, 0.0);
    }

    #[test]
    fn eta_coverage_rolls_up_and_windows() {
        // Job 0: P95 ETA 12 s covers the 10 s run; job 1: ETA 15 s misses
        // the 20 s run; job 2: no quantile snapshot — not scoreable.
        let mut a = rec(0, Route::Faas, 0.0, 10.0, 0.5);
        a.predicted_run_q = Some(SimTime::secs(12.0));
        let mut b = rec(1, Route::Iaas, 0.0, 20.0, 0.1);
        b.predicted_run_q = Some(SimTime::secs(15.0));
        b.spot_attempts = 2;
        let c = rec(2, Route::Faas, 0.0, 10.0, 0.1);
        let m = metrics(vec![a, b, c]);
        assert_eq!(m.eta_q_jobs, 2);
        assert_eq!(m.eta_q_covered, 1);
        assert!((m.eta_coverage() - 0.5).abs() < 1e-12);
        assert_eq!(m.spot_attempts, 2);
        assert_eq!(m.eta_coverage_windows(2), vec![1.0, 0.0]);
        let json = m.to_json();
        assert!(json.contains(r#""eta_q_jobs":2"#));
        assert!(json.contains(r#""eta_q_covered":1"#));
        assert!(json.contains(r#""eta_q_coverage":0.5"#));
        assert!(json.contains(r#""spot_attempts":2"#));
        // Nothing scoreable → vacuously covered, never NaN.
        let empty = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.1)]);
        assert_eq!(empty.eta_coverage(), 1.0);
        assert_eq!(empty.eta_coverage_windows(3), vec![1.0, 1.0, 1.0]);
        // An exact prediction (zero-margin estimator) counts as covered.
        let mut exact = rec(0, Route::Faas, 0.0, 10.0, 0.1);
        exact.predicted_run_q = Some(SimTime::secs(10.0));
        assert_eq!(exact.eta_covered(), Some(true));
    }

    #[test]
    fn deferred_jobs_roll_up_per_tenant_and_fleet_wide() {
        let mut d = rec(1, Route::Iaas, 30.0, 10.0, 0.1); // tenant 1
        d.deferred = true;
        let m = metrics(vec![rec(0, Route::Faas, 0.0, 10.0, 0.2), d]);
        assert_eq!(m.deferred_jobs, 1);
        assert_eq!(m.rejected_jobs, 0, "deferral is not rejection");
        let rows = m.per_tenant();
        assert_eq!((rows[1].tenant, rows[1].deferred), (1, 1));
        assert_eq!(rows[0].deferred, 0);
        let json = m.to_json();
        assert!(json.contains(r#""deferred_jobs":1"#));
        assert!(json.contains(r#""deferred":1"#));
    }

    #[test]
    fn per_tenant_rollup_splits_by_tenant() {
        let m = metrics(vec![
            rec(0, Route::Faas, 0.0, 10.0, 0.4), // tenant 0
            rec(1, Route::Iaas, 0.0, 20.0, 0.2), // tenant 1
            rec(2, Route::Faas, 0.0, 10.0, 0.4), // tenant 0
        ]);
        let rows = m.per_tenant();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].tenant, rows[0].jobs), (0, 2));
        assert_eq!((rows[1].tenant, rows[1].jobs), (1, 1));
        assert!((rows[0].service - 200.0).abs() < 1e-9, "2 × 10w × 10s");
        assert!((rows[1].service - 200.0).abs() < 1e-9, "1 × 10w × 20s");
        assert!((m.fairness - 1.0).abs() < 1e-12, "equal service is fair");
        assert_eq!(rows[0].cost, Cost::usd(0.8));
    }
}
