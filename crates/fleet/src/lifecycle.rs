//! The explicit job-lifecycle state machine and checkpoint policies.
//!
//! PR 2's simulator tracked job progress implicitly (a `done` flag plus
//! ad-hoc attempt bookkeeping), so a spot preemption threw away every epoch
//! of progress. This module makes the lifecycle explicit and shared by all
//! schedulers and both compute tiers:
//!
//! ```text
//! Queued → Booting → Running{epochs_done} → Done
//!  │  ↑↓               │        ↑
//!  │ Deferred          ▼        │ (resume)
//!  │ (budget      Checkpointing │
//!  │  window)          │        │
//!  │                   ▼        │
//!  │               Preempted → Requeued → Booting → …
//!  └→ Rejected                              (retry or pool fallback)
//! ```
//!
//! Transitions are validated ([`JobLifecycle::transition`] panics on an
//! illegal edge), so every simulator path — FaaS, the reserved pool, and
//! the spot tier — moves jobs through the same machine.
//!
//! Progress is epoch-granular. A [`CheckpointPolicy`] decides after which
//! epochs a job on the preemptible tier uploads a recovery checkpoint.
//! Uploads are asynchronous (a background stream to the store): training
//! is not paused, but a checkpoint only becomes *durable* once its write —
//! priced through `lml-storage`'s S3 profile — completes. A preemption
//! rolls the job back to its last durable checkpoint instead of to zero;
//! everything after it is counted as lost work.
//!
//! The attempt arithmetic lives in [`AttemptPlan`] / [`preempt_outcome`] as
//! pure functions so the recovery invariants (checkpointing more often
//! never increases lost work; any checkpointing beats `Never` once a
//! preemption lands after a durable write) are unit-testable without
//! running the fleet loop.

use lml_sim::SimTime;

/// Lifecycle state of one job. Epoch counters always refer to *durable*
/// progress (epochs whose recovery checkpoint — or completion — survives a
/// preemption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobLifecycle {
    /// Admitted to a queue (or just arrived), waiting to start.
    Queued,
    /// Held back because the tenant's budget for the current accounting
    /// window is exhausted; released back to `Queued` at the next window
    /// (only entered when the fleet runs budget deferral instead of
    /// rejection).
    Deferred,
    /// Containers/instances starting (cold start, cluster boot, restore).
    Booting,
    /// Training; `epochs_done` epochs were durable when the run began.
    Running { epochs_done: u32 },
    /// A checkpoint upload was in flight when the state was observed (only
    /// entered on the way into a preemption that interrupts a write).
    Checkpointing { epochs_done: u32 },
    /// The spot market reclaimed the instances; `epochs_done` is the
    /// durable progress that survives.
    Preempted { epochs_done: u32 },
    /// Thrown back for another attempt (fresh spot cluster or pool
    /// fallback), resuming from `epochs_done`.
    Requeued { epochs_done: u32 },
    /// Terminal: finished all epochs.
    Done,
    /// Terminal: refused admission (tenant budget exhausted).
    Rejected,
}

impl JobLifecycle {
    pub fn name(self) -> &'static str {
        match self {
            JobLifecycle::Queued => "queued",
            JobLifecycle::Deferred => "deferred",
            JobLifecycle::Booting => "booting",
            JobLifecycle::Running { .. } => "running",
            JobLifecycle::Checkpointing { .. } => "checkpointing",
            JobLifecycle::Preempted { .. } => "preempted",
            JobLifecycle::Requeued { .. } => "requeued",
            JobLifecycle::Done => "done",
            JobLifecycle::Rejected => "rejected",
        }
    }

    /// Done and Rejected absorb; everything else keeps moving.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobLifecycle::Done | JobLifecycle::Rejected)
    }

    /// Durable epoch count carried by the state, if it carries one.
    pub fn epochs_done(self) -> Option<u32> {
        match self {
            JobLifecycle::Running { epochs_done }
            | JobLifecycle::Checkpointing { epochs_done }
            | JobLifecycle::Preempted { epochs_done }
            | JobLifecycle::Requeued { epochs_done } => Some(epochs_done),
            _ => None,
        }
    }

    /// Is `next` a legal successor of `self`? Durable progress never moves
    /// backwards along an edge.
    pub fn can_transition(self, next: JobLifecycle) -> bool {
        use JobLifecycle::*;
        let forward = |from: u32, to: u32| to >= from;
        match (self, next) {
            (Queued, Booting) | (Queued, Rejected) | (Queued, Deferred) => true,
            (Deferred, Queued) => true,
            (Booting, Running { .. }) => true,
            (Running { epochs_done: a }, Running { epochs_done: b }) => forward(a, b),
            (Running { epochs_done: a }, Checkpointing { epochs_done: b }) => forward(a, b),
            (Running { epochs_done: a }, Preempted { epochs_done: b }) => forward(a, b),
            (Running { .. }, Done) => true,
            (Checkpointing { epochs_done: a }, Running { epochs_done: b }) => forward(a, b),
            (Checkpointing { epochs_done: a }, Preempted { epochs_done: b }) => forward(a, b),
            (Preempted { epochs_done: a }, Requeued { epochs_done: b }) => a == b,
            (Requeued { .. }, Booting) => true,
            _ => false,
        }
    }

    /// Advance the machine, panicking on an illegal edge — lifecycle bugs
    /// in the simulator must fail loudly, not corrupt metrics.
    ///
    /// The fleet loop routes every call through `Fleet::step`, which
    /// narrates the validated edge to the run's
    /// [`FleetObserver`](crate::observe::FleetObserver) as a typed
    /// [`FleetEvent`](crate::observe::FleetEvent) — so a trace carries
    /// exactly the transitions this machine accepted, nothing else.
    pub fn transition(&mut self, next: JobLifecycle) {
        assert!(
            self.can_transition(next),
            "illegal lifecycle transition {} -> {}",
            self.name(),
            next.name()
        );
        *self = next;
    }
}

/// When a spot-routed job uploads recovery checkpoints.
///
/// Set on [`FleetConfig::checkpoint`](crate::FleetConfig): uploads are
/// asynchronous (durable one S3-profile write after the epoch
/// completes), sized from the model dims, and priced through the
/// storage layer. A preempted job resumes from its last durable
/// checkpoint instead of restarting.
///
/// ```
/// use lml_fleet::CheckpointPolicy;
///
/// assert_eq!(CheckpointPolicy::every(4).name(), "every4");
/// // Young's √(2·c·M) period, converted to whole epochs: 60 s epochs,
/// // 5 s writes, 1800 s mean time to preemption → every 2 epochs.
/// assert_eq!(
///     CheckpointPolicy::Adaptive.interval_epochs(60.0, 5.0, 1_800.0),
///     Some(2)
/// );
/// assert_eq!(CheckpointPolicy::Never.interval_epochs(60.0, 5.0, 1_800.0), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// No checkpoints: a preemption loses every epoch (PR 2 behaviour).
    Never,
    /// Upload after every `k`-th epoch.
    EveryK(u32),
    /// Pick the interval per job from the preemption rate via Young's
    /// approximation: the optimal checkpoint period is `√(2·c·M)` for
    /// write time `c` and mean time to failure `M`, converted to whole
    /// epochs.
    Adaptive,
}

impl CheckpointPolicy {
    /// Checkpoint after every `k` epochs (`k ≥ 1`).
    pub fn every(k: u32) -> CheckpointPolicy {
        assert!(k >= 1, "checkpoint interval must be >= 1 epoch");
        CheckpointPolicy::EveryK(k)
    }

    /// Stable name for reports and output file names.
    pub fn name(self) -> String {
        match self {
            CheckpointPolicy::Never => "never".into(),
            CheckpointPolicy::EveryK(k) => format!("every{k}"),
            CheckpointPolicy::Adaptive => "adaptive".into(),
        }
    }

    /// Epochs between checkpoints for a job with `epoch_secs`-long epochs,
    /// `write_secs` per upload, and mean time to preemption
    /// `mttp_secs` (already divided by the job's width). `None` disables
    /// checkpointing.
    pub fn interval_epochs(self, epoch_secs: f64, write_secs: f64, mttp_secs: f64) -> Option<u32> {
        match self {
            CheckpointPolicy::Never => None,
            CheckpointPolicy::EveryK(k) => {
                assert!(k >= 1, "checkpoint interval must be >= 1 epoch");
                Some(k)
            }
            CheckpointPolicy::Adaptive => {
                assert!(epoch_secs > 0.0 && write_secs >= 0.0 && mttp_secs > 0.0);
                let period = (2.0 * write_secs * mttp_secs).sqrt();
                Some(((period / epoch_secs).round() as u32).max(1))
            }
        }
    }
}

/// One spot attempt, resolved to concrete epoch arithmetic.
///
/// The attempt's wall clock is `boot + restore + run`, where
/// `run = (total − start) × epoch_secs` — checkpoint uploads are
/// asynchronous and do not stretch the attempt. A checkpoint is initiated
/// the instant epoch `j` completes (for `j` a multiple of the interval,
/// `start < j < total`) and becomes durable `write_secs` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptPlan {
    /// Durable epochs when the attempt begins (resume point).
    pub start_epoch: u32,
    /// Total epochs the job needs.
    pub total_epochs: u32,
    /// Seconds per epoch on this substrate.
    pub epoch_secs: f64,
    /// Checkpoint interval in epochs; `None` = no checkpointing.
    pub interval: Option<u32>,
    /// Seconds one checkpoint upload takes to become durable.
    pub write_secs: f64,
}

impl AttemptPlan {
    /// Seconds of training this attempt schedules.
    pub fn run_secs(&self) -> f64 {
        debug_assert!(self.start_epoch <= self.total_epochs);
        (self.total_epochs - self.start_epoch) as f64 * self.epoch_secs
    }

    /// Global epoch indices after which this attempt initiates a
    /// checkpoint upload. The final epoch is excluded — completing the job
    /// *is* the durable outcome.
    fn checkpoint_epochs(&self) -> impl Iterator<Item = u32> + '_ {
        let k = self.interval.unwrap_or(u32::MAX).max(1);
        ((self.start_epoch + 1)..self.total_epochs).filter(move |j| j % k == 0)
    }

    /// Checkpoint uploads a *successful* attempt initiates (all billed).
    pub fn writes_on_success(&self) -> u32 {
        self.checkpoint_epochs().count() as u32
    }
}

/// Should the next attempt restore the last durable checkpoint, or redo
/// the banked epochs from scratch?
///
/// The pre-PR-5 rule compared *time only* (`restore < redo`), which let a
/// budget-capped tenant be billed a restore read that costs more dollars
/// than simply re-running cheap epochs. Both dimensions must win: the
/// restore has to be faster **and** cheaper, where its dollars are the
/// storage read *plus* the instance-seconds spent waiting on it (priced at
/// the route's own rate — spot restores wait on discounted instances,
/// reserved-pool restores on full-price ones) against the instance-seconds
/// of redoing the epochs. Ties go to redoing: a restore that buys nothing
/// shouldn't bill a read.
pub fn restore_beats_redo(
    restore: SimTime,
    read_dollars: lml_sim::Cost,
    redo: SimTime,
    rate_per_s: f64,
) -> bool {
    assert!(rate_per_s >= 0.0, "instance rate cannot be negative");
    let restore_usd = restore.as_secs() * rate_per_s + read_dollars.as_usd();
    let redo_usd = redo.as_secs() * rate_per_s;
    restore < redo && restore_usd < redo_usd
}

/// What a preemption `elapsed_run` seconds into the attempt's run phase
/// left behind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptOutcome {
    /// Durable progress surviving the preemption (≥ the attempt's start).
    pub durable_epochs: u32,
    /// Epochs fully trained when the market struck (durable or not).
    pub completed_epochs: u32,
    /// Checkpoint uploads initiated during the attempt (all billed).
    pub writes_started: u32,
    /// Of those, uploads still in flight at the preemption — billed but
    /// useless ("partial checkpoint writes").
    pub writes_interrupted: u32,
    /// Training seconds that must be redone: everything after the last
    /// durable checkpoint, including the partial epoch.
    pub lost_work: SimTime,
}

/// Resolve a preemption landing `elapsed_run` seconds into the run phase
/// of `plan` (clamped to the phase; boot/restore-phase preemptions pass
/// `0.0` and lose nothing).
pub fn preempt_outcome(plan: &AttemptPlan, elapsed_run: f64) -> PreemptOutcome {
    let t = elapsed_run.clamp(0.0, plan.run_secs());
    let e = plan.epoch_secs;
    let completed_rel = if e > 0.0 { (t / e).floor() as u32 } else { 0 };
    let completed = plan.start_epoch + completed_rel.min(plan.total_epochs - plan.start_epoch);
    let mut durable = plan.start_epoch;
    let mut started = 0u32;
    let mut interrupted = 0u32;
    for j in plan.checkpoint_epochs() {
        if j > completed {
            break;
        }
        started += 1;
        // Initiated when epoch j completed; durable write_secs later.
        let durable_at = (j - plan.start_epoch) as f64 * e + plan.write_secs;
        if durable_at <= t {
            durable = j;
        } else {
            interrupted += 1;
        }
    }
    PreemptOutcome {
        durable_epochs: durable,
        completed_epochs: completed,
        writes_started: started,
        writes_interrupted: interrupted,
        lost_work: SimTime::secs(t - (durable - plan.start_epoch) as f64 * e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use JobLifecycle::*;

    #[test]
    fn happy_path_transitions_are_legal() {
        let mut l = Queued;
        for next in [
            Booting,
            Running { epochs_done: 0 },
            Checkpointing { epochs_done: 0 },
            Preempted { epochs_done: 2 },
            Requeued { epochs_done: 2 },
            Booting,
            Running { epochs_done: 2 },
            Done,
        ] {
            l.transition(next);
        }
        assert!(l.is_terminal());
        let mut r = Queued;
        r.transition(Rejected);
        assert!(r.is_terminal());
        assert_eq!(r.name(), "rejected");
    }

    #[test]
    fn deferral_loops_back_to_queued() {
        let mut l = Queued;
        l.transition(Deferred);
        assert!(!l.is_terminal());
        assert_eq!(l.name(), "deferred");
        assert_eq!(l.epochs_done(), None);
        // Released at the next accounting window, then runs normally.
        for next in [
            Queued,
            Deferred,
            Queued,
            Booting,
            Running { epochs_done: 0 },
            Done,
        ] {
            l.transition(next);
        }
        assert!(l.is_terminal());
        // A deferred job is on hold, not running or rejected.
        assert!(!Deferred.can_transition(Booting));
        assert!(!Deferred.can_transition(Rejected));
        assert!(!Deferred.can_transition(Done));
    }

    #[test]
    fn illegal_transitions_are_caught() {
        assert!(!Queued.can_transition(Done), "queued jobs cannot finish");
        assert!(!Done.can_transition(Booting), "terminal states absorb");
        assert!(!Rejected.can_transition(Queued));
        assert!(!Booting.can_transition(Queued));
        assert!(
            !Running { epochs_done: 5 }.can_transition(Running { epochs_done: 3 }),
            "durable progress never regresses"
        );
        assert!(
            !Preempted { epochs_done: 2 }.can_transition(Requeued { epochs_done: 3 }),
            "requeue carries exactly the surviving progress"
        );
        assert!(!Running { epochs_done: 0 }.can_transition(Rejected));
    }

    #[test]
    #[should_panic(expected = "illegal lifecycle transition")]
    fn transition_panics_on_illegal_edge() {
        let mut l = Done;
        l.transition(Booting);
    }

    #[test]
    fn epochs_done_is_carried_by_progress_states() {
        assert_eq!(Running { epochs_done: 4 }.epochs_done(), Some(4));
        assert_eq!(Requeued { epochs_done: 2 }.epochs_done(), Some(2));
        assert_eq!(Queued.epochs_done(), None);
        assert_eq!(Done.epochs_done(), None);
    }

    #[test]
    fn policy_intervals() {
        assert_eq!(
            CheckpointPolicy::Never.interval_epochs(10.0, 1.0, 100.0),
            None
        );
        assert_eq!(
            CheckpointPolicy::every(3).interval_epochs(10.0, 1.0, 100.0),
            Some(3)
        );
        // Young: √(2·1·200) = 20 s period → every 2 epochs of 10 s.
        assert_eq!(
            CheckpointPolicy::Adaptive.interval_epochs(10.0, 1.0, 200.0),
            Some(2)
        );
        // Hostile market → checkpoint every epoch (floor at 1).
        assert_eq!(
            CheckpointPolicy::Adaptive.interval_epochs(10.0, 0.1, 1.0),
            Some(1)
        );
        // Benign market → long intervals.
        let k = CheckpointPolicy::Adaptive
            .interval_epochs(10.0, 1.0, 1e6)
            .unwrap();
        assert!(k > 100, "benign market should checkpoint rarely, got {k}");
        assert_eq!(CheckpointPolicy::every(4).name(), "every4");
        assert_eq!(CheckpointPolicy::Adaptive.name(), "adaptive");
    }

    #[test]
    #[should_panic(expected = "interval must be >= 1")]
    fn zero_interval_rejected() {
        CheckpointPolicy::every(0);
    }

    #[test]
    fn restore_must_win_on_both_time_and_dollars() {
        use lml_sim::Cost;
        let rate = 10.0 / 3_600.0 * 0.0464; // 10 t2.medium workers
                                            // Fast and cheap: a 1 s restore vs 60 s of redone epochs.
        assert!(restore_beats_redo(
            SimTime::secs(1.0),
            Cost::usd(4e-7),
            SimTime::secs(60.0),
            rate
        ));
        // THE regression: time-cheap but dollar-expensive — a restore
        // whose read bill exceeds the instance-seconds of redoing cheap
        // epochs must be declined, however fast it is.
        assert!(!restore_beats_redo(
            SimTime::secs(1.0),
            Cost::usd(0.05),
            SimTime::secs(60.0),
            rate
        ));
        // Time-expensive restores were always declined.
        assert!(!restore_beats_redo(
            SimTime::secs(120.0),
            Cost::ZERO,
            SimTime::secs(60.0),
            rate
        ));
        // Ties go to redoing (nothing to buy, nothing billed).
        assert!(!restore_beats_redo(
            SimTime::secs(60.0),
            Cost::ZERO,
            SimTime::secs(60.0),
            rate
        ));
        // A free substrate (rate 0) still declines on the read bill alone.
        assert!(!restore_beats_redo(
            SimTime::secs(1.0),
            Cost::usd(1e-9),
            SimTime::secs(60.0),
            0.0
        ));
    }

    fn plan(start: u32, total: u32, k: Option<u32>) -> AttemptPlan {
        AttemptPlan {
            start_epoch: start,
            total_epochs: total,
            epoch_secs: 10.0,
            interval: k,
            write_secs: 1.0,
        }
    }

    #[test]
    fn attempt_plan_schedules_remaining_epochs_only() {
        assert_eq!(plan(0, 6, None).run_secs(), 60.0);
        assert_eq!(plan(4, 6, None).run_secs(), 20.0);
        // Checkpoints at global epochs 2 and 4 (never at the final epoch).
        assert_eq!(plan(0, 6, Some(2)).writes_on_success(), 2);
        assert_eq!(plan(2, 6, Some(2)).writes_on_success(), 1);
        assert_eq!(plan(0, 6, Some(1)).writes_on_success(), 5);
        assert_eq!(plan(0, 6, None).writes_on_success(), 0);
    }

    #[test]
    fn preemption_without_checkpoints_loses_everything() {
        let o = preempt_outcome(&plan(0, 6, None), 35.0);
        assert_eq!(o.durable_epochs, 0);
        assert_eq!(o.completed_epochs, 3);
        assert_eq!(o.writes_started, 0);
        assert_eq!(o.lost_work, SimTime::secs(35.0));
    }

    #[test]
    fn preemption_rolls_back_to_last_durable_checkpoint() {
        // k=2, epochs 10 s, write 1 s: ckpt of epoch 2 initiated at t=20,
        // durable at t=21; ckpt of epoch 4 initiated at t=40, durable 41.
        let p = plan(0, 6, Some(2));
        let o = preempt_outcome(&p, 35.0);
        assert_eq!(o.durable_epochs, 2);
        assert_eq!(o.completed_epochs, 3);
        assert_eq!(o.writes_started, 1);
        assert_eq!(o.writes_interrupted, 0);
        assert_eq!(o.lost_work, SimTime::secs(15.0), "epoch 3 + half of 4");
        // Strike at t=40.5: epoch 4's write is in flight — billed, useless.
        let o = preempt_outcome(&p, 40.5);
        assert_eq!(o.durable_epochs, 2);
        assert_eq!(o.writes_started, 2);
        assert_eq!(o.writes_interrupted, 1, "partial write billed not usable");
        assert!((o.lost_work.as_secs() - 20.5).abs() < 1e-9);
        // A moment later the write lands: only the partial epoch is lost.
        let o = preempt_outcome(&p, 41.5);
        assert_eq!(o.durable_epochs, 4);
        assert!((o.lost_work.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn resumed_attempt_counts_global_epochs() {
        // Resume from 2 with k=2: next checkpoint at global epoch 4, which
        // is 2 local epochs (20 s) into the run, durable at 21 s.
        let p = plan(2, 6, Some(2));
        let o = preempt_outcome(&p, 25.0);
        assert_eq!(o.durable_epochs, 4);
        assert_eq!(o.completed_epochs, 4);
        assert!((o.lost_work.as_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn boot_phase_preemption_loses_nothing() {
        let o = preempt_outcome(&plan(0, 6, Some(1)), 0.0);
        assert_eq!(o.durable_epochs, 0);
        assert_eq!(o.lost_work, SimTime::ZERO);
        assert_eq!(o.writes_started, 0);
    }

    /// The structural recovery invariant: at any strike time, a finer
    /// checkpoint interval (k dividing k') never has less durable progress
    /// and never loses more work.
    #[test]
    fn finer_checkpoints_never_lose_more() {
        for strike in [5.0, 15.0, 20.5, 21.5, 33.0, 41.0, 55.0] {
            let chain = [Some(1), Some(2), Some(4), None];
            let outcomes: Vec<_> = chain
                .iter()
                .map(|&k| preempt_outcome(&plan(0, 8, k), strike))
                .collect();
            for w in outcomes.windows(2) {
                assert!(
                    w[0].durable_epochs >= w[1].durable_epochs,
                    "strike {strike}: durable must not shrink with finer k"
                );
                assert!(
                    w[0].lost_work <= w[1].lost_work,
                    "strike {strike}: finer checkpoints must not lose more"
                );
            }
        }
    }
}
