//! The tenant job zoo: what a multi-tenant training platform is asked to run.
//!
//! Each [`JobClass`] names one (model, dataset) pair from the repository's
//! zoo — the same pairs as the paper's Table 4 — together with the
//! paper-scale analytical profile ([`AnalyticParams`]) the fleet simulator
//! prices it with. Epoch counts are calibrated defaults; the cost-aware
//! scheduler can re-estimate them with the §5.3 sampling estimator.

use lml_analytic::model::{faas_time, AnalyticCase, AnalyticParams, Scaling};
use lml_data::generators::DatasetId;
use lml_models::zoo::DeepProfile;
use lml_models::ModelId;
use lml_optim::Algorithm;
use lml_sim::SimTime;

/// A job class in the fleet workload: one Table 4 (model, dataset) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobClass {
    /// Logistic regression on Higgs (8 GB, tiny 224 B model).
    LrHiggs,
    /// Linear SVM on RCV1 (1.2 GB, sparse 378 KB model).
    SvmRcv1,
    /// K-means (k=10) on Higgs (EM, one exchange per epoch).
    KmHiggs,
    /// Logistic regression on YFCC100M (65.5 GB, 32 KB model, 100 workers).
    LrYfcc,
    /// MobileNet on Cifar10 (GA-SGD, 12 MB messages, 422 rounds/epoch).
    MnCifar,
    /// ResNet50 on Cifar10 (GA-SGD, 89 MB messages, communication-bound).
    RnCifar,
}

impl JobClass {
    pub const ALL: [JobClass; 6] = [
        JobClass::LrHiggs,
        JobClass::SvmRcv1,
        JobClass::KmHiggs,
        JobClass::LrYfcc,
        JobClass::MnCifar,
        JobClass::RnCifar,
    ];

    pub fn name(self) -> &'static str {
        match self {
            JobClass::LrHiggs => "lr-higgs",
            JobClass::SvmRcv1 => "svm-rcv1",
            JobClass::KmHiggs => "km-higgs",
            JobClass::LrYfcc => "lr-yfcc",
            JobClass::MnCifar => "mn-cifar",
            JobClass::RnCifar => "rn-cifar",
        }
    }

    /// Inverse of [`JobClass::name`], used by the trace text format.
    pub fn parse(s: &str) -> Option<JobClass> {
        JobClass::ALL.into_iter().find(|c| c.name() == s)
    }

    pub fn dataset(self) -> DatasetId {
        match self {
            JobClass::LrHiggs | JobClass::KmHiggs => DatasetId::Higgs,
            JobClass::SvmRcv1 => DatasetId::Rcv1,
            JobClass::LrYfcc => DatasetId::Yfcc100m,
            JobClass::MnCifar | JobClass::RnCifar => DatasetId::Cifar10,
        }
    }

    pub fn model(self) -> ModelId {
        match self {
            JobClass::LrHiggs | JobClass::LrYfcc => ModelId::Lr { l2: 0.0 },
            JobClass::SvmRcv1 => ModelId::Svm { l2: 0.0 },
            JobClass::KmHiggs => ModelId::KMeans { k: 10 },
            JobClass::MnCifar => ModelId::MobileNet,
            JobClass::RnCifar => ModelId::ResNet50,
        }
    }

    /// Table 4 worker counts (YFCC needs 100 workers to fit Lambda memory).
    pub fn default_workers(self) -> usize {
        match self {
            JobClass::SvmRcv1 => 5,
            JobClass::LrYfcc => 100,
            _ => 10,
        }
    }

    /// Training algorithm used when the sampling estimator re-calibrates
    /// the epoch count (ADMM for convex models, EM for k-means, GA-SGD for
    /// deep models — the paper's best-per-class choices).
    pub fn algorithm(self) -> Algorithm {
        match self {
            JobClass::KmHiggs => Algorithm::Em,
            JobClass::MnCifar | JobClass::RnCifar => Algorithm::GaSgd { batch: 128 },
            _ => Algorithm::Admm {
                rho: 0.1,
                local_scans: 10,
                batch: 500,
            },
        }
    }

    /// Tuned learning rate for the estimator run.
    pub fn lr(self) -> f64 {
        match self {
            JobClass::LrHiggs => 0.5,
            JobClass::SvmRcv1 => 1.0,
            JobClass::LrYfcc => 0.1,
            JobClass::MnCifar => 0.15,
            JobClass::RnCifar => 0.1,
            JobClass::KmHiggs => 0.0,
        }
    }

    /// Convergence threshold for the estimator run (calibrated to the
    /// synthetic generators, as in the bench registry).
    pub fn threshold(self) -> f64 {
        match self {
            JobClass::LrHiggs => 0.645,
            JobClass::SvmRcv1 => 0.22,
            JobClass::KmHiggs => 25.5,
            JobClass::LrYfcc => 0.12,
            JobClass::MnCifar => 0.20,
            JobClass::RnCifar => 0.40,
        }
    }

    /// Default epochs-to-threshold (`R` in the §5.3 model). These are the
    /// calibrated single-job numbers; [`crate::scheduler::CostAware`] can
    /// overwrite them per class with a live estimator run.
    pub fn default_epochs(self) -> f64 {
        match self {
            JobClass::LrHiggs => 6.0,
            JobClass::SvmRcv1 => 8.0,
            JobClass::KmHiggs => 10.0,
            JobClass::LrYfcc => 5.0,
            JobClass::MnCifar => 15.0,
            JobClass::RnCifar => 15.0,
        }
    }

    /// Whole epochs the lifecycle machine tracks for this class: `R`
    /// rounded up to a whole number of epoch-granular checkpoints.
    pub fn epoch_count(self) -> u32 {
        (self.default_epochs().ceil() as u32).max(1)
    }

    /// Nominal single-job FaaS runtime (S3 channel, default workers,
    /// startup excluded) — the yardstick deadlines are expressed against:
    /// `deadline = submit + slack × nominal_runtime`.
    pub fn nominal_runtime(self) -> SimTime {
        let w = self.default_workers();
        faas_time(
            &self.profile(),
            &AnalyticCase::faas_s3(),
            Scaling::Perfect,
            w,
        ) - SimTime::secs(lml_analytic::constants::t_f().eval(w as f64))
    }

    /// Paper-scale analytical profile of one job of this class.
    pub fn profile(self) -> AnalyticParams {
        let spec_bytes = match self.dataset() {
            DatasetId::Higgs => 8e9,
            DatasetId::Rcv1 => 1.2e9,
            DatasetId::Yfcc100m => 65.5e9,
            DatasetId::Cifar10 => 220e6,
            DatasetId::Criteo => 30e9,
        };
        let (model_bytes, rounds_per_epoch, compute_per_epoch) = match self {
            // 28 × f64 weights; ADMM exchanges once per 10 local scans.
            JobClass::LrHiggs => (224.0, 0.1, 70.0),
            // 47,236 × f64 sparse model; small dataset, cheap epochs.
            JobClass::SvmRcv1 => (378e3, 0.1, 9.0),
            // k·(d+1) sufficient statistics, one EM exchange per epoch.
            JobClass::KmHiggs => (2_320.0, 1.0, 210.0),
            // 4096 × f64 model over the 65.5 GB photo features.
            JobClass::LrYfcc => (32_768.0, 0.1, 520.0),
            // Paper payloads; 60 K images / 128-batch ≈ 422 rounds/epoch.
            JobClass::MnCifar => (DeepProfile::MOBILENET.wire_bytes.as_f64(), 422.0, 1_700.0),
            // 60 K / 32 ≈ 1 875 rounds/epoch of 89 MB messages.
            JobClass::RnCifar => (DeepProfile::RESNET50.wire_bytes.as_f64(), 1_875.0, 12_000.0),
        };
        AnalyticParams {
            dataset_bytes: spec_bytes,
            model_bytes,
            epochs: self.default_epochs(),
            rounds_per_epoch,
            compute_per_epoch,
        }
    }
}

/// Identity of the tenant submitting a job. Tenants are dense small
/// integers; the fair-share scheduler assigns each a weight (default 1).
pub type TenantId = u32;

/// One submitted training job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRequest {
    /// Stable id: index in submission order.
    pub id: u64,
    pub class: JobClass,
    /// Submission (arrival) time.
    pub submit: SimTime,
    /// Degree of parallelism requested.
    pub workers: usize,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Optional completion deadline (absolute sim time).
    pub deadline: Option<SimTime>,
}

impl JobRequest {
    /// A deadline-less single-tenant request — the PR-1 constructor shape,
    /// kept for tests and hand-built traces.
    pub fn new(id: u64, class: JobClass, submit: SimTime, workers: usize) -> Self {
        JobRequest {
            id,
            class,
            submit,
            workers,
            tenant: 0,
            deadline: None,
        }
    }

    /// Laxity against the deadline: how many seconds after submission the
    /// job may take and still hit it. `None` when no deadline is set.
    pub fn laxity(&self) -> Option<SimTime> {
        self.deadline.map(|d| d - self.submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for c in JobClass::ALL {
            assert_eq!(JobClass::parse(c.name()), Some(c));
        }
        assert_eq!(JobClass::parse("nope"), None);
    }

    #[test]
    fn profiles_are_sane() {
        for c in JobClass::ALL {
            let p = c.profile();
            assert!(p.dataset_bytes > 0.0, "{c:?}");
            assert!(p.model_bytes > 0.0, "{c:?}");
            assert!(p.epochs > 0.0 && p.rounds_per_epoch > 0.0, "{c:?}");
            assert!(c.default_workers() >= 1);
        }
    }

    #[test]
    fn deep_classes_carry_paper_payloads() {
        assert_eq!(JobClass::MnCifar.profile().model_bytes, 12e6);
        assert_eq!(JobClass::RnCifar.profile().model_bytes, 89e6);
    }

    #[test]
    fn zoo_links_back_to_model_and_dataset_ids() {
        assert_eq!(JobClass::LrHiggs.dataset(), DatasetId::Higgs);
        assert_eq!(JobClass::MnCifar.model(), ModelId::MobileNet);
    }

    #[test]
    fn epoch_counts_round_up_and_stay_positive() {
        for c in JobClass::ALL {
            assert!(c.epoch_count() >= 1, "{c:?}");
            assert!(c.epoch_count() as f64 >= c.default_epochs(), "{c:?}");
        }
        assert_eq!(JobClass::LrHiggs.epoch_count(), 6);
        assert_eq!(JobClass::RnCifar.epoch_count(), 15);
    }

    #[test]
    fn nominal_runtimes_order_convex_below_deep() {
        for c in JobClass::ALL {
            assert!(c.nominal_runtime().as_secs() > 0.0, "{c:?}");
        }
        assert!(JobClass::RnCifar.nominal_runtime() > JobClass::LrHiggs.nominal_runtime());
    }

    #[test]
    fn laxity_measures_submit_to_deadline() {
        let mut j = JobRequest::new(0, JobClass::LrHiggs, SimTime::secs(10.0), 10);
        assert_eq!(j.tenant, 0);
        assert_eq!(j.laxity(), None);
        j.deadline = Some(SimTime::secs(70.0));
        assert_eq!(j.laxity(), Some(SimTime::secs(60.0)));
    }
}
