//! Determinism lints over the lexed token stream.
//!
//! Every lint here guards a contract the sweep artifacts depend on (see
//! ARCHITECTURE.md "Static analysis"): byte-stable JSON requires that no
//! iteration order, wall-clock read, or float-equality branch can differ
//! between two same-seed runs. The lints are token-level by design — they
//! run in milliseconds, have no type information, and err on the side of
//! flagging; an inline `// lml-analyze: allow(<lint>)` waiver (same line or
//! the line above) records the justified exceptions in the source itself.

use crate::lexer::{Comment, Lexed, Token, TokenKind};
use std::collections::BTreeMap;

/// The lint names, as used in configs, waivers, and findings.
pub const HASH_COLLECTIONS: &str = "hash-collections";
pub const WALL_CLOCK: &str = "wall-clock";
pub const FLOAT_EQ: &str = "float-eq";
pub const STATIC_MUT: &str = "static-mut";

/// One reported problem. `gating` findings fail `--check`; the rest are
/// advisory.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: String,
    pub msg: String,
    pub gating: bool,
}

impl Finding {
    pub fn render(&self) -> String {
        let sev = if self.gating { "error" } else { "note" };
        format!(
            "{sev}[{lint}] {file}:{line}: {msg}",
            lint = self.lint,
            file = self.file,
            line = self.line,
            msg = self.msg
        )
    }
}

/// Which determinism lints run on a given file.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOpts {
    pub hash_collections: bool,
    pub wall_clock: bool,
    pub float_eq: bool,
    pub static_mut: bool,
}

/// Inline waivers parsed from comments: lint name → lines that carry a
/// waiver comment. A waiver covers its own line and the line below it, so
/// both trailing and preceding-line placements work:
///
/// ```text
/// // lml-analyze: allow(wall-clock)
/// let t = Instant::now();            // covered (waiver on line above)
/// let u = Instant::now(); // lml-analyze: allow(wall-clock)  — covered
/// ```
///
/// `lml-analyze: allow-file(<lint>)` anywhere in the file waives the lint
/// for the whole file (used sparingly; prefer line waivers).
#[derive(Debug, Default)]
pub struct Waivers {
    lines: BTreeMap<String, Vec<u32>>,
    file_wide: Vec<String>,
}

impl Waivers {
    pub fn parse(comments: &[Comment]) -> Waivers {
        let mut w = Waivers::default();
        for c in comments {
            collect_waivers(&c.text, "lml-analyze: allow-file(", |name| {
                w.file_wide.push(name.to_string());
            });
            collect_waivers(&c.text, "lml-analyze: allow(", |name| {
                w.lines.entry(name.to_string()).or_default().push(c.line);
            });
        }
        w
    }

    pub fn covers(&self, lint: &str, line: u32) -> bool {
        if self.file_wide.iter().any(|l| l == lint) {
            return true;
        }
        self.lines
            .get(lint)
            .is_some_and(|ls| ls.iter().any(|&l| l == line || l + 1 == line))
    }
}

fn collect_waivers(text: &str, marker: &str, mut f: impl FnMut(&str)) {
    let mut rest = text;
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        if let Some(end) = rest.find(')') {
            for name in rest[..end].split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    f(name);
                }
            }
            rest = &rest[end..];
        }
    }
}

/// Mark the tokens that live inside `#[test]` / `#[cfg(test)]`-gated code.
///
/// Test code may legitimately compare floats exactly (the determinism tests
/// *assert* bit-equality) and probe wall clocks; it also never runs inside a
/// simulation, so the determinism lints skip it. The detection is
/// brace-tracking over the token stream: an attribute whose argument list
/// mentions `test` (and not `not`) arms the scanner, and the next
/// brace-delimited item body — or attribute-to-semicolon span — is marked.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    // Depth of the innermost test region's opening brace, if any.
    let mut test_at: Option<i32> = None;
    let mut armed = false;
    // Bracket/paren depth while armed, so `;` inside `[u8; 4]` or a
    // where-clause does not disarm early.
    let mut armed_nest: i32 = 0;
    let mut i = 0;
    while i < tokens.len() {
        let in_test = test_at.is_some();
        match &tokens[i].kind {
            TokenKind::Punct('#')
                if matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('['))
                ) =>
            {
                // Scan the attribute to its matching `]`.
                let mut j = i + 1;
                let mut bdepth = 0i32;
                let mut has_test = false;
                let mut has_not = false;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('[') => bdepth += 1,
                        TokenKind::Punct(']') => {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident(s) if s == "test" => has_test = true,
                        TokenKind::Ident(s) if s == "not" => has_not = true,
                        _ => {}
                    }
                    j += 1;
                }
                if has_test && !has_not {
                    armed = true;
                    armed_nest = 0;
                }
                let end = j.min(tokens.len() - 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = in_test || armed;
                }
                i = j + 1;
                continue;
            }
            TokenKind::Punct('{') => {
                depth += 1;
                if armed {
                    if test_at.is_none() {
                        test_at = Some(depth);
                    }
                    armed = false;
                }
            }
            TokenKind::Punct('}') => {
                if test_at == Some(depth) {
                    test_at = None;
                    mask[i] = true;
                    depth -= 1;
                    i += 1;
                    continue;
                }
                depth -= 1;
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') if armed => armed_nest += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') if armed => armed_nest -= 1,
            // `#[cfg(test)] use foo;` — no body follows; disarm at the
            // statement end.
            TokenKind::Punct(';') if armed && armed_nest == 0 => armed = false,
            _ => {}
        }
        mask[i] = test_at.is_some() || armed || (in_test && test_at.is_some());
        i += 1;
    }
    mask
}

/// Run the determinism lints on one lexed file.
///
/// `wall_clock_allowed` suppresses the wall-clock lint for an allowlisted
/// file (the `observe.rs` throughput probe is the one sanctioned clock
/// reader in `lml-fleet` — it feeds self-profiling output, never simulation
/// state).
pub fn check_file(
    file: &str,
    lexed: &Lexed,
    opts: LintOpts,
    wall_clock_allowed: bool,
) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let waivers = Waivers::parse(&lexed.comments);
    let mut out = Vec::new();
    let mut report = |lint: &str, line: u32, msg: String| {
        if !waivers.covers(lint, line) {
            out.push(Finding {
                file: file.to_string(),
                line,
                lint: lint.to_string(),
                msg,
                gating: true,
            });
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue; // test-gated code is exempt from determinism lints
        }
        match &t.kind {
            TokenKind::Ident(s) if opts.hash_collections && (s == "HashMap" || s == "HashSet") => {
                report(
                    HASH_COLLECTIONS,
                    t.line,
                    format!(
                        "`{s}` in a determinism-critical crate: iteration order is \
                         nondeterministic across runs — use `BTreeMap`/`BTreeSet` or the \
                         interned dense tables (`lml_fleet::intern`)"
                    ),
                );
            }
            TokenKind::Ident(s)
                if opts.wall_clock
                    && !wall_clock_allowed
                    && (s == "Instant" || s == "SystemTime") =>
            {
                report(
                    WALL_CLOCK,
                    t.line,
                    format!(
                        "`{s}` outside the allowlisted observer probe: simulation logic must \
                         read virtual `SimTime` only — wall clocks differ across runs"
                    ),
                );
            }
            TokenKind::EqEq | TokenKind::Ne if opts.float_eq => {
                let float_adjacent = |j: Option<&Token>| {
                    matches!(j.map(|t| &t.kind), Some(TokenKind::NumLit { float: true }))
                };
                if float_adjacent(i.checked_sub(1).and_then(|p| tokens.get(p)))
                    || float_adjacent(tokens.get(i + 1))
                {
                    let op = if t.kind == TokenKind::EqEq {
                        "=="
                    } else {
                        "!="
                    };
                    report(
                        FLOAT_EQ,
                        t.line,
                        format!(
                            "float literal compared with `{op}`: exact float equality is \
                             representation-sensitive — compare against an epsilon or \
                             restructure around an integer key"
                        ),
                    );
                }
            }
            TokenKind::Ident(s) if opts.static_mut && s == "static" => {
                if matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Ident(m)) if m == "mut"
                ) {
                    report(
                        STATIC_MUT,
                        t.line,
                        "`static mut` is unsynchronized global state — use an atomic or a \
                         thread-local"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const ALL: LintOpts = LintOpts {
        hash_collections: true,
        wall_clock: true,
        float_eq: true,
        static_mut: true,
    };

    fn lints_of(src: &str) -> Vec<String> {
        check_file("t.rs", &lex(src), ALL, false)
            .into_iter()
            .map(|f| f.lint)
            .collect()
    }

    #[test]
    fn flags_each_violation_class() {
        assert_eq!(
            lints_of("use std::collections::HashMap;"),
            [HASH_COLLECTIONS]
        );
        assert_eq!(lints_of("let t = Instant::now();"), [WALL_CLOCK]);
        assert_eq!(lints_of("if x == 0.5 {}"), [FLOAT_EQ]);
        assert_eq!(lints_of("static mut X: u8 = 0;"), [STATIC_MUT]);
    }

    #[test]
    fn comments_and_strings_do_not_trip_lints() {
        assert!(lints_of("// HashMap Instant 1.0 == 2.0\nlet x = 1;").is_empty());
        assert!(lints_of(r#"let s = "HashMap and Instant::now()";"#).is_empty());
    }

    #[test]
    fn integer_equality_is_fine() {
        assert!(lints_of("if x == 5 {}").is_empty());
        assert!(lints_of("if name == \"faas\" {}").is_empty());
    }

    #[test]
    fn waiver_on_same_or_previous_line() {
        assert!(lints_of("let t = Instant::now(); // lml-analyze: allow(wall-clock)").is_empty());
        assert!(lints_of("// lml-analyze: allow(wall-clock)\nlet t = Instant::now();").is_empty());
        // Two lines below: no longer covered.
        assert_eq!(
            lints_of("// lml-analyze: allow(wall-clock)\nlet a = 1;\nlet t = Instant::now();"),
            [WALL_CLOCK]
        );
    }

    #[test]
    fn file_wide_waiver() {
        assert!(lints_of(
            "//! lml-analyze: allow-file(hash-collections)\nuse std::collections::HashMap;\n\
             fn f(m: &HashMap<u32, u32>) -> usize { m.len() }"
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    \
                   fn t() { let _ = Instant::now(); assert!(0.5 == 0.5); }\n}\n";
        assert!(lints_of(src).is_empty());
        // …but production code before the test mod is still checked.
        let src2 = format!("let t = Instant::now();\n{src}");
        assert_eq!(lints_of(&src2), [WALL_CLOCK]);
    }

    #[test]
    fn test_attr_fn_is_exempt_and_cfg_not_test_is_not() {
        let src = "#[test]\nfn t() { let _ = Instant::now(); }\n";
        assert!(lints_of(src).is_empty());
        let src2 = "#[cfg(not(test))]\nfn prod() { let _ = Instant::now(); }\n";
        assert_eq!(lints_of(src2), [WALL_CLOCK]);
    }

    #[test]
    fn static_lifetime_reference_is_not_static_mut() {
        assert!(lints_of("fn f(x: &'static mut u8) {}").is_empty());
    }
}
