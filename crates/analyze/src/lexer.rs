//! A lightweight Rust lexer — just enough fidelity for lint-grade analysis.
//!
//! The lints in this crate only need a *token stream* with comments and
//! string contents stripped out: a `HashMap` mentioned in a doc comment or a
//! format string must not trip the determinism lints, and an `unwrap` inside
//! a raw string is not a panic site. Getting that right requires handling
//! the genuinely tricky corners of Rust's lexical grammar:
//!
//! * line and block comments, the latter with **nesting** (`/* /* */ */`);
//! * string literals with escapes, including escaped quotes;
//! * **raw strings** `r"…"` / `r#"…"#` with any number of hashes (and the
//!   `br#"…"#` byte forms), whose bodies may contain `//` and `"` freely;
//! * the `'a` **lifetime** vs `'x'` **char literal** ambiguity (`'a'` is a
//!   char, `<'a>` is a lifetime, `'_'` is a char, `'_` is a lifetime);
//! * raw identifiers (`r#type`) vs raw strings (`r#"…"#`).
//!
//! Comments are preserved out-of-band (with their line numbers) so the
//! driver can honor `// lml-analyze: allow(<lint>)` waivers.

/// One lexed token. Line numbers are 1-based.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers are folded in, sans `r#`).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (the tick and name).
    Lifetime,
    /// A char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// A string literal of any flavor; the payload is the (approximately
    /// unescaped) contents, which the schema extractor reads.
    StrLit(String),
    /// An integer or float literal.
    NumLit { float: bool },
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// Any other single punctuation character.
    Punct(char),
}

/// A comment (line `//…` or block `/*…*/`), kept for waiver parsing.
/// `line` is the line the comment *starts* on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Output of [`lex`]: the token stream plus the stripped comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. The lexer never fails: malformed
/// input (unterminated strings, stray quotes) degrades to a best-effort
/// token stream, which is the right behavior for a linter that must not
/// crash on the code it is judging.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if c == Some('\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let v = self.string_body();
                    self.push(TokenKind::StrLit(v), line);
                }
                '\'' => self.tick(),
                '=' if self.peek(1) == Some('=') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::EqEq, line);
                }
                '!' if self.peek(1) == Some('=') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Ne, line);
                }
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed(),
                other => {
                    self.bump();
                    self.push(TokenKind::Punct(other), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Block comment with nesting, per the Rust reference.
    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A `"…"` body with escapes; the opening quote is at `self.i`.
    /// Returns the approximately-unescaped contents (exact for the simple
    /// escapes that appear in JSON field names; other escapes are kept
    /// verbatim, which is fine for lint purposes).
    fn string_body(&mut self) -> String {
        let mut v = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    match self.bump() {
                        Some('"') => v.push('"'),
                        Some('\\') => v.push('\\'),
                        Some('n') => v.push('\n'),
                        Some('t') => v.push('\t'),
                        Some(other) => {
                            v.push('\\');
                            v.push(other);
                        }
                        None => break,
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                c => {
                    v.push(c);
                    self.bump();
                }
            }
        }
        v
    }

    /// A raw string starting at `r`/`br` with `hashes` hashes already
    /// counted; `self.i` sits on the opening `"`. Body ends at `"` followed
    /// by the same number of hashes — embedded `//`, `"`, and newlines are
    /// all literal.
    fn raw_string_body(&mut self, hashes: usize) -> String {
        let mut v = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
            }
            v.push(c);
            self.bump();
        }
        v
    }

    /// Disambiguate `'` into a char literal or a lifetime.
    fn tick(&mut self) {
        let line = self.line;
        match self.peek(1) {
            // `'\n'`, `'\''` — an escape is always a char literal.
            Some('\\') => {
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char
                             // Consume up to the closing quote (handles `'\u{1F600}'`).
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::CharLit, line);
            }
            // `'a'` is a char, `'a`/`'static`/`'_` are lifetimes: read the
            // identifier run and check for a closing quote.
            Some(c) if is_ident_continue(c) => {
                let mut j = 1;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some('\'') {
                    for _ in 0..=j {
                        self.bump();
                    }
                    self.push(TokenKind::CharLit, line);
                } else {
                    for _ in 0..j {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, line);
                }
            }
            // `'('`, `' '`, `'"'` — a non-identifier char literal.
            Some(_) => {
                self.bump(); // '
                self.bump(); // the char
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::CharLit, line);
            }
            None => {
                self.bump();
                self.push(TokenKind::Punct('\''), line);
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        // A digit right after `.` is a tuple index (`x.0`, `x.0.1`): lex it
        // as a bare integer so `x.0.1` never fabricates a float literal.
        let after_dot = matches!(
            self.out.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Punct('.'))
        );
        let radix_prefix =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b'));
        let mut float = false;
        if radix_prefix {
            self.bump();
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            if !after_dot {
                if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    self.bump();
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
                // `1e9`, `1.5e-3`
                if matches!(self.peek(0), Some('e') | Some('E'))
                    && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                        || (matches!(self.peek(1), Some('+') | Some('-'))
                            && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
                {
                    float = true;
                    self.bump();
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-' || c == '_')
                    {
                        self.bump();
                    }
                }
                // Type suffix: `1f64` is a float, `1u32` is not.
                let mut suffix = String::new();
                while self.peek(0).is_some_and(is_ident_continue) {
                    suffix.push(self.peek(0).expect("peeked above"));
                    self.bump();
                }
                if suffix == "f32" || suffix == "f64" {
                    float = true;
                }
            }
        }
        self.push(TokenKind::NumLit { float }, line);
    }

    /// An identifier, possibly a raw-string/byte-string/raw-ident prefix.
    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let c = self.peek(0).expect("caller checked");
        // r"…", r#"…"#, r#ident
        if c == 'r' {
            if self.peek(1) == Some('"') {
                self.bump();
                let v = self.string_raw(0);
                self.push(TokenKind::StrLit(v), line);
                return;
            }
            if self.peek(1) == Some('#') {
                let mut hashes = 0;
                while self.peek(1 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(1 + hashes) == Some('"') {
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    let v = self.raw_string_body(hashes);
                    self.push(TokenKind::StrLit(v), line);
                    return;
                }
                if hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                    self.bump(); // r
                    self.bump(); // #
                    let name = self.ident_run();
                    self.push(TokenKind::Ident(name), line);
                    return;
                }
            }
        }
        // b"…", b'…', br"…", br#"…"#
        if c == 'b' {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    let v = self.string_body();
                    self.push(TokenKind::StrLit(v), line);
                    return;
                }
                Some('\'') => {
                    self.bump();
                    self.tick();
                    return;
                }
                Some('r') if matches!(self.peek(2), Some('"') | Some('#')) => {
                    let mut hashes = 0;
                    while self.peek(2 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(2 + hashes) == Some('"') {
                        self.bump(); // b
                        self.bump(); // r
                        for _ in 0..hashes {
                            self.bump();
                        }
                        let v = self.raw_string_body(hashes);
                        self.push(TokenKind::StrLit(v), line);
                        return;
                    }
                }
                _ => {}
            }
        }
        let name = self.ident_run();
        self.push(TokenKind::Ident(name), line);
    }

    /// `r"…"` with zero hashes; `self.i` sits on the `"`.
    fn string_raw(&mut self, hashes: usize) -> String {
        self.raw_string_body(hashes)
    }

    fn ident_run(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let l = lex("a /* x /* HashMap */ still comment */ b");
        assert_eq!(
            idents("a /* x /* HashMap */ still comment */ b"),
            ["a", "b"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        // The `"#` inside must not close the r##-string.
        let src = r####"let x = r##"quote "# and // HashMap"##; y"####;
        assert_eq!(idents(src), ["let", "x", "y"]);
        let l = lex(src);
        let s = l
            .tokens
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::StrLit(v) => Some(v.clone()),
                _ => None,
            })
            .expect("one string literal");
        assert!(s.contains("HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn static_lifetime_is_not_the_static_keyword() {
        let l = lex("fn f(x: &'static str) {} static mut Y: u8 = 0;");
        let statics = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident("static".into()))
            .count();
        assert_eq!(statics, 1, "only the keyword, not the lifetime");
    }

    #[test]
    fn string_embedded_line_comment_is_not_a_comment() {
        let l = lex(r#"let url = "https://example.com"; // real comment"#);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("real comment"));
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::StrLit(s) if s.contains("//"))));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let l = lex(r#"let s = "a\"b // not a comment\"c"; d"#);
        assert_eq!(l.comments.len(), 0);
        assert!(matches!(
            &l.tokens.iter().find(|t| matches!(t.kind, TokenKind::StrLit(_))).expect("str").kind,
            TokenKind::StrLit(s) if s == "a\"b // not a comment\"c"
        ));
    }

    #[test]
    fn raw_identifiers_fold_to_plain_idents() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn tuple_indexing_is_not_a_float() {
        let l = lex("x.0.1 == y");
        let floats = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::NumLit { float: true }))
            .count();
        assert_eq!(floats, 0);
    }

    #[test]
    fn float_literals_and_suffixes() {
        let one = |src: &str| {
            let l = lex(src);
            assert_eq!(l.tokens.len(), 1, "{src}");
            matches!(l.tokens[0].kind, TokenKind::NumLit { float: true })
        };
        assert!(one("1.5"));
        assert!(one("1e9"));
        assert!(one("2.5e-3"));
        assert!(one("1f64"));
        assert!(!one("1u32"));
        assert!(!one("0xFF"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 1;";
        let l = lex(src);
        let b_line = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .expect("b")
            .line;
        assert_eq!(b_line, 5);
    }
}
