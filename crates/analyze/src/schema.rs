//! Schema-lock checker: the additive-only JSON rule, made mechanical.
//!
//! The sweep artifacts (`lml-fleet/metrics/v1`, `lml-fleet/trace/v1`) are
//! consumed by run-over-run diffs and committed baselines, so their schemas
//! are **additive-only** (docs/SCHEMAS.md): new fields may appear, existing
//! fields may never be removed or renamed. Until now that rule lived in
//! prose. This pass extracts every field name the hand-rolled emitters
//! actually write — the `JsonObject::{str,u64,f64,raw}("field", …)` calls
//! in `metrics.rs` / `observe.rs`, plus key-taking helpers like
//! `opt_f64(o, "field", …)` — and holds each committed `schemas/<name>.lock`
//! to be a **subset** of the extracted set:
//!
//! * a field in the lock but not in the source ⇒ gating error (something
//!   was removed or renamed);
//! * a field in the source but not in the lock ⇒ advisory (additive is
//!   legal; `--write-baseline` records it);
//! * a field in the source but not mentioned in docs/SCHEMAS.md ⇒ advisory
//!   drift report (the docs lag the code).

use crate::lexer::{Lexed, TokenKind};
use crate::lints::{test_mask, Finding};
use std::collections::BTreeSet;

/// One emitter file to extract fields from.
#[derive(Debug, Clone)]
pub struct Emitter {
    /// Lock name: `schemas/<name>.lock`.
    pub name: &'static str,
    /// Workspace-relative source path.
    pub file: &'static str,
    /// Free functions whose first string-literal argument is a field key.
    pub key_helpers: &'static [&'static str],
}

/// Extract the set of JSON field names emitted by one lexed file.
/// Test-gated code is skipped — fixture objects in `mod tests` are not part
/// of the schema.
pub fn extract_fields(lexed: &Lexed, key_helpers: &[&str]) -> BTreeSet<String> {
    const BUILDER_METHODS: [&str; 4] = ["str", "u64", "f64", "raw"];
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let mut fields = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        let after_dot = matches!(
            i.checked_sub(1)
                .and_then(|p| tokens.get(p))
                .map(|t| &t.kind),
            Some(TokenKind::Punct('.'))
        );
        let builder = after_dot && BUILDER_METHODS.contains(&name.as_str());
        let helper = !after_dot && key_helpers.contains(&name.as_str());
        if !builder && !helper {
            continue;
        }
        if !matches!(
            tokens.get(i + 1).map(|t| &t.kind),
            Some(TokenKind::Punct('('))
        ) {
            continue;
        }
        if builder {
            // `.str("field", …)` — the key must be the literal first arg.
            if let Some(TokenKind::StrLit(s)) = tokens.get(i + 2).map(|t| &t.kind) {
                fields.insert(s.clone());
            }
        } else {
            // `opt_f64(o, "field", …)` — first string literal at call depth.
            let mut depth = 0i32;
            for tok in tokens.iter().skip(i + 1) {
                match &tok.kind {
                    TokenKind::Punct('(') => depth += 1,
                    TokenKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::StrLit(s) if depth == 1 => {
                        fields.insert(s.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Does the documentation mention `field` as a field name? Accepts the
/// notations docs/SCHEMAS.md actually uses: backticked (`` `field` ``),
/// quoted, or as a member of a `{a, b, c}` brace-group listing — i.e. the
/// name must open after a delimiter (`` ` `` `"` `{` `(` space/newline)
/// and close on a delimiter that ends a field mention (`` ` `` `"` `}`
/// `,` `:`), so `_s` inside `latency_s` or a prose word mid-sentence does
/// not count.
fn mentioned(docs: &str, field: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = docs[start..].find(field) {
        let at = start + pos;
        let prev = docs[..at].chars().next_back();
        let next = docs[at + field.len()..].chars().next();
        let prev_ok = matches!(prev, None | Some('`' | '"' | '{' | '(' | ' ' | '\n'));
        let next_ok = matches!(next, None | Some('`' | '"' | '}' | ',' | ':'));
        if prev_ok && next_ok {
            return true;
        }
        start = at + field.len();
    }
    false
}

/// Parse a `.lock` file: one field per line, `#` comments and blanks
/// ignored.
pub fn parse_lock(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Render a `.lock` file for the extracted field set.
pub fn render_lock(name: &str, file: &str, fields: &BTreeSet<String>) -> String {
    let mut out = format!(
        "# Schema lock `{name}` (generated by `lml-analyze --write-baseline`).\n\
         # Fields emitted by {file}. The additive-only contract is machine-\n\
         # enforced: `lml-analyze --check` fails if any field listed here stops\n\
         # being emitted. New fields are legal; regenerate to record them.\n"
    );
    for f in fields {
        out.push_str(f);
        out.push('\n');
    }
    out
}

/// Check one emitter against its lock and the human-readable schema docs.
pub fn check(
    emitter: &Emitter,
    extracted: &BTreeSet<String>,
    lock: Option<&str>,
    docs: Option<&str>,
) -> Vec<Finding> {
    let lock_path = format!("schemas/{}.lock", emitter.name);
    let mut out = Vec::new();
    let Some(lock) = lock else {
        out.push(Finding {
            file: lock_path,
            line: 0,
            lint: "schema-lock".into(),
            msg: format!(
                "missing lock for emitter `{}` ({}) — run `lml-analyze --write-baseline`",
                emitter.name, emitter.file
            ),
            gating: true,
        });
        return out;
    };
    let locked = parse_lock(lock);
    for field in &locked {
        if !extracted.contains(field) {
            out.push(Finding {
                file: lock_path.clone(),
                line: 0,
                lint: "schema-lock".into(),
                msg: format!(
                    "locked field `{field}` is no longer emitted by {} — the schema is \
                     additive-only; restore the field (or bump the schema version and \
                     regenerate the lock in review)",
                    emitter.file
                ),
                gating: true,
            });
        }
    }
    for field in extracted {
        if !locked.contains(field) {
            out.push(Finding {
                file: lock_path.clone(),
                line: 0,
                lint: "schema-lock".into(),
                msg: format!(
                    "new field `{field}` emitted by {} is not recorded — run \
                     `lml-analyze --write-baseline` (additive, non-breaking)",
                    emitter.file
                ),
                gating: false,
            });
        }
        if let Some(docs) = docs {
            if !mentioned(docs, field) {
                out.push(Finding {
                    file: "docs/SCHEMAS.md".into(),
                    line: 0,
                    lint: "schema-docs-drift".into(),
                    msg: format!(
                        "field `{field}` (emitted by {}) is not documented in \
                         docs/SCHEMAS.md",
                        emitter.file
                    ),
                    gating: false,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const EMITTER: Emitter = Emitter {
        name: "t",
        file: "t.rs",
        key_helpers: &["opt_f64"],
    };

    fn fields_of(src: &str) -> BTreeSet<String> {
        extract_fields(&lex(src), EMITTER.key_helpers)
    }

    #[test]
    fn extracts_builder_and_helper_keys() {
        let src = r#"
            fn to_json(&self) -> String {
                let o = JsonObject::new()
                    .str("schema", "v1")
                    .u64("jobs", 3)
                    .f64("cost_usd", self.cost)
                    .raw("nested", &inner);
                opt_f64(o, "laxity_s", self.laxity).finish()
            }
        "#;
        let got = fields_of(src);
        let want: BTreeSet<String> = ["schema", "jobs", "cost_usd", "nested", "laxity_s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn non_literal_keys_and_test_fixtures_are_skipped() {
        let src = r#"
            fn f(o: JsonObject, k: &str) -> JsonObject { o.f64(k, 1.0) }
            #[cfg(test)]
            mod tests {
                fn t() { JsonObject::new().str("fixture_only", "x"); }
            }
        "#;
        assert!(fields_of(src).is_empty());
    }

    #[test]
    fn removed_field_gates_new_field_advises() {
        let extracted = fields_of(r#"fn f() { o.str("kept", a).str("added", b); }"#);
        let lock = "# hdr\nkept\nremoved\n";
        let fs = check(&EMITTER, &extracted, Some(lock), None);
        let gating: Vec<_> = fs.iter().filter(|f| f.gating).collect();
        assert_eq!(gating.len(), 1);
        assert!(gating[0].msg.contains("`removed`"));
        let advisory: Vec<_> = fs.iter().filter(|f| !f.gating).collect();
        assert_eq!(advisory.len(), 1);
        assert!(advisory[0].msg.contains("`added`"));
    }

    #[test]
    fn missing_lock_gates() {
        let fs = check(&EMITTER, &BTreeSet::new(), None, None);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].gating);
    }

    #[test]
    fn docs_drift_is_advisory() {
        let extracted = fields_of(r#"fn f() { o.u64("documented", a).u64("mystery", b); }"#);
        let lock = "documented\nmystery\n";
        let docs = "The `documented` field is documented.";
        let fs = check(&EMITTER, &extracted, Some(lock), Some(docs));
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].gating);
        assert!(fs[0].msg.contains("`mystery`"));
    }
}
