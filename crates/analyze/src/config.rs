//! Per-crate lint configuration.
//!
//! The configuration is code, not a config file: the set of
//! determinism-critical crates changes at the same cadence as the crates
//! themselves, and a table here shows up in review next to the code it
//! governs.

use crate::lints::LintOpts;
use crate::schema::Emitter;

/// Lint options for a workspace crate, keyed by package name
/// (`lml-<dir>` for `crates/<dir>`, `lambdaml` for the root `src/`).
pub fn crate_opts(package: &str) -> LintOpts {
    LintOpts {
        // Only the simulation crates carry the byte-stable-artifact
        // contract; a HashMap in the data-prep or linalg layers cannot leak
        // iteration order into sweep JSON.
        hash_collections: matches!(package, "lml-sim" | "lml-fleet"),
        // Wall clocks are banned everywhere except the bench harness,
        // whose whole job is measuring wall time.
        wall_clock: package != "lml-bench",
        float_eq: true,
        static_mut: true,
    }
}

/// Files allowed to read wall clocks despite their crate's ban.
/// `observe.rs` hosts the `ThroughputProbe` self-profiler: its `Instant`
/// reads feed the probe's own report, never simulation state — the
/// separation the probe's docs promise is exactly what this allowlist
/// pins down.
pub const WALL_CLOCK_ALLOWED_FILES: [&str; 1] = ["crates/fleet/src/observe.rs"];

/// The hand-rolled JSON emitters whose field sets are schema-locked.
/// `fleet/src/json.rs` is the generic writer — it emits no fields of its
/// own, so the locks cover the two files that call it with literal keys.
pub const EMITTERS: [Emitter; 2] = [
    Emitter {
        name: "metrics",
        file: "crates/fleet/src/metrics.rs",
        key_helpers: &[],
    },
    Emitter {
        name: "observe",
        file: "crates/fleet/src/observe.rs",
        key_helpers: &["opt_f64"],
    },
];

/// Workspace-relative path of the panic-surface ratchet baseline.
pub const PANIC_BUDGET_PATH: &str = "crates/analyze/panic_budget.toml";

/// Workspace-relative directory holding the `<name>.lock` schema locks.
pub const SCHEMAS_DIR: &str = "schemas";

/// Workspace-relative path of the human-readable schema documentation the
/// drift report checks against.
pub const SCHEMA_DOCS_PATH: &str = "docs/SCHEMAS.md";
