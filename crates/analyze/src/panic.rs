//! Panic-surface audit: a ratchet over `unwrap` / `expect` / `panic!` /
//! `[idx]` indexing.
//!
//! Every one of these is a crash waiting on an invariant. The audit does
//! not ban them — a simulator full of checked arithmetic would be
//! unreadable — it **inventories** them per crate and holds the counts to a
//! committed baseline (`crates/analyze/panic_budget.toml`) that can only
//! shrink: a PR that adds a panic site fails `--check` until the author
//! consciously raises the budget in review, and a PR that removes one gets
//! a nudge to ratchet the budget down (`--write-baseline`).
//!
//! Counting is token-level over the whole crate (tests included — a flaky
//! test panic costs CI time too) with comments and strings already
//! stripped, so a doc-example `unwrap()` does not count.

use crate::lexer::{Token, TokenKind};
use crate::lints::Finding;
use std::collections::BTreeMap;

/// Panic-site counts for one crate (or one file, before aggregation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    pub unwrap: u32,
    pub expect: u32,
    pub panic: u32,
    pub index: u32,
}

impl PanicCounts {
    pub fn add(&mut self, other: PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.panic += other.panic;
        self.index += other.index;
    }

    fn fields(&self) -> [(&'static str, u32); 4] {
        [
            ("unwrap", self.unwrap),
            ("expect", self.expect),
            ("panic", self.panic),
            ("index", self.index),
        ]
    }
}

/// Count panic sites in one token stream.
///
/// * `unwrap` / `expect`: method position only (preceded by `.`), so a
///   local named `expect` or `unwrap_or_default` never counts.
/// * `panic`: the `panic!` macro.
/// * `index`: a `[` in postfix position (right after an identifier, `)`,
///   or `]`) — `v[i]`, `f()[0]`, `m[k][j]` count; slice types `&[u8]`,
///   array literals `[0; 4]`, attributes `#[…]`, and `vec![…]` do not.
pub fn count(tokens: &[Token]) -> PanicCounts {
    let mut c = PanicCounts::default();
    for (i, t) in tokens.iter().enumerate() {
        let prev = i
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .map(|t| &t.kind);
        let next = tokens.get(i + 1).map(|t| &t.kind);
        match &t.kind {
            TokenKind::Ident(s) if s == "unwrap" || s == "expect" => {
                let method = matches!(prev, Some(TokenKind::Punct('.')))
                    && matches!(next, Some(TokenKind::Punct('(')));
                if method {
                    if s == "unwrap" {
                        c.unwrap += 1;
                    } else {
                        c.expect += 1;
                    }
                }
            }
            TokenKind::Ident(s) if s == "panic" => {
                if matches!(next, Some(TokenKind::Punct('!'))) {
                    c.panic += 1;
                }
            }
            TokenKind::Punct('[') => {
                if matches!(
                    prev,
                    Some(TokenKind::Ident(_))
                        | Some(TokenKind::Punct(')'))
                        | Some(TokenKind::Punct(']'))
                ) {
                    c.index += 1;
                }
            }
            _ => {}
        }
    }
    c
}

/// The committed ratchet baseline: crate name → budgeted counts.
///
/// Stored as a minimal TOML subset (`[section]` headers + `key = int`
/// lines + `#` comments), parsed by hand — this crate takes no
/// dependencies.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Budget {
    pub crates: BTreeMap<String, PanicCounts>,
}

impl Budget {
    pub fn parse(text: &str) -> Result<Budget, String> {
        let mut b = Budget::default();
        let mut section: Option<String> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().trim_matches('"').to_string();
                b.crates.entry(name.clone()).or_default();
                section = Some(name);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("panic_budget.toml:{}: expected `key = value`", n + 1))?;
            let section = section
                .as_ref()
                .ok_or_else(|| format!("panic_budget.toml:{}: entry before any [crate]", n + 1))?;
            let value: u32 = value
                .trim()
                .parse()
                .map_err(|_| format!("panic_budget.toml:{}: not an integer", n + 1))?;
            let entry = b
                .crates
                .get_mut(section)
                .expect("section inserted on header");
            match key.trim() {
                "unwrap" => entry.unwrap = value,
                "expect" => entry.expect = value,
                "panic" => entry.panic = value,
                "index" => entry.index = value,
                other => {
                    return Err(format!(
                        "panic_budget.toml:{}: unknown key `{other}`",
                        n + 1
                    ))
                }
            }
        }
        Ok(b)
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-surface ratchet (generated by `lml-analyze --write-baseline`).\n\
             #\n\
             # Per-crate counts of `.unwrap()`, `.expect()`, `panic!`, and postfix\n\
             # `[idx]` indexing. `lml-analyze --check` fails if any count GROWS past\n\
             # its budget; when a count shrinks, regenerate this file so the ratchet\n\
             # only ever tightens.\n",
        );
        for (name, c) in &self.crates {
            out.push_str(&format!("\n[{name}]\n"));
            for (k, v) in c.fields() {
                out.push_str(&format!("{k} = {v}\n"));
            }
        }
        out
    }
}

/// Compare measured counts against the budget. Growth is gating; slack
/// (measured < budget) is an advisory nudge to re-ratchet; a crate missing
/// from the budget is gating (the inventory must stay complete).
pub fn check(
    measured: &BTreeMap<String, PanicCounts>,
    budget: &Budget,
    file: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (name, got) in measured {
        let Some(want) = budget.crates.get(name) else {
            out.push(Finding {
                file: file.to_string(),
                line: 0,
                lint: "panic-ratchet".into(),
                msg: format!(
                    "crate `{name}` has no panic budget entry — run `lml-analyze \
                     --write-baseline` and commit the result"
                ),
                gating: true,
            });
            continue;
        };
        for ((kind, g), (_, w)) in got.fields().into_iter().zip(want.fields()) {
            if g > w {
                out.push(Finding {
                    file: file.to_string(),
                    line: 0,
                    lint: "panic-ratchet".into(),
                    msg: format!(
                        "`{name}` {kind} count grew {w} -> {g}: the panic surface only \
                         ratchets down — remove the new site or consciously raise the \
                         budget in review"
                    ),
                    gating: true,
                });
            } else if g < w {
                out.push(Finding {
                    file: file.to_string(),
                    line: 0,
                    lint: "panic-ratchet".into(),
                    msg: format!(
                        "`{name}` {kind} count shrank {w} -> {g}: run `lml-analyze \
                         --write-baseline` to lock in the tighter budget"
                    ),
                    gating: false,
                });
            }
        }
    }
    for name in budget.crates.keys() {
        if !measured.contains_key(name) {
            out.push(Finding {
                file: file.to_string(),
                line: 0,
                lint: "panic-ratchet".into(),
                msg: format!(
                    "budget lists crate `{name}` which no longer exists — run \
                     `lml-analyze --write-baseline`"
                ),
                gating: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn counts_method_position_only() {
        let c = count(&lex("x.unwrap(); y.expect(\"m\"); unwrap_or(z); let expect = 1;").tokens);
        assert_eq!(c.unwrap, 1);
        assert_eq!(c.expect, 1);
    }

    #[test]
    fn counts_panic_macro_not_ident() {
        let c = count(&lex("panic!(\"boom\"); let panic = 3;").tokens);
        assert_eq!(c.panic, 1);
    }

    #[test]
    fn indexing_is_postfix_only() {
        let c = count(&lex("v[i] + f()[0] + m[k][j]").tokens);
        assert_eq!(c.index, 4);
        let c = count(&lex("fn f(x: &[u8]) -> [u8; 4] { #[inline] vec![0; 4]; [1, 2] }").tokens);
        assert_eq!(c.index, 0, "types, attrs, macros, literals don't count");
    }

    #[test]
    fn doc_comment_unwrap_does_not_count() {
        let c = count(&lex("/// let x = y.unwrap();\nfn f() {}").tokens);
        assert_eq!(c.unwrap, 0);
    }

    #[test]
    fn budget_roundtrips() {
        let mut b = Budget::default();
        b.crates.insert(
            "lml-sim".into(),
            PanicCounts {
                unwrap: 1,
                expect: 2,
                panic: 3,
                index: 4,
            },
        );
        let parsed = Budget::parse(&b.render()).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn growth_gates_shrink_advises() {
        let mut budget = Budget::default();
        budget.crates.insert(
            "a".into(),
            PanicCounts {
                unwrap: 2,
                ..Default::default()
            },
        );
        let mut measured = BTreeMap::new();
        measured.insert(
            "a".to_string(),
            PanicCounts {
                unwrap: 3,
                ..Default::default()
            },
        );
        let f = check(&measured, &budget, "panic_budget.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].gating);
        measured.insert(
            "a".to_string(),
            PanicCounts {
                unwrap: 1,
                ..Default::default()
            },
        );
        let f = check(&measured, &budget, "panic_budget.toml");
        assert_eq!(f.len(), 1);
        assert!(!f[0].gating);
    }

    #[test]
    fn missing_crate_gates() {
        let budget = Budget::default();
        let mut measured = BTreeMap::new();
        measured.insert("new-crate".to_string(), PanicCounts::default());
        let f = check(&measured, &budget, "panic_budget.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].gating);
    }
}
