//! # lml-analyze — workspace static analysis for the determinism contracts
//!
//! Every headline number this reproduction produces rests on contracts that
//! used to be enforced only by convention and CI double-runs: byte-stable
//! sweep JSON, additive-only schemas, no wall clocks or unseeded randomness
//! in simulation logic. CI's determinism diffs catch a violation *after* it
//! lands in an artifact; this crate catches the whole class at the source
//! level, before anything runs.
//!
//! Three passes share one hand-rolled lexer ([`lexer`]):
//!
//! * [`lints`] — **determinism lints**: `HashMap`/`HashSet` in the
//!   simulation crates, `Instant`/`SystemTime` outside the allowlisted
//!   observer probe, float `==`/`!=`, and `static mut`. Waivable inline
//!   with `// lml-analyze: allow(<lint>)`.
//! * [`mod@panic`] — a **panic-surface ratchet**: per-crate `unwrap` / `expect`
//!   / `panic!` / `[idx]` counts held to `crates/analyze/panic_budget.toml`,
//!   which can only shrink.
//! * [`schema`] — **schema locks**: the field names the hand-rolled JSON
//!   emitters write, checked against `schemas/*.lock` so the additive-only
//!   rule is mechanical.
//!
//! The `lml-analyze` binary drives all three; CI runs
//! `cargo run -p lml-analyze --release -- --check` as a gating lint step,
//! and `tests/workspace_clean.rs` runs the same check under `cargo test`.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod panic;
pub mod schema;

use lints::Finding;
use panic::{Budget, PanicCounts};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one full pass over a workspace produces, before baseline
/// comparison: lint findings plus the measured panic counts and extracted
/// schema fields that `--check` compares and `--write-baseline` records.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub panic_counts: BTreeMap<String, PanicCounts>,
    pub schema_fields: Vec<(schema::Emitter, std::collections::BTreeSet<String>)>,
}

/// The final report of a `--check` run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn gating_count(&self) -> usize {
        self.findings.iter().filter(|f| f.gating).count()
    }
}

/// Discover the crates to scan: every `crates/<dir>/src` plus the root
/// `src/` (the `lambdaml` facade crate). Returns `(package_name, src_dir)`
/// pairs in sorted order so output is deterministic.
fn discover_crates(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join("src").is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            out.push((format!("lml-{name}"), dir.join("src")));
        }
    }
    if root.join("src").is_dir() {
        out.push(("lambdaml".to_string(), root.join("src")));
    }
    Ok(out)
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lex and lint every source file; measure panic counts; extract schema
/// fields. Pure data gathering — no baseline files are read.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let mut a = Analysis::default();
    for (package, src_dir) in discover_crates(root)? {
        let opts = config::crate_opts(&package);
        let mut counts = PanicCounts::default();
        for file in rust_files(&src_dir)? {
            let rel_path = rel(root, &file);
            let source = fs::read_to_string(&file)?;
            let lexed = lexer::lex(&source);
            let wall_clock_allowed = config::WALL_CLOCK_ALLOWED_FILES
                .iter()
                .any(|f| *f == rel_path);
            a.findings.extend(lints::check_file(
                &rel_path,
                &lexed,
                opts,
                wall_clock_allowed,
            ));
            counts.add(panic::count(&lexed.tokens));
            for emitter in config::EMITTERS {
                if emitter.file == rel_path {
                    let fields = schema::extract_fields(&lexed, emitter.key_helpers);
                    a.schema_fields.push((emitter, fields));
                }
            }
            a.files_scanned += 1;
        }
        a.panic_counts.insert(package, counts);
    }
    Ok(a)
}

/// Full check: determinism lints + panic ratchet + schema locks + docs
/// drift, against the committed baselines under `root`.
pub fn run_check(root: &Path) -> io::Result<Report> {
    let analysis = analyze(root)?;
    let mut findings = analysis.findings;

    let budget_path = root.join(config::PANIC_BUDGET_PATH);
    match fs::read_to_string(&budget_path) {
        Ok(text) => match Budget::parse(&text) {
            Ok(budget) => findings.extend(panic::check(
                &analysis.panic_counts,
                &budget,
                config::PANIC_BUDGET_PATH,
            )),
            Err(e) => findings.push(Finding {
                file: config::PANIC_BUDGET_PATH.into(),
                line: 0,
                lint: "panic-ratchet".into(),
                msg: e,
                gating: true,
            }),
        },
        Err(_) => findings.push(Finding {
            file: config::PANIC_BUDGET_PATH.into(),
            line: 0,
            lint: "panic-ratchet".into(),
            msg: "missing panic budget — run `lml-analyze --write-baseline` and commit it".into(),
            gating: true,
        }),
    }

    // A configured emitter that vanished would otherwise silently skip its
    // lock check — deleting metrics.rs must not read as "schema intact".
    for emitter in config::EMITTERS {
        if !analysis
            .schema_fields
            .iter()
            .any(|(e, _)| e.file == emitter.file)
        {
            findings.push(Finding {
                file: emitter.file.into(),
                line: 0,
                lint: "schema-lock".into(),
                msg: format!(
                    "configured emitter `{}` not found — if the file moved, update \
                     `lml_analyze::config::EMITTERS`",
                    emitter.file
                ),
                gating: true,
            });
        }
    }

    let docs = fs::read_to_string(root.join(config::SCHEMA_DOCS_PATH)).ok();
    for (emitter, fields) in &analysis.schema_fields {
        let lock_path = root
            .join(config::SCHEMAS_DIR)
            .join(format!("{}.lock", emitter.name));
        let lock = fs::read_to_string(&lock_path).ok();
        findings.extend(schema::check(
            emitter,
            fields,
            lock.as_deref(),
            docs.as_deref(),
        ));
    }

    Ok(Report {
        findings,
        files_scanned: analysis.files_scanned,
    })
}

/// Regenerate the committed baselines: the panic budget and every schema
/// lock. Returns one human-readable line per file written.
pub fn write_baseline(root: &Path) -> io::Result<Vec<String>> {
    let analysis = analyze(root)?;
    let mut written = Vec::new();

    let budget = Budget {
        crates: analysis.panic_counts,
    };
    let budget_path = root.join(config::PANIC_BUDGET_PATH);
    fs::write(&budget_path, budget.render())?;
    written.push(format!("wrote {}", config::PANIC_BUDGET_PATH));

    let schemas_dir = root.join(config::SCHEMAS_DIR);
    fs::create_dir_all(&schemas_dir)?;
    for (emitter, fields) in &analysis.schema_fields {
        let path = schemas_dir.join(format!("{}.lock", emitter.name));
        fs::write(
            &path,
            schema::render_lock(emitter.name, emitter.file, fields),
        )?;
        written.push(format!(
            "wrote {}/{}.lock",
            config::SCHEMAS_DIR,
            emitter.name
        ));
    }
    Ok(written)
}
