//! `lml-analyze` — the workspace static-analysis driver.
//!
//! ```text
//! lml-analyze --check            # gating: exit 1 on any contract violation
//! lml-analyze --report           # same output, always exit 0 (advisory)
//! lml-analyze --write-baseline   # regenerate panic_budget.toml + schemas/*.lock
//! lml-analyze --root <path>      # analyze a different workspace root
//! ```
//!
//! CI runs `--check` in the lint job; `--write-baseline` is how a PR that
//! legitimately shrinks the panic surface or adds a schema field records
//! the new baseline (the diff shows up in review).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The binary runs from anywhere inside the workspace (CI runs it from
    // the root); walk up from CWD until a Cargo.toml with crates/ appears.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let mut mode = "--report".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" | "--report" | "--write-baseline" => mode = arg,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: lml-analyze [--check|--report|--write-baseline] [--root PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    if mode == "--write-baseline" {
        return match lml_analyze::write_baseline(&root) {
            Ok(written) => {
                for line in written {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = match lml_analyze::run_check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        println!("{}", f.render());
    }
    let gating = report.gating_count();
    let advisory = report.findings.len() - gating;
    println!(
        "lml-analyze: {} files scanned, {gating} error(s), {advisory} note(s)",
        report.files_scanned
    );
    if mode == "--check" && gating > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
