//! The end-to-end self-run: the live workspace passes its own static
//! analysis. This is the same check CI gates on
//! (`cargo run -p lml-analyze --release -- --check`), wired into
//! `cargo test` so a violation fails the build even before the lint job.

use std::path::Path;

#[test]
fn live_workspace_passes_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root");
    let report = lml_analyze::run_check(root).expect("workspace is readable");
    let errors: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.gating)
        .map(|f| f.render())
        .collect();
    assert!(
        errors.is_empty(),
        "the workspace must pass its own static analysis:\n{}",
        errors.join("\n")
    );
    // Notes are allowed but currently zero; if this starts failing, either
    // update docs/SCHEMAS.md / re-run --write-baseline, or relax this to
    // gating-only after deciding the note is acceptable debt.
    let notes: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        notes.is_empty(),
        "advisory notes should be resolved, not accumulated:\n{}",
        notes.join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "sanity: the walker found the workspace ({} files)",
        report.files_scanned
    );
}
