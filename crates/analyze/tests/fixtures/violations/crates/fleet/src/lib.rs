// Fixture crate root — clean on purpose; the violations live in sim/.

mod metrics;
mod observe;
