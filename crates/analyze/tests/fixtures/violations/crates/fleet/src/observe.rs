// Fixture emitter: in sync with its lock — no schema findings expected
// from this file.

fn to_json() -> String {
    JsonObject::new().f64("t", 1.5).finish()
}
