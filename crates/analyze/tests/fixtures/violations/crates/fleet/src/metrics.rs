// Fixture emitter: writes `schema` and `jobs`, but the committed lock also
// lists `removed_field` — the schema-lock checker must flag the removal as
// gating.

fn to_json() -> String {
    JsonObject::new()
        .str("schema", "fixture/v1")
        .u64("jobs", 3)
        .finish()
}
