// Fixture: one representative of every determinism-lint violation class.
// Never compiled — lexed and linted by tests/fixtures.rs. The crate dir is
// named `sim` so the driver applies the `lml-sim` (determinism-critical)
// lint config.

use std::collections::HashMap; // hash-collections
use std::time::Instant;

fn clock_read() -> Instant {
    Instant::now() // wall-clock
}

fn float_compare(x: f64) -> bool {
    x == 0.5 // float-eq
}

static mut COUNTER: u64 = 0; // static-mut

fn panic_site(v: &[u64]) -> u64 {
    v.first().unwrap() + v[0] // unwrap + index, against a zero budget
}
