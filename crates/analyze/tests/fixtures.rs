//! The fixture-corpus self-test: `--check` must fail on each known-bad
//! violation class, with the right lint attributed at the right place.
//!
//! The corpus under `tests/fixtures/violations/` is a miniature workspace
//! (never compiled — only lexed): a determinism-critical `sim` crate
//! containing one representative of every determinism lint, a zeroed panic
//! budget the fixture source exceeds, and a schema lock listing a field the
//! fixture emitter no longer writes.

use std::collections::BTreeSet;
use std::path::Path;

fn violations_report() -> lml_analyze::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations");
    lml_analyze::run_check(&root).expect("fixture workspace is readable")
}

#[test]
fn every_violation_class_gates() {
    let report = violations_report();
    let gating: BTreeSet<&str> = report
        .findings
        .iter()
        .filter(|f| f.gating)
        .map(|f| f.lint.as_str())
        .collect();
    for lint in [
        "hash-collections",
        "wall-clock",
        "float-eq",
        "static-mut",
        "panic-ratchet",
        "schema-lock",
    ] {
        assert!(
            gating.contains(lint),
            "expected gating `{lint}`, got {gating:?}"
        );
    }
}

#[test]
fn determinism_findings_point_into_the_sim_crate() {
    let report = violations_report();
    for lint in ["hash-collections", "wall-clock", "float-eq", "static-mut"] {
        let f = report
            .findings
            .iter()
            .find(|f| f.lint == lint)
            .unwrap_or_else(|| panic!("missing {lint}"));
        assert_eq!(f.file, "crates/sim/src/lib.rs", "{lint}");
        assert!(f.line > 0, "{lint} carries a line number");
    }
}

#[test]
fn panic_ratchet_regression_names_the_grown_counts() {
    let report = violations_report();
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.lint == "panic-ratchet" && f.gating)
        .map(|f| f.msg.as_str())
        .collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("`lml-sim` unwrap count grew 0 -> 1")),
        "unwrap regression reported: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`lml-sim` index count grew 0 -> 1")),
        "index regression reported: {msgs:?}"
    );
}

#[test]
fn schema_field_removal_is_the_only_schema_error() {
    let report = violations_report();
    let schema: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "schema-lock")
        .collect();
    assert_eq!(schema.len(), 1, "{schema:?}");
    assert!(schema[0].gating);
    assert!(schema[0].msg.contains("`removed_field`"));
    // The in-sync observe emitter and the fixture docs stay quiet.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.lint == "schema-docs-drift"));
}

#[test]
fn the_clean_fixture_crate_reports_nothing() {
    let report = violations_report();
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.starts_with("crates/fleet/") && f.gating),
        "fleet fixture files are clean"
    );
}
