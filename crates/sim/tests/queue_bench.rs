//! Throwaway microbench for the event queue (ignored by default).
//! Run: cargo test --release -p lml-sim --test queue_bench -- --ignored --nocapture

use lml_sim::{EventQueue, SimTime};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 31)).wrapping_mul(0x9E3779B97F4A7C15)
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
#[ignore]
fn bench_cluster_outlier() {
    // Pathology probe: a tight cluster of times plus one far outlier.
    // A width sized from the global span dumps the cluster into one
    // bucket; if pops scan it linearly the drain is O(n²), and if the
    // spill rebalance re-derives the same width it thrashes.
    let mut rng = Rng(7);
    for &n in &[100usize, 1000] {
        let iters = 200_000u64;
        let mut q = EventQueue::new();
        let mut now = 0.0f64;
        for _ in 0..n {
            q.push(SimTime::secs(now + 1.0 + rng.f64()), 0u64);
        }
        q.push(SimTime::secs(1.0e4), 0u64); // far outlier parks in overflow
        let t0 = std::time::Instant::now();
        for i in 0..iters {
            let (t, _) = q.pop().unwrap();
            now = t.as_secs();
            // Cluster stays tight: everything lands within 1s of now.
            q.push(SimTime::secs(now + 1.0 + rng.f64()), i);
        }
        let dt = t0.elapsed();
        println!(
            "cluster n={n}+outlier: {:.1} ns/op",
            dt.as_nanos() as f64 / iters as f64
        );
    }
}

#[test]
#[ignore]
fn bench_hold_model() {
    // Classic hold model: steady-state queue of N, pop-then-push with
    // exponential-ish advance — the sim's actual access pattern.
    for &n in &[32usize, 100, 1000] {
        let mut q = EventQueue::new();
        let mut rng = Rng(42);
        let mut now = 0.0;
        for _ in 0..n {
            q.push(SimTime::secs(now + rng.f64() * 300.0), 0u64);
        }
        let iters = 1_000_000u64;
        let t0 = std::time::Instant::now();
        for i in 0..iters {
            let (t, _) = q.pop().unwrap();
            now = t.as_secs();
            q.push(SimTime::secs(now + rng.f64() * 300.0), i);
        }
        let dt = t0.elapsed();
        println!(
            "hold n={n}: {:.1} ns/op ({} ops)",
            dt.as_nanos() as f64 / iters as f64,
            iters
        );
    }
}
