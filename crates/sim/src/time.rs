//! Virtual time.
//!
//! The simulator measures everything in f64 seconds of *virtual* time.
//! [`SimTime`] is a transparent newtype that keeps virtual seconds from being
//! accidentally mixed with real (host) seconds, while still supporting
//! ordinary arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    pub fn secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from milliseconds.
    pub fn millis(ms: f64) -> Self {
        SimTime(ms / 1_000.0)
    }

    /// Construct from minutes.
    pub fn minutes(m: f64) -> Self {
        SimTime(m * 60.0)
    }

    /// Construct from hours.
    pub fn hours(h: f64) -> Self {
        SimTime(h * 3_600.0)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in hours (used by per-hour billing).
    pub fn as_hours(self) -> f64 {
        self.0 / 3_600.0
    }

    /// Element-wise maximum — the synchronization-barrier operator.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// True when non-negative and finite — used by debug assertions.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, k: f64) -> SimTime {
        SimTime(self.0 * k)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, k: f64) -> SimTime {
        SimTime(self.0 / k)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        // f64's sum identity is -0.0; normalize so an empty sum is ZERO.
        SimTime(iter.map(|t| t.0).sum::<f64>() + 0.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3_600.0 {
            write!(f, "{:.2}h", self.0 / 3_600.0)
        } else if self.0 >= 60.0 {
            write!(f, "{:.1}m", self.0 / 60.0)
        } else if self.0 >= 1.0 {
            write!(f, "{:.2}s", self.0)
        } else {
            write!(f, "{:.1}ms", self.0 * 1_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::minutes(2.0), SimTime::secs(120.0));
        assert_eq!(SimTime::hours(1.0), SimTime::secs(3600.0));
        assert_eq!(SimTime::millis(500.0), SimTime::secs(0.5));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::secs(10.0) + SimTime::secs(5.0) - SimTime::secs(1.0);
        assert_eq!(t, SimTime::secs(14.0));
        assert_eq!(t * 2.0, SimTime::secs(28.0));
        assert_eq!(t / 2.0, SimTime::secs(7.0));
    }

    #[test]
    fn barrier_max() {
        let a = SimTime::secs(3.0);
        let b = SimTime::secs(5.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(|i| SimTime::secs(i as f64)).sum();
        assert_eq!(total, SimTime::secs(10.0));
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(SimTime::secs(0.05).to_string(), "50.0ms");
        assert_eq!(SimTime::secs(5.0).to_string(), "5.00s");
        assert_eq!(SimTime::secs(90.0).to_string(), "1.5m");
        assert_eq!(SimTime::hours(2.0).to_string(), "2.00h");
    }

    #[test]
    fn validity() {
        assert!(SimTime::secs(1.0).is_valid());
        assert!(!SimTime::secs(-1.0).is_valid());
        assert!(!SimTime::secs(f64::NAN).is_valid());
    }
}
