//! Summary statistics for the calibration harness (Table 6 reports every
//! constant as `mean ± spread` over repeated measurements).

/// Running summary of a sample of f64 observations.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    pub fn new() -> Self {
        Summary::default()
    }

    pub fn from_values(values: Vec<f64>) -> Self {
        Summary { values }
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (n-1 denominator).
    pub fn std(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    pub fn min(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile via linear interpolation between order statistics,
    /// `p` in [0, 100].
    pub fn percentile(&self, p: f64) -> f64 {
        let [v] = self.percentiles([p]);
        v
    }

    /// Several percentiles off one shared sort — the amortized form of
    /// [`Summary::percentile`] for rollups that read the whole tail
    /// (p50/p95/p99) of the same sample.
    pub fn percentiles<const N: usize>(&self, ps: [f64; N]) -> [f64; N] {
        let mut sorted = self.clone();
        sorted.into_percentiles(ps)
    }

    /// Consuming form of [`Summary::percentiles`]: sorts the sample in
    /// place instead of cloning it first. Same order statistics, same
    /// interpolation — this is the hot-rollup path, where the caller owns
    /// the sample and the clone would be pure overhead. Read `mean`/`max`
    /// before calling; they see the sample in insertion order either way
    /// (both are computed over the unsorted values), so the split cannot
    /// change any reported float.
    pub fn into_percentiles<const N: usize>(&mut self, ps: [f64; N]) -> [f64; N] {
        assert!(!self.values.is_empty());
        self.values
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in summary"));
        let sorted = &self.values;
        ps.map(|p| {
            assert!((0.0..=100.0).contains(&p));
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let t = rank - lo as f64;
                sorted[lo] * (1.0 - t) + sorted[hi] * t
            }
        })
    }

    /// Format as `mean ± std` with the given precision, Table 6 style.
    pub fn pm(&self, digits: usize) -> String {
        format!("({:.d$} ± {:.d$})", self.mean(), self.std(), d = digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Summary::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.138).abs() < 1e-3);
    }

    #[test]
    fn empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_value_has_zero_std() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn percentiles() {
        let s = Summary::from_values((1..=100).map(f64::from).collect());
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 100.0).abs() < 1e-12);
        assert!((s.percentile(50.0) - 50.5).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let s = Summary::from_values(vec![3.0, -1.0, 7.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn pm_format() {
        let s = Summary::from_values(vec![65.0, 65.0]);
        assert_eq!(s.pm(0), "(65 ± 0)");
    }
}
