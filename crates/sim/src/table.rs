//! Piecewise-linear lookup tables.
//!
//! The paper reports start-up time at a handful of worker counts
//! (Table 6: `t_F(w)` and `t_I(w)` at w = 10, 50, 100, 200). The simulator
//! needs values at arbitrary `w`; [`PiecewiseLinear`] interpolates between
//! the measured knots and extrapolates linearly beyond them.

/// A monotone-x piecewise-linear function defined by `(x, y)` knots.
#[derive(Debug, Clone)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Build from knots; they are sorted by x. At least one knot is required
    /// and x values must be distinct.
    pub fn new(mut knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "need at least one knot");
        knots.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("knot x must not be NaN"));
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate knot x {}", w[0].0);
        }
        PiecewiseLinear { knots }
    }

    /// Evaluate at `x` with linear interpolation inside the knot range and
    /// linear extrapolation outside it (clamped at zero).
    pub fn eval(&self, x: f64) -> f64 {
        let k = &self.knots;
        if k.len() == 1 {
            return k[0].1;
        }
        // Select segment: before first, after last, or the bracketing pair.
        let (a, b) = if x <= k[0].0 {
            (k[0], k[1])
        } else if x >= k[k.len() - 1].0 {
            (k[k.len() - 2], k[k.len() - 1])
        } else {
            let i = k.partition_point(|&(kx, _)| kx < x);
            (k[i - 1], k[i])
        };
        let t = (x - a.0) / (b.0 - a.0);
        (a.1 + t * (b.1 - a.1)).max(0.0)
    }

    /// The knots, sorted by x.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_f() -> PiecewiseLinear {
        // Table 6: t_F(w) at 10/50/100/200 workers.
        PiecewiseLinear::new(vec![
            (10.0, 1.2),
            (50.0, 11.0),
            (100.0, 18.0),
            (200.0, 35.0),
        ])
    }

    #[test]
    fn exact_at_knots() {
        let f = t_f();
        assert_eq!(f.eval(10.0), 1.2);
        assert_eq!(f.eval(50.0), 11.0);
        assert_eq!(f.eval(200.0), 35.0);
    }

    #[test]
    fn interpolates_between_knots() {
        let f = t_f();
        let v = f.eval(75.0);
        assert!((v - (11.0 + 18.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_beyond_range() {
        let f = t_f();
        // slope 0.17 beyond 200 -> 300 workers ~ 52s
        let v = f.eval(300.0);
        assert!((v - 52.0).abs() < 1e-9, "v={v}");
        // before 10, slope 0.245 downward but clamped >= 0
        assert!(f.eval(0.0) >= 0.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let f = PiecewiseLinear::new(vec![(2.0, 20.0), (1.0, 10.0)]);
        assert_eq!(f.eval(1.5), 15.0);
        assert_eq!(f.knots()[0].0, 1.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let f = PiecewiseLinear::new(vec![(5.0, 7.0)]);
        assert_eq!(f.eval(0.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    #[should_panic]
    fn duplicate_x_rejected() {
        PiecewiseLinear::new(vec![(1.0, 1.0), (1.0, 2.0)]);
    }
}
