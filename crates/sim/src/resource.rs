//! Shared-resource contention model.
//!
//! A storage service or parameter server has finite aggregate bandwidth.
//! When several simulated workers hit it concurrently their transfers queue.
//! [`FifoResource`] models the service as `parallelism` equal-share channels
//! backed by one aggregate-bandwidth pipe: an operation arriving at time `t`
//! starts when a channel is free and occupies it for `latency +
//! bytes/channel_bandwidth`.
//!
//! This captures the paper's two key contention observations:
//! * Memcached's multi-threaded design sustains many concurrent streams
//!   (high `parallelism`), Redis is single-threaded (low `parallelism`);
//! * the single-leader AllReduce aggregator serializes `w` reads.

use crate::bytes::ByteSize;
use crate::time::SimTime;

/// FIFO bandwidth resource with `parallelism` service channels.
#[derive(Debug, Clone)]
pub struct FifoResource {
    /// Aggregate bandwidth across all channels, bytes/s.
    pub aggregate_bandwidth_bps: f64,
    /// Per-operation latency in seconds.
    pub latency_s: f64,
    /// Number of operations the service can progress at full share.
    pub parallelism: usize,
    /// Next-free time of each channel.
    free_at: Vec<f64>,
}

impl FifoResource {
    pub fn new(aggregate_bandwidth_bps: f64, latency_s: f64, parallelism: usize) -> Self {
        assert!(aggregate_bandwidth_bps > 0.0);
        assert!(parallelism >= 1);
        FifoResource {
            aggregate_bandwidth_bps,
            latency_s,
            parallelism,
            free_at: vec![0.0; parallelism],
        }
    }

    /// Per-channel bandwidth when all channels are busy.
    pub fn channel_bandwidth_bps(&self) -> f64 {
        self.aggregate_bandwidth_bps / self.parallelism as f64
    }

    /// Submit an operation of `size` bytes arriving at `arrival`; returns its
    /// completion time. Operations are served by the earliest-free channel.
    pub fn submit(&mut self, arrival: SimTime, size: ByteSize) -> SimTime {
        let (idx, &earliest) = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("free_at must not be NaN"))
            .expect("at least one channel");
        let start = arrival.as_secs().max(earliest);
        let service = self.latency_s + size.as_f64() / self.channel_bandwidth_bps();
        let finish = start + service;
        self.free_at[idx] = finish;
        SimTime::secs(finish)
    }

    /// Reset all channels to idle (used between experiment repetitions).
    pub fn reset(&mut self) {
        self.free_at.iter_mut().for_each(|t| *t = 0.0);
    }

    /// Time at which the whole service is next idle.
    pub fn idle_at(&self) -> SimTime {
        SimTime::secs(self.free_at.iter().cloned().fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_op_is_latency_plus_transfer() {
        let mut r = FifoResource::new(100e6, 0.01, 1);
        let done = r.submit(SimTime::ZERO, ByteSize::mb(100.0));
        assert!((done.as_secs() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn serial_queueing_on_single_channel() {
        let mut r = FifoResource::new(100e6, 0.0, 1);
        let a = r.submit(SimTime::ZERO, ByteSize::mb(100.0));
        let b = r.submit(SimTime::ZERO, ByteSize::mb(100.0));
        assert!((a.as_secs() - 1.0).abs() < 1e-9);
        assert!(
            (b.as_secs() - 2.0).abs() < 1e-9,
            "second op queues behind first"
        );
    }

    #[test]
    fn parallel_channels_share_bandwidth() {
        // Two channels, each gets half the aggregate bandwidth.
        let mut r = FifoResource::new(100e6, 0.0, 2);
        let a = r.submit(SimTime::ZERO, ByteSize::mb(50.0));
        let b = r.submit(SimTime::ZERO, ByteSize::mb(50.0));
        assert!((a.as_secs() - 1.0).abs() < 1e-9);
        assert!(
            (b.as_secs() - 1.0).abs() < 1e-9,
            "both proceed concurrently at half rate"
        );
    }

    #[test]
    fn arrival_after_idle_does_not_queue() {
        let mut r = FifoResource::new(100e6, 0.0, 1);
        let _ = r.submit(SimTime::ZERO, ByteSize::mb(100.0)); // busy till 1.0
        let b = r.submit(SimTime::secs(5.0), ByteSize::mb(100.0));
        assert!((b.as_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_queue() {
        let mut r = FifoResource::new(100e6, 0.0, 1);
        let _ = r.submit(SimTime::ZERO, ByteSize::mb(100.0));
        r.reset();
        assert_eq!(r.idle_at(), SimTime::ZERO);
    }
}
