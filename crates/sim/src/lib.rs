//! # lml-sim — simulation substrate for LambdaML-rs
//!
//! Foundation crate for the LambdaML reproduction: a deterministic
//! discrete-event toolkit that every other crate builds on.
//!
//! * [`rng`] — a self-contained PCG64 generator (uniform, normal, Zipf,
//!   shuffling) so that every experiment is bit-reproducible from a seed.
//! * [`time`] — virtual time ([`SimTime`]) and durations in f64 seconds.
//! * [`money`] — dollar accounting ([`Cost`]).
//! * [`bytes`] — byte quantities with MB/GB helpers.
//! * [`link`] — latency + bandwidth transfer-time model.
//! * [`table`] — piecewise-linear lookup tables (e.g. cluster start-up time
//!   as a function of worker count, Table 6 of the paper).
//! * [`resource`] — a FIFO bandwidth resource used to model contention on a
//!   shared service (storage channel, parameter server).
//! * [`events`] — a tiny event queue for asynchronous-protocol simulation.
//! * [`stats`] — summary statistics used by the calibration harness.

#![forbid(unsafe_code)]

pub mod bytes;
pub mod events;
pub mod link;
pub mod money;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use bytes::ByteSize;
pub use events::EventQueue;
pub use link::Link;
pub use money::Cost;
pub use resource::FifoResource;
pub use rng::Pcg64;
pub use table::PiecewiseLinear;
pub use time::SimTime;
