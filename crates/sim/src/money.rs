//! Dollar accounting.
//!
//! The paper's second axis is cost in dollars; [`Cost`] is the newtype all
//! billing flows through (Lambda GB-seconds, EC2 instance-hours, storage
//! requests, cache-node hours).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of money in USD.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cost(pub f64);

impl Cost {
    pub const ZERO: Cost = Cost(0.0);

    /// Construct from dollars.
    pub fn usd(d: f64) -> Self {
        Cost(d)
    }

    /// Value in dollars.
    pub fn as_usd(self) -> f64 {
        self.0
    }

    /// True when non-negative and finite.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, rhs: Cost) -> Cost {
        Cost(self.0 - rhs.0)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    fn mul(self, k: f64) -> Cost {
        Cost(self.0 * k)
    }
}

impl Div<Cost> for Cost {
    type Output = f64;
    fn div(self, rhs: Cost) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        // f64's sum identity is -0.0; normalize so an empty sum is ZERO
        // (and doesn't print as "$-0.00").
        Cost(iter.map(|c| c.0).sum::<f64>() + 0.0)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exact-zero is a display special case. lml-analyze: allow(float-eq)
        if self.0.abs() < 0.01 && self.0 != 0.0 {
            write!(f, "${:.4}", self.0)
        } else {
            write!(f, "${:.2}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let c = Cost::usd(1.5) + Cost::usd(0.5);
        assert_eq!(c, Cost::usd(2.0));
        assert_eq!(c * 3.0, Cost::usd(6.0));
        assert_eq!(Cost::usd(4.0) / Cost::usd(2.0), 2.0);
    }

    #[test]
    fn sum_iterator() {
        let total: Cost = (0..4).map(|_| Cost::usd(0.25)).sum();
        assert_eq!(total, Cost::usd(1.0));
    }

    #[test]
    fn display_small_amounts_get_more_digits() {
        assert_eq!(Cost::usd(0.0042).to_string(), "$0.0042");
        assert_eq!(Cost::usd(3.17159).to_string(), "$3.17");
        assert_eq!(Cost::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn validity() {
        assert!(Cost::usd(1.0).is_valid());
        assert!(!Cost::usd(-0.5).is_valid());
    }
}
