//! Byte quantities.
//!
//! Wire sizes drive every communication-time computation in the simulator.
//! [`ByteSize`] uses decimal MB/GB (as AWS pricing and the paper do).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct ByteSize(pub u64);

impl ByteSize {
    pub const ZERO: ByteSize = ByteSize(0);

    pub fn bytes(b: u64) -> Self {
        ByteSize(b)
    }

    pub fn kb(k: f64) -> Self {
        ByteSize((k * 1e3) as u64)
    }

    pub fn mb(m: f64) -> Self {
        ByteSize((m * 1e6) as u64)
    }

    pub fn gb(g: f64) -> Self {
        ByteSize((g * 1e9) as u64)
    }

    pub fn as_bytes(self) -> u64 {
        self.0
    }

    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Size of `n` f64 values on the wire (8 bytes each) — the default model
    /// payload encoding used throughout.
    pub fn of_f64s(n: usize) -> Self {
        ByteSize((n as u64) * 8)
    }

    /// Size of `n` f32 values (PyTorch's default tensor dtype; the paper's
    /// deep models ship f32 parameters).
    pub fn of_f32s(n: usize) -> Self {
        ByteSize((n as u64) * 4)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, k: u64) -> ByteSize {
        ByteSize(self.0 * k)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, k: u64) -> ByteSize {
        ByteSize(self.0 / k)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e9 {
            write!(f, "{:.2}GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.1}MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.1}KB", b / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::kb(1.0), ByteSize(1_000));
        assert_eq!(ByteSize::mb(12.0), ByteSize(12_000_000));
        assert_eq!(ByteSize::gb(1.5), ByteSize(1_500_000_000));
        assert_eq!(ByteSize::of_f64s(28), ByteSize(224)); // the paper's LR-on-Higgs model size
        assert_eq!(ByteSize::of_f32s(3_000_000), ByteSize::mb(12.0));
    }

    #[test]
    fn arithmetic_and_saturation() {
        assert_eq!(ByteSize(5) + ByteSize(3), ByteSize(8));
        assert_eq!(ByteSize(5) - ByteSize(8), ByteSize::ZERO);
        assert_eq!(ByteSize(5) * 2, ByteSize(10));
        assert_eq!(ByteSize(10) / 4, ByteSize(2));
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize(224).to_string(), "224B");
        assert_eq!(ByteSize::kb(2.0).to_string(), "2.0KB");
        assert_eq!(ByteSize::mb(89.0).to_string(), "89.0MB");
        assert_eq!(ByteSize::gb(8.0).to_string(), "8.00GB");
    }

    #[test]
    fn sum_iterator() {
        let total: ByteSize = (0..3).map(|_| ByteSize::mb(1.0)).sum();
        assert_eq!(total, ByteSize::mb(3.0));
    }
}
