//! Deterministic random number generation.
//!
//! A self-contained PCG64 (XSL-RR 128/64) implementation so the simulator has
//! no external randomness dependency and is bit-reproducible across
//! platforms. All dataset generation, mini-batch sampling, initialization and
//! timing jitter in the repository flows through [`Pcg64`].

/// PCG XSL-RR 128/64 pseudo-random generator.
///
/// State transition is a 128-bit LCG; output applies an xor-shift-low and a
/// random rotation, as in the reference PCG implementation.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64 {
    /// Create a generator from a 64-bit seed. Distinct seeds give
    /// independent-looking streams.
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: ((seed as u128) << 65) | 0x5851_f42d_4c95_7f2d, // odd increment
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(seed as u128);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    /// Derive a child generator with an independent stream. Used to give each
    /// simulated worker its own RNG while staying reproducible.
    pub fn split(&mut self, tag: u64) -> Pcg64 {
        let s = self.next_u64() ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Pcg64::new(s)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` using Lemire rejection for lack of bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Standard normal via Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` (rejection
    /// sampling; used to draw realistic sparse-feature indices).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n >= 1);
        // Inverse-CDF on the continuous approximation, then clamp.
        let n_f = n as f64;
        if (s - 1.0).abs() < 1e-9 {
            // H(x) = ln(x+1); inverse: exp(u * ln(n+1)) - 1
            let u = self.uniform();
            let x = ((n_f + 1.0).ln() * u).exp() - 1.0;
            (x as usize).min(n - 1)
        } else {
            let a = 1.0 - s;
            let h_n = ((n_f + 1.0).powf(a) - 1.0) / a;
            let u = self.uniform() * h_n;
            let x = (u * a + 1.0).powf(1.0 / a) - 1.0;
            (x as usize).min(n - 1)
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (Floyd's algorithm for small
    /// k, shuffle-prefix otherwise). Result is in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            return all;
        }
        let mut chosen = Vec::with_capacity(k);
        for j in n - k..n {
            let t = self.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Pcg64::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = Pcg64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_unbiased_over_range() {
        let mut r = Pcg64::new(3);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Pcg64::new(1).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Pcg64::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = Pcg64::new(9);
        let n = 1000;
        let mut first_decile = 0;
        for _ in 0..10_000 {
            let z = r.zipf(n, 1.1);
            assert!(z < n);
            if z < n / 10 {
                first_decile += 1;
            }
        }
        // Zipf mass concentrates on small indices.
        assert!(first_decile > 6_000, "first_decile={first_decile}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg64::new(13);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Pcg64::new(17);
        for &(n, k) in &[(100, 5), (100, 50), (10, 10), (1000, 3)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Pcg64::new(42);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn coin_respects_probability() {
        let mut r = Pcg64::new(21);
        let hits = (0..100_000).filter(|_| r.coin(0.3)).count();
        assert!((hits as f64 - 30_000.0).abs() < 1_500.0);
    }
}
