//! Latency + bandwidth transfer model.
//!
//! Every medium in the paper (S3, EBS, VM-to-VM network, ElastiCache) is
//! characterized by a `(bandwidth, latency)` pair — exactly the columns of
//! Table 6. [`Link`] turns byte counts into virtual transfer times.

use crate::bytes::ByteSize;
use crate::time::SimTime;

/// A communication medium with fixed per-message latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl Link {
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        Link {
            bandwidth_bps,
            latency_s,
        }
    }

    /// Convenience constructor from MB/s and seconds (Table 6 units).
    pub fn mbps(bandwidth_mb_s: f64, latency_s: f64) -> Self {
        Link::new(bandwidth_mb_s * 1e6, latency_s)
    }

    /// Time to move `size` bytes in one message: `L + size / B`.
    pub fn transfer_time(&self, size: ByteSize) -> SimTime {
        SimTime::secs(self.latency_s + size.as_f64() / self.bandwidth_bps)
    }

    /// Time to move `size` bytes split into `msgs` sequential messages
    /// (`msgs * L + size / B`). Models chunked transfers such as DynamoDB's
    /// 400 KB item cap.
    pub fn transfer_time_chunked(&self, size: ByteSize, msgs: u64) -> SimTime {
        assert!(msgs >= 1);
        SimTime::secs(self.latency_s * msgs as f64 + size.as_f64() / self.bandwidth_bps)
    }

    /// A link with bandwidth scaled by `k` (contention sharing, GPU links,
    /// what-if bandwidth upgrades). Latency is unchanged.
    pub fn scaled(&self, k: f64) -> Link {
        Link::new(self.bandwidth_bps * k, self.latency_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s3_like_transfer() {
        // Table 6: S3 = 65 MB/s, 80 ms latency. 75 MB => ~1.23s + 0.08s.
        let s3 = Link::mbps(65.0, 0.08);
        let t = s3.transfer_time(ByteSize::mb(75.0));
        assert!((t.as_secs() - (0.08 + 75.0 / 65.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let l = Link::mbps(100.0, 0.05);
        assert_eq!(l.transfer_time(ByteSize::ZERO), SimTime::secs(0.05));
    }

    #[test]
    fn chunked_pays_latency_per_message() {
        let l = Link::mbps(100.0, 0.01);
        let one = l.transfer_time(ByteSize::mb(1.0));
        let four = l.transfer_time_chunked(ByteSize::mb(1.0), 4);
        assert!((four.as_secs() - one.as_secs() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn scaling_bandwidth() {
        let l = Link::mbps(100.0, 0.0).scaled(2.0);
        let t = l.transfer_time(ByteSize::mb(200.0));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        Link::new(0.0, 0.0);
    }
}
