//! Minimal event queue for asynchronous-protocol simulation.
//!
//! The synchronous (BSP) executors advance time with barrier maxima and never
//! need an event queue. The asynchronous protocol (S-ASP, §4.5 of the paper)
//! does: workers finish iterations at arbitrary interleaved times and the
//! order in which they read/write the shared model determines staleness.
//! [`EventQueue`] pops the earliest `(time, payload)` pair; ties break on
//! insertion order so simulation stays deterministic.
//!
//! Internally this is a bucketed **calendar queue** (a ladder-queue
//! variant) rather than a binary heap. Pending events live in three
//! tiers, ordered by how soon they pop:
//!
//! 1. `current` — the imminent events, sorted descending so `pop` is a
//!    `Vec::pop` from the tail and `peek` reads the tail.
//! 2. The wheel — fixed-width time buckets, unsorted `Vec`s, so `push`
//!    is an O(1) append.
//! 3. `overflow` — everything past the wheel's horizon, unsorted.
//!
//! When `current` drains, the next non-empty bucket is *adopted*: sorted
//! once, then drained one `pop` at a time. A bucket too coarse for its
//! population (a skewed distribution piling events into one slot) is
//! first **split** — the wheel re-centres on that bucket's sub-range with
//! finer buckets — so no pop ever scans a long unsorted run; this is what
//! keeps heavily clustered workloads (ties, one far outlier stretching
//! the span) from degenerating to O(n) per operation. When the wheel
//! itself drains, it is rebuilt around the overflow's time span with
//! geometry re-chosen from the population, which amortizes to O(1) per
//! event. The pop order is *exactly* the old heap's: earliest
//! `(time, seq)` first, with `f64::total_cmp` time ordering and FIFO
//! sequence tie-breaks — property-tested against a reference
//! `BinaryHeap` over adversarial workloads.

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

/// Descending `(time, seq)` comparison via [`f64::total_cmp`] (a total
/// order on all bit patterns, so `-0.0` sorts before `0.0` exactly as
/// the old heap key did). Sorting `current` with this puts the earliest
/// event — and, among ties, the lowest sequence number — at the tail,
/// where `Vec::pop` takes it.
fn descending<T>(a: &Entry<T>, b: &Entry<T>) -> std::cmp::Ordering {
    b.time.total_cmp(&a.time).then(b.seq.cmp(&a.seq))
}

/// Wheel geometry floor/ceiling: never fewer than 16 buckets (tiny queues
/// stay tiny), never more than 2^16 (the settle sweep over empty buckets
/// stays cheap even for degenerate time distributions).
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 16;
/// A bucket longer than this is split before being adopted as `current`
/// (unless its times are exact ties, which no width can separate, or the
/// width has already hit float resolution).
const SPLIT: usize = 32;

/// Earliest-first event queue with deterministic FIFO tie-breaking,
/// implemented as a calendar queue (sorted drain buffer + timing wheel +
/// overflow).
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Imminent events, sorted descending — the tail is the global
    /// minimum. Non-empty whenever the queue is (the `peek`/`pop`
    /// invariant). Every pending event earlier than `cur_hi` lives here.
    current: Vec<Entry<T>>,
    /// The wheel: `buckets[i]` covers `[start + i·width, start +
    /// (i+1)·width)`, unsorted. Only indices ≥ `cursor` are populated.
    buckets: Vec<Vec<Entry<T>>>,
    /// Seconds per bucket.
    width: f64,
    /// Time at the left edge of bucket 0.
    start: f64,
    /// First wheel bucket not yet drained into `current`.
    cursor: usize,
    /// Boundary between `current` and the wheel. Pushes earlier than
    /// this insert into `current` (sorted); everything else appends to a
    /// bucket or the overflow. Kept *tight* — the adopted bucket's max
    /// time, not its right edge — so in-flight pushes overwhelmingly
    /// take the O(1) bucket append (landing in `buckets[cursor]` via the
    /// `bucket_of` clamp, sorted later at adoption) instead of the
    /// memmove insert into `current`.
    cur_hi: f64,
    /// Events at or past the wheel horizon, unsorted; redistributed when
    /// the wheel drains.
    overflow: Vec<Entry<T>>,
    len: usize,
    seq: u64,
    /// High-water mark of `len` over the queue's lifetime.
    peak_len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            current: Vec::new(),
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            start: 0.0,
            cursor: 0,
            cur_hi: 0.0,
            overflow: Vec::new(),
            len: 0,
            seq: 0,
            peak_len: 0,
        }
    }

    /// Queue sized for a known event population up front, so the hot loop
    /// never reallocates the backing buffers mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.overflow.reserve(capacity);
        q
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.overflow.reserve(additional);
    }

    /// First time at or past the wheel's right edge.
    #[inline]
    fn horizon(&self) -> f64 {
        self.start + self.width * self.buckets.len() as f64
    }

    /// Wheel bucket for a time in `[cur_hi, horizon)`. Clamped on both
    /// sides against float rounding at the edges.
    #[inline]
    fn bucket_of(&self, time: f64) -> usize {
        let raw = ((time - self.start) / self.width) as usize;
        raw.clamp(self.cursor, self.buckets.len() - 1)
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        assert!(time.is_valid(), "scheduling at invalid time {time:?}");
        let t = time.as_secs();
        let e = Entry {
            time: t,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        if self.len == 1 {
            // Empty queue: adopt this event directly and re-anchor the
            // (necessarily empty) wheel at its time.
            self.start = t;
            self.cursor = 0;
            self.cur_hi = t;
            self.current.push(e);
        } else if t.total_cmp(&self.cur_hi).is_lt() {
            // Imminent (or in the past): sorted-insert into the drain
            // buffer. New entries carry the largest sequence number, so
            // among equal times they pop last — i.e. sit leftmost in the
            // descending buffer, before every existing tie.
            let i = self
                .current
                .partition_point(|c| c.time.total_cmp(&t).is_gt());
            self.current.insert(i, e);
        } else if t >= self.horizon() || self.cursor == self.buckets.len() {
            // Past the horizon — or the wheel is fully drained (the last
            // bucket was adopted, so with a tight `cur_hi` there is no
            // bucket left to clamp into).
            self.overflow.push(e);
        } else {
            let b = self.bucket_of(t);
            self.buckets[b].push(e);
        }
    }

    /// Schedule a batch of `(time, payload)` pairs in iteration order —
    /// FIFO tie-break sequence numbers are assigned exactly as repeated
    /// [`push`](Self::push) calls would, after one up-front reservation.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = (SimTime, T)>) {
        let it = events.into_iter();
        self.reserve(it.size_hint().0);
        for (time, payload) in it {
            self.push(time, payload);
        }
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let e = self.current.pop()?;
        self.len -= 1;
        if self.current.is_empty() && self.len > 0 {
            self.settle();
        }
        Some((SimTime::secs(e.time), e.payload))
    }

    /// Time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.current.last().map(|e| SimTime::secs(e.time))
    }

    /// Refill the empty `current` from the wheel (splitting over-full
    /// buckets first) or, when the wheel is drained too, rebuild the
    /// wheel from the overflow. On return `current` is non-empty — the
    /// caller guarantees `len > 0`.
    fn settle(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        loop {
            while self.cursor < self.buckets.len() && self.buckets[self.cursor].is_empty() {
                self.cursor += 1;
            }
            if self.cursor == self.buckets.len() {
                // Wheel drained; everything pending lives in the overflow.
                self.rebuild_from_overflow();
                continue;
            }
            let c = self.cursor;
            if self.buckets[c].len() > SPLIT && self.splittable(c) {
                self.split(c);
                continue;
            }
            // Adopt bucket `c`; the swap recycles its allocation.
            std::mem::swap(&mut self.current, &mut self.buckets[c]);
            self.current.sort_unstable_by(descending);
            self.cursor = c + 1;
            // Tight boundary: the adopted population's max, not the
            // bucket's right edge. Anything in later buckets is at or
            // past the next left edge, which is ≥ this max, so the
            // `current`-holds-everything-imminent invariant still holds;
            // pushes landing between the two bounds clamp into
            // `buckets[cursor]` and get sorted at the next adoption.
            self.cur_hi = self.current[0].time;
            return;
        }
    }

    /// Worth splitting? Exact ties cannot be separated by any width, and
    /// a width at float resolution cannot shrink further.
    fn splittable(&self, c: usize) -> bool {
        let t0 = self.buckets[c][0].time;
        let resolution = (self.start.abs() + self.width).max(1.0) * 1e-12;
        self.width > resolution && self.buckets[c].iter().any(|e| e.time != t0)
    }

    /// Re-centre the wheel on over-full bucket `c`'s own sub-range with
    /// proportionally finer buckets; every other wheel entry retreats to
    /// the overflow (it is later than the whole sub-range, so it pops
    /// after everything the new wheel covers).
    fn split(&mut self, c: usize) {
        let fat = std::mem::take(&mut self.buckets[c]);
        let lo = self.start + c as f64 * self.width;
        for b in &mut self.buckets {
            self.overflow.append(b);
        }
        let nb = fat
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        self.width /= nb as f64;
        self.start = lo;
        self.cursor = 0;
        self.cur_hi = lo;
        for e in fat {
            let b = self.bucket_of(e.time);
            self.buckets[b].push(e);
        }
    }

    /// Re-geometry the wheel around the overflow population's time span
    /// (bucket count from its size, width from its span) and move every
    /// entry into it, emptying the overflow.
    fn rebuild_from_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "settle needs pending events");
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &self.overflow {
            lo = lo.min(e.time);
            hi = hi.max(e.time);
        }
        let nb = self
            .overflow
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        // Stretch the span slightly so `hi` itself lands inside the
        // horizon; a degenerate span (all one instant) keeps the old
        // width. Skewed populations that pile into one bucket are fixed
        // lazily by `split` when that bucket is reached.
        let span = hi - lo;
        if span > 0.0 {
            self.width = (span * 1.001 / nb as f64).max(f64::MIN_POSITIVE);
        }
        self.start = lo;
        self.cursor = 0;
        self.cur_hi = lo;
        for e in std::mem::take(&mut self.overflow) {
            let b = self.bucket_of(e.time);
            self.buckets[b].push(e);
        }
    }

    /// Total pushes over the queue's lifetime (the FIFO tie-break counter).
    /// Lets self-profilers report heap traffic without shadow counting.
    pub fn pushes(&self) -> u64 {
        self.seq
    }

    /// Peak number of pending events over the queue's lifetime — the
    /// queue-depth statistic surfaced through `ThroughputProbe`.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(3.0), "c");
        q.push(SimTime::secs(1.0), "a");
        q.push(SimTime::secs(2.0), "b");
        assert_eq!(q.pop().expect("queue is non-empty").1, "a");
        assert_eq!(q.pop().expect("queue is non-empty").1, "b");
        assert_eq!(q.pop().expect("queue is non-empty").1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::secs(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::secs(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn push_batch_matches_repeated_push() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(4);
        let events = [(2.0, "x"), (1.0, "y"), (2.0, "z"), (0.5, "w")];
        for &(t, p) in &events {
            a.push(SimTime::secs(t), p);
        }
        b.push_batch(events.iter().map(|&(t, p)| (SimTime::secs(t), p)));
        assert_eq!(a.pushes(), b.pushes());
        while let Some(ea) = a.pop() {
            assert_eq!(Some(ea), b.pop());
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(10.0), "late");
        q.push(SimTime::secs(1.0), "early");
        let (t, p) = q.pop().expect("queue is non-empty");
        assert_eq!((t, p), (SimTime::secs(1.0), "early"));
        q.push(SimTime::secs(5.0), "mid");
        assert_eq!(q.pop().expect("queue is non-empty").1, "mid");
        assert_eq!(q.pop().expect("queue is non-empty").1, "late");
    }

    #[test]
    fn push_into_the_past_pops_first() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::secs(100.0 + i as f64), i);
        }
        // Drain a few so the cursor has moved, then schedule before it.
        q.pop();
        q.pop();
        q.push(SimTime::secs(0.5), 777);
        assert_eq!(q.pop().expect("queue is non-empty").1, 777);
        assert_eq!(q.pop().expect("queue is non-empty").1, 2);
    }

    #[test]
    fn far_future_horizon_wrap_preserves_order() {
        let mut q = EventQueue::new();
        // Way past the initial horizon, then near events.
        q.push(SimTime::secs(1.0e9), "far");
        q.push(SimTime::secs(2.0), "near");
        q.push(SimTime::secs(5.0e8), "mid");
        assert_eq!(q.pop().expect("queue is non-empty").1, "near");
        assert_eq!(q.pop().expect("queue is non-empty").1, "mid");
        assert_eq!(q.pop().expect("queue is non-empty").1, "far");
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(SimTime::secs(1.0), ());
        q.push(SimTime::secs(2.0), ());
        q.pop();
        q.push(SimTime::secs(3.0), ());
        assert_eq!(q.peak_len(), 2, "peak was two pending events");
        assert_eq!(q.len(), 2);
    }

    /// The reference implementation the calendar queue must match
    /// pop-for-pop: the `BinaryHeap` the queue used before the swap.
    struct RefQueue<T> {
        heap: std::collections::BinaryHeap<RefEntry<T>>,
        seq: u64,
    }

    struct RefEntry<T> {
        time: f64,
        seq: u64,
        payload: T,
    }

    impl<T> PartialEq for RefEntry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
        }
    }
    impl<T> Eq for RefEntry<T> {}
    impl<T> PartialOrd for RefEntry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T> Ord for RefEntry<T> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest first.
            other
                .time
                .total_cmp(&self.time)
                .then(other.seq.cmp(&self.seq))
        }
    }

    impl<T> RefQueue<T> {
        fn new() -> Self {
            RefQueue {
                heap: std::collections::BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, time: SimTime, payload: T) {
            self.heap.push(RefEntry {
                time: time.as_secs(),
                seq: self.seq,
                payload,
            });
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, T)> {
            self.heap.pop().map(|e| (SimTime::secs(e.time), e.payload))
        }
    }

    /// Split-mix style PRNG — deterministic, no external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = self.0;
            (x ^ (x >> 31)).wrapping_mul(0x9E3779B97F4A7C15)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Property: over randomized workloads — heavy ties, zero-delay
    /// events, far-future horizon hops, pushes into the past — the
    /// calendar queue pops the exact `(time, seq)` sequence the
    /// reference heap does.
    #[test]
    fn property_pop_order_matches_binary_heap() {
        for seed in 0..20u64 {
            let mut rng = Rng(0xC0FFEE ^ (seed.wrapping_mul(0x9E3779B9)));
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut reference: RefQueue<u64> = RefQueue::new();
            let mut clock = 0.0f64;
            let mut id = 0u64;
            for _ in 0..2_000 {
                match rng.below(10) {
                    // Push: a zoo of adversarial time patterns.
                    0..=5 => {
                        let t = match rng.below(6) {
                            0 => clock,                                   // zero delay
                            1 => clock + 0.0,                             // tie at now
                            2 => clock + rng.below(1_000) as f64 / 64.0,  // near future
                            3 => clock + 1.0e6 + rng.below(9) as f64,     // far future
                            4 => (clock - rng.below(50) as f64).max(0.0), // the past
                            _ => rng.below(16) as f64,                    // dense ties
                        };
                        cal.push(SimTime::secs(t), id);
                        reference.push(SimTime::secs(t), id);
                        id += 1;
                    }
                    // Pop and advance the clock to the popped time.
                    _ => {
                        let a = cal.pop();
                        let b = reference.pop();
                        assert_eq!(
                            a.as_ref().map(|(t, p)| (t.as_secs().to_bits(), *p)),
                            b.as_ref().map(|(t, p)| (t.as_secs().to_bits(), *p)),
                            "seed {seed}: pop diverged"
                        );
                        if let Some((t, _)) = a {
                            clock = clock.max(t.as_secs());
                        }
                    }
                }
            }
            // Drain: the tails must agree too.
            loop {
                let a = cal.pop();
                let b = reference.pop();
                assert_eq!(
                    a.as_ref().map(|(t, p)| (t.as_secs().to_bits(), *p)),
                    b.as_ref().map(|(t, p)| (t.as_secs().to_bits(), *p)),
                    "seed {seed}: drain diverged"
                );
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(cal.pushes(), reference.seq);
        }
    }

    /// Burst-of-ties stress: thousands of identical timestamps exercise
    /// the split guard (ties cannot be separated by any bucket width).
    #[test]
    fn massive_tie_burst_stays_fifo() {
        let mut q = EventQueue::new();
        for i in 0..3_000u32 {
            q.push(SimTime::secs(7.0), i);
        }
        for i in 0..3_000u32 {
            assert_eq!(q.pop().expect("queue is non-empty").1, i);
        }
        assert!(q.is_empty());
    }

    /// A tight near-future cluster plus one far outlier: the outlier
    /// stretches the wheel span, piling the cluster into one bucket —
    /// the split path must keep the order exact regardless.
    #[test]
    fn cluster_with_outlier_stays_ordered() {
        let mut q = EventQueue::new();
        let mut reference = RefQueue::new();
        q.push(SimTime::secs(1.0e4), 9_999u64);
        reference.push(SimTime::secs(1.0e4), 9_999u64);
        let mut rng = Rng(3);
        for i in 0..500 {
            let t = 1.0 + rng.below(1_000) as f64 / 1_000.0;
            q.push(SimTime::secs(t), i);
            reference.push(SimTime::secs(t), i);
        }
        loop {
            let a = q.pop();
            let b = reference.pop();
            assert_eq!(
                a.as_ref().map(|(t, p)| (t.as_secs().to_bits(), *p)),
                b.as_ref().map(|(t, p)| (t.as_secs().to_bits(), *p))
            );
            if a.is_none() {
                break;
            }
        }
    }
}
