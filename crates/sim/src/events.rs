//! Minimal event queue for asynchronous-protocol simulation.
//!
//! The synchronous (BSP) executors advance time with barrier maxima and never
//! need an event queue. The asynchronous protocol (S-ASP, §4.5 of the paper)
//! does: workers finish iterations at arbitrary interleaved times and the
//! order in which they read/write the shared model determines staleness.
//! [`EventQueue`] pops the earliest `(time, payload)` pair; ties break on
//! insertion order so simulation stays deterministic.

use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Total-order wrapper around an event timestamp. `f64` is only partially
/// ordered (NaN breaks `sort`/heap invariants silently), so the heap key
/// compares via [`f64::total_cmp`], which is a total order on all bit
/// patterns. `push` still rejects invalid times up front.
#[derive(Debug, Clone, Copy)]
struct TotalTime(f64);

impl PartialEq for TotalTime {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for TotalTime {}

impl PartialOrd for TotalTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug)]
struct Entry<T> {
    time: TotalTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Queue sized for a known event population up front, so the hot loop
    /// never reallocates the heap's backing buffer mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        assert!(time.is_valid(), "scheduling at invalid time {time:?}");
        self.heap.push(Entry {
            time: TotalTime(time.as_secs()),
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule a batch of `(time, payload)` pairs in iteration order —
    /// FIFO tie-break sequence numbers are assigned exactly as repeated
    /// [`push`](Self::push) calls would, after one up-front reservation.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = (SimTime, T)>) {
        let it = events.into_iter();
        self.reserve(it.size_hint().0);
        for (time, payload) in it {
            self.push(time, payload);
        }
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap
            .pop()
            .map(|e| (SimTime::secs(e.time.0), e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime::secs(e.time.0))
    }

    /// Total pushes over the queue's lifetime (the FIFO tie-break counter).
    /// Lets self-profilers report heap traffic without shadow counting.
    pub fn pushes(&self) -> u64 {
        self.seq
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(3.0), "c");
        q.push(SimTime::secs(1.0), "a");
        q.push(SimTime::secs(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::secs(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::secs(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn push_batch_matches_repeated_push() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(4);
        let events = [(2.0, "x"), (1.0, "y"), (2.0, "z"), (0.5, "w")];
        for &(t, p) in &events {
            a.push(SimTime::secs(t), p);
        }
        b.push_batch(events.iter().map(|&(t, p)| (SimTime::secs(t), p)));
        assert_eq!(a.pushes(), b.pushes());
        while let Some(ea) = a.pop() {
            assert_eq!(Some(ea), b.pop());
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(10.0), "late");
        q.push(SimTime::secs(1.0), "early");
        let (t, p) = q.pop().unwrap();
        assert_eq!((t, p), (SimTime::secs(1.0), "early"));
        q.push(SimTime::secs(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
