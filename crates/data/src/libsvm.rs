//! LIBSVM text format.
//!
//! The paper's artifact distributes dataset partitions as LIBSVM files on
//! S3 (`<label> <index>:<value> ...`, 1-based indices). The reader/writer
//! here round-trips both layouts and is used by the `custom_dataset`
//! example and the loader tests.

use crate::dataset::{Dataset, DenseDataset, SparseDataset};
use lml_linalg::{Matrix, SparseVec};
use std::fmt::Write as _;

/// Parse error for LIBSVM input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "libsvm parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse LIBSVM text into a sparse dataset. `dim` is the feature-space size;
/// pass 0 to infer it from the largest index seen.
pub fn parse_sparse(text: &str, dim: usize) -> Result<SparseDataset, ParseError> {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut max_idx = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label: f64 = parts
            .next()
            .expect("non-empty line has a first token")
            .parse()
            .map_err(|e| ParseError {
                line: lineno + 1,
                message: format!("bad label: {e}"),
            })?;
        let mut pairs = Vec::new();
        for tok in parts {
            let (i_str, v_str) = tok.split_once(':').ok_or_else(|| ParseError {
                line: lineno + 1,
                message: format!("expected index:value, got {tok:?}"),
            })?;
            let idx: usize = i_str.parse().map_err(|e| ParseError {
                line: lineno + 1,
                message: format!("bad index {i_str:?}: {e}"),
            })?;
            if idx == 0 {
                return Err(ParseError {
                    line: lineno + 1,
                    message: "libsvm indices are 1-based; found 0".into(),
                });
            }
            let val: f64 = v_str.parse().map_err(|e| ParseError {
                line: lineno + 1,
                message: format!("bad value {v_str:?}: {e}"),
            })?;
            max_idx = max_idx.max(idx);
            pairs.push(((idx - 1) as u32, val));
        }
        rows.push(SparseVec::from_pairs(pairs));
        labels.push(label);
    }
    let dim = if dim == 0 { max_idx } else { dim };
    if max_idx > dim {
        return Err(ParseError {
            line: 0,
            message: format!("index {max_idx} exceeds declared dimension {dim}"),
        });
    }
    Ok(SparseDataset::new(rows, labels, dim))
}

/// Parse LIBSVM text into a dense dataset of exactly `dim` columns.
pub fn parse_dense(text: &str, dim: usize) -> Result<DenseDataset, ParseError> {
    let sparse = parse_sparse(text, dim)?;
    let n = sparse.len();
    let mut m = Matrix::zeros(n, dim);
    for r in 0..n {
        for (i, v) in sparse.row(r).iter() {
            m.set(r, i as usize, v);
        }
    }
    Ok(DenseDataset::new(m, sparse.labels().to_vec()))
}

/// Serialize a dataset to LIBSVM text (1-based indices; dense zeros are
/// omitted, matching how the paper's repo ships Higgs).
pub fn write(data: &Dataset) -> String {
    let mut out = String::new();
    for r in 0..data.len() {
        let label = data.label(r);
        if label == label.trunc() {
            let _ = write!(out, "{}", label as i64);
        } else {
            let _ = write!(out, "{label}");
        }
        match data.row(r) {
            crate::dataset::Row::Dense(x) => {
                for (j, &v) in x.iter().enumerate() {
                    // Sparse format omits exact zeros. lml-analyze: allow(float-eq)
                    if v != 0.0 {
                        let _ = write!(out, " {}:{v}", j + 1);
                    }
                }
            }
            crate::dataset::Row::Sparse(sv) => {
                for (i, v) in sv.iter() {
                    let _ = write!(out, " {}:{v}", i + 1);
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "+1 1:0.5 3:1.5\n-1 2:2.0\n# comment\n\n+1 1:1.0\n";

    #[test]
    fn parse_sparse_basic() {
        let d = parse_sparse(SAMPLE, 0).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.labels(), &[1.0, -1.0, 1.0]);
        assert_eq!(d.row(0).indices(), &[0, 2]);
        assert_eq!(d.row(0).values(), &[0.5, 1.5]);
    }

    #[test]
    fn parse_dense_fills_zeros() {
        let d = parse_dense(SAMPLE, 4).unwrap();
        assert_eq!(d.dim(), 4);
        assert_eq!(d.row(0), &[0.5, 0.0, 1.5, 0.0]);
        assert_eq!(d.row(1), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn roundtrip_sparse() {
        let d = parse_sparse(SAMPLE, 5).unwrap();
        let text = write(&Dataset::Sparse(d.clone()));
        let d2 = parse_sparse(&text, 5).unwrap();
        assert_eq!(d2.len(), d.len());
        for i in 0..d.len() {
            assert_eq!(d.row(i), d2.row(i));
            assert_eq!(d.label(i), d2.label(i));
        }
    }

    #[test]
    fn error_on_zero_index() {
        let e = parse_sparse("+1 0:1.0\n", 0).unwrap_err();
        assert!(e.message.contains("1-based"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_on_malformed_pair() {
        assert!(parse_sparse("+1 nonsense\n", 0).is_err());
        assert!(parse_sparse("+1 2:abc\n", 0).is_err());
        assert!(parse_sparse("abc 1:1\n", 0).is_err());
    }

    #[test]
    fn error_when_index_exceeds_dim() {
        let e = parse_sparse("+1 10:1.0\n", 5).unwrap_err();
        assert!(e.message.contains("exceeds"));
    }

    #[test]
    fn fractional_labels_preserved() {
        let d = parse_sparse("2.5 1:1.0\n", 0).unwrap();
        let text = write(&Dataset::Sparse(d));
        assert!(text.starts_with("2.5 "));
    }
}
