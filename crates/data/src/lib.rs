//! # lml-data — datasets for LambdaML-rs
//!
//! The paper evaluates on five datasets (Figure 6): Higgs, RCV1, Cifar10,
//! YFCC100M and Criteo. We cannot ship those datasets, so this crate provides
//! **seeded synthetic generators** that match each dataset's dimensionality,
//! sparsity and task structure, with row counts scaled down (documented per
//! generator) so experiments run on one machine. Each generator carries a
//! [`spec::DatasetSpec`] holding the *paper-scale* instance counts and byte
//! sizes; the simulator uses those for all wire/time computations, so system
//! costs reflect the full-size datasets even though the numerics run on the
//! scaled sample.
//!
//! * [`dataset`] — dense/sparse containers and the unified [`dataset::Dataset`].
//! * [`spec`] — per-dataset metadata (paper size, scale factor, wire bytes).
//! * [`generators`] — one module per dataset.
//! * [`libsvm`] — LIBSVM text-format reader/writer (the format the paper's
//!   repo distributes Higgs/RCV1 partitions in).
//! * [`partition`] — contiguous range partitioning across workers.
//! * [`transform`] — min-max normalization, shuffling, train/valid split.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod generators;
pub mod libsvm;
pub mod partition;
pub mod spec;
pub mod transform;

pub use dataset::{Dataset, DenseDataset, Row, SparseDataset};
pub use partition::Partition;
pub use spec::DatasetSpec;
