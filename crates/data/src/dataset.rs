//! Dataset containers.
//!
//! Two physical layouts — dense (row-major matrix) and sparse (vector of
//! [`SparseVec`] rows) — behind one [`Dataset`] enum. Labels are f64: ±1 for
//! binary classification, 0..k-1 for multiclass, unused for clustering.

use lml_linalg::{Matrix, SparseVec};

/// A borrowed view of one training example's features.
#[derive(Debug, Clone, Copy)]
pub enum Row<'a> {
    Dense(&'a [f64]),
    Sparse(&'a SparseVec),
}

impl<'a> Row<'a> {
    /// Dot product with a dense parameter vector.
    #[inline]
    pub fn dot(&self, w: &[f64]) -> f64 {
        match self {
            Row::Dense(x) => lml_linalg::dense::dot(x, w),
            Row::Sparse(x) => x.dot_dense(w),
        }
    }

    /// `out += a * x` — gradient scatter.
    #[inline]
    pub fn axpy_into(&self, a: f64, out: &mut [f64]) {
        match self {
            Row::Dense(x) => lml_linalg::dense::axpy(a, x, out),
            Row::Sparse(x) => x.axpy_into_dense(a, out),
        }
    }

    /// Number of stored (potentially non-zero) entries.
    pub fn nnz(&self) -> usize {
        match self {
            Row::Dense(x) => x.len(),
            Row::Sparse(x) => x.nnz(),
        }
    }
}

/// Dense dataset: `n × dim` feature matrix plus labels.
#[derive(Debug, Clone)]
pub struct DenseDataset {
    features: Matrix,
    labels: Vec<f64>,
}

impl DenseDataset {
    pub fn new(features: Matrix, labels: Vec<f64>) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature/label count mismatch"
        );
        DenseDataset { features, labels }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    pub fn row(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        self.features.row_mut(i)
    }

    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    pub fn labels(&self) -> &[f64] {
        &self.labels
    }
}

/// Sparse dataset: one [`SparseVec`] per example plus labels; `dim` is the
/// logical feature-space dimension.
#[derive(Debug, Clone)]
pub struct SparseDataset {
    rows: Vec<SparseVec>,
    labels: Vec<f64>,
    dim: usize,
}

impl SparseDataset {
    pub fn new(rows: Vec<SparseVec>, labels: Vec<f64>, dim: usize) -> Self {
        assert_eq!(rows.len(), labels.len(), "feature/label count mismatch");
        debug_assert!(rows
            .iter()
            .all(|r| r.indices().last().is_none_or(|&i| (i as usize) < dim)));
        SparseDataset { rows, labels, dim }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn row(&self, i: usize) -> &SparseVec {
        &self.rows[i]
    }

    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Average number of stored entries per row.
    pub fn avg_nnz(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(SparseVec::nnz).sum::<usize>() as f64 / self.rows.len() as f64
    }
}

/// A dataset in either layout.
#[derive(Debug, Clone)]
pub enum Dataset {
    Dense(DenseDataset),
    Sparse(SparseDataset),
}

impl Dataset {
    pub fn len(&self) -> usize {
        match self {
            Dataset::Dense(d) => d.len(),
            Dataset::Sparse(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dim(&self) -> usize {
        match self {
            Dataset::Dense(d) => d.dim(),
            Dataset::Sparse(d) => d.dim(),
        }
    }

    pub fn row(&self, i: usize) -> Row<'_> {
        match self {
            Dataset::Dense(d) => Row::Dense(d.row(i)),
            Dataset::Sparse(d) => Row::Sparse(d.row(i)),
        }
    }

    pub fn label(&self, i: usize) -> f64 {
        match self {
            Dataset::Dense(d) => d.label(i),
            Dataset::Sparse(d) => d.label(i),
        }
    }

    /// Restrict to the given row indices (copies).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        match self {
            Dataset::Dense(d) => {
                let mut m = Matrix::zeros(rows.len(), d.dim());
                let mut labels = Vec::with_capacity(rows.len());
                for (out_r, &r) in rows.iter().enumerate() {
                    m.row_mut(out_r).copy_from_slice(d.row(r));
                    labels.push(d.label(r));
                }
                Dataset::Dense(DenseDataset::new(m, labels))
            }
            Dataset::Sparse(d) => {
                let sel: Vec<SparseVec> = rows.iter().map(|&r| d.row(r).clone()).collect();
                let labels = rows.iter().map(|&r| d.label(r)).collect();
                Dataset::Sparse(SparseDataset::new(sel, labels, d.dim()))
            }
        }
    }

    /// In-memory footprint of the stored examples in bytes (used for the
    /// Lambda 3 GB memory-limit check).
    pub fn storage_bytes(&self) -> u64 {
        match self {
            Dataset::Dense(d) => (d.len() as u64) * (d.dim() as u64 + 1) * 8,
            Dataset::Sparse(d) => {
                d.rows.iter().map(|r| r.wire_bytes()).sum::<u64>() + d.len() as u64 * 8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense3() -> Dataset {
        let m = Matrix::from_flat(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        Dataset::Dense(DenseDataset::new(m, vec![1.0, -1.0, 1.0]))
    }

    fn sparse3() -> Dataset {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0)]),
            SparseVec::from_pairs(vec![(4, 2.0)]),
            SparseVec::from_pairs(vec![(2, 3.0), (4, 1.0)]),
        ];
        Dataset::Sparse(SparseDataset::new(rows, vec![1.0, -1.0, -1.0], 5))
    }

    #[test]
    fn dense_access() {
        let d = dense3();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.label(1), -1.0);
        assert_eq!(d.row(2).dot(&[1.0, 1.0]), 11.0);
    }

    #[test]
    fn sparse_access() {
        let d = sparse3();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 5);
        let w = vec![1.0; 5];
        assert_eq!(d.row(2).dot(&w), 4.0);
    }

    #[test]
    fn row_axpy_both_layouts() {
        let mut out = vec![0.0; 2];
        dense3().row(0).axpy_into(2.0, &mut out);
        assert_eq!(out, vec![2.0, 4.0]);
        let mut out5 = vec![0.0; 5];
        sparse3().row(1).axpy_into(0.5, &mut out5);
        assert_eq!(out5[4], 1.0);
    }

    #[test]
    fn subset_copies_selected_rows() {
        let d = dense3().subset(&[2, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(0), 1.0);
        match d.row(0) {
            Row::Dense(x) => assert_eq!(x, &[5.0, 6.0]),
            _ => panic!("expected dense"),
        }
        let s = sparse3().subset(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.label(0), -1.0);
    }

    #[test]
    fn avg_nnz() {
        if let Dataset::Sparse(s) = sparse3() {
            assert!((s.avg_nnz() - 4.0 / 3.0).abs() < 1e-12);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn storage_bytes_positive() {
        assert!(dense3().storage_bytes() > 0);
        assert!(sparse3().storage_bytes() > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_panic() {
        DenseDataset::new(Matrix::zeros(2, 2), vec![1.0]);
    }
}
